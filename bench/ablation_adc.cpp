/**
 * @file
 * Ablation: Culpeo-uArch ADC design space. Sweeps resolution (6..12
 * bits) and sample rate (1 kHz..1 MHz) and reports the Vsafe error
 * against ground truth for a short, intense pulse — the workload where
 * sampling rate and quantization matter most (cf. the 50 mA / 1 ms
 * discussion in Section VII-A).
 */

#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/api.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("Culpeo profiler ADC design-space ablation",
                  "design ablation (Sections V-C/V-D)");

    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);
    const double range = (cfg.monitor.vhigh - cfg.monitor.voff).value();
    // The pulse's minimum hides mid-task behind the compute tail, so
    // only the sampler (not the task-end reading) can catch it.
    const auto profile = load::pulseWithCompute(50.0_mA, 1.0_ms);
    const auto truth = harness::findTrueVsafe(cfg, profile);

    auto csv = util::CsvWriter::forBench(
        "ablation_adc", {"bits", "rate_hz", "vsafe_v", "error_pct"});

    std::printf("workload: 50 mA / 1 ms pulse + compute tail, "
                "truth Vsafe = %.3f V\n\n", truth.vsafe.value());
    std::printf("%6s %10s %10s %10s\n", "bits", "rate", "Vsafe",
                "err %range");
    bench::rule(42);

    for (unsigned bits : {6u, 8u, 10u, 12u}) {
        for (double rate : {1e3, 10e3, 100e3, 1e6}) {
            mcu::AdcConfig adc;
            adc.bits = bits;
            adc.sample_rate = Hertz(rate);
            adc.vref = Volts(2.56);
            adc.active_power = Watts(140e-9);
            // The ISR-style sampler accepts any resolution; use it as
            // the generic configurable profiler.
            core::Culpeo culpeo(
                model, std::make_unique<core::IsrProfiler>(
                           adc, Seconds(50e-3)));
            harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo, 1,
                                     profile);
            const double vsafe = culpeo.getVsafe(1).value();
            const double err =
                (vsafe - truth.vsafe.value()) / range * 100.0;
            std::printf("%6u %8.0fk %9.3fV %9.1f%%\n", bits, rate / 1e3,
                        vsafe, err);
            csv.row(bits, rate, vsafe, err);
        }
    }

    std::printf("\nSlow sampling misses the 1 ms minimum (negative,\n"
                "unsafe error); coarse quantization adds conservatism.\n"
                "The paper's 8-bit/100 kHz point balances both.\n");
    return 0;
}
