/**
 * @file
 * Ablation: reconfigurable bank-array operating points. For each number
 * of active banks, report the aggregate buffer, the recharge time at a
 * weak harvest, and the Culpeo-R Vsafe of a light, a medium, and a
 * heavy task — quantifying the recharge-speed vs deliverable-power
 * trade that motivates reconfigurable storage (Capybara [30]).
 */

#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/api.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "sim/bank_array.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("Reconfigurable bank-array operating points",
                  "design ablation (Section V-B buffer tags)");

    const sim::BankArray array(sim::capybaraBankArray());
    const auto base = sim::capybaraConfig();
    const Watts harvest(2.0_mW);

    const struct
    {
        core::TaskId id;
        const char *name;
        load::CurrentProfile profile;
    } tasks[] = {
        {1, "light", load::photoSense()},
        {2, "medium", load::imuRead()},
        {3, "heavy", load::uniform(40.0_mA, 20.0_ms).renamed("radio")},
    };

    auto csv = util::CsvWriter::forBench(
        "ablation_banks",
        {"banks", "capacitance_mf", "sustained_esr_ohm", "recharge_s",
         "light_vsafe", "medium_vsafe", "heavy_vsafe"});

    std::printf("%5s %8s %9s %10s | %9s %9s %9s\n", "banks", "C (mF)",
                "ESR (DC)", "recharge", "light", "medium", "heavy");
    bench::rule(72);
    for (unsigned banks = 1; banks <= array.totalBanks(); ++banks) {
        const auto cfg = array.powerSystemFor(banks, base);
        core::Culpeo culpeo(core::modelFromConfig(cfg),
                            std::make_unique<core::UArchProfiler>());
        double vsafe[3];
        for (int i = 0; i < 3; ++i) {
            log::setVerbose(false);
            harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo,
                                     tasks[i].id, tasks[i].profile);
            log::setVerbose(true);
            const double v = culpeo.getVsafe(tasks[i].id).value();
            const bool ok = harness::completesFrom(
                cfg, Volts(std::min(v, 2.56)), tasks[i].profile);
            vsafe[i] = ok ? v : -1.0;
        }
        const double recharge =
            array.rechargeEstimate(banks, harvest, base).value();
        auto cell = [](double v) {
            char buf[16];
            if (v < 0.0)
                std::snprintf(buf, sizeof(buf), "   --  ");
            else
                std::snprintf(buf, sizeof(buf), "%7.3fV", v);
            return std::string(buf);
        };
        std::printf("%5u %8.0f %8.2f %9.1fs | %9s %9s %9s\n", banks,
                    cfg.capacitor.capacitance.value() * 1e3,
                    cfg.capacitor.sustainedEsr().value(), recharge,
                    cell(vsafe[0]).c_str(), cell(vsafe[1]).c_str(),
                    cell(vsafe[2]).c_str());
        csv.row(banks, cfg.capacitor.capacitance.value() * 1e3,
                cfg.capacitor.sustainedEsr().value(), recharge, vsafe[0],
                vsafe[1], vsafe[2]);
    }

    std::printf("\n'--' marks a task the configuration cannot run at\n"
                "all. One bank recharges 3x faster but cannot source\n"
                "the radio; Culpeo's per-buffer tags let a scheduler\n"
                "hold the right Vsafe for whichever array is switched\n"
                "onto the rail.\n");
    return 0;
}
