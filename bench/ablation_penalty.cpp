/**
 * @file
 * Ablation: the penalty term in Vsafe_multi (Section IV-A). Compares
 * three ways to budget a task sequence — energy-only (no penalty), the
 * paper's additive penalty composition, and the exact V^2-domain
 * composition — against the brute-force requirement of the concatenated
 * sequence.
 */

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/vsafe_multi.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/ground_truth.hpp"
#include "harness/vsafe_cache.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("Vsafe_multi penalty-term ablation",
                  "design ablation (Section IV-A)");

    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);
    const double range = (cfg.monitor.vhigh - cfg.monitor.voff).value();

    const struct
    {
        const char *name;
        std::vector<load::CurrentProfile> tasks;
    } sequences[] = {
        {"sense->radio",
         {load::uniform(5.0_mA, 50.0_ms), load::uniform(50.0_mA, 20.0_ms)}},
        {"radio->sense",
         {load::uniform(50.0_mA, 20.0_ms), load::uniform(5.0_mA, 50.0_ms)}},
        {"sense->encrypt->ble",
         {load::imuRead(), load::encrypt(), load::bleRadio()}},
        {"gesture->mnist",
         {load::gestureSensor(), load::mnistCompute()}},
    };

    auto csv = util::CsvWriter::forBench(
        "ablation_penalty",
        {"sequence", "truth_v", "no_penalty_pct", "additive_pct",
         "exact_pct"});

    std::printf("%-22s %8s | %11s %10s %9s  (err %%range)\n", "sequence",
                "truth", "no-penalty", "additive", "exact");
    bench::rule(78);

    struct Row
    {
        double truth = 0.0;
        double no_penalty = 0.0;
        double additive = 0.0;
        double exact = 0.0;
    };
    std::vector<std::size_t> indices(std::size(sequences));
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    // Each sequence's ground-truth search runs on the sweep executor;
    // printing stays serial and in declaration order.
    const std::vector<Row> rows = util::parallelMap(
        indices, [&](const std::size_t &idx) {
            const auto &seq = sequences[idx];
            Row row;
            // Per-task requirements from Culpeo-PG.
            std::vector<core::TaskRequirement> reqs;
            load::CurrentProfile combined = seq.tasks.front();
            for (std::size_t i = 1; i < seq.tasks.size(); ++i)
                combined = combined.then(seq.tasks[i]);
            for (const auto &task : seq.tasks) {
                const auto pg = core::culpeoPg(task, model);
                reqs.push_back(core::requirementFrom(
                    task.name(), pg.vsafe, pg.vdelta, model.voff));
            }

            const auto truth = harness::VsafeCache::global().findOrCompute(
                cfg, combined);
            row.truth = truth.vsafe.value();

            // No penalty: energy increments only.
            row.no_penalty = model.voff.value();
            for (const auto &req : reqs)
                row.no_penalty += req.v_energy.value();

            row.additive =
                core::vsafeMulti(reqs, model.voff).vsafe_multi.value();
            row.exact =
                core::vsafeMultiExact(reqs, model.voff).vsafe_multi.value();
            return row;
        });

    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto &seq = sequences[i];
        const Row &row = rows[i];
        const double t = row.truth;
        std::printf("%-22s %7.3fV | %10.1f%% %9.1f%% %8.1f%%\n", seq.name,
                    t, (row.no_penalty - t) / range * 100.0,
                    (row.additive - t) / range * 100.0,
                    (row.exact - t) / range * 100.0);
        csv.row(seq.name, t, (row.no_penalty - t) / range * 100.0,
                (row.additive - t) / range * 100.0,
                (row.exact - t) / range * 100.0);
    }

    std::printf("\nDropping the penalty term is always unsafe (negative\n"
                "error); the additive form is safe but looser than the\n"
                "exact V^2 composition. Order matters: a drop-heavy task\n"
                "followed by a demanding one has its penalty repaid.\n");
    return 0;
}
