/**
 * @file
 * Ablation: how long to wait for Vfinal. The rebound after a task takes
 * tens of milliseconds (charge redistribution); sampling Vfinal too
 * early under-reports the rebound, inflating the apparent energy and
 * deflating the apparent ESR drop. Sweeps the wait before rebound_end.
 */

#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/api.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("Rebound-wait policy ablation",
                  "design ablation (Section V-C rebound tracking)");

    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);
    const double range = (cfg.monitor.vhigh - cfg.monitor.voff).value();
    const auto profile = load::uniform(50.0_mA, 10.0_ms);
    const auto truth = harness::findTrueVsafe(cfg, profile);

    auto csv = util::CsvWriter::forBench(
        "ablation_rebound",
        {"wait_ms", "vfinal_v", "vdelta_v", "vsafe_v", "error_pct"});

    std::printf("workload: 50 mA / 10 ms pulse, truth Vsafe = %.3f V\n\n",
                truth.vsafe.value());
    std::printf("%10s %10s %10s %10s %11s\n", "wait", "Vfinal", "Vdelta",
                "Vsafe", "err %range");
    bench::rule(56);

    for (double wait_ms : {2.0, 10.0, 50.0, 150.0, 400.0, 1000.0}) {
        core::Culpeo culpeo(model,
                            std::make_unique<core::UArchProfiler>());

        sim::Device device(cfg);
        device.setBufferVoltage(cfg.monitor.vhigh);
        device.forceOutputEnabled(true);

        // Manual Table I sequence with a fixed rebound wait.
        culpeo.profileStart(device.restingVoltage());
        harness::RunOptions options;
        options.dt = harness::chooseDt(profile);
        options.settle_rebound = false;
        options.culpeo = &culpeo;
        const auto run = harness::runTask(device, profile, options);
        culpeo.profileEnd(1, run.vend_loaded);
        double waited = 0.0;
        while (waited < wait_ms * 1e-3) {
            const auto step =
                device.system().step(Seconds(1e-3), Amps(0.0));
            culpeo.tick(Seconds(1e-3), step.terminal);
            waited += 1e-3;
        }
        culpeo.reboundEnd(1, device.restingVoltage());
        culpeo.computeVsafe(1);

        const auto stored = culpeo.table().profile(1, 0);
        const double vsafe = culpeo.getVsafe(1).value();
        const double err = (vsafe - truth.vsafe.value()) / range * 100.0;
        std::printf("%7.0f ms %9.3fV %9.3fV %9.3fV %10.1f%%\n", wait_ms,
                    stored->vfinal.value(),
                    (stored->vfinal - stored->vmin).value(), vsafe, err);
        csv.row(wait_ms, stored->vfinal.value(),
                (stored->vfinal - stored->vmin).value(), vsafe, err);
    }

    std::printf("\nAn early Vfinal under-reports the rebound (smaller\n"
                "Vdelta) but over-reports the consumed energy by the\n"
                "same voltage, so the two terms of Vsafe nearly cancel:\n"
                "the Culpeo-R closed form is robust to Vfinal timing,\n"
                "which is why the uArch block can let the scheduler\n"
                "defer rebound_done indefinitely at no accuracy cost.\n");
    return 0;
}
