/**
 * @file
 * Policy bake-off matrix CLI: ranks every registered charge policy
 * across capacitor configurations × load mixes × harvest scenarios
 * (harness/bakeoff.hpp) and prints the scorecard, optionally writing
 * CSV/JSONL artifacts.
 *
 * The full matrix sweeps 4 policies × 3 buffer variants × 2 load mixes
 * × 3 harvest scenarios; `--smoke` trims every dimension to 2 for a
 * fast CI leg. `--csv PATH` / `--jsonl PATH` write the artifacts.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/apps.hpp"
#include "bench/common.hpp"
#include "env/field.hpp"
#include "harness/bakeoff.hpp"
#include "util/logging.hpp"

using namespace culpeo;
using namespace culpeo::units;

namespace {

int
run(int argc, char **argv)
{
    bool smoke = false;
    std::string csv_path;
    std::string jsonl_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (std::strcmp(argv[i], "--jsonl") == 0 &&
                   i + 1 < argc) {
            jsonl_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--csv PATH] "
                         "[--jsonl PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("Policy bake-off matrix",
                  "hardware-agnostic policy comparison (extension)");

    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();

    env::SolarConfig solar;
    solar.peak = Watts(9e-3);
    solar.day_length = Seconds(240.0);
    solar.sample_period = Seconds(5.0);
    solar.cloud_depth = 0.5;
    solar.shading_depth = 0.3;
    solar.seed = 11;
    const env::SolarDiurnalField solar_field(solar);

    harness::BakeoffMatrix matrix;
    matrix.policies = {"culpeo", "catnap", "culpeo-uarch", "eab",
                       "adaptive"};
    matrix.buffers = {
        {"nominal", 1.0, 1.0},
        {"half-cap", 0.5, 1.0},
        {"aged-esr", 1.0, 1.8},
    };
    matrix.loads = {
        {"periodic-sensing", &ps},
        {"responsive-reporting", &rr},
    };
    matrix.environments = {
        {"steady", nullptr, {}, 1.0},
        {"weak-steady", nullptr, {}, 0.55},
        {"solar-diurnal", &solar_field, {30.0, 30.0}, 1.0},
    };
    matrix.duration = Seconds(120.0);
    matrix.trials = 4;

    if (smoke) {
        matrix.policies = {"culpeo", "catnap"};
        matrix.buffers = {{"nominal", 1.0, 1.0}, {"half-cap", 0.5, 1.0}};
        matrix.environments = {{"steady", nullptr, {}, 1.0},
                               {"weak-steady", nullptr, {}, 0.55}};
        matrix.duration = Seconds(60.0);
        matrix.trials = 2;
    }
    const harness::BakeoffResult result = harness::runBakeoff(matrix);

    std::printf("%4s %-13s %-9s %-21s %-13s %8s %6s %9s %7s\n", "rank",
                "policy", "buffer", "load", "environment", "capture",
                "pf", "latency", "c/J");
    bench::rule(100);
    for (const harness::BakeoffCell &c : result.cells) {
        std::printf("%4u %-13s %-9s %-21s %-13s %7.1f%% %6.1f %8.3fs "
                    "%7.1f\n",
                    c.rank, c.policy.c_str(), c.buffer.c_str(),
                    c.load.c_str(), c.environment.c_str(),
                    c.capture_rate * 100.0, c.power_failures_per_trial,
                    c.mean_latency_s, c.captures_per_joule);
    }

    std::printf("\nper-policy capture rate (all cells, "
                "arrival-weighted):\n");
    for (const std::string &policy : matrix.policies)
        std::printf("  %-13s %6.1f%%\n", policy.c_str(),
                    result.meanCaptureRate(policy) * 100.0);

    if (!csv_path.empty()) {
        result.writeCsvFile(csv_path);
        std::printf("\nscorecard CSV   -> %s\n", csv_path.c_str());
    }
    if (!jsonl_path.empty()) {
        result.writeJsonlFile(jsonl_path);
        std::printf("scorecard JSONL -> %s\n", jsonl_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // An unwritable --csv/--jsonl path surfaces as a diagnostic and a
    // nonzero exit, not an unhandled-exception abort.
    try {
        return run(argc, argv);
    } catch (const log::FatalError &error) {
        std::fprintf(stderr, "bakeoff: %s\n", error.what());
        return EXIT_FAILURE;
    }
}
