#!/usr/bin/env python3
"""Guard the micro_perf suite against performance regressions.

Usage:
    bench/check_regression.py BASELINE.json CANDIDATE.json
        [--threshold 0.10] [--mode ratios|absolute]

Both files are google-benchmark ``--benchmark_out`` JSON (the committed
``BENCH_micro_perf.json`` baseline and a fresh run). For every
benchmark the per-repetition *median* real time is compared; a
benchmark regresses when its candidate median exceeds the baseline
median by more than ``--threshold`` (default 10%).

Two modes:

- ``ratios`` (default, what CI runs): compares the *paired speedup
  ratios* the suite is built around — analytic vs Euler ground truth,
  device vs Euler trials, batch vs scalar sweeps, telemetry overhead.
  Each ratio is formed from two benchmarks of the same run, so machine
  speed cancels out and the check is meaningful across different
  hosts (a laptop baseline vs a CI runner).
- ``absolute``: compares every common benchmark's median directly.
  Only sound when baseline and candidate come from the same machine;
  use it locally when re-baselining.

Exit status 0 when nothing regressed, 1 otherwise.
"""

import argparse
import json
import statistics
import sys

# The in-process speedup pairs (numerator must stay fast relative to
# denominator). Named (slow, fast): the checked ratio is slow/fast, and
# a drop in that ratio means the fast path regressed relative to its
# reference.
RATIO_PAIRS = [
    ("ground-truth analytic speedup",
     "BM_GroundTruthSearchEuler", "BM_GroundTruthSearch"),
    ("device trial speedup",
     "BM_RunTrial/force_euler:1", "BM_RunTrial/force_euler:0"),
    ("batch sweep speedup (warm)",
     "BM_ScalarRunTrials", "BM_BatchRunTrial/exact:0"),
    ("batch sweep speedup (exact)",
     "BM_ScalarRunTrials", "BM_BatchRunTrial/exact:1"),
    # Telemetry overhead: the "slow" side is instrumented, so this
    # ratio is expected to be barely above 1 and must not grow.
    ("telemetry trial cost",
     "BM_RunTrial_telemetry", "BM_RunTrial/force_euler:0"),
    # Admission decisions are per-dispatch hot-path table lookups;
    # pinning them against the full trial makes an Admission-object
    # regression (an accidental allocation, a profiling pass leaking
    # into the decision) show up as a shrinking ratio.
    ("policy decision cost (catnap)",
     "BM_RunTrial/force_euler:0", "BM_PolicyDecision/catnap"),
    ("policy decision cost (culpeo)",
     "BM_RunTrial/force_euler:0", "BM_PolicyDecision/culpeo"),
    # Commit-kernel width pairs: the same panel through the scalar and
    # wide warm tiers of one run, so each ratio is the pure vector
    # speedup of the batch commit pass. Hosts lacking a tier skip its
    # benchmark (error_occurred, dropped by medians()), and ratios
    # absent from baseline or candidate are skipped, so these gates
    # only bind on runners that actually have the ISA.
    # Below 1x by design on hosts where libm's exp beats the scalar
    # polynomial tier — the pair still guards the warm kernel's
    # relative cost from growing.
    ("commit kernel warm scalar-tier cost",
     "BM_CommitKernelExact", "BM_CommitKernelWarm/width:1"),
    ("commit kernel wide4 speedup",
     "BM_CommitKernelWarm/width:1", "BM_CommitKernelWarm/width:4"),
    ("commit kernel wide8 speedup",
     "BM_CommitKernelWarm/width:1", "BM_CommitKernelWarm/width:8"),
    ("crossing solver wide4 speedup",
     "BM_SolveCrossings/width:1", "BM_SolveCrossings/width:4"),
    # Fleet shard-parallel scaling: the same 96-device population under
    # pools of 1 vs 2 and 1 vs 4 participants. The ratio is the pure
    # thread-scaling factor of fleet::runFleet; it must not shrink.
    ("fleet step 2-thread scaling",
     "BM_FleetStep/threads:1/real_time", "BM_FleetStep/threads:2/real_time"),
    ("fleet step 4-thread scaling",
     "BM_FleetStep/threads:1/real_time", "BM_FleetStep/threads:4/real_time"),
    # Trace ingestion: replaying a recorded sky must stay within a
    # bounded factor of the constant-harvest trial (field sampling is a
    # binary search, not a decode), and the defensive decode itself —
    # CRC walk plus per-sample validation over 64k samples — must stay
    # cheap relative to one replayed trial. Either ratio shrinking
    # means the trace path picked up per-sample overhead.
    ("trace replay trial cost",
     "BM_RunTrial/force_euler:0", "BM_TraceStep"),
    ("trace decode cost",
     "BM_TraceStep", "BM_TraceDecode"),
]


# google-benchmark reports real_time in each benchmark's own
# time_unit; normalize to nanoseconds so ratio pairs can mix units
# (e.g. a millisecond-scale trial over a nanosecond-scale decision).
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def medians(path):
    """name -> median real_time (ns) over repetitions (aggregates skipped)."""
    with open(path) as handle:
        data = json.load(handle)
    samples = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # Skipped benchmarks (e.g. a SIMD tier the host lacks) report
        # error_occurred with a zero time; dropping them here makes the
        # ratio checks treat the pair as absent rather than infinite.
        if bench.get("error_occurred"):
            continue
        scale = UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        samples.setdefault(bench["name"], []).append(
            bench["real_time"] * scale)
    return {name: statistics.median(times)
            for name, times in samples.items()}


def check_absolute(base, cand, threshold):
    failures = []
    common = sorted(set(base) & set(cand))
    if not common:
        print("error: no common benchmarks between baseline and candidate")
        return ["no common benchmarks"]
    for name in common:
        ratio = cand[name] / base[name]
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "  << REGRESSION"
            failures.append(name)
        print(f"  {name}: {base[name]:.3f} -> {cand[name]:.3f} "
              f"({(ratio - 1.0) * 100.0:+.1f}%){flag}")
    return failures


def check_ratios(base, cand, threshold):
    failures = []
    compared = 0
    for label, slow, fast in RATIO_PAIRS:
        if slow not in base or fast not in base:
            continue
        if slow not in cand or fast not in cand:
            print(f"  {label}: missing from candidate, skipped")
            continue
        base_ratio = base[slow] / base[fast]
        cand_ratio = cand[slow] / cand[fast]
        compared += 1
        # The fast side regressed if the speedup shrank by >threshold.
        rel = cand_ratio / base_ratio
        flag = ""
        if rel < 1.0 - threshold:
            flag = "  << REGRESSION"
            failures.append(label)
        print(f"  {label}: {base_ratio:.2f}x -> {cand_ratio:.2f}x "
              f"({(rel - 1.0) * 100.0:+.1f}%){flag}")
    if compared == 0:
        print("error: no ratio pairs present in both files")
        failures.append("no ratio pairs compared")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    parser.add_argument("--mode", choices=("ratios", "absolute"),
                        default="ratios")
    args = parser.parse_args()

    base = medians(args.baseline)
    cand = medians(args.candidate)
    print(f"comparing {args.candidate} against {args.baseline} "
          f"(mode={args.mode}, threshold={args.threshold:.0%})")
    if args.mode == "absolute":
        failures = check_absolute(base, cand, args.threshold)
    else:
        failures = check_ratios(base, cand, args.threshold)

    if failures:
        print(f"FAIL: {len(failures)} regression(s): {', '.join(failures)}")
        return 1
    print("OK: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
