/**
 * @file
 * Shared formatting helpers for the figure/table benchmark binaries.
 * Each binary prints the rows/series of one paper figure to stdout and,
 * when CULPEO_BENCH_CSV names a directory, writes the raw data there.
 */

#ifndef CULPEO_BENCH_COMMON_HPP
#define CULPEO_BENCH_COMMON_HPP

#include <cstdio>
#include <string>

namespace culpeo::bench {

/** Print a figure banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(reproduces %s)\n\n", paper_ref.c_str());
}

/** Print a horizontal rule sized to a table width. */
inline void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace culpeo::bench

#endif // CULPEO_BENCH_COMMON_HPP
