/**
 * @file
 * Shared formatting helpers for the figure/table benchmark binaries.
 * Each binary prints the rows/series of one paper figure to stdout and,
 * when CULPEO_BENCH_CSV names a directory, writes the raw data there.
 */

#ifndef CULPEO_BENCH_COMMON_HPP
#define CULPEO_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

#include "telemetry/telemetry.hpp"

namespace culpeo::bench {

/** Print a figure banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("(reproduces %s)\n\n", paper_ref.c_str());
}

/** Print a horizontal rule sized to a table width. */
inline void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/**
 * The CULPEO_TRACE_OUT path, or nullptr when tracing is off. Figure
 * benches that run scheduler trials attach a telemetry sink when this
 * is set and dump the merged trace as JSONL on exit.
 */
inline const char *
traceOutPath()
{
    const char *value = std::getenv("CULPEO_TRACE_OUT");
    return (value != nullptr && *value != '\0') ? value : nullptr;
}

/** Write the collected trace to CULPEO_TRACE_OUT (no-op when unset). */
inline void
dumpTraceIfRequested(const telemetry::Telemetry &sink)
{
    const char *path = traceOutPath();
    if (path == nullptr)
        return;
    if (sink.writeJsonlFile(path)) {
        std::printf("\ntrace: %llu events (%llu dropped) -> %s\n",
                    (unsigned long long)sink.trace().recorded(),
                    (unsigned long long)sink.trace().dropped(), path);
    } else {
        std::printf("\ntrace: failed to write %s\n", path);
    }
}

} // namespace culpeo::bench

#endif // CULPEO_BENCH_COMMON_HPP
