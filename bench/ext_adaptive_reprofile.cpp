/**
 * @file
 * Extension experiment (Section V-B): Culpeo-R values depend on the
 * level of incoming power, so schedulers that monitor charge rate
 * should re-profile when it changes.
 *
 * Scenario: Periodic Sensing profiled under a strong harvest, which
 * then collapses to a weak one (clouds). Compare phase-2 event capture
 * with (a) the stale strong-harvest profiles and (b) profiles re-taken
 * after the ChargeRateMonitor trips.
 */

#include <cstdio>

#include "apps/apps.hpp"
#include "bench/common.hpp"
#include "sched/adaptive.hpp"
#include "sched/trial.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

/** PS variant with its harvest overridden. */
sched::AppSpec
psAt(Watts harvest, Seconds period)
{
    sched::AppSpec app = apps::periodicSensing(period);
    app.harvest = harvest;
    return app;
}

} // namespace

int
main()
{
    bench::banner("Harvest-change adaptive re-profiling",
                  "Section V-B extension experiment");

    const Watts strong(6.0_mW);
    const Watts weak(1.0_mW);
    const Seconds period(7.0_s);
    const Seconds trial(300.0_s);

    // Profiles taken in deployment under the strong harvest: charging
    // during task execution offsets part of the discharge, so these
    // Vsafe values are tuned to strong incoming power.
    sched::CulpeoPolicy stale;
    stale.initialize(psAt(strong, period));

    // The charge-rate monitor notices the collapse and triggers a fresh
    // profiling pass at the weak level.
    sched::ChargeRateMonitor monitor(0.25);
    monitor.baseline(strong);
    const bool tripped = monitor.observe(weak);
    sched::CulpeoPolicy reprofiled;
    reprofiled.initialize(psAt(weak, period));

    const sched::AppSpec phase2 = psAt(weak, period);
    const auto sweep =
        TrialBuilder().app(phase2).duration(trial).trials(3);
    const auto stale_result = TrialBuilder(sweep).policy(stale).runAll();
    const auto fresh_result =
        TrialBuilder(sweep).policy(reprofiled).runAll();

    auto csv = util::CsvWriter::forBench(
        "ext_adaptive_reprofile",
        {"policy", "capture_pct", "power_failures_per_trial"});

    std::printf("harvest change: %.1f mW -> %.1f mW "
                "(monitor %s at 25%% threshold)\n\n",
                strong.value() * 1e3, weak.value() * 1e3,
                tripped ? "TRIPPED" : "missed it");
    std::printf("%-26s %12s %16s\n", "phase-2 policy", "capture",
                "pf per trial");
    bench::rule(56);
    std::printf("%-26s %11.1f%% %16.1f\n", "stale (strong-harvest)",
                stale_result.rateOf("imu") * 100.0,
                stale_result.power_failures_per_trial);
    std::printf("%-26s %11.1f%% %16.1f\n", "re-profiled (weak)",
                fresh_result.rateOf("imu") * 100.0,
                fresh_result.power_failures_per_trial);
    csv.row("stale", stale_result.rateOf("imu") * 100.0,
            stale_result.power_failures_per_trial);
    csv.row("reprofiled", fresh_result.rateOf("imu") * 100.0,
            fresh_result.power_failures_per_trial);

    std::printf("\nProfiles taken under strong harvest under-estimate\n"
                "task costs once the harvest collapses; re-profiling on\n"
                "the charge-rate trigger restores the margin — the\n"
                "policy coupling Section V-B prescribes.\n");
    return 0;
}
