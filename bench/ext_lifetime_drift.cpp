/**
 * @file
 * Extension experiment (robustness): lifetime degradation study.
 *
 * A deployed supercapacitor does not fail abruptly — its ESR creeps up
 * and its capacitance fades over months. Culpeo's Vsafe values are
 * profiled once on the young part, so the question is how event capture
 * degrades as the part drifts away from that profile, and how much of
 * it the drift-aware safety supervisor buys back.
 *
 * Scenario: the lifetime-drift app (one periodic sense event plus an
 * aggressive background drain that keeps the buffer hovering at the
 * reserve threshold), swept over end-of-ramp ESR multipliers. Each
 * severity runs the identical trial twice — the bare Culpeo policy vs
 * the same policy wrapped by sched::Supervisor — producing the survival
 * curves capture(drift) and brown-outs(drift).
 */

#include <cstdio>

#include "bench/common.hpp"
#include "fault/injector.hpp"
#include "load/library.hpp"
#include "sched/policy.hpp"
#include "sched/supervisor.hpp"
#include "sched/trial.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

sched::AppSpec
driftApp()
{
    sched::AppSpec app;
    app.name = "lifetime-drift";
    app.power = sim::capybaraConfig();
    app.harvest = 5.0_mW;

    sched::EventSpec sense;
    sense.name = "sense";
    sense.arrival = sched::Arrival::Periodic;
    sense.interval = 2.5_s;
    sense.deadline = 2.5_s;
    sense.chain = {{1, "sense", load::uniform(20.0_mA, 20.0_ms)}};
    app.events.push_back(sense);

    app.background =
        sched::SchedTask{9, "drain", load::uniform(10.0_mA, 50.0_ms)};
    app.background_period = 0.05_s;
    return app;
}

fault::FaultPlan
planAt(double esr_end)
{
    fault::FaultPlan plan;
    fault::DegradationModel drift;
    drift.shape = fault::DriftShape::Linear;
    drift.onset = 20.0_s;
    drift.ramp = 200.0_s;
    drift.esr_multiplier_end = esr_end;
    // Capacitance fades alongside the ESR growth (both are symptoms of
    // the same electrolyte loss); scale the fade with the severity.
    drift.capacitance_fraction_end = 1.0 - 0.06 * (esr_end - 1.0);
    plan.degradation = drift;
    return plan;
}

struct Outcome
{
    double capture_pct = 0.0;
    unsigned power_failures = 0;
    sched::SupervisorStats stats; ///< Zeros for the unsupervised run.
};

Outcome
runAt(const sched::AppSpec &app, sched::Policy &policy, double esr_end,
      sched::Supervisor *supervisor)
{
    fault::FaultInjector injector(planAt(esr_end), /*noise_seed=*/1);
    TrialBuilder trial = TrialBuilder()
                             .app(app)
                             .policy(policy)
                             .duration(250.0_s)
                             .seed(1)
                             .faults(&injector);
    if (supervisor != nullptr)
        trial.supervisor(supervisor);
    const sched::TrialResult result = trial.run();
    Outcome out;
    out.capture_pct = result.eventStats("sense").captureRate() * 100.0;
    out.power_failures = result.power_failures;
    if (supervisor != nullptr)
        out.stats = supervisor->stats();
    return out;
}

} // namespace

int
main()
{
    bench::banner("Lifetime degradation survival curves",
                  "robustness extension: drift-aware supervision");

    const sched::AppSpec app = driftApp();
    sched::CulpeoPolicy policy(/*use_uarch=*/true);
    policy.initialize(app); // Profiled once, on the pristine part.

    auto csv = util::CsvWriter::forBench(
        "ext_lifetime_drift",
        {"esr_end", "policy", "capture_pct", "power_failures",
         "drift_alarms", "sheds"});

    std::printf("250 s trials, linear drift over 200 s from t = 20 s;\n"
                "capacitance fades 6%% per unit of ESR growth.\n\n");
    std::printf("%8s | %21s | %21s\n", "",
                "unsupervised", "supervised");
    std::printf("%8s | %12s %8s | %12s %8s %6s\n", "esr x",
                "capture", "pf", "capture", "pf", "alarms");
    bench::rule(62);

    for (const double esr_end :
         {1.0, 1.4, 1.8, 2.2, 2.6, 3.0}) {
        const Outcome bare = runAt(app, policy, esr_end, nullptr);
        sched::Supervisor supervisor;
        const Outcome safe = runAt(app, policy, esr_end, &supervisor);

        std::printf("%8.1f | %11.1f%% %8u | %11.1f%% %8u %6llu\n",
                    esr_end, bare.capture_pct, bare.power_failures,
                    safe.capture_pct, safe.power_failures,
                    (unsigned long long)safe.stats.drift_alarms);
        csv.row(esr_end, "unsupervised", bare.capture_pct,
                bare.power_failures, 0, 0);
        csv.row(esr_end, "supervised", safe.capture_pct,
                safe.power_failures,
                (unsigned long long)safe.stats.drift_alarms,
                (unsigned long long)safe.stats.sheds);
    }

    std::printf("\nThe pristine-profiled policy falls off a cliff once\n"
                "drift eats its dispatch guard band; the supervisor's\n"
                "margin floor tracks the measured deficit and holds the\n"
                "capture curve flat until the task itself becomes\n"
                "infeasible.\n");
    return 0;
}
