/**
 * @file
 * Extension experiment: a compressed solar day. Harvested power follows
 * a dawn -> noon -> dusk trace (TraceHarvester); the Periodic Sensing
 * application runs across it under three Culpeo deployments:
 *
 *  - profiled once at dawn (weak) and never again,
 *  - profiled once at noon (strong) and never again,
 *  - adaptive: re-profiled whenever the ChargeRateMonitor sees the
 *    harvest drift 25% from the profiling baseline.
 *
 * Dawn-profiled values are safe all day (profiling at the weakest power
 * is conservative); noon-profiled values brown the device out when the
 * light fades; the adaptive deployment tracks the day with a bounded
 * number of re-profiling passes.
 */

#include <cstdio>
#include <vector>

#include "apps/apps.hpp"
#include "bench/common.hpp"
#include "sched/adaptive.hpp"
#include "sched/trial.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

/** One phase of the compressed day. */
struct Phase
{
    const char *name;
    Watts harvest;
    Seconds duration;
};

const Phase kDay[] = {
    {"dawn", 1.2_mW, 200.0_s},
    {"noon", 6.0_mW, 200.0_s},
    {"dusk", 1.0_mW, 200.0_s},
};

sched::AppSpec
psAt(Watts harvest)
{
    sched::AppSpec app = apps::periodicSensing(Seconds(7.0));
    app.harvest = harvest;
    return app;
}

/** Run the whole day with a fixed set of per-phase policies. */
double
runDay(const std::vector<sched::Policy *> &phase_policies,
       unsigned &power_failures)
{
    unsigned arrived = 0;
    unsigned captured = 0;
    power_failures = 0;
    for (std::size_t i = 0; i < std::size(kDay); ++i) {
        const sched::AppSpec app = psAt(kDay[i].harvest);
        const sched::TrialResult result = TrialBuilder()
                                              .app(app)
                                              .policy(*phase_policies[i])
                                              .duration(kDay[i].duration)
                                              .seed(100 + i)
                                              .run();
        arrived += result.eventStats("imu").arrived;
        captured += result.eventStats("imu").captured;
        power_failures += result.power_failures;
    }
    return arrived == 0 ? 1.0 : double(captured) / double(arrived);
}

} // namespace

int
main()
{
    bench::banner("Compressed solar day: profiling policies",
                  "Section V-B extension experiment");

    // Fixed deployments: one profiling pass at a single phase's level.
    sched::CulpeoPolicy dawn_profiled;
    dawn_profiled.initialize(psAt(kDay[0].harvest));
    sched::CulpeoPolicy noon_profiled;
    noon_profiled.initialize(psAt(kDay[1].harvest));

    // Adaptive deployment: re-profile when the monitor trips.
    sched::ChargeRateMonitor monitor(0.25);
    std::vector<sched::CulpeoPolicy> adaptive_policies(std::size(kDay));
    std::vector<sched::Policy *> adaptive(std::size(kDay));
    unsigned reprofiles = 0;
    Watts baseline = kDay[0].harvest;
    monitor.baseline(baseline);
    adaptive_policies[0].initialize(psAt(kDay[0].harvest));
    adaptive[0] = &adaptive_policies[0];
    for (std::size_t i = 1; i < std::size(kDay); ++i) {
        if (monitor.observe(kDay[i].harvest)) {
            adaptive_policies[i].initialize(psAt(kDay[i].harvest));
            adaptive[i] = &adaptive_policies[i];
            monitor.baseline(kDay[i].harvest);
            ++reprofiles;
        } else {
            adaptive[i] = adaptive[i - 1];
        }
    }

    auto csv = util::CsvWriter::forBench(
        "ext_solar_day",
        {"deployment", "capture_pct", "power_failures", "reprofiles"});

    std::printf("day: dawn %.1f mW -> noon %.1f mW -> dusk %.1f mW "
                "(200 s each)\n\n",
                kDay[0].harvest.value() * 1e3,
                kDay[1].harvest.value() * 1e3,
                kDay[2].harvest.value() * 1e3);
    std::printf("%-24s %10s %8s %12s\n", "deployment", "capture", "pf",
                "re-profiles");
    bench::rule(58);

    unsigned pf = 0;
    const std::vector<sched::Policy *> dawn_all(
        std::size(kDay), &dawn_profiled);
    const double dawn_rate = runDay(dawn_all, pf);
    std::printf("%-24s %9.1f%% %8u %12u\n", "dawn-profiled (fixed)",
                dawn_rate * 100.0, pf, 1u);
    csv.row("dawn", dawn_rate * 100.0, pf, 1);

    const std::vector<sched::Policy *> noon_all(
        std::size(kDay), &noon_profiled);
    const double noon_rate = runDay(noon_all, pf);
    std::printf("%-24s %9.1f%% %8u %12u\n", "noon-profiled (fixed)",
                noon_rate * 100.0, pf, 1u);
    csv.row("noon", noon_rate * 100.0, pf, 1);

    const double adaptive_rate = runDay(adaptive, pf);
    std::printf("%-24s %9.1f%% %8u %12u\n", "adaptive (monitor)",
                adaptive_rate * 100.0, pf, reprofiles + 1);
    csv.row("adaptive", adaptive_rate * 100.0, pf, reprofiles + 1);

    std::printf("\nProfiling at the weakest light is safe but the\n"
                "adaptive deployment matches it with estimates tuned to\n"
                "each phase; profiling only at noon browns the device\n"
                "out after dusk — Culpeo-R values are only valid for\n"
                "the incoming power they were profiled under (V-B).\n");
    return 0;
}
