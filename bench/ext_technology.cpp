/**
 * @file
 * Extension experiment: what Figure 3's technology choice means for
 * charge management. For the smallest 45 mF bank of each technology,
 * build the corresponding power system and report (a) the true
 * ESR-aware Vsafe of a radio-class task, (b) the share of the operating
 * range the ESR drop consumes, and (c) how long the idle buffer
 * survives its own leakage — quantifying why supercapacitor systems
 * specifically need Culpeo while low-ESR alternatives pay in volume or
 * leakage instead.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "caps/catalog.hpp"
#include "harness/ground_truth.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

/** Power system with the bank's aggregate ESR/leakage/capacitance. */
sim::PowerSystemConfig
systemFor(const caps::Bank &bank)
{
    sim::PowerSystemConfig cfg = sim::capybaraConfig();
    cfg.capacitor.capacitance = bank.capacitance;
    cfg.capacitor.leakage = bank.leakage;
    // Keep the reference bank's branch proportions, scaled to the
    // bank's total ESR (reference: 4 ohm DC-class).
    const double scale = bank.esr.value() / 4.0;
    cfg.capacitor.series_esr = Ohms(std::max(1e-4, 1.5 * scale));
    cfg.capacitor.bulk_resistance = Ohms(std::max(1e-4, 9.0 * scale));
    cfg.capacitor.surface_resistance =
        Ohms(std::max(1e-4, 1.2 * scale));
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Storage technology vs charge management",
                  "Figure 3 x Section II synthesis experiment");

    const auto task = load::bleSendListen(1.0_s);
    const auto parts = caps::generateCatalog();
    auto banks = caps::composeBanks(parts, Farads(45e-3));
    banks.push_back(caps::referenceBank());

    auto csv = util::CsvWriter::forBench(
        "ext_technology",
        {"technology", "volume_mm3", "esr_ohm", "leakage_a", "vsafe_v",
         "esr_share_pct", "idle_days"});

    std::printf("%-16s %10s %8s | %8s %10s %12s\n", "technology",
                "vol mm^3", "esr", "Vsafe", "ESR share", "idle life");
    bench::rule(74);

    for (caps::Technology tech :
         {caps::Technology::Supercapacitor, caps::Technology::Tantalum,
          caps::Technology::Ceramic, caps::Technology::Electrolytic}) {
        const caps::Bank *bank =
            tech == caps::Technology::Supercapacitor
                ? [&]() {
                      // Use the paper's own design point.
                      for (const auto &b : banks)
                          if (b.part.part_number == "CPX3225A752D")
                              return &b;
                      return caps::smallestOfTechnology(banks, tech);
                  }()
                : caps::smallestOfTechnology(banks, tech);
        if (bank == nullptr)
            continue;

        const auto cfg = systemFor(*bank);
        const auto truth = harness::findTrueVsafe(cfg, task);

        // Energy-only requirement for the same task on this bank.
        const auto baseline_truth = [&]() {
            sim::PowerSystemConfig ideal = cfg;
            ideal.capacitor.series_esr = Ohms(1e-4);
            ideal.capacitor.bulk_resistance = Ohms(1e-4);
            ideal.capacitor.surface_resistance = Ohms(1e-4);
            return harness::findTrueVsafe(ideal, task);
        }();
        const double esr_share =
            (truth.vsafe - baseline_truth.vsafe).value() / 0.96 * 100.0;

        // Idle survival: drain Vhigh -> Voff on leakage alone.
        const double idle_s =
            bank->capacitance.value() * 0.96 /
            std::max(bank->leakage.value(), 1e-12);
        const double idle_days = idle_s / 86400.0;

        std::printf("%-16s %10.0f %8.3g | %7.3fV %9.1f%% %9.3g days\n",
                    caps::technologyName(tech), bank->volume_mm3,
                    bank->esr.value(), truth.vsafe.value(), esr_share,
                    idle_days);
        csv.row(caps::technologyName(tech), bank->volume_mm3,
                bank->esr.value(), bank->leakage.value(),
                truth.vsafe.value(), esr_share, idle_days);
    }

    std::printf("\nOnly the supercapacitor bank pays a meaningful ESR\n"
                "share of its operating range (the drop Culpeo manages);\n"
                "the low-ESR technologies instead pay orders of\n"
                "magnitude in volume (ceramic, electrolytic) or leak the\n"
                "buffer away in minutes (tantalum).\n");
    return 0;
}
