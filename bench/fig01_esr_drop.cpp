/**
 * @file
 * Figure 1(b): voltage drop and rebound due to ESR on a task execution
 * trace. Prints the decomposition of the observed drop into the part
 * explained by consumed energy and the part that energy-only systems
 * miss entirely.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "harness/task_runner.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("ESR drop and rebound on a task trace", "Figure 1(b)");

    const auto cfg = sim::capybaraConfig();
    sim::Device device(cfg);
    device.setBufferVoltage(Volts(2.35));
    device.forceOutputEnabled(true);
    device.captureTrace(true); // Tracing forces the per-step backend.

    // A sensing burst followed by a radio-class pulse, like the trace in
    // the figure.
    const auto profile =
        load::uniform(10.0_mA, 60.0_ms).renamed("sense").then(
            load::uniform(25.0_mA, 120.0_ms).renamed("radio"));
    const auto run = harness::runTask(device, profile);

    const double v_before = run.vstart.value();
    const double v_min = run.vmin.value();
    const double v_after = run.vfinal.value();
    const double total_drop = v_before - v_min;
    const double energy_drop = v_before - v_after;
    const double missed_drop = total_drop - energy_drop;

    std::printf("V_before             : %6.3f V\n", v_before);
    std::printf("V_min (during task)  : %6.3f V\n", v_min);
    std::printf("V_after (rebounded)  : %6.3f V\n", v_after);
    bench::rule(44);
    std::printf("total drop           : %6.3f V\n", total_drop);
    std::printf("drop due to energy   : %6.3f V\n", energy_drop);
    std::printf("missed (ESR) drop    : %6.3f V  <-- invisible to\n",
                missed_drop);
    std::printf("                                    energy-only systems\n");
    std::printf("\npaper trace: ~0.25 V energy drop, ~0.35 V ESR drop\n");

    auto csv = util::CsvWriter::forBench(
        "fig01_esr_drop", {"time_s", "terminal_v", "open_circuit_v",
                           "load_a"});
    for (const auto &s : device.system().trace().samples())
        csv.row(s.time.value(), s.terminal.value(), s.open_circuit.value(),
                s.load.value());
    return 0;
}
