/**
 * @file
 * Figure 3: volume vs. ESR for 45 mF capacitor banks built from each
 * capacitor technology. Prints the per-technology extremes, the Fig. 3
 * callout points, and the overall Pareto frontier.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "caps/catalog.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using caps::Bank;
using caps::Technology;

int
main()
{
    bench::banner("Volume vs ESR for 45 mF banks", "Figure 3");

    const auto parts = caps::generateCatalog();
    const auto banks = caps::composeBanks(parts, Farads(45e-3));

    auto csv = util::CsvWriter::forBench(
        "fig03_cap_tradeoff",
        {"technology", "volume_mm3", "esr_ohm", "parts", "leakage_a"});
    for (const auto &bank : banks) {
        csv.row(caps::technologyName(bank.part.technology),
                bank.volume_mm3, bank.esr.value(), bank.count,
                bank.leakage.value());
    }

    std::printf("%-16s %12s %12s %8s %12s\n", "technology",
                "min vol mm^3", "esr @min", "parts", "DCL @min");
    bench::rule(66);
    for (Technology tech :
         {Technology::Supercapacitor, Technology::Tantalum,
          Technology::Ceramic, Technology::Electrolytic}) {
        const Bank *best = caps::smallestOfTechnology(banks, tech);
        if (best == nullptr)
            continue;
        std::printf("%-16s %12.1f %12.3f %8u %12.3g\n",
                    caps::technologyName(tech), best->volume_mm3,
                    best->esr.value(), best->count,
                    best->leakage.value());
    }

    const caps::Bank ref = caps::referenceBank();
    std::printf("\n\"This work\" (%s x%u): %.1f mm^3, %.2f ohm, "
                "%.0f nA DCL\n", ref.part.part_number.c_str(), ref.count,
                ref.volume_mm3, ref.esr.value(),
                ref.leakage.value() * 1e9);
    std::printf("Paper callouts: supercap bank = 6 parts / 20 nA DCL /"
                " rice-grain volume,\nceramic needs > 2,000 parts,"
                " small tantalum leaks ~26 mA.\n");

    std::printf("\nPareto frontier (volume -> ESR):\n");
    std::printf("%-16s %12s %12s %8s\n", "technology", "vol mm^3",
                "esr ohm", "parts");
    bench::rule(52);
    for (const auto &bank : caps::paretoFrontier(banks)) {
        std::printf("%-16s %12.1f %12.4g %8u\n",
                    caps::technologyName(bank.part.technology),
                    bank.volume_mm3, bank.esr.value(), bank.count);
    }
    return 0;
}
