/**
 * @file
 * Figure 4: a LoRa-class 50 mA transmission on a high-ESR buffer powers
 * the device off even though plenty of stored energy remains. Sweeps the
 * starting voltage and reports, for each, whether the device survived
 * and how much usable energy was left at the moment it died.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "harness/task_runner.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("LoRa transmission vs stored energy", "Figure 4");

    const auto cfg = sim::capybaraConfig();
    const auto lora = load::uniform(50.0_mA, 100.0_ms).renamed("lora_tx");
    const Joules floor_energy =
        units::capacitorEnergy(cfg.capacitor.capacitance,
                               cfg.monitor.voff);

    auto csv = util::CsvWriter::forBench(
        "fig04_lora_drop",
        {"vstart_v", "completed", "usable_energy_left_pct",
         "tx_energy_pct_of_usable"});

    std::printf("%8s %10s %22s %20s\n", "Vstart", "survives?",
                "usable energy left", "TX needs (of usable)");
    bench::rule(66);
    for (double vstart = 1.7; vstart <= 2.56; vstart += 0.1) {
        sim::Device device(cfg);
        device.setBufferVoltage(Volts(vstart));
        device.forceOutputEnabled(true);
        const Joules usable_before =
            device.system().capacitor().storedEnergy() - floor_energy;

        harness::RunOptions options;
        options.settle_rebound = false;
        const auto run = harness::runTask(device, lora, options);

        const Joules usable_after =
            device.system().capacitor().storedEnergy() - floor_energy;
        const double left_pct =
            100.0 * usable_after.value() / usable_before.value();
        const double tx_pct = 100.0 *
            (lora.energyAt(cfg.output.vout) / 0.85).value() /
            usable_before.value();
        std::printf("%7.2fV %10s %20.1f%% %19.1f%%\n", vstart,
                    run.completed ? "yes" : "NO",
                    left_pct, tx_pct);
        csv.row(vstart, run.completed ? 1 : 0, left_pct, tx_pct);
    }

    std::printf("\nThe device dies mid-transmission from low starting\n"
                "voltages despite retaining most of its usable energy --\n"
                "the ESR drop, not the energy, is what kills it.\n");
    return 0;
}
