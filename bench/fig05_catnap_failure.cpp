/**
 * @file
 * Figure 5: a task schedule that CatNap's energy-only feasibility test
 * accepts, but that fails on real hardware because the radio task is
 * dispatched at a voltage too low to survive its ESR drop.
 *
 * Reconstructs the figure's scenario — "radio every 6.5 ticks, sense
 * every 3 ticks" — by (a) profiling both tasks the way CatNap does,
 * (b) showing its feasibility arithmetic accepts the sense->radio
 * back-to-back dispatch, and (c) executing that dispatch and watching
 * it brown out.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "harness/vsafe_cache.hpp"
#include "load/library.hpp"
#include "util/parallel.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("CatNap's feasible schedule fails under ESR",
                  "Figure 5");

    const auto cfg = sim::capybaraConfig();
    const auto sense = load::uniform(5.0_mA, 50.0_ms).renamed("sense");
    const auto radio = load::uniform(50.0_mA, 20.0_ms).renamed("radio");
    const auto both = sense.then(radio);

    // (a) CatNap's energy profiling (Fig. 5a): start/end voltage deltas.
    // The two profiling runs and the brute-force search are mutually
    // independent — run all three on the sweep executor.
    harness::BaselineEstimates est_sense, est_radio;
    harness::GroundTruth truth;
    util::parallelFor(3, [&](std::size_t i) {
        switch (i) {
        case 0:
            est_sense = harness::estimateBaselines(cfg, sense);
            break;
        case 1:
            est_radio = harness::estimateBaselines(cfg, radio);
            break;
        default:
            truth = harness::VsafeCache::global().findOrCompute(cfg, both);
            break;
        }
    });
    const double cost_sense = est_sense.energy_direct.value() - 1.6;
    const double cost_radio = est_radio.energy_direct.value() - 1.6;
    std::printf("CatNap energy costs:  sense %.3f V   radio %.3f V\n",
                cost_sense, cost_radio);

    // (b) CatNap's feasibility arithmetic for the tau6..tau7 dispatch.
    const double budget = 1.6 + cost_sense + cost_radio;
    std::printf("CatNap budget for sense+radio in one discharge: %.3f V\n",
                budget);

    std::printf("True safe starting voltage (ESR-aware):         %.3f V\n",
                truth.vsafe.value());

    // (c) Execute the dispatch from CatNap's budget voltage.
    const bool survived =
        harness::completesFrom(cfg, Volts(budget), both);
    bench::rule(56);
    std::printf("dispatch at CatNap's budget (%.3f V): %s\n", budget,
                survived ? "completed (unexpected!)" : "RADIO FAILS");
    const bool survived_at_truth =
        harness::completesFrom(cfg, truth.vsafe, both);
    std::printf("dispatch at the ESR-aware Vsafe (%.3f V): %s\n",
                truth.vsafe.value(),
                survived_at_truth ? "completes" : "fails (unexpected!)");

    std::printf("\nCatNap accepts the schedule because energy suffices;\n"
                "the ESR drop it never modeled kills the radio task.\n");
    return survived ? 1 : 0;
}
