/**
 * @file
 * Figure 6: error between the voltage at which it is actually safe to
 * start a task and the voltage predicted by energy-only estimates
 * (Energy-Direct, CatNap-Slow, CatNap-Measured) for the synthetic load
 * sweep on the Capybara power system.
 *
 * Positive error (% of the operating range) means the prediction is
 * below the true requirement and the task fails.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;

int
main()
{
    bench::banner("Energy-only Vsafe error (% operating range)",
                  "Figure 6");

    const auto cfg = sim::capybaraConfig();
    const double range = (cfg.monitor.vhigh - cfg.monitor.voff).value();
    auto csv = util::CsvWriter::forBench(
        "fig06_energy_estimates",
        {"load", "shape", "energy_direct_pct", "catnap_slow_pct",
         "catnap_measured_pct"});

    std::printf("%-14s %-8s %14s %13s %17s\n", "load", "shape",
                "Energy-Direct", "Catnap-Slow", "Catnap-Measured");
    bench::rule(72);

    for (bool with_tail : {false, true}) {
        for (const auto &pt : load::figure6Sweep()) {
            const auto profile = with_tail
                ? load::pulseWithCompute(pt.i_load, pt.t_pulse)
                : load::uniform(pt.i_load, pt.t_pulse);
            const auto truth = harness::findTrueVsafe(cfg, profile);
            const auto est = harness::estimateBaselines(cfg, profile);

            // Fig. 6 sign convention: positive = prediction unsafe.
            const double e_direct =
                (truth.vsafe - est.energy_direct).value() / range * 100.0;
            const double e_slow =
                (truth.vsafe - est.catnap_slow).value() / range * 100.0;
            const double e_meas =
                (truth.vsafe - est.catnap_measured).value() / range *
                100.0;

            char label[32];
            std::snprintf(label, sizeof(label), "%.0fmA/%.0fms",
                          pt.i_load.value() * 1e3,
                          pt.t_pulse.value() * 1e3);
            const char *shape = with_tail ? "pulse+" : "uniform";
            std::printf("%-14s %-8s %13.1f%% %12.1f%% %16.1f%%\n", label,
                        shape, e_direct, e_slow, e_meas);
            csv.row(label, shape, e_direct, e_slow, e_meas);
        }
    }

    std::printf("\nAll energy-only estimators predict unsafely low\n"
                "voltages (positive error => the task fails), and the\n"
                "error grows with load current, as in the paper.\n");
    return 0;
}
