/**
 * @file
 * Figure 8: measured Vcap traces defining (a) a single task's Vsafe —
 * start at Vsafe, dip to Vmin >= Voff, rebound to Vfinal — and (b) a
 * task sequence's Vsafe_multi — sense -> encrypt -> send+listen all
 * completing within one discharge when started at the composed value.
 */

#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/api.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("Vsafe and Vsafe_multi on executed traces", "Figure 8");

    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);

    // (a) single task: the BLE send+listen event of the figure.
    const auto send = load::bleSendListen(2.0_s).renamed("send_listen");
    core::Culpeo culpeo(model, std::make_unique<core::UArchProfiler>());
    harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo, 3, send);

    const double vsafe = culpeo.getVsafe(3).value();
    harness::RunOptions options;
    options.dt = harness::chooseDt(send);
    const auto run = harness::runTaskFrom(cfg, Volts(vsafe), send, options);
    std::printf("(a) single task '%s':\n", send.name().c_str());
    std::printf("    Vsafe  = %.3f V (start)\n", vsafe);
    std::printf("    Vmin   = %.3f V (>= Voff 1.600: %s)\n",
                run.vmin.value(), run.completed ? "yes" : "NO");
    std::printf("    Vfinal = %.3f V (Vdelta = %.0f mV rebound)\n",
                run.vfinal.value(),
                (run.vfinal - run.vmin).value() * 1e3);

    // (b) sequence: sense -> encrypt -> send+listen via Vsafe_multi.
    const std::vector<std::pair<core::TaskId, load::CurrentProfile>>
        chain = {{1, load::imuRead()},
                 {2, load::encrypt()},
                 {3, send}};
    for (const auto &[id, profile] : chain)
        harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo, id,
                                 profile);
    const double multi = culpeo.getVsafeMulti({1, 2, 3}).value();

    // Execute the whole sequence back-to-back from Vsafe_multi.
    sim::Device device(cfg);
    device.setBufferVoltage(Volts(multi));
    device.forceOutputEnabled(true);
    bool all_ok = true;
    double vmin_seq = multi;
    std::printf("\n(b) sequence sense -> encrypt -> send+listen:\n");
    std::printf("    Vsafe_multi = %.3f V\n", multi);
    for (const auto &[id, profile] : chain) {
        harness::RunOptions seq_options;
        seq_options.dt = harness::chooseDt(profile);
        seq_options.settle_rebound = false;
        const auto step = harness::runTask(device, profile, seq_options);
        vmin_seq = std::min(vmin_seq, step.vmin.value());
        all_ok = all_ok && step.completed;
        std::printf("    %-12s vmin %.3f V  %s\n", profile.name().c_str(),
                    step.vmin.value(),
                    step.completed ? "completed" : "FAILED");
    }
    std::printf("    whole sequence %s; minimum %.3f V stayed above "
                "Voff\n", all_ok ? "completed" : "FAILED", vmin_seq);

    // Contrast: the same sequence from below Vsafe_multi fails.
    const auto truth_multi = [&]() {
        load::CurrentProfile combined = chain[0].second;
        combined = combined.then(chain[1].second).then(chain[2].second);
        return harness::findTrueVsafe(cfg, combined);
    }();
    std::printf("\n    brute-force sequence requirement: %.3f V "
                "(Vsafe_multi margin %.0f mV)\n",
                truth_multi.vsafe.value(),
                (multi - truth_multi.vsafe.value()) * 1e3);

    auto csv = util::CsvWriter::forBench(
        "fig08_vsafe_trace",
        {"quantity", "volts"});
    csv.row("vsafe_single", vsafe);
    csv.row("vmin_single", run.vmin.value());
    csv.row("vfinal_single", run.vfinal.value());
    csv.row("vsafe_multi", multi);
    csv.row("vmin_sequence", vmin_seq);
    csv.row("truth_multi", truth_multi.vsafe.value());
    return all_ok ? 0 : 1;
}
