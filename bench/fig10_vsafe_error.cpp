/**
 * @file
 * Figure 10: error between each system's Vsafe prediction and the
 * brute-force known-good Vsafe, as a percentage of the operating range
 * (2.56 V - 1.6 V), across the full synthetic sweep of Table III.
 *
 * Fig. 10 sign convention: positive = safe (prediction above the truth);
 * below -2% reliably fails. Compared systems: CatNap (energy-only),
 * Culpeo-PG, Culpeo-R-ISR, Culpeo-R-uArch.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "harness/vsafe_cache.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"

using namespace culpeo;
using namespace culpeo::units;

namespace {

double
culpeoRError(const sim::PowerSystemConfig &cfg,
             const load::CurrentProfile &profile, bool uarch,
             double truth, double range)
{
    std::unique_ptr<core::Profiler> profiler;
    if (uarch)
        profiler = std::make_unique<core::UArchProfiler>();
    else
        profiler = std::make_unique<core::IsrProfiler>();
    core::Culpeo culpeo(core::modelFromConfig(cfg), std::move(profiler));
    harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo, 1, profile);
    return (culpeo.getVsafe(1).value() - truth) / range * 100.0;
}

} // namespace

int
main()
{
    bench::banner("Vsafe error: CatNap vs Culpeo variants", "Figure 10");

    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);
    const double range = (cfg.monitor.vhigh - cfg.monitor.voff).value();

    auto csv = util::CsvWriter::forBench(
        "fig10_vsafe_error",
        {"load", "shape", "truth_v", "catnap_pct", "culpeo_pg_pct",
         "culpeo_isr_pct", "culpeo_uarch_pct"});

    std::printf("%-13s %-8s %8s | %8s %10s %11s %13s\n", "load", "shape",
                "truth V", "Catnap", "Culpeo-PG", "Culpeo-ISR",
                "Culpeo-uArch");
    bench::rule(80);

    // Work list first, rows computed on the sweep executor, printed in
    // order afterwards so the table is identical to the serial sweep.
    struct Point
    {
        load::CurrentProfile profile;
        Amps i_load{0.0};
        Seconds t_pulse{0.0};
        bool with_tail = false;
    };
    struct Row
    {
        double truth = 0.0;
        double catnap = 0.0;
        double pg = 0.0;
        double isr = 0.0;
        double uarch = 0.0;
    };
    std::vector<Point> points;
    for (bool with_tail : {false, true}) {
        for (const auto &pt : load::figure10Sweep()) {
            const auto profile = with_tail
                ? load::pulseWithCompute(pt.i_load, pt.t_pulse)
                : load::uniform(pt.i_load, pt.t_pulse);
            points.push_back({profile, pt.i_load, pt.t_pulse, with_tail});
        }
    }

    const std::vector<Row> rows = util::parallelMap(
        points, [&](const Point &pt) {
            Row row;
            const auto truth = harness::VsafeCache::global().findOrCompute(
                cfg, pt.profile);
            row.truth = truth.vsafe.value();
            const auto baselines =
                harness::estimateBaselines(cfg, pt.profile);
            row.catnap = (baselines.catnap_measured.value() - row.truth) /
                         range * 100.0;
            row.pg = (core::culpeoPg(pt.profile, model).vsafe.value() -
                      row.truth) /
                     range * 100.0;
            row.isr = culpeoRError(cfg, pt.profile, false, row.truth, range);
            row.uarch =
                culpeoRError(cfg, pt.profile, true, row.truth, range);
            return row;
        });

    int unsafe_culpeo = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        const Row &row = rows[i];
        for (double err : {row.pg, row.isr, row.uarch}) {
            if (err < -2.0)
                ++unsafe_culpeo;
        }

        char label[32];
        std::snprintf(label, sizeof(label), "%.0fmA/%.0fms",
                      pt.i_load.value() * 1e3, pt.t_pulse.value() * 1e3);
        const char *shape = pt.with_tail ? "pulse+" : "uniform";
        std::printf("%-13s %-8s %8.3f | %7.1f%% %9.1f%% %10.1f%% "
                    "%12.1f%%\n",
                    label, shape, row.truth, row.catnap, row.pg, row.isr,
                    row.uarch);
        csv.row(label, shape, row.truth, row.catnap, row.pg, row.isr,
                row.uarch);
    }

    bench::rule(80);
    std::printf("Correctness criterion: error above -2%% (0..10%% is\n"
                "performant). Culpeo predictions below -2%%: %d of 54.\n"
                "CatNap degrades with load current and misses the drop\n"
                "entirely behind compute tails, as in the paper.\n",
                unsafe_culpeo);
    return 0;
}
