/**
 * @file
 * Figure 11: Vsafe (arrow top) and the resulting Vmin (arrow point) for
 * the three real peripheral workloads — gesture recognition, a BLE
 * packet, and the MNIST compute acceleration — under Energy-V, CatNap,
 * Culpeo-PG and Culpeo-R. A Vmin below Voff = 1.6 V means the system
 * powers off mid-operation.
 */

#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/baselines.hpp"
#include "harness/profiling.hpp"
#include "harness/task_runner.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;

namespace {

/** Run @p profile from @p vsafe; report Vmin and survival. */
harness::RunResult
runFrom(const sim::PowerSystemConfig &cfg, double vsafe,
        const load::CurrentProfile &profile)
{
    harness::RunOptions options;
    options.dt = harness::chooseDt(profile);
    options.settle_rebound = false;
    options.stop_on_failure = false;
    return harness::runTaskFrom(cfg, Volts(vsafe), profile, options);
}

} // namespace

int
main()
{
    bench::banner("Real-peripheral Vsafe and Vmin", "Figure 11");

    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);
    auto csv = util::CsvWriter::forBench(
        "fig11_peripherals",
        {"peripheral", "system", "vsafe_v", "vmin_v", "safe"});

    const struct
    {
        const char *name;
        load::CurrentProfile profile;
    } peripherals[] = {
        {"Gesture", load::gestureSensor()},
        {"BLE", load::bleRadio()},
        {"MNIST", load::mnistCompute()},
    };

    std::printf("%-9s %-11s %9s %9s   %s\n", "periph", "system", "Vsafe",
                "Vmin", "verdict (Voff = 1.600)");
    bench::rule(64);
    int culpeo_safe = 0;
    int baseline_safe = 0;
    for (const auto &p : peripherals) {
        const auto baselines = harness::estimateBaselines(cfg, p.profile);

        // Culpeo-R: profile once from a full buffer with the uArch
        // design (its 100 kHz sampling resolves the 3.5 ms gesture
        // burst, and its conservative quantization provides margin).
        core::Culpeo culpeo(model,
                            std::make_unique<core::UArchProfiler>());
        harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo, 1,
                                 p.profile);

        const struct
        {
            const char *system;
            double vsafe;
        } rows[] = {
            {"Energy-V", baselines.energy_v.value()},
            {"Catnap", baselines.catnap_measured.value()},
            {"Culpeo-PG",
             core::culpeoPg(p.profile, model).vsafe.value()},
            {"Culpeo-R", culpeo.getVsafe(1).value()},
        };
        for (const auto &row : rows) {
            const auto run = runFrom(cfg, row.vsafe, p.profile);
            const bool safe = run.completed;
            std::printf("%-9s %-11s %8.3fV %8.3fV   %s\n", p.name,
                        row.system, row.vsafe, run.vmin.value(),
                        safe ? "completes" : "POWERS OFF");
            csv.row(p.name, row.system, row.vsafe, run.vmin.value(),
                    safe ? 1 : 0);
            if (safe)
                (std::string("Culpeo") ==
                         std::string(row.system).substr(0, 6)
                     ? ++culpeo_safe
                     : ++baseline_safe);
        }
        bench::rule(64);
    }

    std::printf("\nCulpeo rows completing: %d of 6; energy-only rows\n"
                "completing: %d of 6. Energy-V and CatNap start the\n"
                "peripherals at voltages whose minimum crosses Voff;\n"
                "Culpeo's Vmin hugs Voff from above. A marginal (< 5 mV)\n"
                "Culpeo-PG miss on the highest-energy workload mirrors\n"
                "the compounding efficiency-model error the paper\n"
                "reports for Culpeo-PG on high-energy loads (VII-A).\n",
                culpeo_safe, baseline_safe);
    return 0;
}
