/**
 * @file
 * Figure 12: percentage of events captured by the CatNap baseline vs the
 * Culpeo-integrated scheduler for the three full applications —
 * Periodic Sensing (PS), Responsive Reporting (RR), and the two event
 * streams of Noise Monitoring & Reporting (NMR-mic, NMR-BLE).
 *
 * Three five-minute trials per configuration, as in Section VI-B.
 */

#include <cstdio>

#include "apps/apps.hpp"
#include "bench/common.hpp"
#include "sched/trial.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("Events captured: CatNap vs Culpeo", "Figure 12");

    const Seconds trial = 300.0_s;
    const unsigned trials = 3;

    auto csv = util::CsvWriter::forBench(
        "fig12_events",
        {"metric", "catnap_pct", "culpeo_pct", "catnap_pf", "culpeo_pf"});

    std::printf("%-22s %10s %10s   %s\n", "metric", "Catnap", "Culpeo",
                "(power failures/trial)");
    bench::rule(70);

    struct Metric
    {
        sched::AppSpec app;
        const char *event;
        const char *label;
    };
    const Metric metrics[] = {
        {apps::periodicSensing(), "imu", "Periodic Sensing"},
        {apps::responsiveReporting(), "report", "Responsive Reporting"},
        {apps::noiseMonitoring(), "mic", "Noise Monitor Mic"},
        {apps::noiseMonitoring(), "ble", "Noise Monitor BLE"},
    };

    // CULPEO_TRACE_OUT=<path> collects every trial's telemetry trace
    // (both policies) into one sink and writes it as JSONL before
    // exit. The ring is sized to hold the full run so the export
    // includes CatNap's brown-outs, not just the newest tail.
    telemetry::TelemetryConfig trace_cfg;
    trace_cfg.trace_capacity = std::size_t(1) << 17;
    telemetry::Telemetry trace_sink(trace_cfg);
    telemetry::Telemetry *sink =
        bench::traceOutPath() != nullptr ? &trace_sink : nullptr;

    // NMR appears twice; cache per-app results keyed by name.
    std::string cached_app;
    sched::AggregateResult cat_cached, cul_cached;
    for (const auto &m : metrics) {
        if (m.app.name != cached_app) {
            sched::CatnapPolicy catnap;
            catnap.initialize(m.app);
            sched::CulpeoPolicy culpeo;
            culpeo.initialize(m.app);
            cat_cached = TrialBuilder()
                             .app(m.app)
                             .policy(catnap)
                             .duration(trial)
                             .trials(trials)
                             .telemetry(sink)
                             .runAll();
            cul_cached = TrialBuilder()
                             .app(m.app)
                             .policy(culpeo)
                             .duration(trial)
                             .trials(trials)
                             .telemetry(sink)
                             .runAll();
            cached_app = m.app.name;
        }
        const double cat_pct = cat_cached.rateOf(m.event) * 100.0;
        const double cul_pct = cul_cached.rateOf(m.event) * 100.0;
        std::printf("%-22s %9.1f%% %9.1f%%   (%.1f vs %.1f)\n", m.label,
                    cat_pct, cul_pct,
                    cat_cached.power_failures_per_trial,
                    cul_cached.power_failures_per_trial);
        csv.row(m.label, cat_pct, cul_pct,
                cat_cached.power_failures_per_trial,
                cul_cached.power_failures_per_trial);
    }

    std::printf("\nCulpeo's accurate Vsafe estimates eliminate the\n"
                "unexpected brown-outs that make CatNap miss events;\n"
                "its only residual losses are recharge-to-Vsafe waits.\n");
    if (sink != nullptr)
        bench::dumpTraceIfRequested(*sink);
    return 0;
}
