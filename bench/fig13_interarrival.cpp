/**
 * @file
 * Figure 13: event capture vs event inter-arrival time for Periodic
 * Sensing and Responsive Reporting at three rates each — slow (6 s /
 * 60 s), achievable (4.5 s / 45 s), and too fast (3 s / 30 s).
 *
 * Culpeo improves monotonically as the rate becomes achievable; CatNap
 * shows flat or inverted behaviour because longer gaps let its
 * background work discharge the buffer deeper (Section VII-C).
 */

#include <cstdio>

#include "apps/apps.hpp"
#include "bench/common.hpp"
#include "sched/trial.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    bench::banner("Event capture vs inter-arrival rate", "Figure 13");

    const Seconds trial = 300.0_s;
    const unsigned trials = 3;

    auto csv = util::CsvWriter::forBench(
        "fig13_interarrival",
        {"app", "rate", "interval_s", "catnap_pct", "culpeo_pct"});

    std::printf("%-22s %-12s %10s %10s\n", "app (interval)", "rate",
                "Catnap", "Culpeo");
    bench::rule(58);

    const struct
    {
        const char *rate;
        double ps_period;
        double rr_interarrival;
    } rates[] = {
        {"slow", 6.0, 60.0},
        {"achievable", 4.5, 45.0},
        {"too fast", 3.0, 30.0},
    };

    for (const auto &r : rates) {
        const auto ps = apps::periodicSensing(Seconds(r.ps_period));
        sched::CatnapPolicy catnap;
        catnap.initialize(ps);
        sched::CulpeoPolicy culpeo;
        culpeo.initialize(ps);
        const auto sweep = TrialBuilder()
                               .app(ps)
                               .duration(trial)
                               .trials(trials);
        const double cat =
            TrialBuilder(sweep).policy(catnap).runAll().rateOf("imu") *
            100.0;
        const double cul =
            TrialBuilder(sweep).policy(culpeo).runAll().rateOf("imu") *
            100.0;
        std::printf("PS (%4.1f s)            %-12s %9.1f%% %9.1f%%\n",
                    r.ps_period, r.rate, cat, cul);
        csv.row("PS", r.rate, r.ps_period, cat, cul);
    }
    bench::rule(58);
    for (const auto &r : rates) {
        const auto rr =
            apps::responsiveReporting(Seconds(r.rr_interarrival));
        sched::CatnapPolicy catnap;
        catnap.initialize(rr);
        sched::CulpeoPolicy culpeo;
        culpeo.initialize(rr);
        const auto sweep = TrialBuilder()
                               .app(rr)
                               .duration(trial)
                               .trials(trials);
        const double cat = TrialBuilder(sweep).policy(catnap).runAll()
                               .rateOf("report") * 100.0;
        const double cul = TrialBuilder(sweep).policy(culpeo).runAll()
                               .rateOf("report") * 100.0;
        std::printf("RR (%4.0f s)            %-12s %9.1f%% %9.1f%%\n",
                    r.rr_interarrival, r.rate, cat, cul);
        csv.row("RR", r.rate, r.rr_interarrival, cat, cul);
    }

    std::printf("\nCulpeo reaches high capture once the rate is\n"
                "achievable; CatNap gains little (or inverts) from\n"
                "slower events because its background work discharges\n"
                "the buffer below the true chain requirement.\n");
    return 0;
}
