/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: the
 * power-system transient step, Algorithm 1 (Culpeo-PG), the Culpeo-R
 * closed form, the Vsafe_multi composition, and the brute-force ground
 * truth search that the evaluation harness leans on.
 */

#include <benchmark/benchmark.h>

#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/ground_truth.hpp"
#include "load/library.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

void
BM_PowerSystemStep(benchmark::State &state)
{
    sim::PowerSystem system(sim::capybaraConfig());
    system.setBufferVoltage(Volts(2.5));
    system.forceOutputEnabled(true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            system.step(Seconds(50e-6), Amps(10e-3)));
        if (system.capacitor().openCircuitVoltage().value() < 1.7) {
            state.PauseTiming();
            system.setBufferVoltage(Volts(2.5));
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_PowerSystemStep);

void
BM_CapacitorStep(benchmark::State &state)
{
    sim::Capacitor cap(sim::capybaraConfig().capacitor);
    cap.setOpenCircuitVoltage(Volts(2.5));
    for (auto _ : state) {
        cap.step(Seconds(50e-6), Amps(5e-3));
        benchmark::DoNotOptimize(cap.openCircuitVoltage());
        if (cap.openCircuitVoltage().value() < 1.7)
            cap.setOpenCircuitVoltage(Volts(2.5));
    }
}
BENCHMARK(BM_CapacitorStep);

void
BM_CulpeoPg(benchmark::State &state)
{
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    const auto trace = load::SampledTrace::fromProfile(
        load::pulseWithCompute(25.0_mA, 10.0_ms),
        Hertz(double(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::culpeoPg(trace, model));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(trace.size()));
}
BENCHMARK(BM_CulpeoPg)->Arg(1000)->Arg(10000)->Arg(125000);

void
BM_CulpeoRClosedForm(benchmark::State &state)
{
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    core::RProfile profile;
    profile.vstart = Volts(2.5);
    profile.vmin = Volts(2.1);
    profile.vfinal = Volts(2.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::culpeoR(profile, model));
}
BENCHMARK(BM_CulpeoRClosedForm);

void
BM_VsafeMulti(benchmark::State &state)
{
    std::vector<core::TaskRequirement> tasks;
    for (int i = 0; i < state.range(0); ++i) {
        tasks.push_back(core::requirementFrom(
            "t", Volts(1.7 + 0.01 * (i % 5)), Volts(0.02 * (i % 4)),
            Volts(1.6)));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(core::vsafeMulti(tasks, Volts(1.6)));
}
BENCHMARK(BM_VsafeMulti)->Arg(4)->Arg(16)->Arg(64);

void
BM_GroundTruthSearch(benchmark::State &state)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            harness::findTrueVsafe(cfg, profile, Volts(5e-3)));
    }
}
BENCHMARK(BM_GroundTruthSearch)->Unit(benchmark::kMillisecond);

void
BM_UArchTick(benchmark::State &state)
{
    mcu::UArchBlock block;
    block.configure(true);
    block.prepare(mcu::CaptureMode::Min);
    block.sample(mcu::CaptureMode::Min);
    double v = 2.5;
    for (auto _ : state) {
        block.tick(Seconds(50e-6), Volts(v));
        v = v > 2.0 ? v - 1e-4 : 2.5;
    }
}
BENCHMARK(BM_UArchTick);

} // namespace

BENCHMARK_MAIN();
