/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: the
 * power-system transient step, Algorithm 1 (Culpeo-PG), the Culpeo-R
 * closed form, the Vsafe_multi composition, and the brute-force ground
 * truth search that the evaluation harness leans on.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <random>

#include "apps/apps.hpp"
#include "batch/commit_kernel.hpp"
#include "batch/trial_runner.hpp"
#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "env/field.hpp"
#include "env/trace.hpp"
#include "env/trace_reader.hpp"
#include "fleet/fleet.hpp"
#include "harness/ground_truth.hpp"
#include "load/library.hpp"
#include "sched/policy.hpp"
#include "sched/trial.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

/**
 * Steps per timed iteration for the stepping benchmarks. The buffer
 * reset runs once per batch inside PauseTiming, so the timer-toggle
 * overhead (which used to land on individual sub-microsecond steps and
 * skew them) is amortized 1/kStepBatch; 256 steps of 50 us at these
 * loads discharge well above the collapse region, so no mid-batch
 * reset is ever needed.
 */
constexpr int kStepBatch = 256;

void
BM_PowerSystemStep(benchmark::State &state)
{
    sim::PowerSystem system(sim::capybaraConfig());
    for (auto _ : state) {
        state.PauseTiming();
        system.setBufferVoltage(Volts(2.5));
        system.forceOutputEnabled(true);
        state.ResumeTiming();
        for (int i = 0; i < kStepBatch; ++i) {
            benchmark::DoNotOptimize(
                system.step(Seconds(50e-6), Amps(10e-3)));
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * kStepBatch);
}
BENCHMARK(BM_PowerSystemStep);

void
BM_CapacitorStep(benchmark::State &state)
{
    sim::Capacitor cap(sim::capybaraConfig().capacitor);
    for (auto _ : state) {
        state.PauseTiming();
        cap.setOpenCircuitVoltage(Volts(2.5));
        state.ResumeTiming();
        for (int i = 0; i < kStepBatch; ++i) {
            cap.step(Seconds(50e-6), Amps(5e-3));
            benchmark::DoNotOptimize(cap.openCircuitVoltage());
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * kStepBatch);
}
BENCHMARK(BM_CapacitorStep);

void
BM_CapacitorAdvanceAnalytic(benchmark::State &state)
{
    sim::Capacitor cap(sim::capybaraConfig().capacitor);
    for (auto _ : state) {
        state.PauseTiming();
        cap.setOpenCircuitVoltage(Volts(2.5));
        state.ResumeTiming();
        for (int i = 0; i < kStepBatch; ++i) {
            cap.advanceAnalytic(Seconds(50e-6), Amps(5e-3));
            benchmark::DoNotOptimize(cap.openCircuitVoltage());
        }
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * kStepBatch);
}
BENCHMARK(BM_CapacitorAdvanceAnalytic);

/**
 * One 25 mA / 10 ms task segment through the Euler loop vs. the
 * analytic fast path — the per-execution speedup that multiplies
 * through every harness simulation.
 */
void
BM_RunSegment(benchmark::State &state)
{
    const bool analytic = state.range(0) != 0;
    sim::PowerSystem system(sim::capybaraConfig());
    sim::SegmentOptions options;
    options.allow_analytic = analytic;
    for (auto _ : state) {
        state.PauseTiming();
        system.setBufferVoltage(Volts(2.5));
        system.forceOutputEnabled(true);
        state.ResumeTiming();
        benchmark::DoNotOptimize(
            system.runSegment(Seconds(10e-3), Amps(25e-3), options));
    }
}
BENCHMARK(BM_RunSegment)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("analytic")
    ->Unit(benchmark::kMicrosecond);

void
BM_CulpeoPg(benchmark::State &state)
{
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    const auto trace = load::SampledTrace::fromProfile(
        load::pulseWithCompute(25.0_mA, 10.0_ms),
        Hertz(double(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::culpeoPg(trace, model));
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(trace.size()));
}
BENCHMARK(BM_CulpeoPg)->Arg(1000)->Arg(10000)->Arg(125000);

void
BM_CulpeoRClosedForm(benchmark::State &state)
{
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    core::RProfile profile;
    profile.vstart = Volts(2.5);
    profile.vmin = Volts(2.1);
    profile.vfinal = Volts(2.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::culpeoR(profile, model));
}
BENCHMARK(BM_CulpeoRClosedForm);

void
BM_VsafeMulti(benchmark::State &state)
{
    std::vector<core::TaskRequirement> tasks;
    for (int i = 0; i < state.range(0); ++i) {
        tasks.push_back(core::requirementFrom(
            "t", Volts(1.7 + 0.01 * (i % 5)), Volts(0.02 * (i % 4)),
            Volts(1.6)));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(core::vsafeMulti(tasks, Volts(1.6)));
}
BENCHMARK(BM_VsafeMulti)->Arg(4)->Arg(16)->Arg(64);

/**
 * The full bisection search on the analytic fast path (the default
 * everywhere in the harness). BM_GroundTruthSearchEuler below runs the
 * identical search with the fast path disabled; their ratio is the
 * segment-stepping speedup, measured in-process so machine load
 * cancels out of the comparison.
 */
void
BM_GroundTruthSearch(benchmark::State &state)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            harness::findTrueVsafe(cfg, profile, Volts(5e-3)));
    }
}
BENCHMARK(BM_GroundTruthSearch)->Unit(benchmark::kMillisecond);

void
BM_GroundTruthSearchEuler(benchmark::State &state)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    harness::SearchOptions options;
    options.resolution = Volts(5e-3);
    options.allow_fast_path = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            harness::findTrueVsafe(cfg, profile, options));
    }
}
BENCHMARK(BM_GroundTruthSearchEuler)->Unit(benchmark::kMillisecond);

/**
 * A whole Figure 12-style scheduler trial (Periodic Sensing app under
 * the Culpeo policy) through the sim::Device layer. The force_euler
 * variant runs the identical trial on the per-tick reference backend;
 * the pair's ratio is the end-to-end speedup the device layer's
 * analytic idle stepping delivers to the scheduler, measured in-process
 * so machine load cancels out of the comparison.
 */
void
BM_RunTrial(benchmark::State &state)
{
    const bool force_euler = state.range(0) != 0;
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    const TrialBuilder trial = TrialBuilder()
                                   .app(app)
                                   .policy(policy)
                                   .duration(Seconds(30.0))
                                   .seed(7)
                                   .forceEuler(force_euler);
    for (auto _ : state)
        benchmark::DoNotOptimize(trial.run());
}
BENCHMARK(BM_RunTrial)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("force_euler")
    ->Unit(benchmark::kMillisecond);

/**
 * The analytic-path trial with a live telemetry sink attached. The
 * ratio against BM_RunTrial/0 is the telemetry overhead; emission
 * happens only at primitive boundaries (never per Euler tick), so the
 * target is <5% on top of the fast path.
 */
void
BM_RunTrial_telemetry(benchmark::State &state)
{
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    telemetry::Telemetry sink;
    const TrialBuilder trial = TrialBuilder()
                                   .app(app)
                                   .policy(policy)
                                   .duration(Seconds(30.0))
                                   .seed(7)
                                   .telemetry(&sink);
    for (auto _ : state)
        benchmark::DoNotOptimize(trial.run());
}
BENCHMARK(BM_RunTrial_telemetry)->Unit(benchmark::kMillisecond);

/**
 * The same Figure 12-style trial through the SoA batch sweep executor
 * (batch::BatchTrialRunner), 32 independently seeded trials per timed
 * iteration. Items are trials, so the reported items/sec is directly
 * comparable against 1 / BM_RunTrial's per-iteration time — that ratio
 * is the batch engine's per-trial speedup on one core; ThreadPool
 * sharding multiplies it by the core count on wider machines. exact:1
 * replays the scalar engine bit-for-bit; exact:0 is the default warm
 * mode (quiescent idle draw, converged fixed point, Newton crossings).
 */
void
BM_BatchRunTrial(benchmark::State &state)
{
    const bool exact = state.range(0) != 0;
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    sched::TrialConfig config;
    config.duration = Seconds(30.0);
    config.seed = 7;
    config.trials = 32;
    batch::TrialRunnerOptions options;
    options.batch.exact_replay = exact;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            batch::runTrialsBatch(app, policy, config, options));
    state.SetItemsProcessed(int64_t(state.iterations()) * config.trials);
}
BENCHMARK(BM_BatchRunTrial)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("exact")
    ->Unit(benchmark::kMillisecond);

/**
 * The scalar sweep over the identical 32 trials — the direct
 * apples-to-apples baseline for BM_BatchRunTrial (same arrival
 * streams, same aggregation, same ThreadPool sharding policy).
 */
void
BM_ScalarRunTrials(benchmark::State &state)
{
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    sched::TrialConfig config;
    config.duration = Seconds(30.0);
    config.seed = 7;
    config.trials = 32;
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::runTrialsWith(app, policy, config));
    state.SetItemsProcessed(int64_t(state.iterations()) * config.trials);
}
BENCHMARK(BM_ScalarRunTrials)->Unit(benchmark::kMillisecond);

/**
 * Columns per panel in the kernel benchmarks. 256 is several rounds'
 * worth of scheduled lanes — large enough that the vector loop body
 * (not the call or resize overhead) dominates, small enough to stay
 * resident in L1 alongside the outputs.
 */
constexpr std::size_t kPanelLanes = 256;

/** True when the host CPU can run the tier of the given width. */
bool
tierAvailable(int width)
{
    return width <=
           static_cast<int>(batch::simd::width(batch::simd::detectedTier()));
}

/**
 * A commit panel with physically plausible magnitudes (the same ranges
 * the SIMD equivalence tests draw from): two-capacitor splits in the
 * tens-of-uF, mA-scale net currents, 10 us..5 ms committed steps.
 * Half the columns carry a precomputed exp hint so the hint-blend path
 * is exercised alongside the exp evaluation.
 */
batch::CommitPanel
seededCommitPanel(std::size_t n)
{
    std::mt19937_64 rng(0xC0FFEE5EEDull);
    std::uniform_real_distribution<double> volt(1.8, 3.3);
    std::uniform_real_distribution<double> split(-0.2, 0.2);
    std::uniform_real_distribution<double> cap(20e-6, 300e-6);
    std::uniform_real_distribution<double> cur(-30e-3, 30e-3);
    std::uniform_real_distribution<double> step(1e-5, 5e-3);
    std::uniform_real_distribution<double> res(0.1, 2.0);
    batch::CommitPanel panel;
    for (std::size_t k = 0; k < n; ++k) {
        const double cb = cap(rng);
        const double cs = cap(rng);
        const double ct = cb + cs;
        const double rs = res(rng);
        const double tau = rs * cb * cs / ct;
        const double beta = 10.0 + 10.0 * res(rng);
        const double vb = volt(rng);
        const double d0 = split(rng);
        const double net = cur(rng);
        const double dt = step(rng);
        const double q0 = (cb * vb + cs * (vb - d0)) / ct;
        const double hint = (k % 2) == 0 ? std::exp(-dt / tau) : -1.0;
        panel.push(static_cast<std::uint32_t>(k), q0, d0, ct, cs / ct,
                   cb / ct, tau, beta, net, dt, hint, vb, -net / ct, d0);
    }
    return panel;
}

/**
 * The warm commit kernel on one packed panel, pinned to a dispatch
 * tier. The width:1/width:4/width:8 medians come from the same run,
 * so their pairwise ratios are the per-core vector speedups the batch
 * engine's commit pass sees (check_regression.py guards them).
 * Unavailable tiers skip rather than silently clamping to the widest
 * present — a clamped run would corrupt the width-pair ratios.
 */
void
BM_CommitKernelWarm(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(0));
    if (!tierAvailable(width)) {
        state.SkipWithError("SIMD tier unavailable on this host");
        return;
    }
    batch::CommitPanel panel = seededCommitPanel(kPanelLanes);
    const auto tier = static_cast<batch::simd::Tier>(width);
    for (auto _ : state) {
        batch::commitPanelWarm(panel, tier);
        benchmark::DoNotOptimize(panel.vb1.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(kPanelLanes));
}
BENCHMARK(BM_CommitKernelWarm)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("width");

/**
 * The exact-replay commit kernel (per-lane std::exp, scalar expression
 * order) on the identical panel — the reference side of the
 * warm-vs-exact ratio, and the throughput exact_replay sweeps pay.
 */
void
BM_CommitKernelExact(benchmark::State &state)
{
    batch::CommitPanel panel = seededCommitPanel(kPanelLanes);
    for (auto _ : state) {
        batch::commitPanelExact(panel);
        benchmark::DoNotOptimize(panel.vb1.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(kPanelLanes));
}
BENCHMARK(BM_CommitKernelExact);

/**
 * The batched bracket-Newton crossing solver, pinned per tier. The
 * queries are falling discharge curves with the level placed inside
 * the bracket, so every column runs the full Newton sweep sequence
 * (the case the warm engine defers to this solver).
 */
void
BM_SolveCrossings(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(0));
    if (!tierAvailable(width)) {
        state.SkipWithError("SIMD tier unavailable on this host");
        return;
    }
    constexpr std::size_t kQueries = 128;
    std::mt19937_64 rng(0xCA0551Cull);
    batch::CrossingPanel panel;
    std::uniform_real_distribution<double> frac(0.2, 0.8);
    std::uniform_real_distribution<double> slope(-40.0, -5.0);
    std::uniform_real_distribution<double> decay(0.1, 0.8);
    std::uniform_real_distribution<double> tau_ms(0.2e-3, 3e-3);
    for (std::size_t k = 0; k < kQueries; ++k) {
        const double a = 1.9;
        const double b = slope(rng);
        const double c = decay(rng);
        const double tau = tau_ms(rng);
        const double horizon = 5e-3;
        const double v0 = a + c;
        const double vh = a + b * horizon + c * std::exp(-horizon / tau);
        const double level = v0 + frac(rng) * (vh - v0);
        panel.push(a, b, c, tau, level, horizon, /*falling=*/true);
    }
    const auto tier = static_cast<batch::simd::Tier>(width);
    for (auto _ : state) {
        batch::solveCrossings(panel, tier);
        benchmark::DoNotOptimize(panel.out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(kQueries));
}
BENCHMARK(BM_SolveCrossings)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("width");

/**
 * Fleet-scale population throughput and its thread scaling: one fixed
 * 96-device, two-cohort population under a seeded solar-diurnal field,
 * sharded over a private pool of 1/2/4 participants. Items/sec counts
 * simulated device-trials, so threads:1 vs threads:N is the pure
 * shard-parallel speedup of fleet::runFleet (the population itself is
 * identical — and bit-identical in output — across thread counts).
 */
void
BM_FleetStep(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));

    env::SolarConfig solar;
    solar.peak = Watts(12e-3);
    solar.day_length = Seconds(600.0);
    solar.sample_period = Seconds(10.0);
    solar.cloud_depth = 0.5;
    solar.shading_depth = 0.3;
    solar.seed = 7;
    const env::SolarDiurnalField field(solar);

    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();
    sched::CulpeoPolicy culpeo_policy;
    culpeo_policy.initialize(ps);
    sched::CatnapPolicy catnap_policy;
    catnap_policy.initialize(rr);

    fleet::FleetSpec spec;
    spec.cohorts = {
        {"ps-culpeo", &ps, &culpeo_policy, {}, 0.6},
        {"rr-catnap", &rr, &catnap_policy, {}, 0.4},
    };
    spec.devices = 96;
    spec.capacitance_scale = {0.8, 1.2};
    spec.esr_scale = {0.9, 1.5};
    spec.extent = 150.0;
    spec.field = &field;
    spec.duration = Seconds(30.0);
    spec.seed = 7;

    util::ThreadPool pool(threads);
    fleet::FleetOptions options;
    options.shard_devices = 8; // 12 shards: work for every pool size.
    options.pool = &pool;

    for (auto _ : state) {
        const fleet::SummaryReport report = fleet::runFleet(spec, options);
        benchmark::DoNotOptimize(report.devices.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(spec.devices));
}
BENCHMARK(BM_FleetStep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->UseRealTime() // Items/sec = wall-clock device-trial throughput.
    ->Unit(benchmark::kMillisecond);

/**
 * The per-dispatch admission path of the pluggable Policy interface:
 * one chain admission plus one task admission, the two decisions the
 * engine makes for every captured event. Post-initialization these
 * must stay table lookups — returning the Admission object must not
 * cost an allocation or a profiling pass.
 */
void
BM_PolicyDecision(benchmark::State &state, const char *name)
{
    const sched::AppSpec app = apps::periodicSensing();
    const std::unique_ptr<sched::Policy> policy = sched::makePolicy(name);
    policy->initialize(app);
    const sched::EventSpec &event = app.events[0];
    const sched::SchedTask &task = event.chain[0];
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy->admitChain(event).need);
        benchmark::DoNotOptimize(policy->admitTask(task).need);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 2);
}
BENCHMARK_CAPTURE(BM_PolicyDecision, catnap, "catnap");
BENCHMARK_CAPTURE(BM_PolicyDecision, culpeo, "culpeo");

void
BM_UArchTick(benchmark::State &state)
{
    mcu::UArchBlock block;
    block.configure(true);
    block.prepare(mcu::CaptureMode::Min);
    block.sample(mcu::CaptureMode::Min);
    double v = 2.5;
    for (auto _ : state) {
        block.tick(Seconds(50e-6), Volts(v));
        v = v > 2.0 ? v - 1e-4 : 2.5;
    }
}
BENCHMARK(BM_UArchTick);

/**
 * A varying indoor-solar sky recorded to a temp .ctrace once per
 * process: 8 Hz over 32 s with 1 s cloud pieces, sized so its mean
 * power matches the Periodic Sensing app's 1.2 mW design point. Both
 * trace benchmarks replay this file.
 */
const std::string &
recordedSkyPath()
{
    static const std::string path = [] {
        env::SolarConfig solar;
        solar.peak = Watts(2.4e-3);
        solar.day_length = Seconds(140.0);
        solar.daylight_fraction = 1.0;
        solar.dawn_offset = Seconds(35.0);
        solar.sample_period = Seconds(1.0);
        solar.cloud_depth = 0.3;
        solar.shading_depth = 0.0;
        solar.seed = 7;
        const env::SolarDiurnalField field(solar);
        const env::TraceData data = env::recordField(
            field, env::Position{}, Seconds(32.0), Hertz(8.0));
        std::string p = "/tmp/culpeo_bench_sky.ctrace";
        if (!env::writeTrace(p, data).ok())
            std::abort();
        return p;
    }();
    return path;
}

/**
 * Defensive-decode throughput: TraceReader::open on a clean file is
 * the mmap + header parse + per-block CRC + per-sample validation
 * walk, with zero-copy column views (no materialization). Items/sec
 * is samples validated per second. Paired against BM_TraceStep in
 * check_regression.py so a decoder that starts copying or re-hashing
 * shows up as a shrinking ratio.
 */
void
BM_TraceDecode(benchmark::State &state)
{
    const std::string path = [] {
        env::TraceData data;
        data.sample_rate = Hertz(1000.0);
        for (std::size_t i = 0; i < (1u << 16); ++i) {
            data.time_s.push_back(double(i) * 1e-3);
            data.current_a.push_back(1e-3 +
                                     1e-4 * std::sin(double(i) * 0.01));
            data.voltage_v.push_back(3.0);
        }
        std::string p = "/tmp/culpeo_bench_decode.ctrace";
        if (!env::writeTrace(p, data).ok())
            std::abort();
        return p;
    }();
    std::size_t samples = 0;
    for (auto _ : state) {
        auto reader = env::TraceReader::open(path);
        if (!reader.ok())
            std::abort();
        samples = reader->size();
        benchmark::DoNotOptimize(reader->sampleAt(samples / 2));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(samples));
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(samples) * 24);
}
BENCHMARK(BM_TraceDecode);

/**
 * The BM_RunTrial scheduler trial stepped under a *recorded* harvest
 * environment instead of the constant built-in: every macro step
 * samples env::TraceField (binary search over blocks + piece lookup)
 * and is capped at the 125 ms piece boundary. The ratio against
 * BM_RunTrial/force_euler:0 is the full cost of replaying from disk
 * rather than assuming the paper's constant-harvest condition.
 */
void
BM_TraceStep(benchmark::State &state)
{
    auto field = env::TraceField::open(recordedSkyPath());
    if (!field.ok())
        std::abort();
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    const TrialBuilder trial = TrialBuilder()
                                   .app(app)
                                   .policy(policy)
                                   .duration(Seconds(30.0))
                                   .seed(7)
                                   .environment(*field);
    for (auto _ : state)
        benchmark::DoNotOptimize(trial.run());
}
BENCHMARK(BM_TraceStep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
