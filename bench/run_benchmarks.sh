#!/usr/bin/env bash
# Run the micro_perf suite and record machine-readable results.
#
# Usage: bench/run_benchmarks.sh [build_dir] [output_json]
#
# Defaults: build_dir=build, output_json=BENCH_micro_perf.json (repo
# root). Pass BENCHMARK_FILTER to restrict benchmarks, e.g.
#   BENCHMARK_FILTER='BM_GroundTruthSearch.*' bench/run_benchmarks.sh
#
# The JSON is google-benchmark's --benchmark_out format; the
# BM_GroundTruthSearch / BM_GroundTruthSearchEuler pair measures the
# analytic segment-stepping speedup in-process, so their ratio is
# meaningful even on a loaded machine.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUTPUT="${2:-BENCH_micro_perf.json}"
FILTER="${BENCHMARK_FILTER:-}"

BIN="$BUILD_DIR/bench/micro_perf"
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built; run:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

ARGS=(
    --benchmark_out="$OUTPUT"
    --benchmark_out_format=json
    --benchmark_repetitions="${BENCHMARK_REPETITIONS:-1}"
    # Shuffle repetitions across benchmarks so suite ordering (a long
    # Euler benchmark heating the core right before a fast one) does
    # not bias paired comparisons.
    --benchmark_enable_random_interleaving=true
)
if [[ -n "$FILTER" ]]; then
    ARGS+=(--benchmark_filter="$FILTER")
fi

# Run every bench binary with explicit status accumulation: a crashed
# or failing bench must fail this script even though later convenience
# steps (the summary printer below) are allowed to fail soft. With a
# bare `set -e` a non-final command's failure is easy to mask when the
# script grows; the explicit exit keeps propagation airtight.
STATUS=0
"$BIN" "${ARGS[@]}" || STATUS=$?
if [[ "$STATUS" -ne 0 ]]; then
    echo "error: $BIN exited with status $STATUS" >&2
    exit "$STATUS"
fi

echo
echo "wrote $OUTPUT"

# Convenience: print the analytic-vs-Euler speedups if the paired
# benchmarks are present in the output.
python3 - "$OUTPUT" <<'EOF' 2>/dev/null || true
import json, sys
data = json.load(open(sys.argv[1]))
times = {}
# Benchmarks report real_time in their own unit; normalize to ns so
# cross-unit ratios (a ns-scale decode over a ms-scale trial) hold.
unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
for b in data.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    # Min across repetitions: the robust per-benchmark statistic.
    name = b["name"]
    scale = unit_ns.get(b.get("time_unit", "ns"), 1.0)
    times[name] = min(times.get(name, float("inf")),
                      b["real_time"] * scale)
fast = times.get("BM_GroundTruthSearch")
euler = times.get("BM_GroundTruthSearchEuler")
if fast and euler:
    print(f"ground-truth search speedup (Euler/analytic): {euler / fast:.1f}x")
trial_fast = times.get("BM_RunTrial/force_euler:0")
trial_euler = times.get("BM_RunTrial/force_euler:1")
if trial_fast and trial_euler:
    print(f"scheduler trial speedup (Euler/device): "
          f"{trial_euler / trial_fast:.1f}x")
trial_tel = times.get("BM_RunTrial_telemetry")
if trial_fast and trial_tel:
    overhead = (trial_tel / trial_fast - 1.0) * 100.0
    print(f"telemetry overhead on the analytic trial: {overhead:+.1f}% "
          f"(target < 5%)")
# Batch sweep executor: per-trial comparison against the scalar sweep
# (both run 32 trials per iteration, so raw times divide out).
scalar_sweep = times.get("BM_ScalarRunTrials")
for arg, label in (("0", "warm"), ("1", "exact")):
    batch = times.get(f"BM_BatchRunTrial/exact:{arg}")
    if scalar_sweep and batch:
        print(f"batch sweep speedup ({label} vs scalar, per trial): "
              f"{scalar_sweep / batch:.2f}x")
# Commit-kernel dispatch tiers: width-pair ratios from the same run
# (hosts lacking a tier skip its benchmark, so these just go silent).
kernel_scalar = times.get("BM_CommitKernelWarm/width:1")
for width in (4, 8):
    wide = times.get(f"BM_CommitKernelWarm/width:{width}")
    if kernel_scalar and wide:
        print(f"commit kernel {width}-wide speedup (vs scalar tier): "
              f"{kernel_scalar / wide:.2f}x")
# Fleet shard-parallel scaling: wall-clock ratio of the same
# population under pools of 1 vs N participants.
fleet_one = times.get("BM_FleetStep/threads:1/real_time")
for threads in (2, 4):
    wide = times.get(f"BM_FleetStep/threads:{threads}/real_time")
    if fleet_one and wide:
        print(f"fleet step {threads}-thread scaling: "
              f"{fleet_one / wide:.2f}x")
# Trace ingestion: replayed-trial overhead vs the constant-harvest
# trial, and the defensive decode's cost relative to one replay.
trace_step = times.get("BM_TraceStep")
trace_decode = times.get("BM_TraceDecode")
if trial_fast and trace_step:
    print(f"trace replay trial cost (vs constant harvest): "
          f"{trace_step / trial_fast:.2f}x")
if trace_step and trace_decode:
    print(f"trace decode cost (vs one replayed trial): "
          f"{trace_decode / trace_step:.2f}x")
EOF
