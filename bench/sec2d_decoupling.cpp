/**
 * @file
 * Section II-D experiment: decoupling capacitance does not fix sustained
 * ESR drops. Sweeps 400 uF .. 6.4 mF of low-ESR decoupling on a 33 mF
 * supercapacitor under a 50 mA / 100 ms LoRa-class load and reports the
 * worst node-voltage drop.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "sim/two_cap.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;

int
main()
{
    bench::banner("Decoupling capacitance vs sustained ESR drop",
                  "Section II-D");

    auto csv = util::CsvWriter::forBench(
        "sec2d_decoupling",
        {"decoupling_uf", "max_drop_mv", "drop_pct_of_range"});

    std::printf("%14s %14s %18s\n", "decoupling", "max drop",
                "% of 0.96 V range");
    bench::rule(50);

    for (double c_d : {400e-6, 800e-6, 1.6e-3, 3.2e-3, 6.4e-3}) {
        sim::CapBranch super{Farads(33e-3), Ohms(8.0), Volts(2.5)};
        sim::CapBranch dec{Farads(c_d), Ohms(0.01), Volts(2.5)};
        sim::TwoCapNetwork net(super, dec);
        net.setVoltage(Volts(2.5));

        double vmin = 2.5;
        double elapsed = 0.0;
        const double dt = 1e-5;
        while (elapsed < 0.1) {
            net.step(Seconds(dt), Amps(0.05));
            vmin = std::min(vmin, net.nodeVoltage(Amps(0.05)).value());
            elapsed += dt;
        }
        const double drop_mv = (2.5 - vmin) * 1e3;
        const double pct = drop_mv / 960.0 * 100.0;
        std::printf("%11.0f uF %11.1f mV %16.1f%%\n", c_d * 1e6, drop_mv,
                    pct);
        csv.row(c_d * 1e6, drop_mv, pct);
    }

    std::printf("\nEven an abnormally large 6.4 mF of decoupling leaves\n"
                "a several-hundred-mV drop for a sustained load (the\n"
                "paper measured 200 mV on its rig): decoupling absorbs\n"
                "transients, not sustained high-current loads.\n");
    return 0;
}
