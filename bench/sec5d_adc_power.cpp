/**
 * @file
 * Section V-D: power cost of Culpeo-R's voltage sampling. Compares the
 * MSP430 on-chip 12-bit ADC used by Culpeo-R-ISR against the dedicated
 * 8-bit ADC of Culpeo-uArch, as a fraction of total MCU power.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "mcu/adc.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;

int
main()
{
    bench::banner("ADC sampling power: ISR vs uArch", "Section V-D");

    const mcu::Adc isr(mcu::msp430OnChipAdc());
    const mcu::Adc uarch(mcu::dedicated8BitAdc());
    const double mcu_power = mcu::msp430ActivePower().value();

    auto csv = util::CsvWriter::forBench(
        "sec5d_adc_power",
        {"design", "bits", "rate_hz", "power_w", "pct_of_mcu",
         "supply_current_ua"});

    std::printf("%-14s %5s %10s %12s %12s %14s\n", "design", "bits",
                "rate", "power", "% of MCU", "I @ 2.55 V");
    bench::rule(72);
    const struct
    {
        const char *name;
        const mcu::Adc &adc;
    } rows[] = {{"Culpeo-R-ISR", isr}, {"Culpeo-uArch", uarch}};
    for (const auto &row : rows) {
        const auto &cfg = row.adc.config();
        const double pct = cfg.active_power.value() / mcu_power * 100.0;
        std::printf("%-14s %5u %8.0f Hz %10.3g W %11.4f%% %11.3f uA\n",
                    row.name, cfg.bits, cfg.sample_rate.value(),
                    cfg.active_power.value(), pct,
                    row.adc.supplyCurrent(Volts(2.55)).value() * 1e6);
        csv.row(row.name, cfg.bits, cfg.sample_rate.value(),
                cfg.active_power.value(), pct,
                row.adc.supplyCurrent(Volts(2.55)).value() * 1e6);
    }

    const double reduction = mcu::msp430OnChipAdc().active_power.value() /
                             mcu::dedicated8BitAdc().active_power.value();
    std::printf("\nThe dedicated 8-bit ADC cuts sampling power %.0fx:\n"
                "from 4.2%% of MCU power (ISR) to ~0.003%% (uArch),\n"
                "matching Section V-D.\n", reduction);
    return 0;
}
