/**
 * @file
 * Table III: the loads used in the evaluation — the synthetic Uniform
 * and Pulse families and the three real-peripheral profiles — with
 * their parameters and derived characteristics.
 */

#include <cstdio>

#include "bench/common.hpp"
#include "load/library.hpp"
#include "util/csv.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

void
row(util::CsvWriter &csv, const char *type,
    const load::CurrentProfile &profile)
{
    const double peak = profile.peakCurrent().value() * 1e3;
    const double mean = profile.meanCurrent().value() * 1e3;
    const double dur = profile.duration().value() * 1e3;
    const double energy = profile.energyAt(Volts(2.55)).value() * 1e3;
    std::printf("%-22s %-22s %8.1f %8.2f %9.1f %9.3f\n", type,
                profile.name().c_str(), peak, mean, dur, energy);
    csv.row(type, profile.name(), peak, mean, dur, energy);
}

} // namespace

int
main()
{
    bench::banner("Evaluation load profiles", "Table III");

    auto csv = util::CsvWriter::forBench(
        "tab3_loads", {"type", "name", "peak_ma", "mean_ma",
                       "duration_ms", "energy_mj_at_vout"});

    std::printf("%-22s %-22s %8s %8s %9s %9s\n", "type", "profile",
                "peak mA", "mean mA", "dur ms", "E_load mJ");
    bench::rule(84);

    for (const auto &pt : load::figure10Sweep())
        row(csv, "Uniform", load::uniform(pt.i_load, pt.t_pulse));
    bench::rule(84);
    for (const auto &pt : load::figure10Sweep())
        row(csv, "Pulse+compute",
            load::pulseWithCompute(pt.i_load, pt.t_pulse));
    bench::rule(84);
    row(csv, "Gesture Recognition", load::gestureSensor());
    row(csv, "BLE Radio", load::bleRadio());
    row(csv, "Compute Acceleration", load::mnistCompute());
    bench::rule(84);
    std::printf("application tasks (Section VI-B):\n");
    row(csv, "App", load::imuRead());
    row(csv, "App", load::photoSense());
    row(csv, "App", load::encrypt());
    row(csv, "App", load::bleSendListen(2.0_s));
    row(csv, "App", load::micSample());
    row(csv, "App", load::fftCompute());
    return 0;
}
