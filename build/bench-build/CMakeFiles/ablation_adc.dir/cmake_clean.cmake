file(REMOVE_RECURSE
  "../bench/ablation_adc"
  "../bench/ablation_adc.pdb"
  "CMakeFiles/ablation_adc.dir/ablation_adc.cpp.o"
  "CMakeFiles/ablation_adc.dir/ablation_adc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
