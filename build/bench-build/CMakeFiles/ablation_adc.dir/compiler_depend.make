# Empty compiler generated dependencies file for ablation_adc.
# This may be replaced when dependencies are built.
