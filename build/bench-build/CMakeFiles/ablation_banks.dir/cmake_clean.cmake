file(REMOVE_RECURSE
  "../bench/ablation_banks"
  "../bench/ablation_banks.pdb"
  "CMakeFiles/ablation_banks.dir/ablation_banks.cpp.o"
  "CMakeFiles/ablation_banks.dir/ablation_banks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
