file(REMOVE_RECURSE
  "../bench/ablation_penalty"
  "../bench/ablation_penalty.pdb"
  "CMakeFiles/ablation_penalty.dir/ablation_penalty.cpp.o"
  "CMakeFiles/ablation_penalty.dir/ablation_penalty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
