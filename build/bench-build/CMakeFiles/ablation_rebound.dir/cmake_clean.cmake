file(REMOVE_RECURSE
  "../bench/ablation_rebound"
  "../bench/ablation_rebound.pdb"
  "CMakeFiles/ablation_rebound.dir/ablation_rebound.cpp.o"
  "CMakeFiles/ablation_rebound.dir/ablation_rebound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rebound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
