# Empty compiler generated dependencies file for ablation_rebound.
# This may be replaced when dependencies are built.
