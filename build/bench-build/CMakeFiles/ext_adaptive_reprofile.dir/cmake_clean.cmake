file(REMOVE_RECURSE
  "../bench/ext_adaptive_reprofile"
  "../bench/ext_adaptive_reprofile.pdb"
  "CMakeFiles/ext_adaptive_reprofile.dir/ext_adaptive_reprofile.cpp.o"
  "CMakeFiles/ext_adaptive_reprofile.dir/ext_adaptive_reprofile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_reprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
