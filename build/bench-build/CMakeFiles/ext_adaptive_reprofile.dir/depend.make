# Empty dependencies file for ext_adaptive_reprofile.
# This may be replaced when dependencies are built.
