
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_solar_day.cpp" "bench-build/CMakeFiles/ext_solar_day.dir/ext_solar_day.cpp.o" "gcc" "bench-build/CMakeFiles/ext_solar_day.dir/ext_solar_day.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/culpeo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/culpeo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/culpeo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/culpeo_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/culpeo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/culpeo_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/culpeo_load.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/culpeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/caps/CMakeFiles/culpeo_caps.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/culpeo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
