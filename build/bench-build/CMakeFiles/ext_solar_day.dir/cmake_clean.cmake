file(REMOVE_RECURSE
  "../bench/ext_solar_day"
  "../bench/ext_solar_day.pdb"
  "CMakeFiles/ext_solar_day.dir/ext_solar_day.cpp.o"
  "CMakeFiles/ext_solar_day.dir/ext_solar_day.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_solar_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
