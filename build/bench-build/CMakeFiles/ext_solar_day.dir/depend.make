# Empty dependencies file for ext_solar_day.
# This may be replaced when dependencies are built.
