file(REMOVE_RECURSE
  "../bench/ext_technology"
  "../bench/ext_technology.pdb"
  "CMakeFiles/ext_technology.dir/ext_technology.cpp.o"
  "CMakeFiles/ext_technology.dir/ext_technology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
