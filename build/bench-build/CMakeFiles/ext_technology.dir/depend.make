# Empty dependencies file for ext_technology.
# This may be replaced when dependencies are built.
