file(REMOVE_RECURSE
  "../bench/fig01_esr_drop"
  "../bench/fig01_esr_drop.pdb"
  "CMakeFiles/fig01_esr_drop.dir/fig01_esr_drop.cpp.o"
  "CMakeFiles/fig01_esr_drop.dir/fig01_esr_drop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_esr_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
