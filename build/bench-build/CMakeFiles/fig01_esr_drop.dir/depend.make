# Empty dependencies file for fig01_esr_drop.
# This may be replaced when dependencies are built.
