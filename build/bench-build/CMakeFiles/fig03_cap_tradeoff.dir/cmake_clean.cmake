file(REMOVE_RECURSE
  "../bench/fig03_cap_tradeoff"
  "../bench/fig03_cap_tradeoff.pdb"
  "CMakeFiles/fig03_cap_tradeoff.dir/fig03_cap_tradeoff.cpp.o"
  "CMakeFiles/fig03_cap_tradeoff.dir/fig03_cap_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cap_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
