# Empty dependencies file for fig03_cap_tradeoff.
# This may be replaced when dependencies are built.
