file(REMOVE_RECURSE
  "../bench/fig04_lora_drop"
  "../bench/fig04_lora_drop.pdb"
  "CMakeFiles/fig04_lora_drop.dir/fig04_lora_drop.cpp.o"
  "CMakeFiles/fig04_lora_drop.dir/fig04_lora_drop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_lora_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
