# Empty compiler generated dependencies file for fig04_lora_drop.
# This may be replaced when dependencies are built.
