file(REMOVE_RECURSE
  "../bench/fig05_catnap_failure"
  "../bench/fig05_catnap_failure.pdb"
  "CMakeFiles/fig05_catnap_failure.dir/fig05_catnap_failure.cpp.o"
  "CMakeFiles/fig05_catnap_failure.dir/fig05_catnap_failure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_catnap_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
