# Empty compiler generated dependencies file for fig05_catnap_failure.
# This may be replaced when dependencies are built.
