file(REMOVE_RECURSE
  "../bench/fig06_energy_estimates"
  "../bench/fig06_energy_estimates.pdb"
  "CMakeFiles/fig06_energy_estimates.dir/fig06_energy_estimates.cpp.o"
  "CMakeFiles/fig06_energy_estimates.dir/fig06_energy_estimates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_energy_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
