# Empty compiler generated dependencies file for fig06_energy_estimates.
# This may be replaced when dependencies are built.
