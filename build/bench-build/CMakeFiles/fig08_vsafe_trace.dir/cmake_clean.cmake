file(REMOVE_RECURSE
  "../bench/fig08_vsafe_trace"
  "../bench/fig08_vsafe_trace.pdb"
  "CMakeFiles/fig08_vsafe_trace.dir/fig08_vsafe_trace.cpp.o"
  "CMakeFiles/fig08_vsafe_trace.dir/fig08_vsafe_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vsafe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
