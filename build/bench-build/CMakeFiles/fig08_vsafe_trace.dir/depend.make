# Empty dependencies file for fig08_vsafe_trace.
# This may be replaced when dependencies are built.
