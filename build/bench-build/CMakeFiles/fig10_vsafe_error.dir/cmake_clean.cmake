file(REMOVE_RECURSE
  "../bench/fig10_vsafe_error"
  "../bench/fig10_vsafe_error.pdb"
  "CMakeFiles/fig10_vsafe_error.dir/fig10_vsafe_error.cpp.o"
  "CMakeFiles/fig10_vsafe_error.dir/fig10_vsafe_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vsafe_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
