# Empty compiler generated dependencies file for fig10_vsafe_error.
# This may be replaced when dependencies are built.
