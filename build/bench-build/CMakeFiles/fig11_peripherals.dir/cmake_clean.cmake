file(REMOVE_RECURSE
  "../bench/fig11_peripherals"
  "../bench/fig11_peripherals.pdb"
  "CMakeFiles/fig11_peripherals.dir/fig11_peripherals.cpp.o"
  "CMakeFiles/fig11_peripherals.dir/fig11_peripherals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_peripherals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
