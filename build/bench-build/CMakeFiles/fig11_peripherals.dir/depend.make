# Empty dependencies file for fig11_peripherals.
# This may be replaced when dependencies are built.
