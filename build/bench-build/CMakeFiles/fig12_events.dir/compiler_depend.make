# Empty compiler generated dependencies file for fig12_events.
# This may be replaced when dependencies are built.
