file(REMOVE_RECURSE
  "../bench/fig13_interarrival"
  "../bench/fig13_interarrival.pdb"
  "CMakeFiles/fig13_interarrival.dir/fig13_interarrival.cpp.o"
  "CMakeFiles/fig13_interarrival.dir/fig13_interarrival.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
