# Empty compiler generated dependencies file for fig13_interarrival.
# This may be replaced when dependencies are built.
