file(REMOVE_RECURSE
  "../bench/sec2d_decoupling"
  "../bench/sec2d_decoupling.pdb"
  "CMakeFiles/sec2d_decoupling.dir/sec2d_decoupling.cpp.o"
  "CMakeFiles/sec2d_decoupling.dir/sec2d_decoupling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2d_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
