# Empty compiler generated dependencies file for sec2d_decoupling.
# This may be replaced when dependencies are built.
