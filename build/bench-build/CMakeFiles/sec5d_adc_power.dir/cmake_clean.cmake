file(REMOVE_RECURSE
  "../bench/sec5d_adc_power"
  "../bench/sec5d_adc_power.pdb"
  "CMakeFiles/sec5d_adc_power.dir/sec5d_adc_power.cpp.o"
  "CMakeFiles/sec5d_adc_power.dir/sec5d_adc_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5d_adc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
