# Empty compiler generated dependencies file for sec5d_adc_power.
# This may be replaced when dependencies are built.
