file(REMOVE_RECURSE
  "../bench/tab3_loads"
  "../bench/tab3_loads.pdb"
  "CMakeFiles/tab3_loads.dir/tab3_loads.cpp.o"
  "CMakeFiles/tab3_loads.dir/tab3_loads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
