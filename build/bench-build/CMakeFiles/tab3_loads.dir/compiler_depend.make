# Empty compiler generated dependencies file for tab3_loads.
# This may be replaced when dependencies are built.
