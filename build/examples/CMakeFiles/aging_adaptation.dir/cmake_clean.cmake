file(REMOVE_RECURSE
  "CMakeFiles/aging_adaptation.dir/aging_adaptation.cpp.o"
  "CMakeFiles/aging_adaptation.dir/aging_adaptation.cpp.o.d"
  "aging_adaptation"
  "aging_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
