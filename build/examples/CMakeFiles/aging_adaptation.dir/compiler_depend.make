# Empty compiler generated dependencies file for aging_adaptation.
# This may be replaced when dependencies are built.
