file(REMOVE_RECURSE
  "CMakeFiles/capacitor_selection.dir/capacitor_selection.cpp.o"
  "CMakeFiles/capacitor_selection.dir/capacitor_selection.cpp.o.d"
  "capacitor_selection"
  "capacitor_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacitor_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
