# Empty compiler generated dependencies file for capacitor_selection.
# This may be replaced when dependencies are built.
