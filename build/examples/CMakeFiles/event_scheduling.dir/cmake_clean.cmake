file(REMOVE_RECURSE
  "CMakeFiles/event_scheduling.dir/event_scheduling.cpp.o"
  "CMakeFiles/event_scheduling.dir/event_scheduling.cpp.o.d"
  "event_scheduling"
  "event_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
