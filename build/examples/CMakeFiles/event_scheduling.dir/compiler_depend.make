# Empty compiler generated dependencies file for event_scheduling.
# This may be replaced when dependencies are built.
