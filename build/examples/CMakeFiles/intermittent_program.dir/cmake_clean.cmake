file(REMOVE_RECURSE
  "CMakeFiles/intermittent_program.dir/intermittent_program.cpp.o"
  "CMakeFiles/intermittent_program.dir/intermittent_program.cpp.o.d"
  "intermittent_program"
  "intermittent_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intermittent_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
