# Empty dependencies file for intermittent_program.
# This may be replaced when dependencies are built.
