file(REMOVE_RECURSE
  "CMakeFiles/reconfigurable_buffer.dir/reconfigurable_buffer.cpp.o"
  "CMakeFiles/reconfigurable_buffer.dir/reconfigurable_buffer.cpp.o.d"
  "reconfigurable_buffer"
  "reconfigurable_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfigurable_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
