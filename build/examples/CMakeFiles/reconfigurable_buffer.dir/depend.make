# Empty dependencies file for reconfigurable_buffer.
# This may be replaced when dependencies are built.
