file(REMOVE_RECURSE
  "CMakeFiles/task_splitting.dir/task_splitting.cpp.o"
  "CMakeFiles/task_splitting.dir/task_splitting.cpp.o.d"
  "task_splitting"
  "task_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
