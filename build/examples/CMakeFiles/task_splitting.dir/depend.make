# Empty dependencies file for task_splitting.
# This may be replaced when dependencies are built.
