file(REMOVE_RECURSE
  "CMakeFiles/culpeo_apps.dir/apps.cpp.o"
  "CMakeFiles/culpeo_apps.dir/apps.cpp.o.d"
  "libculpeo_apps.a"
  "libculpeo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
