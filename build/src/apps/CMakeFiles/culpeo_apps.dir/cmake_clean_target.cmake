file(REMOVE_RECURSE
  "libculpeo_apps.a"
)
