# Empty compiler generated dependencies file for culpeo_apps.
# This may be replaced when dependencies are built.
