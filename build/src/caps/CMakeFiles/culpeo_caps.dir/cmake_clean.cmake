file(REMOVE_RECURSE
  "CMakeFiles/culpeo_caps.dir/catalog.cpp.o"
  "CMakeFiles/culpeo_caps.dir/catalog.cpp.o.d"
  "libculpeo_caps.a"
  "libculpeo_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
