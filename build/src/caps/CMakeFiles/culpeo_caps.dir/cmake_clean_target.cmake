file(REMOVE_RECURSE
  "libculpeo_caps.a"
)
