# Empty dependencies file for culpeo_caps.
# This may be replaced when dependencies are built.
