
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/culpeo_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/api.cpp.o.d"
  "/root/repo/src/core/persistence.cpp" "src/core/CMakeFiles/culpeo_core.dir/persistence.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/persistence.cpp.o.d"
  "/root/repo/src/core/power_model.cpp" "src/core/CMakeFiles/culpeo_core.dir/power_model.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/power_model.cpp.o.d"
  "/root/repo/src/core/profile_table.cpp" "src/core/CMakeFiles/culpeo_core.dir/profile_table.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/profile_table.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/culpeo_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/vsafe_multi.cpp" "src/core/CMakeFiles/culpeo_core.dir/vsafe_multi.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/vsafe_multi.cpp.o.d"
  "/root/repo/src/core/vsafe_pg.cpp" "src/core/CMakeFiles/culpeo_core.dir/vsafe_pg.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/vsafe_pg.cpp.o.d"
  "/root/repo/src/core/vsafe_r.cpp" "src/core/CMakeFiles/culpeo_core.dir/vsafe_r.cpp.o" "gcc" "src/core/CMakeFiles/culpeo_core.dir/vsafe_r.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/culpeo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/culpeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/culpeo_load.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/culpeo_mcu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
