file(REMOVE_RECURSE
  "CMakeFiles/culpeo_core.dir/api.cpp.o"
  "CMakeFiles/culpeo_core.dir/api.cpp.o.d"
  "CMakeFiles/culpeo_core.dir/persistence.cpp.o"
  "CMakeFiles/culpeo_core.dir/persistence.cpp.o.d"
  "CMakeFiles/culpeo_core.dir/power_model.cpp.o"
  "CMakeFiles/culpeo_core.dir/power_model.cpp.o.d"
  "CMakeFiles/culpeo_core.dir/profile_table.cpp.o"
  "CMakeFiles/culpeo_core.dir/profile_table.cpp.o.d"
  "CMakeFiles/culpeo_core.dir/profiler.cpp.o"
  "CMakeFiles/culpeo_core.dir/profiler.cpp.o.d"
  "CMakeFiles/culpeo_core.dir/vsafe_multi.cpp.o"
  "CMakeFiles/culpeo_core.dir/vsafe_multi.cpp.o.d"
  "CMakeFiles/culpeo_core.dir/vsafe_pg.cpp.o"
  "CMakeFiles/culpeo_core.dir/vsafe_pg.cpp.o.d"
  "CMakeFiles/culpeo_core.dir/vsafe_r.cpp.o"
  "CMakeFiles/culpeo_core.dir/vsafe_r.cpp.o.d"
  "libculpeo_core.a"
  "libculpeo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
