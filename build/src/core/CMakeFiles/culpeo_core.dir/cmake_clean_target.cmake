file(REMOVE_RECURSE
  "libculpeo_core.a"
)
