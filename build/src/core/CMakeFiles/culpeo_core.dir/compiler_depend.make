# Empty compiler generated dependencies file for culpeo_core.
# This may be replaced when dependencies are built.
