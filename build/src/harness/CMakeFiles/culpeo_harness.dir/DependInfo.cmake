
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/baselines.cpp" "src/harness/CMakeFiles/culpeo_harness.dir/baselines.cpp.o" "gcc" "src/harness/CMakeFiles/culpeo_harness.dir/baselines.cpp.o.d"
  "/root/repo/src/harness/ground_truth.cpp" "src/harness/CMakeFiles/culpeo_harness.dir/ground_truth.cpp.o" "gcc" "src/harness/CMakeFiles/culpeo_harness.dir/ground_truth.cpp.o.d"
  "/root/repo/src/harness/profiling.cpp" "src/harness/CMakeFiles/culpeo_harness.dir/profiling.cpp.o" "gcc" "src/harness/CMakeFiles/culpeo_harness.dir/profiling.cpp.o.d"
  "/root/repo/src/harness/task_runner.cpp" "src/harness/CMakeFiles/culpeo_harness.dir/task_runner.cpp.o" "gcc" "src/harness/CMakeFiles/culpeo_harness.dir/task_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/culpeo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/culpeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/culpeo_load.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/culpeo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/culpeo_mcu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
