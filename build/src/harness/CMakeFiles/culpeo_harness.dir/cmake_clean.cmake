file(REMOVE_RECURSE
  "CMakeFiles/culpeo_harness.dir/baselines.cpp.o"
  "CMakeFiles/culpeo_harness.dir/baselines.cpp.o.d"
  "CMakeFiles/culpeo_harness.dir/ground_truth.cpp.o"
  "CMakeFiles/culpeo_harness.dir/ground_truth.cpp.o.d"
  "CMakeFiles/culpeo_harness.dir/profiling.cpp.o"
  "CMakeFiles/culpeo_harness.dir/profiling.cpp.o.d"
  "CMakeFiles/culpeo_harness.dir/task_runner.cpp.o"
  "CMakeFiles/culpeo_harness.dir/task_runner.cpp.o.d"
  "libculpeo_harness.a"
  "libculpeo_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
