file(REMOVE_RECURSE
  "libculpeo_harness.a"
)
