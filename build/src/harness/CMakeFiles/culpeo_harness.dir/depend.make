# Empty dependencies file for culpeo_harness.
# This may be replaced when dependencies are built.
