
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/load/library.cpp" "src/load/CMakeFiles/culpeo_load.dir/library.cpp.o" "gcc" "src/load/CMakeFiles/culpeo_load.dir/library.cpp.o.d"
  "/root/repo/src/load/profile.cpp" "src/load/CMakeFiles/culpeo_load.dir/profile.cpp.o" "gcc" "src/load/CMakeFiles/culpeo_load.dir/profile.cpp.o.d"
  "/root/repo/src/load/trace_io.cpp" "src/load/CMakeFiles/culpeo_load.dir/trace_io.cpp.o" "gcc" "src/load/CMakeFiles/culpeo_load.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/culpeo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
