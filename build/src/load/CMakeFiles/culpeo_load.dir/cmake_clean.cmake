file(REMOVE_RECURSE
  "CMakeFiles/culpeo_load.dir/library.cpp.o"
  "CMakeFiles/culpeo_load.dir/library.cpp.o.d"
  "CMakeFiles/culpeo_load.dir/profile.cpp.o"
  "CMakeFiles/culpeo_load.dir/profile.cpp.o.d"
  "CMakeFiles/culpeo_load.dir/trace_io.cpp.o"
  "CMakeFiles/culpeo_load.dir/trace_io.cpp.o.d"
  "libculpeo_load.a"
  "libculpeo_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
