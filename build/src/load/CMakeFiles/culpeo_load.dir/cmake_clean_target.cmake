file(REMOVE_RECURSE
  "libculpeo_load.a"
)
