# Empty dependencies file for culpeo_load.
# This may be replaced when dependencies are built.
