
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcu/adc.cpp" "src/mcu/CMakeFiles/culpeo_mcu.dir/adc.cpp.o" "gcc" "src/mcu/CMakeFiles/culpeo_mcu.dir/adc.cpp.o.d"
  "/root/repo/src/mcu/uarch_block.cpp" "src/mcu/CMakeFiles/culpeo_mcu.dir/uarch_block.cpp.o" "gcc" "src/mcu/CMakeFiles/culpeo_mcu.dir/uarch_block.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/culpeo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
