file(REMOVE_RECURSE
  "CMakeFiles/culpeo_mcu.dir/adc.cpp.o"
  "CMakeFiles/culpeo_mcu.dir/adc.cpp.o.d"
  "CMakeFiles/culpeo_mcu.dir/uarch_block.cpp.o"
  "CMakeFiles/culpeo_mcu.dir/uarch_block.cpp.o.d"
  "libculpeo_mcu.a"
  "libculpeo_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
