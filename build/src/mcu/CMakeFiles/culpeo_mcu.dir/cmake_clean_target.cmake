file(REMOVE_RECURSE
  "libculpeo_mcu.a"
)
