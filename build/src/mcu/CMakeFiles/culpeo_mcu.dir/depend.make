# Empty dependencies file for culpeo_mcu.
# This may be replaced when dependencies are built.
