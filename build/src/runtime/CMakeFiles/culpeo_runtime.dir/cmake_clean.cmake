file(REMOVE_RECURSE
  "CMakeFiles/culpeo_runtime.dir/intermittent.cpp.o"
  "CMakeFiles/culpeo_runtime.dir/intermittent.cpp.o.d"
  "libculpeo_runtime.a"
  "libculpeo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
