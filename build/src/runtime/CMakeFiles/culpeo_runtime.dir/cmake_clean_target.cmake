file(REMOVE_RECURSE
  "libculpeo_runtime.a"
)
