# Empty compiler generated dependencies file for culpeo_runtime.
# This may be replaced when dependencies are built.
