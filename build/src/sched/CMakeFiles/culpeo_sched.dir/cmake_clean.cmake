file(REMOVE_RECURSE
  "CMakeFiles/culpeo_sched.dir/adaptive.cpp.o"
  "CMakeFiles/culpeo_sched.dir/adaptive.cpp.o.d"
  "CMakeFiles/culpeo_sched.dir/engine.cpp.o"
  "CMakeFiles/culpeo_sched.dir/engine.cpp.o.d"
  "CMakeFiles/culpeo_sched.dir/feasibility.cpp.o"
  "CMakeFiles/culpeo_sched.dir/feasibility.cpp.o.d"
  "CMakeFiles/culpeo_sched.dir/policy.cpp.o"
  "CMakeFiles/culpeo_sched.dir/policy.cpp.o.d"
  "libculpeo_sched.a"
  "libculpeo_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
