file(REMOVE_RECURSE
  "libculpeo_sched.a"
)
