# Empty dependencies file for culpeo_sched.
# This may be replaced when dependencies are built.
