
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bank_array.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/bank_array.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/bank_array.cpp.o.d"
  "/root/repo/src/sim/booster.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/booster.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/booster.cpp.o.d"
  "/root/repo/src/sim/capacitor.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/capacitor.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/capacitor.cpp.o.d"
  "/root/repo/src/sim/harvester.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/harvester.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/harvester.cpp.o.d"
  "/root/repo/src/sim/monitor.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/monitor.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/monitor.cpp.o.d"
  "/root/repo/src/sim/power_system.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/power_system.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/power_system.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/two_cap.cpp" "src/sim/CMakeFiles/culpeo_sim.dir/two_cap.cpp.o" "gcc" "src/sim/CMakeFiles/culpeo_sim.dir/two_cap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/culpeo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
