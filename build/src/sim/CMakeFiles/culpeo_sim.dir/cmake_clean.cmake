file(REMOVE_RECURSE
  "CMakeFiles/culpeo_sim.dir/bank_array.cpp.o"
  "CMakeFiles/culpeo_sim.dir/bank_array.cpp.o.d"
  "CMakeFiles/culpeo_sim.dir/booster.cpp.o"
  "CMakeFiles/culpeo_sim.dir/booster.cpp.o.d"
  "CMakeFiles/culpeo_sim.dir/capacitor.cpp.o"
  "CMakeFiles/culpeo_sim.dir/capacitor.cpp.o.d"
  "CMakeFiles/culpeo_sim.dir/harvester.cpp.o"
  "CMakeFiles/culpeo_sim.dir/harvester.cpp.o.d"
  "CMakeFiles/culpeo_sim.dir/monitor.cpp.o"
  "CMakeFiles/culpeo_sim.dir/monitor.cpp.o.d"
  "CMakeFiles/culpeo_sim.dir/power_system.cpp.o"
  "CMakeFiles/culpeo_sim.dir/power_system.cpp.o.d"
  "CMakeFiles/culpeo_sim.dir/trace.cpp.o"
  "CMakeFiles/culpeo_sim.dir/trace.cpp.o.d"
  "CMakeFiles/culpeo_sim.dir/two_cap.cpp.o"
  "CMakeFiles/culpeo_sim.dir/two_cap.cpp.o.d"
  "libculpeo_sim.a"
  "libculpeo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
