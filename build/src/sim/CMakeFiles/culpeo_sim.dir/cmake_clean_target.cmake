file(REMOVE_RECURSE
  "libculpeo_sim.a"
)
