# Empty compiler generated dependencies file for culpeo_sim.
# This may be replaced when dependencies are built.
