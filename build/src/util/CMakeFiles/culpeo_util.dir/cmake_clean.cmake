file(REMOVE_RECURSE
  "CMakeFiles/culpeo_util.dir/csv.cpp.o"
  "CMakeFiles/culpeo_util.dir/csv.cpp.o.d"
  "CMakeFiles/culpeo_util.dir/logging.cpp.o"
  "CMakeFiles/culpeo_util.dir/logging.cpp.o.d"
  "CMakeFiles/culpeo_util.dir/random.cpp.o"
  "CMakeFiles/culpeo_util.dir/random.cpp.o.d"
  "CMakeFiles/culpeo_util.dir/stats.cpp.o"
  "CMakeFiles/culpeo_util.dir/stats.cpp.o.d"
  "libculpeo_util.a"
  "libculpeo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/culpeo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
