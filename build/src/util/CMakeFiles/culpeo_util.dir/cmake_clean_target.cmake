file(REMOVE_RECURSE
  "libculpeo_util.a"
)
