# Empty compiler generated dependencies file for culpeo_util.
# This may be replaced when dependencies are built.
