file(REMOVE_RECURSE
  "CMakeFiles/test_caps.dir/caps/test_catalog.cpp.o"
  "CMakeFiles/test_caps.dir/caps/test_catalog.cpp.o.d"
  "test_caps"
  "test_caps.pdb"
  "test_caps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
