# Empty compiler generated dependencies file for test_caps.
# This may be replaced when dependencies are built.
