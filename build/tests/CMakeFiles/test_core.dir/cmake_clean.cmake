file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_api.cpp.o"
  "CMakeFiles/test_core.dir/core/test_api.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_persistence.cpp.o"
  "CMakeFiles/test_core.dir/core/test_persistence.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_power_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_power_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_profile_table.cpp.o"
  "CMakeFiles/test_core.dir/core/test_profile_table.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_profiler.cpp.o"
  "CMakeFiles/test_core.dir/core/test_profiler.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_vsafe_multi.cpp.o"
  "CMakeFiles/test_core.dir/core/test_vsafe_multi.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_vsafe_pg.cpp.o"
  "CMakeFiles/test_core.dir/core/test_vsafe_pg.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_vsafe_r.cpp.o"
  "CMakeFiles/test_core.dir/core/test_vsafe_r.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
