file(REMOVE_RECURSE
  "CMakeFiles/test_harness.dir/harness/test_baselines.cpp.o"
  "CMakeFiles/test_harness.dir/harness/test_baselines.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/test_ground_truth.cpp.o"
  "CMakeFiles/test_harness.dir/harness/test_ground_truth.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/test_profiling.cpp.o"
  "CMakeFiles/test_harness.dir/harness/test_profiling.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/test_task_runner.cpp.o"
  "CMakeFiles/test_harness.dir/harness/test_task_runner.cpp.o.d"
  "test_harness"
  "test_harness.pdb"
  "test_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
