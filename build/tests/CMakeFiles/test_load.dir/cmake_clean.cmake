file(REMOVE_RECURSE
  "CMakeFiles/test_load.dir/load/test_library.cpp.o"
  "CMakeFiles/test_load.dir/load/test_library.cpp.o.d"
  "CMakeFiles/test_load.dir/load/test_profile.cpp.o"
  "CMakeFiles/test_load.dir/load/test_profile.cpp.o.d"
  "CMakeFiles/test_load.dir/load/test_trace_io.cpp.o"
  "CMakeFiles/test_load.dir/load/test_trace_io.cpp.o.d"
  "test_load"
  "test_load.pdb"
  "test_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
