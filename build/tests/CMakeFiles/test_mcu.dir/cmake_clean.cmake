file(REMOVE_RECURSE
  "CMakeFiles/test_mcu.dir/mcu/test_adc.cpp.o"
  "CMakeFiles/test_mcu.dir/mcu/test_adc.cpp.o.d"
  "CMakeFiles/test_mcu.dir/mcu/test_uarch_block.cpp.o"
  "CMakeFiles/test_mcu.dir/mcu/test_uarch_block.cpp.o.d"
  "test_mcu"
  "test_mcu.pdb"
  "test_mcu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
