file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_booster_properties.cpp.o"
  "CMakeFiles/test_property.dir/property/test_booster_properties.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_capacitor_properties.cpp.o"
  "CMakeFiles/test_property.dir/property/test_capacitor_properties.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_persistence_properties.cpp.o"
  "CMakeFiles/test_property.dir/property/test_persistence_properties.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_vsafe_properties.cpp.o"
  "CMakeFiles/test_property.dir/property/test_vsafe_properties.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
