file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_bank_array.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_bank_array.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_booster.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_booster.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_capacitor.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_capacitor.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_harvester.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_harvester.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_monitor.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_monitor.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_power_system.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_power_system.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_two_cap.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_two_cap.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
