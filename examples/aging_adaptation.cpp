/**
 * @file
 * Aging example (Section IV-C): supercapacitor ESR roughly doubles and
 * capacitance falls toward 80% of nominal over the device lifetime.
 * Compile-time Culpeo-PG values computed against the *fresh* part go
 * stale and become unsafe; Culpeo-R simply re-profiles on the aged
 * hardware and stays correct.
 */

#include <cstdio>
#include <memory>

#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    const auto task = load::uniform(25.0_mA, 10.0_ms);

    // Vsafe computed at design time, against the fresh part.
    const sim::PowerSystemConfig fresh = sim::capybaraConfig();
    const double pg_fresh =
        core::culpeoPg(task, core::modelFromConfig(fresh)).vsafe.value();

    std::printf("%-28s %10s %10s %12s\n", "device age", "true Vsafe",
                "stale PG", "Culpeo-R");
    for (int i = 0; i < 64; ++i)
        std::putchar('-');
    std::putchar('\n');

    const struct
    {
        const char *label;
        double esr_mult;
        double cap_frac;
    } ages[] = {
        {"fresh", 1.0, 1.0},
        {"mid-life (1.5x ESR)", 1.5, 0.9},
        {"end-of-life (2x ESR)", 2.0, 0.8},
    };

    for (const auto &age : ages) {
        sim::PowerSystemConfig aged = sim::capybaraConfig();
        aged.capacitor.esr_multiplier = age.esr_mult;
        aged.capacitor.capacitance_fraction = age.cap_frac;

        const auto truth = harness::findTrueVsafe(aged, task);

        // Culpeo-R re-profiles on the aged device (a scheduler would
        // trigger this periodically or on a power-change signal).
        core::Culpeo culpeo(core::modelFromConfig(aged),
                            std::make_unique<core::UArchProfiler>());
        harness::profileTaskFrom(aged, aged.monitor.vhigh, culpeo, 1,
                                 task);
        const double r_vsafe = culpeo.getVsafe(1).value();

        const bool stale_ok =
            harness::completesFrom(aged, Volts(pg_fresh), task);
        std::printf("%-28s %9.3fV %9.3fV%s %10.3fV%s\n", age.label,
                    truth.vsafe.value(), pg_fresh,
                    stale_ok ? " " : "!",
                    r_vsafe,
                    harness::completesFrom(aged, Volts(r_vsafe), task)
                        ? " "
                        : "!");
    }

    std::printf("\n('!' marks an estimate that browns the device out.)\n"
                "The stale design-time value is unsafe once ESR grows;\n"
                "re-profiling through the Culpeo-R interface tracks the\n"
                "aging part. This is why Section IV-C recommends\n"
                "rerunning the runtime calculation periodically.\n");
    return 0;
}
