/**
 * @file
 * Power-system design example: pick an energy buffer for a volume
 * budget, then use Culpeo-PG to check whether the application's worst
 * task can run on it at all (Section III: "if a task's Vsafe is higher
 * than what the energy buffer can provide, the programmer knows they
 * must correct the task division" — or pick a different bank).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "caps/catalog.hpp"
#include "core/vsafe_pg.hpp"
#include "load/library.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

namespace {

/** Build a Culpeo model for a candidate bank on the Capybara rails. */
core::PowerSystemModel
modelFor(const caps::Bank &bank)
{
    sim::PowerSystemConfig cfg = sim::capybaraConfig();
    cfg.capacitor.capacitance = bank.capacitance;
    // Split the bank ESR into the two-branch shape with the same ratio
    // as the reference bank (Rs : Rbulk : Rsurf).
    const double scale = bank.esr.value() / 4.0; // Reference bank: 4 ohm.
    cfg.capacitor.series_esr = Ohms(1.5 * scale);
    cfg.capacitor.bulk_resistance = Ohms(9.0 * scale);
    cfg.capacitor.surface_resistance = Ohms(1.2 * scale);
    return core::modelFromConfig(cfg);
}

} // namespace

int
main()
{
    const double volume_budget_mm3 = 100.0;
    const auto task = load::bleRadio().then(load::mnistCompute());
    std::printf("volume budget: %.0f mm^3; worst task: %s\n\n",
                volume_budget_mm3, task.name().c_str());

    const auto parts = caps::generateCatalog();
    auto banks = caps::composeBanks(parts, Farads(45e-3));
    banks.push_back(caps::referenceBank());

    std::printf("%-24s %10s %8s %8s | %8s %s\n", "bank", "vol mm^3",
                "esr", "parts", "Vsafe", "verdict");
    for (int i = 0; i < 72; ++i)
        std::putchar('-');
    std::putchar('\n');

    const caps::Bank *chosen = nullptr;
    double chosen_vsafe = 0.0;
    std::vector<caps::Bank> fitting;
    for (const auto &bank : banks) {
        if (bank.volume_mm3 <= volume_budget_mm3)
            fitting.push_back(bank);
    }
    std::sort(fitting.begin(), fitting.end(),
              [](const caps::Bank &a, const caps::Bank &b) {
                  return a.esr < b.esr;
              });
    std::size_t shown = 0;
    for (const auto &bank : fitting) {
        const core::PowerSystemModel model = modelFor(bank);
        const core::PgResult pg = core::culpeoPg(task, model);
        const bool feasible = pg.vsafe <= model.vhigh;
        if (shown < 12) {
            std::printf("%-24s %10.1f %7.2f %8u | %7.3fV %s\n",
                        bank.part.part_number.c_str(), bank.volume_mm3,
                        bank.esr.value(), bank.count, pg.vsafe.value(),
                        feasible ? "ok" : "task cannot run");
            ++shown;
        }
        if (feasible && chosen == nullptr) {
            chosen = &bank;
            chosen_vsafe = pg.vsafe.value();
        }
    }
    if (fitting.size() > shown)
        std::printf("... (%zu more candidates within budget)\n",
                    fitting.size() - shown);

    if (chosen != nullptr) {
        std::printf("\nselected %s x%u: task Vsafe %.3f V leaves "
                    "%.0f mV of headroom below Vhigh.\n",
                    chosen->part.part_number.c_str(), chosen->count,
                    chosen_vsafe, (2.56 - chosen_vsafe) * 1e3);
    } else {
        std::printf("\nno bank within budget can run the task: split "
                    "the task or raise the budget.\n");
    }
    return 0;
}
