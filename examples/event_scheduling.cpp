/**
 * @file
 * Event-driven scheduling example: run the Periodic Sensing application
 * on harvested energy under the energy-only CatNap policy and under the
 * Culpeo-integrated policy, and compare captured events.
 *
 * This is the paper's headline end-to-end use case (Section VI-B): the
 * scheduler profiles each task once through the Culpeo API, then gates
 * every dispatch on get_vsafe / Vsafe_multi instead of an energy budget.
 */

#include <cstdio>

#include "apps/apps.hpp"
#include "sched/trial.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    const sched::AppSpec app = apps::periodicSensing();
    std::printf("application: %s\n", app.name.c_str());
    std::printf("  IMU event every %.1f s (deadline %.1f s), "
                "background photoresistor averaging\n",
                app.events[0].interval.value(),
                app.events[0].deadline.value());
    std::printf("  15 mF buffer, %.1f mW harvested\n\n",
                app.harvest.value() * 1e3);

    sched::CatnapPolicy catnap;
    catnap.initialize(app);
    sched::CulpeoPolicy culpeo;
    culpeo.initialize(app);

    // Show what each policy believes about the IMU task. Admission
    // decisions carry the required start voltage; describe() exposes
    // the same estimates generically for any policy.
    const auto &imu = app.events[0].chain[0];
    std::printf("IMU task start voltage:  CatNap %.3f V   Culpeo %.3f V\n",
                catnap.admitTask(imu).need.value(),
                culpeo.admitTask(imu).need.value());
    std::printf("background threshold:    CatNap %.3f V   Culpeo %.3f V\n\n",
                catnap.admitBackground(app).need.value(),
                culpeo.admitBackground(app).need.value());

    for (sched::Policy *policy :
         {static_cast<sched::Policy *>(&catnap),
          static_cast<sched::Policy *>(&culpeo)}) {
        const sched::TrialResult result =
            TrialBuilder().app(app).policy(*policy).duration(120.0_s).seed(42).run();
        const auto &stats = result.eventStats("imu");
        std::printf("%-8s: %2u/%2u events captured (%.0f%%), "
                    "%u power failures, %u background runs\n",
                    policy->name(), stats.captured, stats.arrived,
                    stats.captureRate() * 100.0, result.power_failures,
                    result.background_runs);
    }

    std::printf("\nCatNap's energy-only start voltage lets the IMU's\n"
                "20 mA burst pull the buffer below Voff; Culpeo waits\n"
                "for the ESR-aware Vsafe and captures every event.\n");
    return 0;
}
