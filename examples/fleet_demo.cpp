/**
 * @file
 * Fleet demo: a 10 000-device population harvesting from one shared
 * solar-diurnal field.
 *
 * Two cohorts — Periodic Sensing under the Culpeo policy and
 * Responsive Reporting under the energy-only CatNap baseline — are
 * scattered over a 200 m x 200 m deployment with per-device
 * capacitance and ESR spread. Every device runs a full scheduler
 * trial on a batch::BatchEngine lane, sharded across the thread
 * pool, and the population summary (capture rates, brown-outs,
 * per-cohort breakdown) lands on stdout plus fleet_summary.csv /
 * fleet_summary.jsonl.
 *
 *     fleet_demo [devices] [duration_s] [seed]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "apps/apps.hpp"
#include "env/field.hpp"
#include "fleet/fleet.hpp"
#include "sched/policy.hpp"
#include "util/logging.hpp"

using namespace culpeo;

namespace {

/** Parse one positional argument strictly; exits with usage on junk. */
double
numericArg(const char *name, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "fleet_demo: %s must be a number, got '%s'\n"
                     "usage: fleet_demo [devices] [duration_s] [seed]\n",
                     name, text);
        std::exit(2);
    }
    return value;
}

int
run(int argc, char **argv)
{
    std::size_t devices = 10000;
    double duration = 300.0;
    std::uint64_t seed = 7;
    if (argc > 1)
        devices = std::size_t(numericArg("devices", argv[1]));
    if (argc > 2)
        duration = numericArg("duration_s", argv[2]);
    if (argc > 3)
        seed = std::uint64_t(numericArg("seed", argv[3]));

    // The shared sky: one simulated day compressed so a default-length
    // trial sees meaningful irradiance swings, with seeded per-cell
    // cloud noise and static shading.
    env::SolarConfig solar;
    solar.peak = units::Watts(12e-3);
    solar.day_length = units::Seconds(1200.0);
    solar.sample_period = units::Seconds(10.0);
    solar.dawn_offset = units::Seconds(150.0);
    solar.cloud_depth = 0.5;
    solar.shading_depth = 0.3;
    solar.seed = seed;
    const env::SolarDiurnalField field(solar);

    // Two device archetypes. Policies are selected from the registry
    // by name; runFleet instantiates and initializes one per cohort.
    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();

    fleet::FleetSpec spec;
    spec.cohorts = {
        {"ps-culpeo", &ps, nullptr, "culpeo", 0.6},
        {"rr-catnap", &rr, nullptr, "catnap", 0.4},
    };
    spec.devices = devices;
    spec.capacitance_scale = {0.8, 1.2};
    spec.esr_scale = {0.9, 1.6};
    spec.extent = 200.0;
    spec.field = &field;
    spec.duration = units::Seconds(duration);
    spec.seed = seed;

    std::printf("fleet: %zu devices, %.0f s under a %.0f s solar day "
                "(seed %llu)\n",
                spec.devices, spec.duration.value(),
                solar.day_length.value(),
                static_cast<unsigned long long>(spec.seed));

    const fleet::SummaryReport report = fleet::runFleet(spec);

    std::printf("\npopulation: capture rate %.4f, %u brown-outs "
                "(%.3f per device)\n",
                report.overallCaptureRate(), report.totalPowerFailures(),
                double(report.totalPowerFailures()) /
                    double(report.devices.size()));
    for (const fleet::CohortSummary &c : report.cohorts) {
        std::printf("  %-10s %6zu devices  capture %.4f  "
                    "brown-outs %6u  background runs %8u\n",
                    c.name.c_str(), c.devices, c.captureRate(),
                    c.power_failures, c.background_runs);
    }

    std::printf("\ncapture-rate histogram (20 bins on [0, 1]):\n");
    const fleet::Histo &h = report.capture_rate;
    std::uint64_t peak = 1;
    for (std::uint64_t b : h.bins)
        peak = std::max(peak, b);
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
        const int width = int(40.0 * double(h.bins[i]) / double(peak));
        std::printf("  %4.2f-%4.2f %8llu |",
                    h.lo + (h.hi - h.lo) * double(i) / double(h.bins.size()),
                    h.lo +
                        (h.hi - h.lo) * double(i + 1) / double(h.bins.size()),
                    static_cast<unsigned long long>(h.bins[i]));
        for (int w = 0; w < width; ++w)
            std::printf("#");
        std::printf("\n");
    }

    report.writeCsvFile("fleet_summary.csv");
    report.writeJsonlFile("fleet_summary.jsonl");
    std::printf("\nwrote fleet_summary.csv and fleet_summary.jsonl\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Bad input (an invalid spec, an unwritable artifact path) is a
    // diagnostic and a nonzero exit, not an unhandled-exception abort.
    try {
        return run(argc, argv);
    } catch (const log::FatalError &error) {
        std::fprintf(stderr, "fleet_demo: %s\n", error.what());
        return EXIT_FAILURE;
    }
}
