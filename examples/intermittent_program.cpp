/**
 * @file
 * Intermittent-execution example: run a sense -> compute -> send program
 * under the classic opportunistic dispatch (run whenever powered,
 * Figure 1a) and under Culpeo's Vsafe-gated dispatch, counting atomic
 * re-executions; then show the forward-progress check catching a task
 * that can never complete on this power system.
 */

#include <cstdio>
#include <memory>

#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "runtime/intermittent.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using runtime::AtomicTask;
using runtime::DispatchPolicy;
using runtime::ProgramResult;
using runtime::RuntimeOptions;

namespace {

void
report(const char *label, const ProgramResult &result)
{
    std::printf("%-14s: %s in %5.1f s, %u power failures, "
                "%u wasted re-executions\n",
                label,
                result.finished ? "finished"
                                : (result.nonterminating ? "NON-TERMINATING"
                                                         : "timed out"),
                result.elapsed.value(), result.power_failures,
                result.totalFailures());
    for (const auto &stats : result.per_task) {
        std::printf("   %-10s ran %u time(s), failed %u\n",
                    stats.name.c_str(), stats.executions, stats.failures);
    }
}

} // namespace

int
main()
{
    const std::vector<AtomicTask> program = {
        {1, "sense", load::imuRead()},
        {2, "compute", load::encrypt()},
        {3, "send", load::uniform(45.0_mA, 25.0_ms).renamed("send")},
    };
    const sim::ConstantHarvester harvester(4.0_mW);

    // Profile each task once so the gated runtime has Vsafe values.
    core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                        std::make_unique<core::UArchProfiler>());
    for (const auto &task : program) {
        harness::profileTaskFrom(sim::capybaraConfig(), Volts(2.56),
                                 culpeo, task.id, task.profile);
        std::printf("task %-8s Vsafe = %.3f V\n", task.name.c_str(),
                    culpeo.getVsafe(task.id).value());
    }
    std::printf("\nstarting mid-charge (1.8 V), weak harvest:\n\n");

    for (DispatchPolicy policy : {DispatchPolicy::Opportunistic,
                                  DispatchPolicy::VsafeGated}) {
        sim::Device device(sim::capybaraConfig());
        device.setHarvester(&harvester);
        device.setBufferVoltage(Volts(1.8));
        device.forceOutputEnabled(true);

        RuntimeOptions options;
        options.policy = policy;
        options.culpeo = &culpeo;
        const ProgramResult result =
            runProgram(device, program, options);
        report(policy == DispatchPolicy::Opportunistic ? "opportunistic"
                                                       : "vsafe-gated",
               result);
        std::putchar('\n');
    }

    // Forward progress: a task whose requirement exceeds the buffer.
    std::printf("adding an oversized task (120 mA for 200 ms):\n");
    sim::Device device(sim::capybaraConfig());
    device.setHarvester(&harvester);
    device.setBufferVoltage(Volts(2.56));
    device.forceOutputEnabled(true);
    RuntimeOptions options;
    options.max_attempts_from_full = 3;
    const ProgramResult result = runProgram(
        device,
        {{9, "oversized",
          load::uniform(120.0_mA, 200.0_ms).renamed("oversized")}},
        options);
    report("opportunistic", result);
    std::printf("\nThe runtime flags the task instead of re-executing\n"
                "forever; Culpeo-PG would flag it at compile time (its\n"
                "Vsafe exceeds Vhigh), guiding the task-splitting tools\n"
                "the paper complements [29].\n");
    return 0;
}
