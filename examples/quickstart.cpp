/**
 * @file
 * Quickstart: compute a safe starting voltage for a task three ways.
 *
 * 1. Describe the power system (or start from the Capybara defaults).
 * 2. Describe the task as a current profile.
 * 3. Ask Culpeo-PG (compile-time, from the current trace) and Culpeo-R
 *    (runtime, from three voltage measurements) for Vsafe.
 * 4. Check both against a brute-force simulation of the task.
 * 5. Drive one harvest-recharge-run cycle through sim::Device, the
 *    execution layer every driver in the repo uses.
 */

#include <cstdio>
#include <memory>

#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "sim/device.hpp"
#include "sim/harvester.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    // 1. The power system: 45 mF supercap bank, Voff 1.6 V, Vhigh 2.56 V.
    const sim::PowerSystemConfig power = sim::capybaraConfig();
    const core::PowerSystemModel model = core::modelFromConfig(power);

    // 2. The task: a 25 mA radio-style pulse then 100 ms of computing.
    const load::CurrentProfile task =
        load::pulseWithCompute(25.0_mA, 10.0_ms);
    std::printf("task: %s (peak %.0f mA, %.0f ms, %.2f mJ at Vout)\n",
                task.name().c_str(), task.peakCurrent().value() * 1e3,
                task.duration().value() * 1e3,
                task.energyAt(model.vout).value() * 1e3);

    // 3a. Culpeo-PG: feed the profiled current trace to Algorithm 1.
    const core::PgResult pg = core::culpeoPg(task, model);
    std::printf("Culpeo-PG : Vsafe = %.3f V (ESR used %.2f ohm, "
                "worst drop %.0f mV)\n",
                pg.vsafe.value(), pg.esr_used.value(),
                pg.vdelta.value() * 1e3);

    // 3b. Culpeo-R: profile one execution through the Table I API, here
    //     with the proposed uArch peripheral doing the sampling.
    core::Culpeo culpeo(model, std::make_unique<core::UArchProfiler>());
    const core::TaskId radio_task = 1;
    harness::profileTaskFrom(power, power.monitor.vhigh, culpeo,
                             radio_task, task);
    std::printf("Culpeo-R  : Vsafe = %.3f V (observed drop %.0f mV)\n",
                culpeo.getVsafe(radio_task).value(),
                culpeo.getVdrop(radio_task).value() * 1e3);

    // 4. Sanity-check against exhaustive simulation.
    const harness::GroundTruth truth =
        harness::findTrueVsafe(power, task);
    std::printf("brute force: Vsafe = %.3f V (%u trial executions)\n",
                truth.vsafe.value(), truth.trials);

    // A scheduler would now gate dispatch on the Theorem 1 test:
    const Volts now_voltage{2.0};
    std::printf("\nat %.2f V the task %s safe to start\n",
                now_voltage.value(),
                culpeo.feasible(radio_task, now_voltage) ? "IS"
                                                         : "is NOT");

    // 5. One dispatch cycle through the device-execution layer: harvest
    //    until Vsafe is banked, run the task, report what happened. The
    //    wait uses analytic macro-stepping here (no instrumentation
    //    attached) and would fall back to per-tick Euler automatically
    //    if fault hooks or an observer were set; an unreachable
    //    threshold comes back as a diagnostic instead of a hang.
    const sim::ConstantHarvester harvester(5.0_mW);
    sim::Device device(power);
    device.setHarvester(&harvester);
    device.setBufferVoltage(1.7_V);
    device.forceOutputEnabled(true);

    const sim::WaitResult wait =
        device.idleUntilVoltage(pg.vsafe, Seconds(120.0));
    if (!wait.reached()) {
        std::printf("device: Vsafe not banked (%s)\n",
                    wait.diagnostic.empty() ? "deadline/brown-out"
                                            : wait.diagnostic.c_str());
        return 0;
    }
    const sim::LoadResult run = device.runLoad(task);
    std::printf("device: recharged %.1f s, task %s (Vmin %.3f V)\n",
                wait.elapsed.value(),
                run.completed ? "completed" : "browned out",
                run.vmin.value());
    return 0;
}
