/**
 * @file
 * Reconfigurable-buffer example (Capybara-style banked storage): profile
 * the same tasks under different bank configurations, tagging each with
 * Culpeo's buffer identifier (Section V-B), then choose a configuration
 * per task: small configs recharge fast but cannot source the radio;
 * the full array runs everything but takes longest to fill.
 */

#include <cstdio>
#include <memory>

#include "core/api.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "util/logging.hpp"
#include "load/library.hpp"
#include "sim/bank_array.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    const sim::BankArray array(sim::capybaraBankArray());
    const auto base = sim::capybaraConfig();
    const Watts harvest(2.0_mW);

    const struct
    {
        core::TaskId id;
        const char *name;
        load::CurrentProfile profile;
    } tasks[] = {
        {1, "photo_sense", load::photoSense()},
        {2, "imu_read", load::imuRead()},
        {3, "radio", load::uniform(40.0_mA, 20.0_ms).renamed("radio")},
    };

    // One Culpeo instance; per-configuration data is distinguished by
    // the buffer tag, exactly as the paper's interface prescribes.
    core::Culpeo culpeo(core::modelFromConfig(base),
                        std::make_unique<core::UArchProfiler>());

    std::printf("%-6s %12s %14s | %12s %12s %12s\n", "banks", "cap",
                "recharge", tasks[0].name, tasks[1].name, tasks[2].name);
    for (int i = 0; i < 78; ++i)
        std::putchar('-');
    std::putchar('\n');

    for (unsigned banks = 1; banks <= array.totalBanks(); ++banks) {
        culpeo.setBufferConfig(banks);
        const auto cfg = array.powerSystemFor(banks, base);
        // The model must describe *this* configuration.
        core::Culpeo tagged(core::modelFromConfig(cfg),
                            std::make_unique<core::UArchProfiler>());
        std::printf("%-6u %9.0f mF %11.1f s |", banks,
                    cfg.capacitor.capacitance.value() * 1e3,
                    array.rechargeEstimate(banks, harvest, base).value());
        for (const auto &task : tasks) {
            // Profiling an infeasible task browns out and stores
            // nothing; silence the expected warning.
            culpeo::log::setVerbose(false);
            harness::profileTaskFrom(cfg, cfg.monitor.vhigh, tagged,
                                     task.id, task.profile);
            culpeo::log::setVerbose(true);
            const double vsafe = tagged.getVsafe(task.id).value();
            const bool feasible = harness::completesFrom(
                cfg, Volts(std::min(vsafe, 2.56)), task.profile);
            if (feasible)
                std::printf(" %9.3f V ", vsafe);
            else
                std::printf(" %10s ", "infeasible");
        }
        std::putchar('\n');
    }

    std::printf("\nPolicy this table suggests: keep one bank active for\n"
                "the periodic sensing duty cycle (fast recharge), and\n"
                "switch the full array onto the rail before radio work.\n"
                "Culpeo's buffer tags keep the per-configuration Vsafe\n"
                "values separate so the scheduler can query the right\n"
                "one after each reconfiguration.\n");
    return 0;
}
