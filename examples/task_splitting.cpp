/**
 * @file
 * Programmer-facing example from Section III: use per-task Vsafe values
 * during development to decide how to structure atomic tasks — e.g.,
 * whether operating the radio at the end of a compute task needs a
 * higher starting voltage than operating it at the beginning, and
 * whether splitting a long task into two separately-dispatched halves
 * lowers the bar for each.
 */

#include <cstdio>

#include "core/vsafe_multi.hpp"
#include "core/vsafe_pg.hpp"
#include "load/library.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    const core::PowerSystemModel model =
        core::modelFromConfig(sim::capybaraConfig());

    const auto compute = load::uniform(3.0_mA, 400.0_ms).renamed("compute");
    const auto radio = load::uniform(40.0_mA, 15.0_ms).renamed("radio");

    // Question 1: radio before or after the computation?
    const auto radio_first = radio.then(compute);
    const auto radio_last = compute.then(radio);
    const double v_first = core::culpeoPg(radio_first, model).vsafe.value();
    const double v_last = core::culpeoPg(radio_last, model).vsafe.value();
    std::printf("one atomic task:\n");
    std::printf("  radio first : Vsafe = %.3f V\n", v_first);
    std::printf("  radio last  : Vsafe = %.3f V\n", v_last);
    std::printf("  -> run the radio %s (%.0f mV cheaper): the drop\n"
                "     lands while the buffer is %s.\n\n",
                v_first < v_last ? "FIRST" : "LAST",
                std::abs(v_first - v_last) * 1e3,
                v_first < v_last ? "still full" : "depleted");

    // Question 2: is splitting into two tasks (with a recharge allowed
    // between them) easier to provision than one atomic task?
    const core::PgResult pg_compute = core::culpeoPg(compute, model);
    const core::PgResult pg_radio = core::culpeoPg(radio, model);
    const double atomic = std::min(v_first, v_last);
    std::printf("split into two dispatches:\n");
    std::printf("  compute alone : Vsafe = %.3f V\n",
                pg_compute.vsafe.value());
    std::printf("  radio alone   : Vsafe = %.3f V\n",
                pg_radio.vsafe.value());
    std::printf("  vs. atomic    : Vsafe = %.3f V\n", atomic);

    // Question 3: if they must run back-to-back anyway, what does the
    // sequence composition (Section IV-A) require?
    const std::vector<core::TaskRequirement> seq = {
        core::requirementFrom("radio", pg_radio.vsafe, pg_radio.vdelta,
                              model.voff),
        core::requirementFrom("compute", pg_compute.vsafe,
                              pg_compute.vdelta, model.voff),
    };
    const core::MultiResult multi = core::vsafeMulti(seq, model.voff);
    const double penalty_mv = multi.penalties[0].value() * 1e3;
    std::printf("  back-to-back (Vsafe_multi, radio first): %.3f V\n",
                multi.vsafe_multi.value());
    if (penalty_mv > 0.5) {
        std::printf("    (the radio's drop floor exceeds compute's\n"
                    "     requirement, so %.0f mV of penalty is paid)\n",
                    penalty_mv);
    } else {
        std::printf("    (compute's own requirement already covers the\n"
                    "     radio's drop: the penalty is repaid)\n");
    }

    std::printf("\nVerdict: splitting isolates the cheap compute half\n"
                "(Vsafe %.3f V) so it can run at almost any charge\n"
                "level, while the radio half is dispatched only near a\n"
                "full buffer — exactly the task-structure guidance the\n"
                "Culpeo interface is meant to give (Section III).\n",
                pg_compute.vsafe.value());
    return 0;
}
