/**
 * @file
 * Trace-capture workflow example (Section V-A): a developer profiles a
 * task's current draw on a continuously powered bench rig, saves the
 * trace, and later feeds it to Culpeo-PG — possibly against a different
 * power-system design — without ever re-running the task.
 */

#include <cstdio>

#include "core/vsafe_pg.hpp"
#include "load/library.hpp"
#include "load/trace_io.hpp"

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

int
main()
{
    const std::string path = "/tmp/culpeo_ble_trace.csv";

    // --- On the bench rig: capture the BLE packet at 125 kHz. ---
    const auto live = load::bleRadio();
    const auto captured =
        load::SampledTrace::fromProfile(live, Hertz(125e3));
    load::saveTraceCsv(captured, path);
    std::printf("captured %zu samples of '%s' to %s\n", captured.size(),
                live.name().c_str(), path.c_str());

    // --- Later, on the designer's workstation: load and analyze.
    // Files that crossed a disk are input data: the checked loader
    // returns a typed, line-addressed error instead of aborting when
    // the capture arrives truncated or hand-edited.
    const auto loaded = load::loadTraceCsvChecked(path);
    if (!loaded) {
        std::fprintf(stderr, "trace_replay: %s: %s\n", path.c_str(),
                     loaded.error().message().c_str());
        return 1;
    }
    const auto &trace = *loaded;
    std::printf("loaded   %zu samples at %.0f kHz\n\n", trace.size(),
                trace.rate().value() / 1e3);

    // Evaluate the same captured trace against candidate power systems:
    // the stock 45 mF bank and an aged one.
    const auto fresh = core::modelFromConfig(sim::capybaraConfig());
    auto aged_cfg = sim::capybaraConfig();
    aged_cfg.capacitor.esr_multiplier = 2.0;
    aged_cfg.capacitor.capacitance_fraction = 0.8;
    const auto aged = core::modelFromConfig(aged_cfg);

    const auto v_fresh = core::culpeoPg(trace, fresh);
    const auto v_aged = core::culpeoPg(trace, aged);
    std::printf("Vsafe on the fresh bank : %.3f V (drop %3.0f mV)\n",
                v_fresh.vsafe.value(), v_fresh.vdelta.value() * 1e3);
    std::printf("Vsafe on the aged bank  : %.3f V (drop %3.0f mV)\n",
                v_aged.vsafe.value(), v_aged.vdelta.value() * 1e3);

    // The trace can also be reconstructed into a replayable profile.
    const auto replay = load::profileFromTrace(trace, "ble_replay");
    std::printf("\nreconstructed profile: %zu segments, %.1f ms, "
                "%.3f mJ at Vout\n", replay.segments().size(),
                replay.duration().value() * 1e3,
                replay.energyAt(fresh.vout).value() * 1e3);

    std::remove(path.c_str());
    std::printf("\nProfiling once on the rig decouples the application\n"
                "developer from the power-system designer: the same\n"
                "trace answers Vsafe questions for any candidate bank\n"
                "(Section III).\n");
    return 0;
}
