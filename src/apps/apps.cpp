#include "apps.hpp"

#include "load/library.hpp"

namespace culpeo::apps {

using namespace units::literals;

sim::PowerSystemConfig
smallBufferConfig()
{
    // Two of the six-part bank's supercapacitors: one third the
    // capacitance, three times every branch resistance.
    sim::PowerSystemConfig cfg = sim::capybaraConfig();
    cfg.capacitor.capacitance = units::Farads(15e-3);
    cfg.capacitor.series_esr = units::Ohms(4.5);
    cfg.capacitor.bulk_resistance = units::Ohms(27.0);
    cfg.capacitor.surface_resistance = units::Ohms(3.6);
    cfg.capacitor.leakage = units::Amps(40e-9);
    return cfg;
}

AppSpec
periodicSensing(Seconds period)
{
    AppSpec app;
    app.name = "periodic-sensing";
    app.power = smallBufferConfig();
    // Weak indoor-solar class harvest: the achievable 4.5 s period just
    // fits the recharge latency between events; 3 s does not (Fig. 13).
    app.harvest = 1.2_mW;

    sched::EventSpec imu;
    imu.name = "imu";
    imu.arrival = sched::Arrival::Periodic;
    imu.interval = period;
    imu.deadline = period; // Lost when the inter-sample deadline slips.
    imu.chain = {{task_ids::imu_read, "imu_read", load::imuRead()}};
    app.events.push_back(imu);

    app.background = sched::SchedTask{task_ids::photo_sense, "photo_sense",
                                      load::photoSense()};
    app.background_period = 60.0_ms;
    return app;
}

AppSpec
responsiveReporting(Seconds mean_interarrival)
{
    AppSpec app;
    app.name = "responsive-reporting";
    app.power = sim::capybaraConfig();
    app.harvest = 3.5_mW;

    sched::EventSpec report;
    report.name = "report";
    report.arrival = sched::Arrival::Poisson;
    report.interval = mean_interarrival;
    report.deadline = 3.0_s; // Respond within 3 seconds or lose the event.
    report.chain = {
        {task_ids::imu_read, "imu_read", load::imuRead()},
        {task_ids::encrypt, "encrypt", load::encrypt()},
        {task_ids::ble_report, "ble_send_listen",
         load::bleSendListen(2.0_s)},
    };
    app.events.push_back(report);

    app.background = sched::SchedTask{task_ids::photo_sense, "photo_sense",
                                      load::photoSense()};
    app.background_period = 60.0_ms;
    return app;
}

AppSpec
noiseMonitoring(Seconds mic_period, Seconds ble_interarrival)
{
    AppSpec app;
    app.name = "noise-monitoring";
    app.power = sim::capybaraConfig();
    app.harvest = 2.5_mW;

    sched::EventSpec mic;
    mic.name = "mic";
    mic.arrival = sched::Arrival::Periodic;
    mic.interval = mic_period;
    mic.deadline = mic_period;
    mic.chain = {{task_ids::mic_sample, "mic_sample", load::micSample()}};
    app.events.push_back(mic);

    sched::EventSpec ble;
    ble.name = "ble";
    ble.arrival = sched::Arrival::Poisson;
    ble.interval = ble_interarrival;
    ble.deadline = 15.0_s;
    ble.chain = {{task_ids::ble_nmr, "ble_report",
                  load::bleSendListen(1.0_s)}};
    app.events.push_back(ble);

    app.background = sched::SchedTask{task_ids::fft, "fft",
                                      load::fftCompute()};
    app.background_period = 150.0_ms;
    return app;
}

} // namespace culpeo::apps
