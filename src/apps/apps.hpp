/**
 * @file
 * The three full, event-driven evaluation applications (Section VI-B):
 *
 *  - Periodic Sensing (PS): read 32 IMU samples every 4.5 s on a 15 mF
 *    buffer; background photoresistor averaging. An event is lost when
 *    the inter-sample deadline is missed.
 *  - Responsive Reporting (RR): GPIO interrupts arrive Poisson
 *    (lambda = 45 s); each triggers sense -> encrypt -> BLE send +
 *    2 s listen, due within 3 s. Background photoresistor averaging.
 *  - Noise Monitoring & Reporting (NMR): 256 microphone samples every
 *    7 s; Poisson (lambda = 30 s) interrupts trigger a BLE report +
 *    listen due within 15 s; background FFT.
 *
 * Each factory takes the event interval so the Figure 13 sweep (slow /
 * achievable / too-fast) can reuse the same construction.
 */

#ifndef CULPEO_APPS_APPS_HPP
#define CULPEO_APPS_APPS_HPP

#include "sched/app.hpp"

namespace culpeo::apps {

using sched::AppSpec;
using units::Seconds;

/** Capybara power system with a 15 mF two-part bank (PS's buffer). */
sim::PowerSystemConfig smallBufferConfig();

/** Periodic Sensing. @p period defaults to the achievable 4.5 s. */
AppSpec periodicSensing(Seconds period = Seconds(4.5));

/** Responsive Reporting. @p mean_interarrival defaults to 45 s. */
AppSpec responsiveReporting(Seconds mean_interarrival = Seconds(45.0));

/**
 * Noise Monitoring & Reporting. @p mic_period defaults to 7 s and
 * @p ble_interarrival to 30 s.
 */
AppSpec noiseMonitoring(Seconds mic_period = Seconds(7.0),
                        Seconds ble_interarrival = Seconds(30.0));

/** Stable task identifiers used across the applications. */
namespace task_ids {
inline constexpr core::TaskId imu_read = 1;
inline constexpr core::TaskId photo_sense = 2;
inline constexpr core::TaskId encrypt = 3;
inline constexpr core::TaskId ble_report = 4;
inline constexpr core::TaskId mic_sample = 5;
inline constexpr core::TaskId fft = 6;
inline constexpr core::TaskId ble_nmr = 7;
} // namespace task_ids

} // namespace culpeo::apps

#endif // CULPEO_APPS_APPS_HPP
