/**
 * @file
 * Base-ISA commit kernels, runtime tier dispatch, and the batched
 * crossing solver (DESIGN.md §15). The scalar (w1) tier is
 * instantiated here with the project's default flags; the wide tiers
 * live in commit_kernel_avx2.cpp / commit_kernel_avx512.cpp so only
 * those TUs carry ISA-specific codegen. CPUID decides once per
 * process which instantiation runs, so one binary serves every host.
 */

#include "batch/commit_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#define CULPEO_KERNEL_NS w1
#define CULPEO_KERNEL_W 1
#include "batch/commit_kernel_impl.inc"
#undef CULPEO_KERNEL_NS
#undef CULPEO_KERNEL_W

namespace culpeo::batch {

#ifdef CULPEO_SIMD_AVX2
namespace w4 {
void fastExpArrayImpl(const double *x, double *out, std::size_t n);
void commitWarmImpl(CommitPanel &p);
} // namespace w4
#endif

#ifdef CULPEO_SIMD_AVX512
namespace w8 {
void fastExpArrayImpl(const double *x, double *out, std::size_t n);
void commitWarmImpl(CommitPanel &p);
} // namespace w8
#endif

namespace simd {

const char *tierName(Tier tier)
{
    switch (tier) {
    case Tier::Wide8:
        return "wide8";
    case Tier::Wide4:
        return "wide4";
    case Tier::Scalar:
        break;
    }
    return "scalar";
}

Tier detectedTier()
{
    static const Tier tier = [] {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
#ifdef CULPEO_SIMD_AVX512
        if (__builtin_cpu_supports("avx512f"))
            return Tier::Wide8;
#endif
#ifdef CULPEO_SIMD_AVX2
        if (__builtin_cpu_supports("avx2") &&
            __builtin_cpu_supports("fma"))
            return Tier::Wide4;
#endif
#endif
        return Tier::Scalar;
    }();
    return tier;
}

Tier activeTier()
{
    static const Tier tier = [] {
        Tier t = detectedTier();
        if (const char *env = std::getenv("CULPEO_SIMD_WIDTH")) {
            const int want = std::atoi(env);
            if (want == 1 || want == 4 || want == 8)
                t = Tier(std::min(static_cast<int>(t), want));
        }
        return t;
    }();
    return tier;
}

} // namespace simd

namespace {

using ExpFn = void (*)(const double *, double *, std::size_t);
using CommitFn = void (*)(CommitPanel &);

struct TierFns
{
    ExpFn exp;
    CommitFn commit;
};

simd::Tier clampToDetected(simd::Tier tier)
{
    const simd::Tier det = simd::detectedTier();
    return simd::width(tier) > simd::width(det) ? det : tier;
}

TierFns tierFns(simd::Tier tier)
{
    switch (tier) {
#ifdef CULPEO_SIMD_AVX512
    case simd::Tier::Wide8:
        return {&w8::fastExpArrayImpl, &w8::commitWarmImpl};
#endif
#ifdef CULPEO_SIMD_AVX2
    case simd::Tier::Wide4:
        return {&w4::fastExpArrayImpl, &w4::commitWarmImpl};
#endif
    default:
        return {&w1::fastExpArrayImpl, &w1::commitWarmImpl};
    }
}

void sizeOutputs(CommitPanel &p)
{
    const std::size_t n = p.size();
    p.vb1.resize(n);
    p.vs1.resize(n);
    p.vend.resize(n);
    p.deep.resize(n);
    p.scratch_x.resize(n);
    p.scratch_e.resize(n);
}

void flagDeep(CommitPanel &p)
{
    const std::size_t n = p.size();
    for (std::size_t k = 0; k < n; ++k)
        p.deep[k] = (p.vb1[k] < 0.0 || p.vs1[k] < 0.0) ? 1 : 0;
}

} // namespace

void fastExpArray(const double *x, double *out, std::size_t n,
                  simd::Tier tier)
{
    tierFns(clampToDetected(tier)).exp(x, out, n);
}

void commitPanelExact(CommitPanel &p)
{
    sizeOutputs(p);
    const std::size_t n = p.size();
    for (std::size_t k = 0; k < n; ++k) {
        const double net = p.net[k];
        const double dtk = p.dt[k];
        const double d_inf = -net * p.beta[k] * p.tau[k];
        const double q = p.q0[k] - net * dtk / p.ct[k];
        const double e = p.exp_hint[k] >= 0.0
            ? p.exp_hint[k]
            : std::exp(-dtk / p.tau[k]);
        const double d = (p.d0[k] - d_inf) * e + d_inf;
        p.vb1[k] = q + p.cs_over_ct[k] * d;
        p.vs1[k] = q - p.cb_over_ct[k] * d;
        p.vend[k] = p.curve_a[k] + p.curve_b[k] * dtk + p.curve_c[k] * e;
    }
    flagDeep(p);
}

void commitPanelWarm(CommitPanel &p, simd::Tier tier)
{
    sizeOutputs(p);
    tierFns(clampToDetected(tier)).commit(p);
    flagDeep(p);
}

void commitPanelWarm(CommitPanel &p)
{
    commitPanelWarm(p, simd::activeTier());
}

void solveCrossings(CrossingPanel &p, simd::Tier tier)
{
    const std::size_t n = p.size();
    p.out.assign(n, -1.0);
    p.lo.resize(n);
    p.hi.resize(n);
    p.t.resize(n);
    p.x.resize(n);
    p.e.resize(n);
    p.idx.resize(n);
    p.active.assign(n, 0);

    // Piece selection: the same stationary-point split and bracket
    // tests as Curve::fastCrossing, with the warm exp flavor.
    for (std::size_t k = 0; k < n; ++k) {
        const double a = p.a[k];
        const double b = p.b[k];
        const double c = p.c[k];
        const double tau = p.tau[k];
        const double horizon = p.horizon[k];
        const double level = p.level[k];
        const bool falling = p.falling[k] != 0;
        double t_star = -1.0;
        if (c != 0.0 && b != 0.0) {
            const double ratio = b * tau / c;
            if (ratio > 0.0 && ratio <= 1.0) {
                const double ts = -tau * std::log(ratio);
                if (ts > 0.0 && ts < horizon)
                    t_star = ts;
            }
        }
        const double knots[3] = {0.0, t_star > 0.0 ? t_star : horizon,
                                 horizon};
        for (int piece = 0; piece < 2; ++piece) {
            const double lo = knots[piece];
            const double hi = knots[piece + 1];
            if (hi <= lo)
                continue;
            const double v_lo =
                a + b * lo + c * detail::fastExpScalar(-lo / tau);
            const double v_hi =
                a + b * hi + c * detail::fastExpScalar(-hi / tau);
            const bool brackets = falling
                ? (v_lo >= level && v_hi < level)
                : (v_lo < level && v_hi >= level);
            if (!brackets)
                continue;
            p.lo[k] = lo;
            p.hi[k] = hi;
            p.t[k] = 0.5 * (lo + hi);
            p.active[k] = 1;
            break;
        }
    }

    // Newton sweeps, batched across queries: each sweep evaluates the
    // exp of every still-active query through the tier's vector
    // kernel, then runs fastCrossing's exact bracket/safeguard/whisker
    // update per query. Sequence and result match the inline solve.
    const TierFns fns = tierFns(clampToDetected(tier));
    for (int iter = 0; iter < 24; ++iter) {
        std::size_t m = 0;
        for (std::size_t k = 0; k < n; ++k) {
            if (!p.active[k])
                continue;
            if (p.hi[k] - p.lo[k] <= 1e-12 * (1.0 + p.hi[k])) {
                p.out[k] = p.hi[k];
                p.active[k] = 0;
                continue;
            }
            p.idx[m] = static_cast<std::uint32_t>(k);
            p.x[m] = -p.t[k] / p.tau[k];
            ++m;
        }
        if (m == 0)
            break;
        fns.exp(p.x.data(), p.e.data(), m);
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t k = p.idx[j];
            const double e = p.e[j];
            double lo = p.lo[k];
            double hi = p.hi[k];
            const double t = p.t[k];
            const double v = p.a[k] + p.b[k] * t + p.c[k] * e;
            const bool crossed =
                p.falling[k] != 0 ? v < p.level[k] : v >= p.level[k];
            (crossed ? hi : lo) = t;
            const double dv = p.b[k] - (p.c[k] / p.tau[k]) * e;
            double tn = dv != 0.0 ? t - (v - p.level[k]) / dv
                                  : 0.5 * (lo + hi);
            if (std::abs(tn - t) <= 1e-13 * (1.0 + t)) {
                // Newton stalled at the root with a stale far side;
                // probe a whisker so the width test can fire. Checked
                // on the *raw* step, before the bracket-escape bisect:
                // the legacy inline solve tested after, where a stalled
                // step (tn == t == the just-pinned bracket side) always
                // escaped to bisection first and the whisker was
                // unreachable — leaving the far side to shrink at
                // bisection rate and the 24-sweep budget exhausted.
                const double whisker = 1e-12 * (1.0 + t);
                tn = crossed
                    ? std::max(lo + 0.25 * (t - lo), t - whisker)
                    : std::min(hi - 0.25 * (hi - t), t + whisker);
            } else if (!(tn > lo && tn < hi)) {
                tn = 0.5 * (lo + hi);
            }
            p.lo[k] = lo;
            p.hi[k] = hi;
            p.t[k] = tn;
        }
    }
    for (std::size_t k = 0; k < n; ++k) {
        if (p.active[k])
            p.out[k] = p.hi[k];
    }
}

void solveCrossings(CrossingPanel &p)
{
    solveCrossings(p, simd::activeTier());
}

} // namespace culpeo::batch
