/**
 * @file
 * Packed SoA kernels for the batch engine's commit pass (DESIGN.md
 * §15).
 *
 * The control pass packs every scheduled macro step into a dense
 * CommitPanel — no index gathers, one contiguous lane per column — and
 * the commit pass runs one of two kernels over it:
 *
 *  - commitPanelExact: per-lane `std::exp`, expression-for-expression
 *    identical to `Capacitor::advanceAnalytic`, so exact_replay mode
 *    keeps its bit-identity proof against sim::Device.
 *  - commitPanelWarm: branchless width-templated lanes (4/8-wide
 *    doubles with a scalar tail) using the polynomial fastExp below,
 *    runtime-dispatched per simd::Tier.
 *
 * Warm-mode level crossings batch the same way: the control pass
 * defers its bracket-Newton root finds into a CrossingPanel and
 * solveCrossings() runs the Newton iterations across all queries at
 * once, with the exp evaluations of each sweep vectorized. The
 * per-query update sequence (bracket shrink, Newton-vs-bisect
 * safeguard, stall whisker, crossed-side return) follows the engine's
 * removed scalar fastCrossing, with one fix: the stall whisker is
 * detected on the raw Newton step, so a query whose Newton iterate has
 * pinned one bracket side converges in a handful of sweeps instead of
 * exhausting the budget at bisection rate (see solveCrossings).
 */

#ifndef CULPEO_BATCH_COMMIT_KERNEL_HPP
#define CULPEO_BATCH_COMMIT_KERNEL_HPP

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "batch/simd.hpp"

namespace culpeo::batch {

namespace detail {

// exp(x) as magic-number range reduction + degree-13 Horner Taylor on
// the reduced interval (|r| <= ln2/2, remainder < 1e-17 relative) and
// a two-step 2^n scale. Branchless — clamps instead of branching on
// overflow/underflow so the loop bodies in commit_kernel_impl.inc
// vectorize; NaN propagates through both clamps. Accuracy is ~1 ulp
// against std::exp over the finite range.
inline double fastExpScalar(double x)
{
    constexpr double kLog2e = 1.4426950408889634074;
    constexpr double kMagic = 6755399441055744.0; // 1.5 * 2^52
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    // exp(709) is the largest finite power; below -745 the two-step
    // scale underflows to zero, which is the correct limit.
    x = x > 709.0 ? 709.0 : x;
    x = x < -745.0 ? -745.0 : x;
    const double z = x * kLog2e + kMagic;
    const double n = z - kMagic;
    double r = x - n * kLn2Hi;
    r -= n * kLn2Lo;
    double p = 1.0 / 6227020800.0;
    p = p * r + 1.0 / 479001600.0;
    p = p * r + 1.0 / 39916800.0;
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // n sits in the mantissa bits of z (magic add), so its integer
    // value falls out of an int64 subtract — no double->int conversion,
    // which AVX2 lacks for 64-bit lanes. The +2048 offset keeps the
    // halving shift logical (n >= -1075).
    const std::int64_t ni =
        std::bit_cast<std::int64_t>(z) - std::bit_cast<std::int64_t>(kMagic);
    const std::int64_t n1 = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(ni + 2048) >> 1) - 1024; // floor(n/2)
    const std::int64_t n2 = ni - n1;
    const double s1 = std::bit_cast<double>(
        static_cast<std::uint64_t>(n1 + 1023) << 52);
    const double s2 = std::bit_cast<double>(
        static_cast<std::uint64_t>(n2 + 1023) << 52);
    return p * s1 * s2;
}

// expm1(x) without the catastrophic cancellation of fastExp(x) - 1
// near zero: the same Taylor tail evaluated directly in x when |x| is
// small enough that no range reduction is needed.
inline double fastExpm1Scalar(double x)
{
    if (!(x > -0.5 && x < 0.5))
        return fastExpScalar(x) - 1.0;
    double p = 1.0 / 6227020800.0;
    p = p * x + 1.0 / 479001600.0;
    p = p * x + 1.0 / 39916800.0;
    p = p * x + 1.0 / 3628800.0;
    p = p * x + 1.0 / 362880.0;
    p = p * x + 1.0 / 40320.0;
    p = p * x + 1.0 / 5040.0;
    p = p * x + 1.0 / 720.0;
    p = p * x + 1.0 / 120.0;
    p = p * x + 1.0 / 24.0;
    p = p * x + 1.0 / 6.0;
    p = p * x + 0.5;
    p = p * x + 1.0;
    return p * x;
}

} // namespace detail

/** Polynomial exp/expm1 used by the warm-mode kernels (~1 ulp). */
inline double fastExp(double x) { return detail::fastExpScalar(x); }
inline double fastExpm1(double x) { return detail::fastExpm1Scalar(x); }

/** Elementwise fastExp over a contiguous array, on the given tier. */
void fastExpArray(const double *x, double *out, std::size_t n,
                  simd::Tier tier);

/**
 * One round's scheduled macro steps, packed densely by the control
 * pass. Column k holds everything the closed-form q/d commit of lane
 * `lane[k]` needs — the kernels never touch the engine's lane-indexed
 * state, so they stream contiguous memory.
 */
struct CommitPanel
{
    // Packed inputs (one column per scheduled lane).
    std::vector<std::uint32_t> lane;
    std::vector<double> q0;         ///< (cb vb + cs vs) / ct at pack time.
    std::vector<double> d0;         ///< vb - vs at pack time.
    std::vector<double> ct;
    std::vector<double> cs_over_ct; ///< cs / ct (the commit's division).
    std::vector<double> cb_over_ct; ///< cb / ct.
    std::vector<double> tau;
    std::vector<double> beta;
    std::vector<double> net;        ///< Leak-inclusive state current.
    std::vector<double> dt;         ///< Committed step length.
    /** exp(-dt/tau) from the accept probe; < 0 when dt was shortened. */
    std::vector<double> exp_hint;
    // Terminal-voltage curve coefficients (tau is shared above).
    std::vector<double> curve_a, curve_b, curve_c;

    // Kernel outputs, sized by the kernel entry points.
    std::vector<double> vb1, vs1;
    /** curve.at(dt), reusing the kernel's exp — the staged boundary
     *  sample the scatter loop hands to SegApply for non-deep lanes. */
    std::vector<double> vend;
    std::vector<std::uint8_t> deep; ///< Negative branch: Euler delegate.

    // Warm exp staging. Two arrays, not one: the exp pass must read
    // and write distinct buffers or GCC's runtime aliasing check sends
    // the loop down its scalar-versioned copy.
    std::vector<double> scratch_x, scratch_e;

    std::size_t size() const { return lane.size(); }

    void clear()
    {
        lane.clear();
        q0.clear();
        d0.clear();
        ct.clear();
        cs_over_ct.clear();
        cb_over_ct.clear();
        tau.clear();
        beta.clear();
        net.clear();
        dt.clear();
        exp_hint.clear();
        curve_a.clear();
        curve_b.clear();
        curve_c.clear();
    }

    void push(std::uint32_t lane_idx, double q0_v, double d0_v, double ct_v,
              double cs_over_ct_v, double cb_over_ct_v, double tau_v,
              double beta_v, double net_v, double dt_v, double exp_hint_v,
              double curve_a_v, double curve_b_v, double curve_c_v)
    {
        lane.push_back(lane_idx);
        q0.push_back(q0_v);
        d0.push_back(d0_v);
        ct.push_back(ct_v);
        cs_over_ct.push_back(cs_over_ct_v);
        cb_over_ct.push_back(cb_over_ct_v);
        tau.push_back(tau_v);
        beta.push_back(beta_v);
        net.push_back(net_v);
        dt.push_back(dt_v);
        exp_hint.push_back(exp_hint_v);
        curve_a.push_back(curve_a_v);
        curve_b.push_back(curve_b_v);
        curve_c.push_back(curve_c_v);
    }
};

/**
 * Exact-replay commit: per-lane std::exp, the precise expression order
 * of the scalar Capacitor::advanceAnalytic. Always the base-ISA TU.
 */
void commitPanelExact(CommitPanel &panel);

/** Warm commit on the given tier (clamped to detectedTier()). */
void commitPanelWarm(CommitPanel &panel, simd::Tier tier);

/** Warm commit on simd::activeTier(). */
void commitPanelWarm(CommitPanel &panel);

/**
 * Deferred warm-mode level-crossing queries: one v(t) curve, level and
 * horizon per column. solveCrossings answers all of them with batched
 * bracket-Newton sweeps (vectorized exp per sweep); out[k] is the
 * crossed-side bracket end, or -1 when the curve never brackets the
 * level in the requested direction.
 */
struct CrossingPanel
{
    // Inputs.
    std::vector<double> a, b, c, tau;
    std::vector<double> level, horizon;
    std::vector<std::uint8_t> falling;

    // Output.
    std::vector<double> out;

    // Newton state (sized by solveCrossings).
    std::vector<double> lo, hi, t;
    std::vector<double> x, e;
    std::vector<std::uint32_t> idx;
    std::vector<std::uint8_t> active;

    std::size_t size() const { return a.size(); }

    void clear()
    {
        a.clear();
        b.clear();
        c.clear();
        tau.clear();
        level.clear();
        horizon.clear();
        falling.clear();
    }

    /** Queue one query; returns its column for reading out[] later. */
    std::size_t push(double a_v, double b_v, double c_v, double tau_v,
                     double level_v, double horizon_v, bool falling_v)
    {
        a.push_back(a_v);
        b.push_back(b_v);
        c.push_back(c_v);
        tau.push_back(tau_v);
        level.push_back(level_v);
        horizon.push_back(horizon_v);
        falling.push_back(falling_v ? 1 : 0);
        return a.size() - 1;
    }
};

void solveCrossings(CrossingPanel &panel, simd::Tier tier);
void solveCrossings(CrossingPanel &panel);

} // namespace culpeo::batch

#endif // CULPEO_BATCH_COMMIT_KERNEL_HPP
