// 8-wide tier of the warm commit kernels: this TU is compiled with
// -mavx512f (see src/batch/CMakeLists.txt) and selected at runtime by
// the CPUID dispatch in commit_kernel.cpp.
#define CULPEO_KERNEL_NS w8
#define CULPEO_KERNEL_W 8
#include "batch/commit_kernel_impl.inc"
