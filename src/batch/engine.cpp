#include "batch/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "batch/commit_kernel.hpp"
#include "sim/harvester.hpp"
#include "sim/segment_curve.hpp"
#include "util/logging.hpp"

namespace culpeo::batch {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Longest single analytic chunk of an unbounded wait (device.cpp). */
constexpr double kMaxIdleChunk = 600.0;

/**
 * Terminal-voltage curve of one analytic macro step, v(t) = a + b t +
 * c exp(-t/tau): the shared sim::SegmentCurve, so committed macro
 * steps and located crossings are bit-identical between the batch
 * engine and sim::PowerSystem by construction — including the
 * 64-iteration bisection returning the crossed-side bracket end.
 * Warm mode swaps the crossing search for the batched bracket-Newton
 * solver in commit_kernel.cpp (solveCrossings), fed per round through
 * the engine's CrossingPanel.
 */
using Curve = sim::SegmentCurve;

/** Lane controller sub-state between lockstep rounds. */
enum class Sub : std::uint8_t
{
    OpBegin,  ///< Start (or finish) an op of the program.
    WaitTop,  ///< Loop top of a WaitLevel/WaitEnabled op.
    SegStep,  ///< One controller iteration of the active segment.
    SegCross, ///< Warm commit parked on the round's crossing panel.
    SegApply, ///< Post-commit bookkeeping after the SoA commit pass.
    SegEnd,   ///< Segment over; hand back to its owning op.
    Done,     ///< Program complete.
};

/** What the active segment belongs to (dispatch at SegEnd). */
enum class SegOwner : std::uint8_t
{
    WaitChunk, ///< One advanceIdleChunk quantum of a wait op.
    Profile,   ///< One profile segment of a RunProfile op.
    IdleChunk, ///< One chunk of an IdleFor op.
};

/** Mirror of the scalar segment-runner invocation state (one call). */
struct SegCtx
{
    double remaining = 0.0;
    double i_load = 0.0;
    double fallback = 0.0;
    bool stop_on_failure = false;
    bool has_stop_level = false;
    double stop_level = 0.0;
    bool stop_when_enabled = false;
    double hint = 0.0;
    bool stopped = false;
    unsigned consec_ref = 0; ///< Consecutive reference steps (storm).
    // SegmentResult accumulator.
    double vmin = 0.0;
    double vend = 0.0;
    bool power_failed = false;
    bool collapsed = false;
    bool stopped_at_level = false;
    bool stopped_enabled = false;
};

void
validateOp(const LaneOp &op)
{
    switch (op.kind) {
    case OpKind::WaitLevel:
        log::fatalIf(!op.stop_when_off && std::isfinite(op.deadline.value()),
                     "rechargeTo-style waits are unbounded: a finite "
                     "deadline requires stop_when_off");
        break;
    case OpKind::RunProfile:
        log::fatalIf(op.profile == nullptr,
                     "RunProfile op requires a profile");
        log::fatalIf(op.dt.value() <= 0.0,
                     "RunProfile dt must be positive");
        break;
    case OpKind::WaitEnabled:
    case OpKind::IdleFor:
        break;
    }
}

/** A macro step scheduled by the control pass, applied by commitPass. */
struct Pending
{
    double dt = 0.0;      ///< Committed step length.
    double i_state = 0.0; ///< Leak-inclusive state current (q/d forcing).
    double net_avg = 0.0; ///< External trapezoidal net current.
    Curve curve;          ///< Terminal-voltage curve over the step.
    bool level_first = false;
    bool event = false;
    double hint_next = 0.0; ///< Hint after a plain accept.
    bool deep = false; ///< Commit pass found a negative branch: delegate.
    /** minOver(dt) precomputed by the control pass (full-span commits). */
    double vmin_full = 0.0;
    bool have_vmin = false;
    /**
     * Boundary sample staged by the commit kernel's scatter loop:
     * curve.at(dt), reusing the kernel's exp so SegApply never re-pays
     * it. Deep-discharge lanes get the flag cleared again — their
     * closed-form pass is discarded, and the post-Euler recompute in
     * segApply must be the macro step's only report.
     */
    double staged_vend = 0.0;
    bool staged = false;
    // SegCross resume state (warm mode parks here while the round's
    // CrossingPanel answers its root finds).
    double horizon = 0.0;  ///< dt_try of the probe being committed.
    double exp_try = -1.0; ///< exp(-horizon/tau) from the accept probe.
    std::int32_t q_event = -1; ///< Panel column of the voff/vhigh query.
    std::int32_t q_level = -1; ///< Panel column of the stop-level query.
};

} // namespace

/** Per-lane runtime: scalar components, cached constants, controller. */
struct LaneRt
{
    explicit LaneRt(const LaneSpec &spec)
        : options(spec.options),
          program(spec.program),
          repeat(spec.repeat),
          source(spec.source),
          harvester(spec.harvest),
          system(spec.config),
          scratch_cap(spec.config.capacitor)
    {
        hsrc = spec.harvester != nullptr
            ? spec.harvester
            : static_cast<const sim::Harvester *>(&harvester);
        system.setHarvester(hsrc);
        const std::optional<Watts> cp = hsrc->constantPower();
        harvest_const = cp.has_value();
        harvest_w = harvest_const ? cp->value() : 0.0;

        const sim::TwoBranchCoefficients k =
            system.capacitor().analyticCoefficients();
        tau = k.tau;
        beta = k.beta;
        gamma = k.gamma;
        ct = k.c_total;
        cb = k.cb;
        cs = k.cs;
        rth = k.rth;
        const sim::CapacitorConfig &cc = spec.config.capacitor;
        gb = 1.0 / cc.agedBulkResistance().value();
        gs = 1.0 / cc.agedSurfaceResistance().value();
        leak = cc.leakage.value();

        const sim::OutputBoosterConfig &oc = spec.config.output;
        vout = oc.vout.value();
        dropout = oc.dropout.value();
        quiescent = oc.quiescent.value();
        eff = oc.efficiency;

        const sim::InputBoosterConfig &ic = spec.config.input;
        in_eff = ic.efficiency;
        in_vhigh = ic.vhigh.value();
        in_max = ic.max_charge_current.value();

        voff = spec.config.monitor.voff.value();
        vhigh = spec.config.monitor.vhigh.value();
        idle_dt = options.idle_dt.value();
    }

    // --- Static per-lane data ---
    sim::DeviceOptions options;
    std::vector<LaneOp> program;
    unsigned repeat = 1;
    /** Dynamic op feeder; overrides program/repeat when non-null. */
    OpSource *source = nullptr;
    sim::ConstantHarvester harvester;
    /** Scalar twin: reference steps and peeled tails run through it. */
    sim::PowerSystem system;
    /** Scratch for the deep-discharge Euler delegation of a commit. */
    sim::Capacitor scratch_cap;
    /** The lane's energy source: spec.harvester or &harvester. */
    const sim::Harvester *hsrc = nullptr;
    /** Strictly constant harvest (equilibrium wait tests are sound). */
    bool harvest_const = true;
    /** Harvest power of the current piece (refreshed per macro step). */
    double harvest_w = 0.0;
    /** Absolute end of the current constancy piece (inf = constant). */
    double piece_end = std::numeric_limits<double>::infinity();

    // Cached electrical constants (no aging mid-run in batch lanes).
    double tau = 1.0, beta = 0.0, gamma = 0.0;
    double ct = 0.0, cb = 0.0, cs = 0.0, rth = 0.0;
    double gb = 0.0, gs = 0.0, leak = 0.0;
    double vout = 0.0, dropout = 0.0, quiescent = 0.0;
    sim::Efficiency eff{};
    double in_eff = 0.0, in_vhigh = 0.0, in_max = 0.0;
    double voff = 0.0, vhigh = 0.0;
    double idle_dt = 1e-3;

    // --- Controller state ---
    Sub sub = Sub::OpBegin;
    SegOwner owner = SegOwner::WaitChunk;
    unsigned op_index = 0;
    unsigned rep_index = 0;
    /** Sourced lanes: the op in flight and the last finished outcome. */
    LaneOp dyn_op;
    OpOutcome last_out;
    bool have_last = false;
    bool enabled = true; ///< Mirror of system.monitor().enabled().
    unsigned failures_base = 0;
    SegCtx seg;
    Pending pc;
    double wait_anchor = 0.0; ///< Wait/idle op start (tick-grid anchor).
    double idle_end = 0.0;    ///< IdleFor: absolute end time.
    std::size_t prof_seg = 0; ///< RunProfile: next profile segment.
    OpOutcome cur;            ///< Outcome of the op in flight.
    LaneResult result;
};

struct BatchEngine::Impl
{
    BatchOptions opts;
    std::vector<std::unique_ptr<LaneRt>> lanes;

    // SoA state arrays (hot data of the commit pass).
    std::vector<double> vb, vs, now;
    std::vector<double> tau, beta, ct, cb, cs;

    /** Macro steps scheduled this round, packed for the SoA kernels. */
    CommitPanel panel;
    /** Warm-mode crossing queries deferred to the round boundary. */
    CrossingPanel cross;
    std::vector<std::uint32_t> cross_lanes;

    // --- Cached scalar formulas (bit-identical to the sim:: models) ---

    /** Capacitor::openCircuitVoltage. */
    double vocOf(std::size_t l) const
    {
        return (cb[l] * vb[l] + cs[l] * vs[l]) / (cb[l] + cs[l]);
    }
    /** Capacitor::theveninVoltage == PowerSystem::restingVoltage. */
    double restingOf(const LaneRt &rt, std::size_t l) const
    {
        return (vb[l] * rt.gb + vs[l] * rt.gs) / (rt.gb + rt.gs);
    }

    /**
     * OutputBooster::computeDraw on branch voltages (vb0, vs0):
     * identical arithmetic to the scalar fixed-point solve. For zero
     * load the iteration is invariant after the first pass (pin == 0
     * regardless of the efficiency estimate), so the closed first pass
     * reproduces the 8-iteration result bit-for-bit — this is the draw
     * the wait-dominated paths hit on every probe.
     */
    double drawAt(const LaneRt &rt, double vb0, double vs0, double i_load,
                  bool &collapsed) const
    {
        const double voc = (vb0 * rt.gb + vs0 * rt.gs) / (rt.gb + rt.gs);
        return drawAtVth(rt, voc, i_load, collapsed);
    }

    double drawAtVth(const LaneRt &rt, double voc, double i_load,
                     bool &collapsed) const
    {
        const double r = rt.rth;
        if (voc <= 0.0) {
            collapsed = true;
            return 0.0;
        }
        if (i_load == 0.0) {
            // The scalar zero-load fixed point degenerates to
            // i0 = (voc - sqrt(voc^2)) / 2r, which is zero up to the
            // rounding of sqrt(voc^2) — at most half an ulp of voc over
            // 2r, i.e. ~1e-17 A here. Exact replay keeps the dance;
            // the fast path draws the quiescent current directly.
            double input = rt.quiescent;
            if (opts.exact_replay) {
                const double i0 = r > 0.0
                    ? (voc - std::sqrt(voc * voc)) / (2.0 * r)
                    : 0.0;
                input = i0 + rt.quiescent;
            }
            collapsed = (voc - input * r) < rt.dropout;
            return input;
        }
        const double pout = rt.vout * i_load;
        double vterm = voc;
        double i_in = 0.0;
        for (int iter = 0; iter < 8; ++iter) {
            const double eta =
                rt.eff.at(Volts(vterm), Amps(i_load));
            const double pin = pout / eta;
            const double disc = voc * voc - 4.0 * r * pin;
            if (disc < 0.0) {
                collapsed = true;
                return (voc * 0.5) / r;
            }
            const double i_new = r > 0.0
                ? (voc - std::sqrt(disc)) / (2.0 * r)
                : pin / voc;
            i_in = i_new;
            const double vterm_new = voc - i_in * r;
            // An exact fixed point makes the remaining passes no-ops
            // (bit-identical exit). The fast path also accepts nV-level
            // convergence, which the scalar's fixed 8 passes reach on
            // the iterations this skips.
            if (vterm_new == vterm ||
                (!opts.exact_replay &&
                 std::abs(vterm_new - vterm) < 1e-9)) {
                vterm = vterm_new;
                break;
            }
            vterm = vterm_new;
        }
        const double input = i_in + rt.quiescent;
        collapsed = (voc - input * r) < rt.dropout;
        return input;
    }

    /**
     * Re-sample a piecewise-constant lane's harvest piece at the
     * lane's current time — the mirror of the scalar analytic loop
     * reading powerAt(now_) at every iteration top. Constant lanes
     * keep their cached harvest_w and infinite piece_end.
     */
    void refreshHarvest(LaneRt &rt, std::size_t l) const
    {
        if (rt.harvest_const)
            return;
        rt.harvest_w = rt.hsrc->powerAt(Seconds(now[l])).value();
        rt.piece_end = rt.hsrc->constantUntil(Seconds(now[l])).value();
    }

    /** InputBooster::chargeCurrent under the lane's constant harvest. */
    double chargeAt(const LaneRt &rt, double voc) const
    {
        if (rt.harvest_w <= 0.0 || voc >= rt.in_vhigh)
            return 0.0;
        const double denom = std::max(voc, 0.1);
        return std::min(rt.in_eff * rt.harvest_w / denom, rt.in_max);
    }

    /** PowerSystem::idleNetCurrentAt at an equalized probe voltage. */
    double idleNetAt(const LaneRt &rt, double voc, bool with_output_draw)
        const
    {
        double i_out = 0.0;
        if (with_output_draw && rt.enabled) {
            // The scalar probe equalizes a capacitor copy at voc; its
            // Thevenin voltage is then (voc gb + voc gs) / (gb + gs).
            const double vth =
                (voc * rt.gb + voc * rt.gs) / (rt.gb + rt.gs);
            bool collapsed = false;
            const double input = drawAtVth(rt, vth, 0.0, collapsed);
            if (!collapsed)
                i_out = input;
        }
        const double i_charge = chargeAt(rt, voc);
        double net = i_out - i_charge;
        if (voc > 0.0)
            net += rt.leak;
        return net;
    }

    /**
     * Capacitor::advanceAnalytic on scratch values, including its
     * deep-discharge delegation to the clamped Euler integrator.
     */
    void probeAdvance(const LaneRt &rt, double vb0, double vs0, double dt,
                      double i_out, double &vb1, double &vs1,
                      double *exp_out = nullptr) const
    {
        double net = i_out;
        const double voc = (rt.cb * vb0 + rt.cs * vs0) / (rt.cb + rt.cs);
        if (voc > 0.0)
            net += rt.leak;
        const double q0 = (rt.cb * vb0 + rt.cs * vs0) / rt.ct;
        const double d0 = vb0 - vs0;
        const double d_inf = -net * rt.beta * rt.tau;
        const double q = q0 - net * dt / rt.ct;
        const double e = opts.exact_replay ? std::exp(-dt / rt.tau)
                                           : fastExp(-dt / rt.tau);
        if (exp_out != nullptr)
            *exp_out = e;
        const double d = (d0 - d_inf) * e + d_inf;
        vb1 = q + (rt.cs / rt.ct) * d;
        vs1 = q - (rt.cb / rt.ct) * d;
        if (vb1 < 0.0 || vs1 < 0.0)
            eulerAdvance(rt, vb0, vs0, dt, i_out, vb1, vs1);
    }

    /** Capacitor::step (clamped Euler sub-stepping) on scratch values. */
    void eulerAdvance(const LaneRt &rt, double vb0, double vs0, double dt,
                      double i_out, double &vb1, double &vs1) const
    {
        double net = i_out;
        const double voc = (rt.cb * vb0 + rt.cs * vs0) / (rt.cb + rt.cs);
        if (voc > 0.0)
            net += rt.leak;
        const auto substeps = std::max<std::size_t>(
            1, std::size_t(std::ceil(dt / (0.25 * rt.tau))));
        const double h = dt / double(substeps);
        vb1 = vb0;
        vs1 = vs0;
        for (std::size_t s = 0; s < substeps; ++s) {
            const double vm =
                (vb1 * rt.gb + vs1 * rt.gs - net) / (rt.gb + rt.gs);
            const double ib = (vb1 - vm) * rt.gb;
            const double is = (vs1 - vm) * rt.gs;
            vb1 = std::max(0.0, vb1 - ib * h / rt.cb);
            vs1 = std::max(0.0, vs1 - is * h / rt.cs);
        }
    }

    // --- Curve evaluation, mode-flavored ---

    /** curve.at(t): exact keeps std::exp (bitwise), warm goes fast. */
    double curveAt(const Curve &c, double t) const
    {
        if (opts.exact_replay)
            return c.at(t);
        return c.a + c.b * t + c.c * fastExp(-t / c.tau);
    }

    /** curve.minOver(horizon) with the mode's exp flavor. */
    double curveMin(const Curve &c, double horizon) const
    {
        if (opts.exact_replay)
            return c.minOver(horizon);
        double m = std::min(c.a + c.c, curveAt(c, horizon));
        const double t = c.stationaryPoint(horizon);
        if (t > 0.0)
            m = std::min(m, curveAt(c, t));
        return m;
    }

    // --- Scalar hand-offs ---

    /** One reference Euler step through the lane's own PowerSystem. */
    sim::StepResult refStep(LaneRt &rt, std::size_t l, double dt,
                            double i_load)
    {
        rt.system.adoptState(Volts(vb[l]), Volts(vs[l]), Seconds(now[l]));
        const sim::StepResult s =
            rt.system.step(Seconds(dt), Amps(i_load));
        vb[l] = rt.system.capacitor().bulkVoltage().value();
        vs[l] = rt.system.capacitor().surfaceVoltage().value();
        now[l] = rt.system.now().value();
        rt.enabled = rt.system.monitor().enabled();
        return s;
    }

    /** analyticEventStep mirror (one step + accumulator merge). */
    void eventStep(LaneRt &rt, std::size_t l, SegCtx &sg)
    {
        const sim::StepResult s = refStep(rt, l, sg.fallback, sg.i_load);
        sg.remaining -= sg.fallback;
        sg.vmin = std::min(sg.vmin, s.terminal.value());
        sg.vend = s.terminal.value();
        sg.power_failed = sg.power_failed || s.power_failed;
        sg.collapsed = sg.collapsed || s.collapsed;
        if ((sg.power_failed || sg.collapsed) && sg.stop_on_failure)
            sg.stopped = true;
        ++sg.consec_ref;
    }

    /**
     * Divergence peel: hand the remainder of the segment to the lane's
     * scalar engine (an event storm means the closed form is re-probing
     * every fallback_dt anyway). The lane re-enters the lockstep at the
     * next segment boundary.
     */
    void peelSegment(LaneRt &rt, std::size_t l)
    {
        SegCtx &sg = rt.seg;
        rt.system.adoptState(Volts(vb[l]), Volts(vs[l]), Seconds(now[l]));
        sim::SegmentOptions o;
        o.fallback_dt = Seconds(sg.fallback);
        o.stop_on_failure = sg.stop_on_failure;
        o.current_tolerance = opts.current_tolerance;
        if (sg.has_stop_level)
            o.stop_above_resting = Volts(sg.stop_level);
        o.stop_when_enabled = sg.stop_when_enabled;
        const sim::SegmentResult res = rt.system.runSegment(
            Seconds(sg.remaining), Amps(sg.i_load), o);
        vb[l] = rt.system.capacitor().bulkVoltage().value();
        vs[l] = rt.system.capacitor().surfaceVoltage().value();
        now[l] = rt.system.now().value();
        rt.enabled = rt.system.monitor().enabled();
        sg.remaining -= res.elapsed.value();
        sg.vmin = std::min(sg.vmin, res.vmin.value());
        sg.vend = res.vend.value();
        sg.power_failed = sg.power_failed || res.power_failed;
        sg.collapsed = sg.collapsed || res.collapsed;
        sg.stopped_at_level = sg.stopped_at_level || res.stopped_at_level;
        sg.stopped_enabled = sg.stopped_enabled || res.stopped_enabled;
        sg.stopped = true;
        ++rt.result.peels;
        rt.sub = Sub::SegEnd;
    }

    // --- Controller ---

    void beginSegment(LaneRt &rt, std::size_t l, SegOwner owner,
                      double duration, double i_load, double fallback,
                      bool stop_on_failure,
                      std::optional<double> stop_level,
                      bool stop_when_enabled)
    {
        rt.owner = owner;
        SegCtx &sg = rt.seg;
        sg = SegCtx{};
        sg.remaining = duration;
        sg.i_load = i_load;
        sg.fallback = fallback;
        sg.stop_on_failure = stop_on_failure;
        sg.has_stop_level = stop_level.has_value();
        sg.stop_level = stop_level.value_or(0.0);
        sg.stop_when_enabled = stop_when_enabled;
        sg.hint = duration;
        const double resting = restingOf(rt, l);
        sg.vmin = resting;
        sg.vend = resting;
        rt.sub = Sub::SegStep;
    }

    /** The op a lane is executing: its dynamic slot or the program. */
    const LaneOp &curOp(const LaneRt &rt) const
    {
        return rt.source != nullptr ? rt.dyn_op
                                    : rt.program[rt.op_index];
    }

    void finishLane(LaneRt &rt, std::size_t l)
    {
        rt.result.end_time = Seconds(now[l]);
        rt.result.vend = Volts(restingOf(rt, l));
        rt.result.power_failures =
            rt.system.monitor().powerFailures() - rt.failures_base;
        rt.sub = Sub::Done;
    }

    void finishOp(LaneRt &rt, std::size_t l)
    {
        rt.cur.elapsed = Seconds(now[l] - rt.wait_anchor);
        if (rt.source != nullptr) {
            // Sourced lanes hand the outcome back through next();
            // recording it again in result.ops would be redundant.
            rt.last_out = std::move(rt.cur);
            rt.have_last = true;
        } else {
            rt.result.ops.push_back(std::move(rt.cur));
            ++rt.op_index;
        }
        rt.cur = OpOutcome{};
        rt.sub = Sub::OpBegin;
    }

    void finishWait(LaneRt &rt, std::size_t l, sim::WaitStatus status)
    {
        rt.cur.wait_status = status;
        finishOp(rt, l);
    }

    /**
     * Mirror of one zero-load PowerSystem::step when the monitor does
     * not transition: same draw, charge, terminal voltage and clamped
     * Euler update, but without touching the scalar system. Returns
     * false when the monitor WOULD transition (the exact hysteresis
     * comparison) — the caller then takes a real reference step so the
     * monitor's state and failure count stay authoritative.
     */
    bool tryInlineStep(LaneRt &rt, std::size_t l, double dt)
    {
        refreshHarvest(rt, l);
        double i_out = 0.0;
        bool collapsed = false;
        const double vth = restingOf(rt, l);
        if (rt.enabled)
            i_out = drawAtVth(rt, vth, 0.0, collapsed);
        const double i_charge = chargeAt(rt, vocOf(l));
        const double net = i_out - i_charge;
        const double vterm = vth - net * rt.rth;
        if (rt.enabled ? (vterm < rt.voff) : (vterm >= rt.vhigh))
            return false;
        double vb1 = 0.0, vs1 = 0.0;
        eulerAdvance(rt, vb[l], vs[l], dt, net, vb1, vs1);
        vb[l] = vb1;
        vs[l] = vs1;
        now[l] += dt;
        return true;
    }

    /** snapToGrid mirror; returns true when it took the pad step. */
    bool padToGrid(LaneRt &rt, std::size_t l, double anchor)
    {
        const double dt = rt.idle_dt;
        const double done = (now[l] - anchor) / dt;
        const double pad = (std::ceil(done - 1e-9) - done) * dt;
        if (pad > 1e-9) {
            // snapToGrid discards the step result, so the pad can run
            // inline whenever the monitor holds state.
            if (!tryInlineStep(rt, l, pad))
                refStep(rt, l, pad, 0.0);
            return true;
        }
        return false;
    }

    /**
     * Advance one lane until it schedules a macro commit, takes one
     * reference step or peel (its lockstep "round action"), or finishes
     * its program. Cheap transitions (op boundaries, wait loop tops)
     * run inline.
     */
    void controlAdvance(std::size_t l)
    {
        LaneRt &rt = *lanes[l];
        while (true) {
            switch (rt.sub) {
            case Sub::OpBegin: {
                if (rt.source != nullptr) {
                    LaneStatus status;
                    status.now = Seconds(now[l]);
                    status.resting = Volts(restingOf(rt, l));
                    status.enabled = rt.enabled;
                    if (!rt.source->next(
                            rt.have_last ? &rt.last_out : nullptr,
                            status, &rt.dyn_op)) {
                        finishLane(rt, l);
                        return;
                    }
                    validateOp(rt.dyn_op);
                } else {
                    if (rt.op_index >= rt.program.size()) {
                        rt.op_index = 0;
                        ++rt.rep_index;
                    }
                    if (rt.rep_index >= rt.repeat ||
                        rt.program.empty()) {
                        finishLane(rt, l);
                        return;
                    }
                }
                const LaneOp &op = curOp(rt);
                rt.cur = OpOutcome{};
                rt.cur.kind = op.kind;
                rt.wait_anchor = now[l];
                switch (op.kind) {
                case OpKind::WaitLevel:
                case OpKind::WaitEnabled:
                    rt.sub = Sub::WaitTop;
                    break;
                case OpKind::IdleFor: {
                    // Device::idleFor tick math, verbatim.
                    if (op.duration.value() <= 0.0) {
                        finishOp(rt, l);
                        break;
                    }
                    const double dt = rt.idle_dt;
                    const long ticks = std::lround(std::max(
                        1.0,
                        std::ceil(op.duration.value() / dt - 1e-9)));
                    rt.idle_end = now[l] + double(ticks) * dt;
                    const double chunk = std::min(
                        rt.idle_end - now[l], kMaxIdleChunk);
                    beginSegment(rt, l, SegOwner::IdleChunk, chunk, 0.0,
                                 dt, /*stop_on_failure=*/false,
                                 std::nullopt,
                                 /*stop_when_enabled=*/false);
                    break;
                }
                case OpKind::RunProfile: {
                    const double resting = restingOf(rt, l);
                    rt.cur.vmin = Volts(resting);
                    rt.cur.voltage = Volts(resting);
                    rt.prof_seg = 0;
                    rt.owner = SegOwner::Profile;
                    rt.sub = Sub::SegEnd; // Dispatcher starts segment 0.
                    break;
                }
                }
                continue;
            }

            case Sub::WaitTop: {
                const LaneOp &op = curOp(rt);
                const double resting = restingOf(rt, l);
                rt.cur.voltage = Volts(resting);
                if (op.kind == OpKind::WaitLevel) {
                    if (resting >= op.level.value()) {
                        finishWait(rt, l, sim::WaitStatus::Reached);
                        continue;
                    }
                    if (now[l] > op.deadline.value()) {
                        finishWait(rt, l,
                                   sim::WaitStatus::DeadlineExpired);
                        continue;
                    }
                    if (op.stop_when_off && !rt.enabled) {
                        finishWait(rt, l, sim::WaitStatus::BrownedOut);
                        continue;
                    }
                    // Equilibrium reachability only holds for strictly
                    // constant harvest (Device::waitForVoltage's gate);
                    // a piecewise field may improve in a later piece.
                    if (rt.harvest_const) {
                        const double net = idleNetAt(
                            rt, op.level.value() - 1e-9,
                            op.stop_when_off);
                        if (net >= 0.0) {
                            rt.cur.diagnostic =
                                sim::unreachableDiagnostic(
                                    "voltage threshold", op.level,
                                    Amps(net));
                            finishWait(rt, l,
                                       sim::WaitStatus::Unreachable);
                            continue;
                        }
                    }
                    startIdleChunk(rt, l, op.level,
                                   /*stop_when_enabled=*/false,
                                   /*stop_on_failure=*/op.stop_when_off,
                                   op.deadline.value());
                } else { // WaitEnabled
                    if (rt.enabled) {
                        finishWait(rt, l, sim::WaitStatus::Reached);
                        continue;
                    }
                    if (now[l] > op.deadline.value()) {
                        finishWait(rt, l,
                                   sim::WaitStatus::DeadlineExpired);
                        continue;
                    }
                    if (rt.harvest_const) {
                        const double net = idleNetAt(
                            rt, rt.vhigh - 1e-9,
                            /*with_output_draw=*/false);
                        if (net >= 0.0) {
                            rt.cur.diagnostic =
                                sim::unreachableDiagnostic(
                                    "monitor re-arm level",
                                    Volts(rt.vhigh), Amps(net));
                            finishWait(rt, l,
                                       sim::WaitStatus::Unreachable);
                            continue;
                        }
                    }
                    startIdleChunk(rt, l, std::nullopt,
                                   /*stop_when_enabled=*/true,
                                   /*stop_on_failure=*/false,
                                   op.deadline.value());
                }
                continue;
            }

            case Sub::SegStep:
                if (segStep(rt, l))
                    return; // Commit scheduled / ref step / peel taken.
                continue;

            case Sub::SegCross:
                // Parked on the round's crossing panel; crossingPass()
                // always resumes the lane before the round ends, so the
                // control pass never actually sees this state.
                return;

            case Sub::SegApply:
                if (segApply(rt, l))
                    return; // Post-commit event took a reference step.
                continue;

            case Sub::SegEnd:
                segEnd(rt, l);
                continue;

            case Sub::Done:
                return;
            }
        }
    }

    void startIdleChunk(LaneRt &rt, std::size_t l,
                        std::optional<Volts> stop_level,
                        bool stop_when_enabled, bool stop_on_failure,
                        double deadline)
    {
        // Device::advanceIdleChunk horizon math, verbatim.
        const double dt = rt.idle_dt;
        const double tnow = now[l];
        const double anchor = rt.wait_anchor;
        double horizon;
        if (std::isfinite(deadline)) {
            const double ticks =
                std::floor((deadline - anchor) / dt + 1e-9) + 1.0;
            horizon = anchor + ticks * dt;
        } else {
            horizon = tnow + kMaxIdleChunk;
        }
        double chunk = horizon - tnow;
        if (chunk <= 0.0)
            chunk = dt;
        chunk = std::min(chunk, kMaxIdleChunk);
        std::optional<double> level;
        if (stop_level.has_value())
            level = stop_level->value();
        beginSegment(rt, l, SegOwner::WaitChunk, chunk, 0.0, dt,
                     stop_on_failure, level, stop_when_enabled);
    }

    /**
     * One iteration of the analytic segment controller — the mirror of
     * runSegmentAnalytic's macro-step loop body. Returns true when the
     * lane consumed its round action.
     */
    bool segStep(LaneRt &rt, std::size_t l)
    {
        SegCtx &sg = rt.seg;
        if (!(sg.remaining > 0.0) || sg.stopped) {
            rt.sub = Sub::SegEnd;
            return false;
        }
        // Loop-top stop conditions (pre-step state, no simulated time).
        const double vth0 = restingOf(rt, l);
        if (sg.has_stop_level && vth0 >= sg.stop_level) {
            sg.stopped_at_level = true;
            rt.sub = Sub::SegEnd;
            return false;
        }
        if (sg.stop_when_enabled && rt.enabled) {
            sg.stopped_enabled = true;
            rt.sub = Sub::SegEnd;
            return false;
        }
        // Event storm: the closed form is degenerating to per-tick
        // reference steps; peel the remainder onto the scalar engine.
        if (sg.consec_ref >= opts.event_storm_threshold) {
            peelSegment(rt, l);
            return true;
        }

        refreshHarvest(rt, l);
        const bool enabled = rt.enabled;
        double i_out = 0.0;
        bool collapsed_now = false;
        if (enabled)
            i_out = drawAtVth(rt, vth0, sg.i_load, collapsed_now);
        const double voc0 = vocOf(l);
        const double i_charge = chargeAt(rt, voc0);
        const double net0 = i_out - i_charge;
        const double vterm0 = vth0 - net0 * rt.rth;

        if (collapsed_now || (enabled && vterm0 < rt.voff) ||
            (!enabled && vterm0 >= rt.vhigh)) {
            eventStep(rt, l, sg);
            sg.hint = std::max(sg.hint, 4.0 * sg.fallback);
            return true;
        }

        // Adaptive macro-step probe (proportional controller). A macro
        // step never spans a harvest-piece boundary (scalar stepper's
        // cap, same expression order).
        double dt_try = std::min(sg.remaining, sg.hint);
        const double piece_left = rt.piece_end - now[l];
        if (piece_left < dt_try)
            dt_try = piece_left;
        double net1 = net0;
        double exp_try = -1.0; ///< exp(-dt_try/tau) of the accepted probe.
        bool at_floor = false;
        const double bound = std::max(
            1e-6, opts.current_tolerance * std::abs(net0));
        while (true) {
            if (dt_try <= sg.fallback * (1.0 + 1e-9)) {
                at_floor = true;
                break;
            }
            double pvb = 0.0, pvs = 0.0;
            probeAdvance(rt, vb[l], vs[l], dt_try, net0, pvb, pvs,
                         &exp_try);
            double i_out1 = 0.0;
            bool collapsed1 = false;
            if (enabled)
                i_out1 = drawAt(rt, pvb, pvs, sg.i_load, collapsed1);
            const double voc1 =
                (rt.cb * pvb + rt.cs * pvs) / (rt.cb + rt.cs);
            const double i_charge1 = chargeAt(rt, voc1);
            net1 = i_out1 - i_charge1;
            const double drift = std::abs(net1 - net0);
            if (!collapsed1 && drift <= bound)
                break;
            const double shrink = (!collapsed1 && drift > 0.0)
                ? std::clamp(0.9 * bound / drift, 0.05, 0.5)
                : 0.5;
            dt_try *= shrink;
        }
        if (at_floor) {
            eventStep(rt, l, sg);
            sg.hint = 4.0 * sg.fallback;
            return true;
        }

        // Commit decision: trapezoidal current, explicit curve, monitor
        // and level crossings — all on the scalar's exact expressions.
        const double net_avg = 0.5 * (net0 + net1);
        double i_state = net_avg;
        if (voc0 > 0.0)
            i_state += rt.leak;
        const double q0 = (rt.cb * vb[l] + rt.cs * vs[l]) / rt.ct;
        const double d0 = vb[l] - vs[l];
        const double d_inf = -i_state * rt.beta * rt.tau;

        Pending &pc = rt.pc;
        pc = Pending{};
        pc.curve.tau = rt.tau;
        pc.curve.b = -i_state / rt.ct;
        pc.curve.c = rt.gamma * (d0 - d_inf);
        pc.curve.a = q0 + rt.gamma * d_inf - net_avg * rt.rth;

        // Curve extremes over [0, dt_try], evaluated once: they both
        // answer "can a crossing bracket exist at all?" (skipping the
        // root search on the vast majority of steps) and double as the
        // step's Vmin (bit-identical to Curve::minOver, same expression
        // order) when the full probe span commits.
        const double t_star = pc.curve.stationaryPoint(dt_try);
        const double v0 = pc.curve.a + pc.curve.c; // at(0), bitwise.
        const double v_end = curveAt(pc.curve, dt_try);
        double vmin_try = std::min(v0, v_end);
        double vmax_try = std::max(v0, v_end);
        if (t_star > 0.0) {
            const double v_star = curveAt(pc.curve, t_star);
            vmin_try = std::min(vmin_try, v_star);
            vmax_try = std::max(vmax_try, v_star);
        }

        pc.horizon = dt_try;
        pc.exp_try = exp_try;
        pc.i_state = i_state;
        pc.net_avg = net_avg;
        pc.vmin_full = vmin_try;
        {
            const double drift = std::abs(net1 - net0);
            const double grow = drift > 0.0
                ? std::clamp(0.9 * bound / drift, 1.0, 8.0)
                : 8.0;
            pc.hint_next = dt_try * grow;
        }

        // A falling bracket needs a sub-level point, a rising bracket a
        // point at or above the level; otherwise skip the root search
        // (firstCrossing would scan its pieces and return -1).
        const bool want_event = enabled ? (vmin_try < rt.voff)
                                        : (vmax_try >= rt.vhigh);
        const double stop_lvl =
            sg.has_stop_level ? sg.stop_level - net_avg * rt.rth : 0.0;
        const bool want_level =
            sg.has_stop_level && vmax_try >= stop_lvl;

        if (!opts.exact_replay && (want_event || want_level)) {
            // Warm mode: park the lane and queue its root finds on the
            // round's crossing panel; crossingPass() resumes it through
            // finishCommit once the batched Newton solver has answered
            // every lane's queries together.
            if (want_event)
                pc.q_event = static_cast<std::int32_t>(cross.push(
                    pc.curve.a, pc.curve.b, pc.curve.c, pc.curve.tau,
                    enabled ? rt.voff : rt.vhigh, dt_try,
                    /*falling=*/enabled));
            if (want_level)
                pc.q_level = static_cast<std::int32_t>(cross.push(
                    pc.curve.a, pc.curve.b, pc.curve.c, pc.curve.tau,
                    stop_lvl, dt_try, /*falling=*/false));
            cross_lanes.push_back(static_cast<std::uint32_t>(l));
            rt.sub = Sub::SegCross;
            return true;
        }

        double crossing = -1.0;
        if (want_event)
            crossing = pc.curve.firstCrossing(
                enabled ? rt.voff : rt.vhigh, dt_try,
                /*falling=*/enabled);
        double level_cross = -1.0;
        if (want_level)
            level_cross = pc.curve.firstCrossing(stop_lvl, dt_try,
                                                 /*falling=*/false);
        return finishCommit(rt, l, crossing, level_cross);
    }

    /**
     * Commit selection from resolved crossings: the tail of the scalar
     * macro-step loop body, shared between the exact inline path and
     * the warm deferred (SegCross) path. Packs the accepted step onto
     * the round's CommitPanel.
     */
    bool finishCommit(LaneRt &rt, std::size_t l, double crossing,
                      double level_cross)
    {
        Pending &pc = rt.pc;
        const double dt_try = pc.horizon;
        const bool level_first = level_cross > 0.0 &&
            (crossing <= 0.0 || level_cross < crossing);
        const bool event = !level_first && crossing > 0.0;
        const double commit =
            level_first ? level_cross : (event ? crossing : dt_try);
        if (!(commit > 0.0)) {
            // Unreachable with the scalar's commit selection; keep the
            // guard so a degenerate curve cannot wedge the lane.
            rt.sub = Sub::SegEnd;
            return false;
        }
        pc.dt = commit;
        pc.level_first = level_first;
        pc.event = event;
        const bool full_span = !level_first && !event;
        pc.have_vmin = full_span;
        // Lane state is untouched between the control pass and the
        // commit pass, so packing q0/d0 (and the cs/ct, cb/ct ratios)
        // here is bit-identical to computing them at commit time.
        const double q0 = (rt.cb * vb[l] + rt.cs * vs[l]) / rt.ct;
        const double d0 = vb[l] - vs[l];
        // The accepted probe evaluated exp(-dt_try/tau); a full-span
        // commit reuses it verbatim in the SoA pass.
        panel.push(static_cast<std::uint32_t>(l), q0, d0, rt.ct,
                   rt.cs / rt.ct, rt.cb / rt.ct, rt.tau, rt.beta,
                   pc.i_state, commit, full_span ? pc.exp_try : -1.0,
                   pc.curve.a, pc.curve.b, pc.curve.c);
        rt.sub = Sub::SegApply;
        return true;
    }

    /** Post-commit bookkeeping; true when an event reference step ran. */
    bool segApply(LaneRt &rt, std::size_t l)
    {
        SegCtx &sg = rt.seg;
        Pending &pc = rt.pc;
        if (pc.deep) {
            // The closed-form end state had a negative branch: apply
            // the commit through the clamped Euler integrator, exactly
            // as Capacitor::advanceAnalytic delegates to step().
            rt.scratch_cap.setBranchVoltages(Volts(vb[l]), Volts(vs[l]));
            rt.scratch_cap.step(Seconds(pc.dt), Amps(pc.net_avg));
            vb[l] = rt.scratch_cap.bulkVoltage().value();
            vs[l] = rt.scratch_cap.surfaceVoltage().value();
            now[l] += pc.dt;
            ++rt.result.peels;
        }
        ++rt.result.macro_commits;
        sg.remaining -= pc.dt;
        sg.vmin = std::min(sg.vmin, pc.have_vmin
                                        ? pc.vmin_full
                                        : curveMin(pc.curve, pc.dt));
        // Non-deep lanes staged their boundary sample in the commit
        // kernel (reusing its exp); deep lanes recompute it here after
        // the Euler delegate, and that recompute is the macro step's
        // only report — staged is deliberately cleared for them.
        sg.vend = pc.staged ? pc.staged_vend : curveAt(pc.curve, pc.dt);
        if (pc.level_first) {
            sg.stopped_at_level = true;
            sg.stopped = true;
            rt.sub = Sub::SegStep;
            return false;
        }
        if (pc.event) {
            eventStep(rt, l, sg);
            sg.hint = std::max(2.0 * sg.fallback, pc.dt);
            rt.sub = Sub::SegStep;
            return true;
        }
        sg.hint = pc.hint_next;
        sg.consec_ref = 0;
        rt.sub = Sub::SegStep;
        return false;
    }

    /** Segment over: dispatch to the op that owns it. */
    void segEnd(LaneRt &rt, std::size_t l)
    {
        SegCtx &sg = rt.seg;
        switch (rt.owner) {
        case SegOwner::WaitChunk:
            padToGrid(rt, l, rt.wait_anchor);
            rt.sub = Sub::WaitTop;
            return;

        case SegOwner::IdleChunk:
            if (now[l] < rt.idle_end) {
                const double chunk = std::min(
                    rt.idle_end - now[l], kMaxIdleChunk);
                beginSegment(rt, l, SegOwner::IdleChunk, chunk, 0.0,
                             rt.idle_dt, /*stop_on_failure=*/false,
                             std::nullopt, /*stop_when_enabled=*/false);
                return;
            }
            padToGrid(rt, l, rt.wait_anchor);
            rt.cur.voltage = Volts(restingOf(rt, l));
            finishOp(rt, l);
            return;

        case SegOwner::Profile: {
            const LaneOp &op = curOp(rt);
            bool failed =
                rt.cur.power_failed || rt.cur.collapsed;
            if (rt.prof_seg > 0) {
                // Merge the segment that just finished (runLoad).
                rt.cur.vmin = Volts(std::min(rt.cur.vmin.value(),
                                             sg.vmin));
                rt.cur.voltage = Volts(sg.vend);
                if (sg.power_failed || sg.collapsed) {
                    rt.cur.power_failed =
                        rt.cur.power_failed || sg.power_failed;
                    rt.cur.collapsed = rt.cur.collapsed || sg.collapsed;
                    failed = true;
                    if (op.stop_on_failure) {
                        rt.cur.completed = false;
                        finishOp(rt, l);
                        return;
                    }
                }
            }
            const auto &segments = op.profile->segments();
            while (rt.prof_seg < segments.size()) {
                const load::Segment &seg = segments[rt.prof_seg];
                ++rt.prof_seg;
                if (seg.duration.value() <= 0.0) {
                    // runSegment's zero-duration early-out: the result
                    // is the resting voltage, merged like any segment.
                    const double resting = restingOf(rt, l);
                    rt.cur.vmin = Volts(std::min(rt.cur.vmin.value(),
                                                 resting));
                    rt.cur.voltage = Volts(resting);
                    continue;
                }
                beginSegment(rt, l, SegOwner::Profile,
                             seg.duration.value(), seg.current.value(),
                             op.dt.value(), op.stop_on_failure,
                             std::nullopt, /*stop_when_enabled=*/false);
                return;
            }
            rt.cur.completed = !failed;
            finishOp(rt, l);
            return;
        }
        }
    }

    /**
     * The branch-free SoA pass: run the round's packed CommitPanel
     * through the mode's kernel (exact: per-lane std::exp with
     * Capacitor::advanceAnalytic's exact arithmetic; warm: the
     * vectorized tier kernel), then scatter results back to lane state.
     * Lanes whose end state has a negative branch are flagged for the
     * Euler delegation instead of being written.
     */
    void commitPass()
    {
        if (opts.exact_replay)
            commitPanelExact(panel);
        else
            commitPanelWarm(panel);
        const std::size_t n = panel.size();
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t l = panel.lane[k];
            Pending &pc = lanes[l]->pc;
            if (panel.deep[k]) {
                // Deep-discharge lane: the Euler delegate in segApply
                // recomputes the boundary sample itself. Clear the
                // staged scratch so the peeled lane cannot double-report
                // the kernel's (discarded) closed-form sample.
                pc.deep = true;
                pc.staged = false;
                continue;
            }
            vb[l] = panel.vb1[k];
            vs[l] = panel.vs1[k];
            now[l] += panel.dt[k];
            pc.staged_vend = panel.vend[k];
            pc.staged = true;
        }
        panel.clear();
    }

    /**
     * Resolve the round's deferred warm-mode crossing queries in one
     * batched Newton solve, then resume every parked lane through
     * finishCommit so its macro step lands on this round's panel —
     * deferral adds no round latency.
     */
    void crossingPass()
    {
        solveCrossings(cross);
        for (const std::uint32_t l : cross_lanes) {
            LaneRt &rt = *lanes[l];
            Pending &pc = rt.pc;
            const double crossing =
                pc.q_event >= 0 ? cross.out[pc.q_event] : -1.0;
            const double level_cross =
                pc.q_level >= 0 ? cross.out[pc.q_level] : -1.0;
            pc.q_event = -1;
            pc.q_level = -1;
            finishCommit(rt, l, crossing, level_cross);
        }
        cross.clear();
        cross_lanes.clear();
    }

    void run()
    {
        std::vector<std::size_t> active;
        for (std::size_t l = 0; l < lanes.size(); ++l) {
            if (lanes[l]->sub != Sub::Done)
                active.push_back(l);
        }
        while (!active.empty()) {
            for (std::size_t i = 0; i < active.size();) {
                controlAdvance(active[i]);
                if (lanes[active[i]]->sub == Sub::Done) {
                    active[i] = active.back();
                    active.pop_back();
                } else {
                    ++i;
                }
            }
            if (!cross_lanes.empty())
                crossingPass();
            if (panel.size() != 0)
                commitPass();
            // Round boundary: let buffering sources (staged telemetry)
            // drain. Every lane is offered the flush — a lane that went
            // Done this round still has its final ops staged.
            for (const auto &rt : lanes) {
                if (rt->source != nullptr)
                    rt->source->roundFlush();
            }
        }
    }
};

BatchEngine::BatchEngine(BatchOptions options)
    : impl_(std::make_unique<Impl>())
{
    impl_->opts = options;
    log::fatalIf(options.current_tolerance <= 0.0,
                 "batch current_tolerance must be positive");
    log::fatalIf(options.event_storm_threshold == 0,
                 "batch event_storm_threshold must be positive");
}

BatchEngine::~BatchEngine() = default;
BatchEngine::BatchEngine(BatchEngine &&) noexcept = default;
BatchEngine &BatchEngine::operator=(BatchEngine &&) noexcept = default;

namespace {

void
validateProgram(const std::vector<LaneOp> &program)
{
    for (const LaneOp &op : program)
        validateOp(op);
}

} // namespace

std::size_t
BatchEngine::addLane(const LaneSpec &spec)
{
    log::fatalIf(spec.vstart.value() < 0.0,
                 "lane vstart cannot be negative");
    log::fatalIf(spec.harvest.value() < 0.0,
                 "lane harvest cannot be negative");
    log::fatalIf(spec.harvester != nullptr &&
                     !spec.harvester->piecewiseConstant(),
                 "lane harvester must be piecewise constant");
    log::fatalIf(spec.repeat == 0, "lane repeat must be >= 1");
    validateProgram(spec.program);

    Impl &im = *impl_;
    const std::size_t l = im.lanes.size();
    im.lanes.push_back(std::make_unique<LaneRt>(spec));
    LaneRt &rt = *im.lanes.back();

    im.vb.push_back(spec.vstart.value());
    im.vs.push_back(spec.vstart.value());
    im.now.push_back(0.0);
    im.tau.push_back(rt.tau);
    im.beta.push_back(rt.beta);
    im.ct.push_back(rt.ct);
    im.cb.push_back(rt.cb);
    im.cs.push_back(rt.cs);

    rt.system.adoptState(spec.vstart, spec.vstart, Seconds(0.0));
    rt.system.forceOutputEnabled(spec.start_enabled);
    rt.enabled = spec.start_enabled;
    rt.failures_base = rt.system.monitor().powerFailures();
    return l;
}

std::size_t
BatchEngine::laneCount() const
{
    return impl_->lanes.size();
}

void
BatchEngine::resetLane(std::size_t lane, Volts vstart, bool enabled)
{
    Impl &im = *impl_;
    log::fatalIf(lane >= im.lanes.size(), "resetLane: no such lane");
    log::fatalIf(vstart.value() < 0.0, "lane vstart cannot be negative");
    LaneRt &rt = *im.lanes[lane];
    im.vb[lane] = vstart.value();
    im.vs[lane] = vstart.value();
    im.now[lane] = 0.0;
    rt.system.adoptState(vstart, vstart, Seconds(0.0));
    rt.system.forceOutputEnabled(enabled);
    rt.enabled = enabled;
    rt.failures_base = rt.system.monitor().powerFailures();
    rt.sub = Sub::OpBegin;
    rt.op_index = 0;
    rt.rep_index = 0;
    rt.have_last = false;
    rt.last_out = OpOutcome{};
    rt.cur = OpOutcome{};
    rt.result = LaneResult{};
}

void
BatchEngine::setLaneProgram(std::size_t lane, std::vector<LaneOp> program,
                            unsigned repeat)
{
    Impl &im = *impl_;
    log::fatalIf(lane >= im.lanes.size(), "setLaneProgram: no such lane");
    log::fatalIf(repeat == 0, "lane repeat must be >= 1");
    validateProgram(program);
    LaneRt &rt = *im.lanes[lane];
    rt.program = std::move(program);
    rt.repeat = repeat;
    rt.source = nullptr;
    rt.sub = Sub::OpBegin;
    rt.op_index = 0;
    rt.rep_index = 0;
    rt.have_last = false;
    rt.last_out = OpOutcome{};
    rt.cur = OpOutcome{};
    rt.result = LaneResult{};
}

void
BatchEngine::run()
{
    impl_->run();
}

const LaneResult &
BatchEngine::result(std::size_t lane) const
{
    log::fatalIf(lane >= impl_->lanes.size(), "result: no such lane");
    return impl_->lanes[lane]->result;
}

std::vector<LaneResult>
runPopulation(const std::vector<LaneSpec> &specs,
              const BatchOptions &options)
{
    BatchEngine engine(options);
    for (const LaneSpec &spec : specs)
        engine.addLane(spec);
    engine.run();
    std::vector<LaneResult> results;
    results.reserve(specs.size());
    for (std::size_t l = 0; l < specs.size(); ++l)
        results.push_back(engine.result(l));
    return results;
}

LaneResult
runLaneScalar(const LaneSpec &spec)
{
    log::fatalIf(spec.repeat == 0, "lane repeat must be >= 1");
    validateProgram(spec.program);

    log::fatalIf(spec.harvester != nullptr &&
                     !spec.harvester->piecewiseConstant(),
                 "lane harvester must be piecewise constant");
    sim::ConstantHarvester constant(spec.harvest);
    const sim::Harvester *harvester = spec.harvester != nullptr
        ? spec.harvester
        : static_cast<const sim::Harvester *>(&constant);
    sim::Device device(spec.config, spec.options);
    device.setHarvester(harvester);
    device.setBufferVoltage(spec.vstart);
    device.forceOutputEnabled(spec.start_enabled);

    LaneResult result;
    for (unsigned rep = 0; rep < spec.repeat; ++rep) {
        for (const LaneOp &op : spec.program) {
            OpOutcome out;
            out.kind = op.kind;
            const Seconds t0 = device.now();
            switch (op.kind) {
            case OpKind::WaitLevel: {
                const sim::WaitResult w = op.stop_when_off
                    ? device.idleUntilVoltage(op.level, op.deadline)
                    : device.rechargeTo(op.level);
                out.wait_status = w.status;
                out.voltage = w.voltage;
                out.diagnostic = w.diagnostic;
                break;
            }
            case OpKind::WaitEnabled: {
                const sim::WaitResult w =
                    device.rechargeUntilOn(op.deadline);
                out.wait_status = w.status;
                out.voltage = w.voltage;
                out.diagnostic = w.diagnostic;
                break;
            }
            case OpKind::RunProfile: {
                sim::LoadOptions lo;
                lo.dt = op.dt;
                lo.stop_on_failure = op.stop_on_failure;
                const sim::LoadResult r =
                    device.runLoad(*op.profile, lo);
                out.completed = r.completed;
                out.power_failed = r.power_failed;
                out.collapsed = r.collapsed;
                out.vmin = r.vmin;
                out.voltage = r.vend;
                break;
            }
            case OpKind::IdleFor:
                device.idleFor(op.duration);
                out.voltage = device.restingVoltage();
                break;
            }
            out.elapsed = device.now() - t0;
            result.ops.push_back(std::move(out));
        }
    }
    result.end_time = device.now();
    result.vend = device.restingVoltage();
    result.power_failures = device.system().monitor().powerFailures();
    return result;
}

} // namespace culpeo::batch
