/**
 * @file
 * Structure-of-arrays batch stepping engine (DESIGN.md §14).
 *
 * Advances N independent devices through the analytic two-branch segment
 * stepper in lockstep. Each lane executes a small op program (wait for a
 * voltage, wait for the monitor, run a load profile, idle) against SoA
 * state arrays; every round each active lane's controller schedules at
 * most one analytic macro step, and a single branch-free commit pass then
 * applies the closed-form q/d update across the whole batch.
 *
 * Lanes that diverge from the closed form — monitor crossings, collapse
 * events, tick-grid pads — take single reference Euler steps through the
 * lane's own sim::PowerSystem (state handed over via adoptState), so
 * hysteresis transitions and failure accounting are byte-compatible with
 * the scalar path. A lane stuck in an event storm, or whose committed
 * step would drive a branch voltage negative (deep discharge), is peeled
 * onto the scalar engine for the remainder of the segment and re-admitted
 * to the lockstep at the next segment boundary.
 *
 * runLaneScalar() executes the same op program through sim::Device — the
 * reference the differential test harness compares the kernel against.
 */

#ifndef CULPEO_BATCH_ENGINE_HPP
#define CULPEO_BATCH_ENGINE_HPP

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "load/profile.hpp"
#include "sim/device.hpp"
#include "sim/power_system.hpp"
#include "util/units.hpp"

namespace culpeo::batch {

using units::Amps;
using units::Seconds;
using units::Volts;
using units::Watts;

/** The op kinds a lane program is built from (the Device primitives). */
enum class OpKind
{
    /**
     * Wait until the resting voltage reaches `level`. With
     * stop_when_off true this is Device::idleUntilVoltage (brown-out
     * fails the wait, deadline enforced); with stop_when_off false it
     * is Device::rechargeTo (rides through brown-outs; deadline must be
     * infinite, matching the Device API).
     */
    WaitLevel,
    /** Wait until the monitor (re-)enables — Device::rechargeUntilOn. */
    WaitEnabled,
    /** Run a piecewise-constant load profile — Device::runLoad. */
    RunProfile,
    /** Idle for a fixed duration on the tick grid — Device::idleFor. */
    IdleFor,
};

/** One program step of a lane. */
struct LaneOp
{
    OpKind kind = OpKind::IdleFor;
    /** WaitLevel: target resting voltage. */
    Volts level{0.0};
    /** WaitLevel / WaitEnabled: absolute deadline (infinity = none). */
    Seconds deadline{std::numeric_limits<double>::infinity()};
    /** WaitLevel: true = idleUntilVoltage semantics, false = rechargeTo. */
    bool stop_when_off = true;
    /** RunProfile: the profile (borrowed; caller keeps it alive). */
    const load::CurrentProfile *profile = nullptr;
    /** RunProfile: Euler/crossing quantum (LoadOptions::dt). */
    Seconds dt{50e-6};
    /** RunProfile: abort at the first brown-out. */
    bool stop_on_failure = true;
    /** IdleFor: duration to idle. */
    Seconds duration{0.0};

    static LaneOp waitLevel(Volts level, Seconds deadline,
                            bool stop_when_off = true)
    {
        LaneOp op;
        op.kind = OpKind::WaitLevel;
        op.level = level;
        op.deadline = deadline;
        op.stop_when_off = stop_when_off;
        return op;
    }
    static LaneOp rechargeTo(Volts level)
    {
        LaneOp op = waitLevel(
            level, Seconds(std::numeric_limits<double>::infinity()), false);
        return op;
    }
    static LaneOp waitEnabled(Seconds deadline)
    {
        LaneOp op;
        op.kind = OpKind::WaitEnabled;
        op.deadline = deadline;
        return op;
    }
    static LaneOp runProfile(const load::CurrentProfile *profile, Seconds dt,
                             bool stop_on_failure = true)
    {
        LaneOp op;
        op.kind = OpKind::RunProfile;
        op.profile = profile;
        op.dt = dt;
        op.stop_on_failure = stop_on_failure;
        return op;
    }
    static LaneOp idleFor(Seconds duration)
    {
        LaneOp op;
        op.kind = OpKind::IdleFor;
        op.duration = duration;
        return op;
    }
};

struct OpOutcome;

/** Lane state handed to an OpSource at every op boundary. */
struct LaneStatus
{
    Seconds now{0.0};
    /** Resting (Thevenin) voltage — Device::restingVoltage. */
    Volts resting{0.0};
    /** Monitor output state — Device::on. */
    bool enabled = true;
};

/**
 * Dynamic op feeder: a lane driven by an OpSource asks for its next op
 * at every op boundary instead of executing a fixed program. This is
 * how stateful drivers (the BatchTrialRunner's per-trial scheduler
 * replicas) ride the lockstep kernel: each completed op's outcome and
 * the lane's current state go in, the next Device-primitive op comes
 * out. Sourced lanes do not record OpOutcomes into LaneResult::ops —
 * the source already saw every outcome.
 */
class OpSource
{
  public:
    virtual ~OpSource() = default;
    /**
     * Produce the next op into @p out. @p last is the outcome of the
     * op that just finished (null on the first call). Return false to
     * end the lane's run.
     */
    virtual bool next(const OpOutcome *last, const LaneStatus &status,
                      LaneOp *out) = 0;

    /**
     * Called once per lockstep round, after every lane's round action
     * (including the round that finishes the lane). Sources that buffer
     * per-op work — staged telemetry, most notably — drain it here so
     * the hot control/commit passes never pay the flush cost per op.
     */
    virtual void roundFlush() {}
};

/** Complete description of one lane (one simulated device). */
struct LaneSpec
{
    sim::PowerSystemConfig config{};
    sim::DeviceOptions options{};
    /** Initial open-circuit buffer voltage (equalized branches). */
    Volts vstart{0.0};
    /** Initial monitor state (forceOutputEnabled). */
    bool start_enabled = true;
    /** Constant harvested power (0 = no harvester input). */
    Watts harvest{0.0};
    /**
     * Time-varying energy source; non-null overrides `harvest`. Must
     * declare itself piecewise constant (Harvester::piecewiseConstant)
     * — the lockstep kernel holds each piece's power fixed per macro
     * step and caps steps at the piece boundary, exactly like the
     * scalar analytic stepper. Borrowed (caller keeps it alive); its
     * powerAt/constantUntil must be safe to call concurrently when
     * lanes run on multiple threads.
     */
    const sim::Harvester *harvester = nullptr;
    /** The op program, executed `repeat` times in order. */
    std::vector<LaneOp> program;
    unsigned repeat = 1;
    /**
     * Dynamic op feeder; non-null makes the lane ignore program/repeat
     * and pull ops from here instead (borrowed; caller keeps it alive
     * and distinct per lane).
     */
    OpSource *source = nullptr;
};

/** Outcome of one executed op (mirrors WaitResult / LoadResult). */
struct OpOutcome
{
    OpKind kind = OpKind::IdleFor;
    /** WaitLevel / WaitEnabled verdict. */
    sim::WaitStatus wait_status = sim::WaitStatus::Reached;
    Seconds elapsed{0.0};
    /** Waits: last observed resting voltage. Loads: vend. */
    Volts voltage{0.0};
    /** Populated for Unreachable waits (byte-identical to Device). */
    std::string diagnostic;
    /** RunProfile only. */
    bool completed = false;
    bool power_failed = false;
    bool collapsed = false;
    Volts vmin{0.0};

    bool reached() const { return wait_status == sim::WaitStatus::Reached; }
};

/** Outcome of one lane's full program run. */
struct LaneResult
{
    std::vector<OpOutcome> ops;
    /** Monitor power failures across the whole run. */
    unsigned power_failures = 0;
    Seconds end_time{0.0};
    /** Resting voltage at the end of the program. */
    Volts vend{0.0};
    /** Accepted analytic macro commits (kernel only; 0 for scalar). */
    unsigned macro_commits = 0;
    /** Segments peeled onto the scalar engine (kernel only). */
    unsigned peels = 0;
};

/** Batch-wide knobs. */
struct BatchOptions
{
    /** Macro-step acceptance bound (SegmentOptions::current_tolerance). */
    double current_tolerance = 0.025;
    /**
     * Consecutive reference steps inside one segment before the lane is
     * peeled onto the scalar engine for the segment's remainder.
     */
    unsigned event_storm_threshold = 64;
    /**
     * Replay the scalar engine bit-for-bit: full 8-iteration booster
     * fixed point (including the degenerate zero-load solve) and the
     * 64-iteration crossing bisection. The default leaves those on the
     * fast variants — quiescent-only idle draw, converged fixed point,
     * Newton-accelerated crossings — which agree with the scalar path
     * well inside the differential-suite tolerances but not to the last
     * bit. The differential harness exercises both settings.
     */
    bool exact_replay = false;
};

/**
 * The lockstep kernel. Typical use: addLane() each spec, run(), then
 * result() per lane. resetLane()/setLaneProgram() support callers that
 * re-drive the same lanes repeatedly (the ground-truth bisection reuses
 * one lane per query across search iterations).
 */
class BatchEngine
{
  public:
    explicit BatchEngine(BatchOptions options = {});
    ~BatchEngine();
    BatchEngine(BatchEngine &&) noexcept;
    BatchEngine &operator=(BatchEngine &&) noexcept;

    /** Add a lane; returns its index. Validates the spec (fatal). */
    std::size_t addLane(const LaneSpec &spec);
    std::size_t laneCount() const;

    /**
     * Rewind a lane to t = 0 with equalized branches at @p vstart and
     * the monitor forced to @p enabled; clears its result and warm
     * caches. Power-failure counts report per-run deltas.
     */
    void resetLane(std::size_t lane, Volts vstart, bool enabled);
    /** Replace a lane's program (empty = lane sits out the next run()). */
    void setLaneProgram(std::size_t lane, std::vector<LaneOp> program,
                        unsigned repeat = 1);

    /** Run every lane's program to completion in lockstep. */
    void run();

    const LaneResult &result(std::size_t lane) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Convenience: run a population of specs through one BatchEngine.
 * Results are indexed like @p specs.
 */
std::vector<LaneResult> runPopulation(const std::vector<LaneSpec> &specs,
                                      const BatchOptions &options = {});

/**
 * Reference executor: the same spec through sim::Device primitives.
 * The differential harness asserts runPopulation ≡ runLaneScalar per
 * lane within the analytic-equivalence tolerances.
 */
LaneResult runLaneScalar(const LaneSpec &spec);

} // namespace culpeo::batch

#endif // CULPEO_BATCH_ENGINE_HPP
