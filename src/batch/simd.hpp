/**
 * @file
 * Runtime SIMD dispatch tiers for the batch commit kernels
 * (DESIGN.md §15).
 *
 * The packed commit/crossing kernels (commit_kernel.hpp) are built as
 * width-agnostic lane templates instantiated at 4- and 8-wide doubles
 * in separate translation units compiled with the matching ISA flags
 * (-mavx2/-mfma, -mavx512f). Which instantiation runs is decided once
 * per process from CPUID — a generic build therefore runs on any
 * x86-64 (or non-x86) host and simply dispatches to the scalar tier,
 * while the same binary uses 4/8-wide kernels on capable hardware.
 *
 * Knobs:
 *  - CMake `CULPEO_SIMD` (ON by default) compiles the wide tiers in;
 *    OFF builds the scalar tier only (the dispatch seam stays).
 *  - The `CULPEO_SIMD_WIDTH` environment variable (1, 4, or 8) clamps
 *    the active tier below what CPUID detected — the test suite uses
 *    it to force the scalar fallback and to pin kernel widths.
 */

#ifndef CULPEO_BATCH_SIMD_HPP
#define CULPEO_BATCH_SIMD_HPP

namespace culpeo::batch::simd {

/** A dispatchable kernel width (doubles per vector lane group). */
enum class Tier : int
{
    Scalar = 1, ///< Portable one-lane kernels (always available).
    Wide4 = 4,  ///< 4-wide doubles (x86: AVX2 + FMA).
    Wide8 = 8,  ///< 8-wide doubles (x86: AVX-512F).
};

constexpr int width(Tier tier) { return static_cast<int>(tier); }

const char *tierName(Tier tier);

/**
 * Widest tier this binary can run here: the intersection of what was
 * compiled in (CULPEO_SIMD + toolchain flags) and what CPUID reports.
 * Detected once, then cached.
 */
Tier detectedTier();

/**
 * detectedTier() clamped by the CULPEO_SIMD_WIDTH environment variable
 * (read once). Unrecognized values are ignored; widths above the
 * detected tier clamp down, so forcing "8" on an AVX2-only host still
 * runs the 4-wide kernels and forcing it on a generic build runs
 * scalar.
 */
Tier activeTier();

} // namespace culpeo::batch::simd

#endif // CULPEO_BATCH_SIMD_HPP
