#include "batch/trial_driver.hpp"

#include <algorithm>

#include "harness/task_runner.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace culpeo::batch {

using sched::AppSpec;
using sched::EventSpec;
using sched::Policy;
using sched::SchedTask;
using sched::TrialConfig;

std::vector<PendingEvent>
generateArrivals(const AppSpec &app, Seconds duration, util::Rng &rng)
{
    std::vector<PendingEvent> arrivals;
    for (std::size_t i = 0; i < app.events.size(); ++i) {
        const EventSpec &spec = app.events[i];
        Seconds t{0.0};
        while (true) {
            if (spec.arrival == sched::Arrival::Periodic)
                t += spec.interval;
            else
                t += Seconds(rng.exponential(spec.interval.value()));
            if (t >= duration)
                break;
            arrivals.push_back({t, i, false});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const PendingEvent &a, const PendingEvent &b) {
                  return a.arrival < b.arrival;
              });
    return arrivals;
}

namespace {

/**
 * Resolve one admission into a table threshold. Lockstep lanes share
 * one table, so only unconditional, side-effect-free admissions can be
 * tabled: a refusal or a buffer-reconfiguration request needs the
 * scalar engine's per-dispatch handling.
 */
Volts
tabled(const sched::Admission &admission, const char *what)
{
    log::fatalIf(!admission.admit, "PolicyTables: policy refuses ", what,
                 " admission; run on the scalar path");
    log::fatalIf(admission.buffer != nullptr,
                 "PolicyTables: policy requests buffer reconfiguration; "
                 "run on the scalar path");
    return admission.need;
}

} // namespace

PolicyTables::PolicyTables(const AppSpec &app, const Policy &policy)
{
    log::fatalIf(!policy.stationary(),
                 "PolicyTables requires a stationary policy: '",
                 policy.name(),
                 "' adapts at runtime and must run on the scalar path");
    chain_need.reserve(app.events.size());
    for (const EventSpec &spec : app.events) {
        chain_need.push_back(tabled(policy.admitChain(spec), "chain"));
        std::vector<Volts> needs;
        std::vector<Seconds> dts;
        for (const SchedTask &task : spec.chain) {
            needs.push_back(tabled(policy.admitTask(task), "task"));
            dts.push_back(harness::chooseDt(task.profile));
        }
        task_need.push_back(std::move(needs));
        task_dt.push_back(std::move(dts));
    }
    if (app.background.has_value()) {
        bg_need = tabled(policy.admitBackground(app), "background");
        bg_dt = harness::chooseDt(app.background->profile);
    }
}

TrialDriver::TrialDriver(const AppSpec &app, const TrialConfig &config,
                         const PolicyTables &tables, std::uint64_t seed,
                         telemetry::Telemetry *scratch)
    : app_(app), tables_(tables), tel_(scratch),
      duration_(config.duration),
      idle_dt_(sim::DeviceOptions{}.idle_dt)
{
    util::Rng rng(seed);
    arrivals_ = generateArrivals(app, duration_, rng);
    result_.per_event.resize(app.events.size());
    for (std::size_t i = 0; i < app.events.size(); ++i)
        result_.per_event[i].name = app.events[i].name;
    if (tel_ != nullptr) {
        // Device::setTelemetry's eager handle resolution, in the
        // same registry insertion order.
        namespace names = telemetry::names;
        telemetry::Registry &reg = tel_->registry();
        loads_ = &reg.counter(names::kDeviceLoads);
        brownouts_ = &reg.counter(names::kDeviceBrownouts);
        recharges_ = &reg.counter(names::kDeviceRecharges);
        waits_ = &reg.counter(names::kDeviceWaits);
        waits_unreachable_ =
            &reg.counter(names::kDeviceWaitsUnreachable);
        recharge_seconds_ =
            &reg.gauge(names::kDeviceRechargeSeconds,
                       telemetry::GaugeMode::Sum);
        min_margin_ = &reg.gauge(names::kDeviceMinMarginV,
                                 telemetry::GaugeMode::Min);
    }
}

void
TrialDriver::roundFlush()
{
    if (tel_ != nullptr)
        tel_->flushStaged();
}

const TrialDriver::TaskTel &
TrialDriver::taskTel(const SchedTask &task)
{
    const auto it = task_tel_.find(&task);
    if (it != task_tel_.end())
        return it->second;
    TaskTel handles;
    handles.name_id = tel_->trace().intern(task.name);
    handles.vmin = &tel_->registry().histogram(
        telemetry::names::taskVmin(task.name),
        app_.power.monitor.voff.value(),
        app_.power.monitor.vhigh.value(), 32);
    return task_tel_.emplace(&task, handles).first->second;
}

void
TrialDriver::noteWait(const OpOutcome &w)
{
    if (tel_ == nullptr)
        return;
    waits_->add();
    if (w.wait_status == sim::WaitStatus::Unreachable)
        waits_unreachable_->add();
}

void
TrialDriver::noteRecharge(Volts enter_voltage, Volts target,
                          const OpOutcome &w, const LaneStatus &status)
{
    if (tel_ == nullptr)
        return;
    noteWait(w);
    recharges_->add();
    recharge_seconds_->record(w.elapsed.value());
    const double t_exit = status.now.value();
    tel_->stage(telemetry::EventKind::RechargeEnter,
                t_exit - w.elapsed.value(), enter_voltage.value(), 0,
                target.value());
    tel_->stage(telemetry::EventKind::RechargeExit, t_exit,
                w.voltage.value(), 0, target.value(), w.reached());
}

void
TrialDriver::beginCommitted(const SchedTask &task, Volts need,
                            const LaneStatus &status)
{
    ++tasks_started_;
    cur_task_ = &task;
    if (tel_ != nullptr) {
        const TaskTel &handles = taskTel(task);
        const double now_s = status.now.value();
        tel_->stage(telemetry::EventKind::VsafeUpdate, now_s,
                    status.resting.value(), handles.name_id,
                    need.value());
        tel_->stage(telemetry::EventKind::TaskStart, now_s,
                    status.resting.value(), handles.name_id,
                    need.value());
    }
}

bool
TrialDriver::finishCommitted(const OpOutcome &run,
                             const LaneStatus &status)
{
    if (tel_ != nullptr) {
        // Device::noteLoad fires inside runLoad, before the
        // engine's TaskEnd — same order here.
        loads_->add();
        min_margin_->record(run.vmin.value() -
                            app_.power.monitor.voff.value());
        const double t = status.now.value();
        if (tel_->sampleTick()) {
            tel_->stage(telemetry::EventKind::VminRecord, t,
                        run.voltage.value(), 0, run.vmin.value(),
                        run.completed);
        }
        if (run.power_failed) {
            brownouts_->add();
            tel_->stage(telemetry::EventKind::BrownOut, t,
                        run.vmin.value(), 0, run.vmin.value());
        }
        const TaskTel &handles = taskTel(*cur_task_);
        tel_->stage(telemetry::EventKind::TaskEnd, t,
                    run.voltage.value(), handles.name_id,
                    run.vmin.value(), run.completed);
        handles.vmin->record(run.vmin.value());
    }
    if (run.completed)
        ++tasks_completed_;
    return run.completed;
}

bool
TrialDriver::issueIdleUntil(Seconds t, const LaneStatus &status,
                            LaneOp *out)
{
    if (t > status.now) {
        *out = LaneOp::idleFor(t - status.now);
        st_ = St::Idle;
        return true;
    }
    st_ = St::Main;
    return false;
}

bool
TrialDriver::idleOutStep(const LaneStatus &status, LaneOp *out)
{
    if (status.now.value() <= io_deadline_.value()) {
        *out = LaneOp::idleFor(idle_dt_);
        st_ = St::IdleOutTick;
        return true;
    }
    st_ = St::Main;
    return false;
}

bool
TrialDriver::enterIdleOut(const OpOutcome &w, const LaneStatus &status,
                          LaneOp *out)
{
    if (w.wait_status != sim::WaitStatus::Unreachable) {
        st_ = St::Main;
        return false;
    }
    io_deadline_ = service_deadline_;
    if (io_deadline_ > status.now) {
        *out = LaneOp::idleFor(io_deadline_ - status.now);
        st_ = St::IdleOutBig;
        return true;
    }
    return idleOutStep(status, out);
}

bool
TrialDriver::advanceChain(const LaneStatus &status, LaneOp *out)
{
    const EventSpec &spec = app_.events[spec_index_];
    if (task_i_ < spec.chain.size()) {
        *out = LaneOp::waitLevel(
            tables_.task_need[spec_index_][task_i_],
            service_deadline_, /*stop_when_off=*/true);
        st_ = St::TaskWait;
        return true;
    }
    if (status.now <= service_deadline_) {
        ++cur_stats_->captured;
        // Same Seconds expression as the scalar engine's
        // `device.now() - event.arrival` — exact_replay bit-identity.
        result_.capture_latency += status.now - cur_arrival_;
    } else {
        ++cur_stats_->lost;
    }
    st_ = St::Main;
    return false;
}

void
TrialDriver::finalize(const LaneStatus &status)
{
    result_.tasks_started = tasks_started_;
    result_.tasks_completed = tasks_completed_;
    if (tel_ == nullptr)
        return;
    namespace names = telemetry::names;
    telemetry::Registry &reg = tel_->registry();
    reg.counter(names::kSchedTasksStarted).add(tasks_started_);
    reg.counter(names::kSchedTasksCompleted).add(tasks_completed_);
    unsigned arrived = 0;
    unsigned captured = 0;
    unsigned lost = 0;
    for (const auto &stats : result_.per_event) {
        arrived += stats.arrived;
        captured += stats.captured;
        lost += stats.lost;
    }
    reg.counter(names::kSchedEventsArrived).add(arrived);
    reg.counter(names::kSchedEventsCaptured).add(captured);
    reg.counter(names::kSchedEventsLost).add(lost);
    reg.counter(names::kSchedBackgroundRuns)
        .add(result_.background_runs);
    reg.gauge(names::kTrialSimSeconds, telemetry::GaugeMode::Sum)
        .record(status.now.value());
}

bool
TrialDriver::next(const OpOutcome *last, const LaneStatus &status,
                  LaneOp *out)
{
    // Interpret the outcome the finished op produced, exactly where
    // the scalar loop would have consumed the Device return value.
    switch (st_) {
    case St::Main:
    case St::Idle:
        break;

    case St::ChainWait:
        noteWait(*last);
        if (!last->reached()) {
            ++cur_stats_->lost;
            if (enterIdleOut(*last, status, out))
                return true;
            break;
        }
        task_i_ = 0;
        if (advanceChain(status, out))
            return true;
        break;

    case St::TaskWait: {
        noteWait(*last);
        if (!last->reached()) {
            ++cur_stats_->lost;
            if (enterIdleOut(*last, status, out))
                return true;
            break;
        }
        const EventSpec &spec = app_.events[spec_index_];
        const SchedTask &task = spec.chain[task_i_];
        beginCommitted(task, tables_.task_need[spec_index_][task_i_],
                       status);
        *out = LaneOp::runProfile(&task.profile,
                                  tables_.task_dt[spec_index_][task_i_]);
        st_ = St::TaskRun;
        return true;
    }

    case St::TaskRun:
        if (!finishCommitted(*last, status)) {
            // Brown-out mid-chain: the event is lost and the device
            // must fully recharge before doing anything else.
            ++cur_stats_->lost;
            break;
        }
        ++task_i_;
        if (advanceChain(status, out))
            return true;
        break;

    case St::RechargeOn:
        noteRecharge(recharge_enter_v_, app_.power.monitor.vhigh, *last,
                     status);
        if (!last->reached() && issueIdleUntil(target_, status, out))
            return true;
        break;

    case St::BgRun:
        finishCommitted(*last, status);
        ++result_.background_runs;
        last_background_ = status.now;
        break;

    case St::BgWait:
        noteWait(*last);
        if ((last->wait_status == sim::WaitStatus::DeadlineExpired ||
             last->wait_status == sim::WaitStatus::Unreachable) &&
            issueIdleUntil(target_, status, out))
            return true;
        break;

    case St::IdleOutBig:
    case St::IdleOutTick:
        if (idleOutStep(status, out))
            return true;
        break;

    case St::Done:
        return false;
    }

    // --- The main decision loop (runSeededTrial's while body). Time
    // only advances through issued ops, so iterating here with a fixed
    // `status` matches the scalar `continue`s after no-op passes. ---
    for (;;) {
        if (!(status.now < duration_)) {
            finalize(status);
            st_ = St::Done;
            return false;
        }

        // Retire any arrival whose deadline already passed unserviced.
        bool serviced = false;
        for (std::size_t i = next_arrival_; i < arrivals_.size(); ++i) {
            PendingEvent &event = arrivals_[i];
            if (event.arrival > status.now)
                break;
            if (event.handled)
                continue;
            sched::EventTypeStats &stats =
                result_.per_event[event.spec_index];
            const EventSpec &spec = app_.events[event.spec_index];
            ++stats.arrived;
            event.handled = true;
            if (i == next_arrival_)
                ++next_arrival_;

            if (status.now > event.arrival + spec.deadline) {
                ++stats.lost; // Expired while the device was busy/off.
            } else if (!status.enabled) {
                ++stats.lost; // Device is off recharging.
            } else {
                // serviceEvent: wait for the chain-start threshold.
                spec_index_ = event.spec_index;
                cur_stats_ = &stats;
                cur_arrival_ = event.arrival;
                service_deadline_ = event.arrival + spec.deadline;
                *out = LaneOp::waitLevel(tables_.chain_need[spec_index_],
                                         service_deadline_,
                                         /*stop_when_off=*/true);
                st_ = St::ChainWait;
                return true;
            }
            serviced = true;
            break; // Re-evaluate time/arrivals after servicing.
        }
        if (serviced)
            continue;

        // The next not-yet-due arrival bounds every idle wait below.
        Seconds target = duration_;
        for (std::size_t i = next_arrival_; i < arrivals_.size(); ++i) {
            if (arrivals_[i].handled)
                continue;
            target = std::min(target, arrivals_[i].arrival);
            break;
        }
        const Seconds wait_deadline = target - idle_dt_;

        if (!status.enabled) {
            recharge_enter_v_ = status.resting;
            target_ = target;
            *out = LaneOp::waitEnabled(wait_deadline);
            st_ = St::RechargeOn;
            return true;
        }

        // No pending event: consider background work (difference-form
        // dueness, as in the scalar engine).
        if (app_.background.has_value() &&
            status.now - last_background_ >= app_.background_period) {
            const Volts bg_need = tables_.bg_need;
            if (status.resting >= bg_need) {
                beginCommitted(*app_.background, bg_need, status);
                *out = LaneOp::runProfile(&app_.background->profile,
                                          tables_.bg_dt);
                st_ = St::BgRun;
                return true;
            }
            target_ = target;
            *out = LaneOp::waitLevel(bg_need, wait_deadline,
                                     /*stop_when_off=*/true);
            st_ = St::BgWait;
            return true;
        }

        Seconds next_decision = target;
        if (app_.background.has_value()) {
            next_decision = std::min(
                next_decision, last_background_ + app_.background_period);
        }
        if (next_decision > status.now) {
            *out = LaneOp::idleFor(next_decision - status.now);
        } else {
            // The sum above can round below now() while the difference
            // form still reads not-yet-due; tick once and re-evaluate.
            *out = LaneOp::idleFor(idle_dt_);
        }
        st_ = St::Idle;
        return true;
    }
}

} // namespace culpeo::batch
