/**
 * @file
 * The per-trial scheduler replica behind the batch sweep executor
 * (DESIGN.md §14): an OpSource that replays sched::runSeededTrial's
 * decision loop op by op against a BatchEngine lane — same arrival
 * stream (same util::Rng draws), same retire/service/background
 * ordering, same Device-primitive sequence, same staged-telemetry
 * emission order.
 *
 * Split out of trial_runner.cpp so population-scale front ends
 * (fleet::runFleet) can drive heterogeneous per-device lanes with the
 * same replica the homogeneous sweep runner uses. Like trial_runner,
 * this translation unit is compiled into culpeo_sched (it needs the
 * sched:: types) while the interface lives here under batch/.
 */

#ifndef CULPEO_BATCH_TRIAL_DRIVER_HPP
#define CULPEO_BATCH_TRIAL_DRIVER_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "batch/engine.hpp"
#include "sched/engine.hpp"
#include "util/random.hpp"

namespace culpeo::telemetry {
class Counter;
class Gauge;
class Histogram;
class Telemetry;
} // namespace culpeo::telemetry

namespace culpeo::batch {

/** One concrete event instance awaiting service (engine.cpp mirror). */
struct PendingEvent
{
    Seconds arrival{0.0};
    std::size_t spec_index = 0;
    bool handled = false;
};

/**
 * Verbatim port of the scheduler engine's arrival generation: the same
 * Rng draw sequence produces the same arrival stream, so a batch trial
 * and its scalar twin service identical event instances.
 */
std::vector<PendingEvent> generateArrivals(const sched::AppSpec &app,
                                           Seconds duration,
                                           util::Rng &rng);

/**
 * Dispatch thresholds and step sizes, resolved once per sweep (or per
 * fleet cohort). Policy methods are const and trial-independent, so
 * per-trial re-queries would only repeat the same lookups.
 */
struct PolicyTables
{
    std::vector<Volts> chain_need;             ///< Per event spec.
    std::vector<std::vector<Volts>> task_need; ///< Per spec, per link.
    std::vector<std::vector<Seconds>> task_dt; ///< chooseDt per link.
    Volts bg_need{0.0};
    Seconds bg_dt{50e-6};

    PolicyTables(const sched::AppSpec &app, const sched::Policy &policy);
};

/**
 * One trial's scheduler replica: an OpSource that re-derives the next
 * Device primitive from each op outcome, replaying runSeededTrial's
 * decision loop — including its telemetry emission order — without a
 * sim::Device. All time/threshold arithmetic uses the same expressions
 * as the scalar engine so exact_replay runs are bit-identical.
 */
class TrialDriver : public OpSource
{
  public:
    TrialDriver(const sched::AppSpec &app, const sched::TrialConfig &config,
                const PolicyTables &tables, std::uint64_t seed,
                telemetry::Telemetry *scratch);

    bool next(const OpOutcome *last, const LaneStatus &status,
              LaneOp *out) override;

    /**
     * Trace points are stage()d, not emit()ted: the engine's round
     * boundary drains them all under one trace-log lock instead of
     * paying it at every op boundary inside the control pass.
     */
    void roundFlush() override;

    sched::TrialResult &result() { return result_; }

  private:
    enum class St
    {
        Main,        ///< No outcome pending interpretation.
        ChainWait,   ///< idleUntilVoltage(chain admission need, deadline).
        TaskWait,    ///< idleUntilVoltage(task admission need, deadline).
        TaskRun,     ///< Chain task profile run.
        RechargeOn,  ///< rechargeUntilOn(wait_deadline).
        BgRun,       ///< Background task profile run.
        BgWait,      ///< idleUntilVoltage(bg_need, wait_deadline).
        IdleOutBig,  ///< idleOutWindow's idleUntil(deadline).
        IdleOutTick, ///< idleOutWindow's per-tick tail.
        Idle,        ///< Outcome-ignored idle (idleUntil / one tick).
        Done,
    };

    struct TaskTel
    {
        std::uint32_t name_id = 0;
        telemetry::Histogram *vmin = nullptr;
    };

    const TaskTel &taskTel(const sched::SchedTask &task);

    // --- Device telemetry mirrors (sim/device.cpp note*) ---

    void noteWait(const OpOutcome &w);
    void noteRecharge(Volts enter_voltage, Volts target,
                      const OpOutcome &w, const LaneStatus &status);

    // --- runCommitted split across the op boundary ---

    void beginCommitted(const sched::SchedTask &task, Volts need,
                        const LaneStatus &status);
    bool finishCommitted(const OpOutcome &run, const LaneStatus &status);

    // --- Control helpers ---

    bool issueIdleUntil(Seconds t, const LaneStatus &status, LaneOp *out);
    bool idleOutStep(const LaneStatus &status, LaneOp *out);
    bool enterIdleOut(const OpOutcome &w, const LaneStatus &status,
                      LaneOp *out);
    bool advanceChain(const LaneStatus &status, LaneOp *out);
    void finalize(const LaneStatus &status);

    const sched::AppSpec &app_;
    const PolicyTables &tables_;
    telemetry::Telemetry *tel_ = nullptr;
    const Seconds duration_;
    const Seconds idle_dt_;

    std::vector<PendingEvent> arrivals_;
    std::size_t next_arrival_ = 0;
    Seconds last_background_{-1e9};

    sched::TrialResult result_;
    unsigned tasks_started_ = 0;
    unsigned tasks_completed_ = 0;
    std::map<const sched::SchedTask *, TaskTel> task_tel_;

    St st_ = St::Main;
    // Event in service.
    std::size_t spec_index_ = 0;
    std::size_t task_i_ = 0;
    Seconds service_deadline_{0.0};
    Seconds cur_arrival_{0.0};
    sched::EventTypeStats *cur_stats_ = nullptr;
    const sched::SchedTask *cur_task_ = nullptr;
    // Pending idle/recharge context.
    Seconds target_{0.0};
    Seconds io_deadline_{0.0};
    Volts recharge_enter_v_{0.0};

    telemetry::Counter *loads_ = nullptr;
    telemetry::Counter *brownouts_ = nullptr;
    telemetry::Counter *recharges_ = nullptr;
    telemetry::Counter *waits_ = nullptr;
    telemetry::Counter *waits_unreachable_ = nullptr;
    telemetry::Gauge *recharge_seconds_ = nullptr;
    telemetry::Gauge *min_margin_ = nullptr;
};

} // namespace culpeo::batch

#endif // CULPEO_BATCH_TRIAL_DRIVER_HPP
