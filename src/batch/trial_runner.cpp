#include "batch/trial_runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "harness/task_runner.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace culpeo::batch {

namespace {

using sched::AppSpec;
using sched::EventSpec;
using sched::Policy;
using sched::SchedTask;
using sched::TrialConfig;
using sched::TrialResult;

/** One concrete event instance awaiting service (engine.cpp mirror). */
struct PendingEvent
{
    Seconds arrival{0.0};
    std::size_t spec_index = 0;
    bool handled = false;
};

/**
 * Verbatim port of the scheduler engine's arrival generation: the same
 * Rng draw sequence produces the same arrival stream, so a batch trial
 * and its scalar twin service identical event instances.
 */
std::vector<PendingEvent>
generateArrivals(const AppSpec &app, Seconds duration, util::Rng &rng)
{
    std::vector<PendingEvent> arrivals;
    for (std::size_t i = 0; i < app.events.size(); ++i) {
        const EventSpec &spec = app.events[i];
        Seconds t{0.0};
        while (true) {
            if (spec.arrival == sched::Arrival::Periodic)
                t += spec.interval;
            else
                t += Seconds(rng.exponential(spec.interval.value()));
            if (t >= duration)
                break;
            arrivals.push_back({t, i, false});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const PendingEvent &a, const PendingEvent &b) {
                  return a.arrival < b.arrival;
              });
    return arrivals;
}

/**
 * Dispatch thresholds and step sizes, resolved once per sweep. Policy
 * methods are const and trial-independent (runTrialsWith already
 * shares the policy across parallel trials), so per-trial re-queries
 * only repeat the same lookups.
 */
struct PolicyTables
{
    std::vector<Volts> chain_need;             ///< Per event spec.
    std::vector<std::vector<Volts>> task_need; ///< Per spec, per link.
    std::vector<std::vector<Seconds>> task_dt; ///< chooseDt per link.
    Volts bg_need{0.0};
    Seconds bg_dt{50e-6};

    PolicyTables(const AppSpec &app, const Policy &policy)
    {
        chain_need.reserve(app.events.size());
        for (const EventSpec &spec : app.events) {
            chain_need.push_back(policy.chainStart(spec));
            std::vector<Volts> needs;
            std::vector<Seconds> dts;
            for (const SchedTask &task : spec.chain) {
                needs.push_back(policy.taskStart(task));
                dts.push_back(harness::chooseDt(task.profile));
            }
            task_need.push_back(std::move(needs));
            task_dt.push_back(std::move(dts));
        }
        if (app.background.has_value()) {
            bg_need = policy.backgroundThreshold(app);
            bg_dt = harness::chooseDt(app.background->profile);
        }
    }
};

/**
 * One trial's scheduler replica: an OpSource that re-derives the next
 * Device primitive from each op outcome, replaying runSeededTrial's
 * decision loop — including its telemetry emission order — without a
 * sim::Device. All time/threshold arithmetic uses the same expressions
 * as the scalar engine so exact_replay runs are bit-identical.
 */
class TrialDriver : public OpSource
{
  public:
    TrialDriver(const AppSpec &app, const TrialConfig &config,
                const PolicyTables &tables, std::uint64_t seed,
                telemetry::Telemetry *scratch)
        : app_(app), tables_(tables), tel_(scratch),
          duration_(config.duration),
          idle_dt_(sim::DeviceOptions{}.idle_dt)
    {
        util::Rng rng(seed);
        arrivals_ = generateArrivals(app, duration_, rng);
        result_.per_event.resize(app.events.size());
        for (std::size_t i = 0; i < app.events.size(); ++i)
            result_.per_event[i].name = app.events[i].name;
        if (tel_ != nullptr) {
            // Device::setTelemetry's eager handle resolution, in the
            // same registry insertion order.
            namespace names = telemetry::names;
            telemetry::Registry &reg = tel_->registry();
            loads_ = &reg.counter(names::kDeviceLoads);
            brownouts_ = &reg.counter(names::kDeviceBrownouts);
            recharges_ = &reg.counter(names::kDeviceRecharges);
            waits_ = &reg.counter(names::kDeviceWaits);
            waits_unreachable_ =
                &reg.counter(names::kDeviceWaitsUnreachable);
            recharge_seconds_ =
                &reg.gauge(names::kDeviceRechargeSeconds,
                           telemetry::GaugeMode::Sum);
            min_margin_ = &reg.gauge(names::kDeviceMinMarginV,
                                     telemetry::GaugeMode::Min);
        }
    }

    bool next(const OpOutcome *last, const LaneStatus &status,
              LaneOp *out) override;

    /**
     * Trace points above are stage()d, not emit()ted: the engine's
     * round boundary drains them all under one trace-log lock instead
     * of paying it at every op boundary inside the control pass.
     */
    void roundFlush() override
    {
        if (tel_ != nullptr)
            tel_->flushStaged();
    }

    TrialResult &result() { return result_; }

  private:
    enum class St
    {
        Main,        ///< No outcome pending interpretation.
        ChainWait,   ///< idleUntilVoltage(chainStart, deadline).
        TaskWait,    ///< idleUntilVoltage(taskStart, deadline).
        TaskRun,     ///< Chain task profile run.
        RechargeOn,  ///< rechargeUntilOn(wait_deadline).
        BgRun,       ///< Background task profile run.
        BgWait,      ///< idleUntilVoltage(bg_need, wait_deadline).
        IdleOutBig,  ///< idleOutWindow's idleUntil(deadline).
        IdleOutTick, ///< idleOutWindow's per-tick tail.
        Idle,        ///< Outcome-ignored idle (idleUntil / one tick).
        Done,
    };

    struct TaskTel
    {
        std::uint32_t name_id = 0;
        telemetry::Histogram *vmin = nullptr;
    };

    const TaskTel &taskTel(const SchedTask &task)
    {
        const auto it = task_tel_.find(&task);
        if (it != task_tel_.end())
            return it->second;
        TaskTel handles;
        handles.name_id = tel_->trace().intern(task.name);
        handles.vmin = &tel_->registry().histogram(
            telemetry::names::taskVmin(task.name),
            app_.power.monitor.voff.value(),
            app_.power.monitor.vhigh.value(), 32);
        return task_tel_.emplace(&task, handles).first->second;
    }

    // --- Device telemetry mirrors (sim/device.cpp note*) ---

    void noteWait(const OpOutcome &w)
    {
        if (tel_ == nullptr)
            return;
        waits_->add();
        if (w.wait_status == sim::WaitStatus::Unreachable)
            waits_unreachable_->add();
    }

    void noteRecharge(Volts enter_voltage, Volts target,
                      const OpOutcome &w, const LaneStatus &status)
    {
        if (tel_ == nullptr)
            return;
        noteWait(w);
        recharges_->add();
        recharge_seconds_->record(w.elapsed.value());
        const double t_exit = status.now.value();
        tel_->stage(telemetry::EventKind::RechargeEnter,
                   t_exit - w.elapsed.value(), enter_voltage.value(), 0,
                   target.value());
        tel_->stage(telemetry::EventKind::RechargeExit, t_exit,
                   w.voltage.value(), 0, target.value(), w.reached());
    }

    // --- runCommitted split across the op boundary ---

    void beginCommitted(const SchedTask &task, Volts need,
                        const LaneStatus &status)
    {
        ++tasks_started_;
        cur_task_ = &task;
        if (tel_ != nullptr) {
            const TaskTel &handles = taskTel(task);
            const double now_s = status.now.value();
            tel_->stage(telemetry::EventKind::VsafeUpdate, now_s,
                       status.resting.value(), handles.name_id,
                       need.value());
            tel_->stage(telemetry::EventKind::TaskStart, now_s,
                       status.resting.value(), handles.name_id,
                       need.value());
        }
    }

    bool finishCommitted(const OpOutcome &run, const LaneStatus &status)
    {
        if (tel_ != nullptr) {
            // Device::noteLoad fires inside runLoad, before the
            // engine's TaskEnd — same order here.
            loads_->add();
            min_margin_->record(run.vmin.value() -
                                app_.power.monitor.voff.value());
            const double t = status.now.value();
            if (tel_->sampleTick()) {
                tel_->stage(telemetry::EventKind::VminRecord, t,
                           run.voltage.value(), 0, run.vmin.value(),
                           run.completed);
            }
            if (run.power_failed) {
                brownouts_->add();
                tel_->stage(telemetry::EventKind::BrownOut, t,
                           run.vmin.value(), 0, run.vmin.value());
            }
            const TaskTel &handles = taskTel(*cur_task_);
            tel_->stage(telemetry::EventKind::TaskEnd, t,
                       run.voltage.value(), handles.name_id,
                       run.vmin.value(), run.completed);
            handles.vmin->record(run.vmin.value());
        }
        if (run.completed)
            ++tasks_completed_;
        return run.completed;
    }

    // --- Control helpers ---

    /** idleUntil(@p t): issue the idle when it advances time. */
    bool issueIdleUntil(Seconds t, const LaneStatus &status, LaneOp *out)
    {
        if (t > status.now) {
            *out = LaneOp::idleFor(t - status.now);
            st_ = St::Idle;
            return true;
        }
        st_ = St::Main;
        return false;
    }

    /** idleOutWindow's per-tick tail: while (now <= deadline) tick. */
    bool idleOutStep(const LaneStatus &status, LaneOp *out)
    {
        if (status.now.value() <= io_deadline_.value()) {
            *out = LaneOp::idleFor(idle_dt_);
            st_ = St::IdleOutTick;
            return true;
        }
        st_ = St::Main;
        return false;
    }

    /**
     * idleOutWindow(@p w, service_deadline_): an unsatisfiable wait
     * still consumes the event's whole window.
     */
    bool enterIdleOut(const OpOutcome &w, const LaneStatus &status,
                      LaneOp *out)
    {
        if (w.wait_status != sim::WaitStatus::Unreachable) {
            st_ = St::Main;
            return false;
        }
        io_deadline_ = service_deadline_;
        if (io_deadline_ > status.now) {
            *out = LaneOp::idleFor(io_deadline_ - status.now);
            st_ = St::IdleOutBig;
            return true;
        }
        return idleOutStep(status, out);
    }

    /**
     * Next link of the chain in service, or resolve captured/lost when
     * the chain is exhausted. True when an op was issued.
     */
    bool advanceChain(const LaneStatus &status, LaneOp *out)
    {
        const EventSpec &spec = app_.events[spec_index_];
        if (task_i_ < spec.chain.size()) {
            *out = LaneOp::waitLevel(
                tables_.task_need[spec_index_][task_i_],
                service_deadline_, /*stop_when_off=*/true);
            st_ = St::TaskWait;
            return true;
        }
        if (status.now <= service_deadline_)
            ++cur_stats_->captured;
        else
            ++cur_stats_->lost;
        st_ = St::Main;
        return false;
    }

    /** Trial-end roll-up (engine.cpp's counters, scratch-recorded). */
    void finalize(const LaneStatus &status)
    {
        if (tel_ == nullptr)
            return;
        namespace names = telemetry::names;
        telemetry::Registry &reg = tel_->registry();
        reg.counter(names::kSchedTasksStarted).add(tasks_started_);
        reg.counter(names::kSchedTasksCompleted).add(tasks_completed_);
        unsigned arrived = 0;
        unsigned captured = 0;
        unsigned lost = 0;
        for (const auto &stats : result_.per_event) {
            arrived += stats.arrived;
            captured += stats.captured;
            lost += stats.lost;
        }
        reg.counter(names::kSchedEventsArrived).add(arrived);
        reg.counter(names::kSchedEventsCaptured).add(captured);
        reg.counter(names::kSchedEventsLost).add(lost);
        reg.counter(names::kSchedBackgroundRuns)
            .add(result_.background_runs);
        reg.gauge(names::kTrialSimSeconds, telemetry::GaugeMode::Sum)
            .record(status.now.value());
    }

    const AppSpec &app_;
    const PolicyTables &tables_;
    telemetry::Telemetry *tel_ = nullptr;
    const Seconds duration_;
    const Seconds idle_dt_;

    std::vector<PendingEvent> arrivals_;
    std::size_t next_arrival_ = 0;
    Seconds last_background_{-1e9};

    TrialResult result_;
    unsigned tasks_started_ = 0;
    unsigned tasks_completed_ = 0;
    std::map<const SchedTask *, TaskTel> task_tel_;

    St st_ = St::Main;
    // Event in service.
    std::size_t spec_index_ = 0;
    std::size_t task_i_ = 0;
    Seconds service_deadline_{0.0};
    sched::EventTypeStats *cur_stats_ = nullptr;
    const SchedTask *cur_task_ = nullptr;
    // Pending idle/recharge context.
    Seconds target_{0.0};
    Seconds io_deadline_{0.0};
    Volts recharge_enter_v_{0.0};

    telemetry::Counter *loads_ = nullptr;
    telemetry::Counter *brownouts_ = nullptr;
    telemetry::Counter *recharges_ = nullptr;
    telemetry::Counter *waits_ = nullptr;
    telemetry::Counter *waits_unreachable_ = nullptr;
    telemetry::Gauge *recharge_seconds_ = nullptr;
    telemetry::Gauge *min_margin_ = nullptr;
};

bool
TrialDriver::next(const OpOutcome *last, const LaneStatus &status,
                  LaneOp *out)
{
    // Interpret the outcome the finished op produced, exactly where
    // the scalar loop would have consumed the Device return value.
    switch (st_) {
    case St::Main:
    case St::Idle:
        break;

    case St::ChainWait:
        noteWait(*last);
        if (!last->reached()) {
            ++cur_stats_->lost;
            if (enterIdleOut(*last, status, out))
                return true;
            break;
        }
        task_i_ = 0;
        if (advanceChain(status, out))
            return true;
        break;

    case St::TaskWait: {
        noteWait(*last);
        if (!last->reached()) {
            ++cur_stats_->lost;
            if (enterIdleOut(*last, status, out))
                return true;
            break;
        }
        const EventSpec &spec = app_.events[spec_index_];
        const SchedTask &task = spec.chain[task_i_];
        beginCommitted(task, tables_.task_need[spec_index_][task_i_],
                       status);
        *out = LaneOp::runProfile(&task.profile,
                                  tables_.task_dt[spec_index_][task_i_]);
        st_ = St::TaskRun;
        return true;
    }

    case St::TaskRun:
        if (!finishCommitted(*last, status)) {
            // Brown-out mid-chain: the event is lost and the device
            // must fully recharge before doing anything else.
            ++cur_stats_->lost;
            break;
        }
        ++task_i_;
        if (advanceChain(status, out))
            return true;
        break;

    case St::RechargeOn:
        noteRecharge(recharge_enter_v_, app_.power.monitor.vhigh, *last,
                     status);
        if (!last->reached() && issueIdleUntil(target_, status, out))
            return true;
        break;

    case St::BgRun:
        finishCommitted(*last, status);
        ++result_.background_runs;
        last_background_ = status.now;
        break;

    case St::BgWait:
        noteWait(*last);
        if ((last->wait_status == sim::WaitStatus::DeadlineExpired ||
             last->wait_status == sim::WaitStatus::Unreachable) &&
            issueIdleUntil(target_, status, out))
            return true;
        break;

    case St::IdleOutBig:
    case St::IdleOutTick:
        if (idleOutStep(status, out))
            return true;
        break;

    case St::Done:
        return false;
    }

    // --- The main decision loop (runSeededTrial's while body). Time
    // only advances through issued ops, so iterating here with a fixed
    // `status` matches the scalar `continue`s after no-op passes. ---
    for (;;) {
        if (!(status.now < duration_)) {
            finalize(status);
            st_ = St::Done;
            return false;
        }

        // Retire any arrival whose deadline already passed unserviced.
        bool serviced = false;
        for (std::size_t i = next_arrival_; i < arrivals_.size(); ++i) {
            PendingEvent &event = arrivals_[i];
            if (event.arrival > status.now)
                break;
            if (event.handled)
                continue;
            sched::EventTypeStats &stats =
                result_.per_event[event.spec_index];
            const EventSpec &spec = app_.events[event.spec_index];
            ++stats.arrived;
            event.handled = true;
            if (i == next_arrival_)
                ++next_arrival_;

            if (status.now > event.arrival + spec.deadline) {
                ++stats.lost; // Expired while the device was busy/off.
            } else if (!status.enabled) {
                ++stats.lost; // Device is off recharging.
            } else {
                // serviceEvent: wait for the chain-start threshold.
                spec_index_ = event.spec_index;
                cur_stats_ = &stats;
                service_deadline_ = event.arrival + spec.deadline;
                *out = LaneOp::waitLevel(tables_.chain_need[spec_index_],
                                         service_deadline_,
                                         /*stop_when_off=*/true);
                st_ = St::ChainWait;
                return true;
            }
            serviced = true;
            break; // Re-evaluate time/arrivals after servicing.
        }
        if (serviced)
            continue;

        // The next not-yet-due arrival bounds every idle wait below.
        Seconds target = duration_;
        for (std::size_t i = next_arrival_; i < arrivals_.size(); ++i) {
            if (arrivals_[i].handled)
                continue;
            target = std::min(target, arrivals_[i].arrival);
            break;
        }
        const Seconds wait_deadline = target - idle_dt_;

        if (!status.enabled) {
            recharge_enter_v_ = status.resting;
            target_ = target;
            *out = LaneOp::waitEnabled(wait_deadline);
            st_ = St::RechargeOn;
            return true;
        }

        // No pending event: consider background work (difference-form
        // dueness, as in the scalar engine).
        if (app_.background.has_value() &&
            status.now - last_background_ >= app_.background_period) {
            const Volts bg_need = tables_.bg_need;
            if (status.resting >= bg_need) {
                beginCommitted(*app_.background, bg_need, status);
                *out = LaneOp::runProfile(&app_.background->profile,
                                          tables_.bg_dt);
                st_ = St::BgRun;
                return true;
            }
            target_ = target;
            *out = LaneOp::waitLevel(bg_need, wait_deadline,
                                     /*stop_when_off=*/true);
            st_ = St::BgWait;
            return true;
        }

        Seconds next_decision = target;
        if (app_.background.has_value()) {
            next_decision = std::min(
                next_decision, last_background_ + app_.background_period);
        }
        if (next_decision > status.now) {
            *out = LaneOp::idleFor(next_decision - status.now);
        } else {
            // The sum above can round below now() while the difference
            // form still reads not-yet-due; tick once and re-evaluate.
            *out = LaneOp::idleFor(idle_dt_);
        }
        st_ = St::Idle;
        return true;
    }
}

} // namespace

bool
batchTrialsEligible(const sched::TrialConfig &config)
{
    return config.faults == nullptr && config.observer == nullptr &&
           config.supervisor == nullptr && !config.force_euler &&
           (config.harvester == nullptr ||
            config.harvester->constantPower().has_value());
}

sched::AggregateResult
runTrialsBatch(const AppSpec &app, const Policy &policy,
               const TrialConfig &config, const TrialRunnerOptions &options)
{
    log::fatalIf(config.trials == 0, "at least one trial is required");
    log::fatalIf(options.shard_lanes == 0,
                 "trial runner shard_lanes must be >= 1");
    log::fatalIf(!batchTrialsEligible(config),
                 "runTrialsBatch needs a batch-eligible config: no "
                 "faults/observer/supervisor, no force_euler, and a "
                 "constant-power harvester");

    const PolicyTables tables(app, policy);
    const Watts harvest = config.harvester != nullptr
                              ? *config.harvester->constantPower()
                              : app.harvest;

    telemetry::Telemetry *sink =
        telemetry::kEnabled ? config.telemetry : nullptr;

    struct TrialRun
    {
        TrialResult result;
        std::shared_ptr<telemetry::Telemetry> scratch;
    };

    const unsigned trials = config.trials;
    const unsigned shard_lanes = unsigned(options.shard_lanes);
    const std::size_t shards = (trials + shard_lanes - 1) / shard_lanes;

    // One ThreadPool item per shard; lanes inside a shard run in
    // lockstep through one engine. Results and scratches are indexed
    // by trial, so the merge below is in trial order no matter how
    // shards were scheduled.
    const auto runShard = [&](std::size_t s) {
        const unsigned t0 = unsigned(s) * shard_lanes;
        const unsigned t1 = std::min(trials, t0 + shard_lanes);
        std::vector<TrialRun> runs(t1 - t0);
        std::vector<std::unique_ptr<TrialDriver>> drivers;
        drivers.reserve(t1 - t0);
        BatchEngine engine(options.batch);
        for (unsigned t = t0; t < t1; ++t) {
            TrialRun &run = runs[t - t0];
            if (sink != nullptr) {
                run.scratch = std::make_shared<telemetry::Telemetry>(
                    sink->config());
                run.scratch->setTrial(t);
            }
            drivers.push_back(std::make_unique<TrialDriver>(
                app, config, tables,
                config.seed + t * config.seed_stride,
                run.scratch.get()));
            LaneSpec spec;
            spec.config = app.power;
            spec.vstart = app.power.monitor.vhigh;
            spec.start_enabled = true;
            spec.harvest = harvest;
            spec.source = drivers.back().get();
            engine.addLane(spec);
        }
        engine.run();
        for (unsigned t = t0; t < t1; ++t) {
            TrialRun &run = runs[t - t0];
            run.result = std::move(drivers[t - t0]->result());
            run.result.power_failures =
                engine.result(t - t0).power_failures;
            if (run.scratch != nullptr)
                run.result.telemetry = run.scratch->summary();
        }
        return runs;
    };

    std::vector<std::size_t> shard_index(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shard_index[s] = s;
    std::vector<std::vector<TrialRun>> shard_runs =
        util::parallelMap(shard_index, runShard);

    sched::AggregateResult aggregate;
    for (const auto &event : app.events)
        aggregate.event_names.push_back(event.name);
    aggregate.capture_rates.assign(app.events.size(), 0.0);
    aggregate.arrivals.assign(app.events.size(), 0);

    unsigned total_failures = 0;
    std::vector<unsigned> captured(app.events.size(), 0);
    for (std::vector<TrialRun> &runs : shard_runs) {
        for (TrialRun &run : runs) {
            for (std::size_t i = 0; i < run.result.per_event.size();
                 ++i) {
                aggregate.arrivals[i] += run.result.per_event[i].arrived;
                captured[i] += run.result.per_event[i].captured;
            }
            total_failures += run.result.power_failures;
            if (run.scratch != nullptr)
                sink->merge(*run.scratch);
        }
    }
    for (std::size_t i = 0; i < aggregate.capture_rates.size(); ++i) {
        aggregate.capture_rates[i] =
            aggregate.arrivals[i] == 0
                ? 0.0
                : double(captured[i]) / double(aggregate.arrivals[i]);
    }
    aggregate.power_failures_per_trial =
        double(total_failures) / double(config.trials);
    return aggregate;
}

} // namespace culpeo::batch
