#include "batch/trial_runner.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "batch/trial_driver.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace culpeo::batch {

using sched::AppSpec;
using sched::Policy;
using sched::TrialConfig;
using sched::TrialResult;

bool
batchTrialsEligible(const sched::TrialConfig &config)
{
    return config.faults == nullptr && config.observer == nullptr &&
           config.supervisor == nullptr && !config.force_euler &&
           (config.harvester == nullptr ||
            config.harvester->piecewiseConstant());
}

bool
batchTrialsEligible(const sched::TrialConfig &config,
                    const sched::Policy &policy)
{
    return batchTrialsEligible(config) && policy.stationary();
}

sched::AggregateResult
runTrialsBatch(const AppSpec &app, const Policy &policy,
               const TrialConfig &config, const TrialRunnerOptions &options)
{
    log::fatalIf(config.trials == 0, "at least one trial is required");
    log::fatalIf(options.shard_lanes == 0,
                 "trial runner shard_lanes must be >= 1");
    log::fatalIf(!batchTrialsEligible(config),
                 "runTrialsBatch needs a batch-eligible config: no "
                 "faults/observer/supervisor, no force_euler, and a "
                 "piecewise-constant harvester");

    const PolicyTables tables(app, policy);
    // A strictly constant source flows through the plain per-lane
    // harvest wattage (bit-identical to the pre-field runner); a
    // piecewise one is attached to every lane directly.
    const std::optional<Watts> constant = config.harvester != nullptr
        ? config.harvester->constantPower()
        : std::optional<Watts>(app.harvest);

    telemetry::Telemetry *sink =
        telemetry::kEnabled ? config.telemetry : nullptr;

    struct TrialRun
    {
        TrialResult result;
        std::shared_ptr<telemetry::Telemetry> scratch;
    };

    const unsigned trials = config.trials;
    const unsigned shard_lanes = unsigned(options.shard_lanes);
    const std::size_t shards = (trials + shard_lanes - 1) / shard_lanes;

    // One ThreadPool item per shard; lanes inside a shard run in
    // lockstep through one engine. Results and scratches are indexed
    // by trial, so the merge below is in trial order no matter how
    // shards were scheduled.
    const auto runShard = [&](std::size_t s) {
        const unsigned t0 = unsigned(s) * shard_lanes;
        const unsigned t1 = std::min(trials, t0 + shard_lanes);
        std::vector<TrialRun> runs(t1 - t0);
        std::vector<std::unique_ptr<TrialDriver>> drivers;
        drivers.reserve(t1 - t0);
        BatchEngine engine(options.batch);
        for (unsigned t = t0; t < t1; ++t) {
            TrialRun &run = runs[t - t0];
            if (sink != nullptr) {
                run.scratch = std::make_shared<telemetry::Telemetry>(
                    sink->config());
                run.scratch->setTrial(t);
            }
            drivers.push_back(std::make_unique<TrialDriver>(
                app, config, tables,
                config.seed + t * config.seed_stride,
                run.scratch.get()));
            LaneSpec spec;
            spec.config = app.power;
            spec.vstart = app.power.monitor.vhigh;
            spec.start_enabled = true;
            if (constant.has_value())
                spec.harvest = *constant;
            else
                spec.harvester = config.harvester;
            spec.source = drivers.back().get();
            engine.addLane(spec);
        }
        engine.run();
        for (unsigned t = t0; t < t1; ++t) {
            TrialRun &run = runs[t - t0];
            run.result = std::move(drivers[t - t0]->result());
            run.result.power_failures =
                engine.result(t - t0).power_failures;
            if (run.scratch != nullptr)
                run.result.telemetry = run.scratch->summary();
        }
        return runs;
    };

    std::vector<std::size_t> shard_index(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shard_index[s] = s;
    std::vector<std::vector<TrialRun>> shard_runs =
        util::parallelMap(shard_index, runShard);

    sched::AggregateResult aggregate;
    for (const auto &event : app.events)
        aggregate.event_names.push_back(event.name);
    aggregate.capture_rates.assign(app.events.size(), 0.0);
    aggregate.arrivals.assign(app.events.size(), 0);

    unsigned total_failures = 0;
    std::vector<unsigned> captured(app.events.size(), 0);
    for (std::vector<TrialRun> &runs : shard_runs) {
        for (TrialRun &run : runs) {
            for (std::size_t i = 0; i < run.result.per_event.size();
                 ++i) {
                aggregate.arrivals[i] += run.result.per_event[i].arrived;
                captured[i] += run.result.per_event[i].captured;
            }
            total_failures += run.result.power_failures;
            aggregate.tasks_started += run.result.tasks_started;
            aggregate.tasks_completed += run.result.tasks_completed;
            aggregate.capture_latency_s +=
                run.result.capture_latency.value();
            if (run.scratch != nullptr)
                sink->merge(*run.scratch);
        }
    }
    for (std::size_t i = 0; i < aggregate.capture_rates.size(); ++i) {
        aggregate.capture_rates[i] =
            aggregate.arrivals[i] == 0
                ? 0.0
                : double(captured[i]) / double(aggregate.arrivals[i]);
    }
    aggregate.power_failures_per_trial =
        double(total_failures) / double(config.trials);
    return aggregate;
}

} // namespace culpeo::batch
