/**
 * @file
 * BatchTrialRunner: the scheduler sweep executor on the SoA batch
 * engine (DESIGN.md §14).
 *
 * Each trial of a runTrialsWith()-style sweep becomes one lane of a
 * BatchEngine, driven by a per-trial OpSource that replays the
 * sched::runSeededTrial decision loop op by op: the same arrival
 * stream (same util::Rng draws), the same retire/service/background
 * ordering, the same Device-primitive sequence with the same deadlines
 * and thresholds. Policy thresholds and per-task step sizes are
 * resolved once per sweep (they are const and trial-independent), and
 * trials are sharded into fixed-size batches that run on the shared
 * util::ThreadPool.
 *
 * Telemetry follows the runTrialsWith() contract exactly: each trial
 * records into a private scratch sink (trial-tagged), and scratches
 * are merged into the user's sink in trial order — byte-deterministic
 * regardless of shard scheduling.
 *
 * With TrialRunnerOptions::batch.exact_replay = true the per-lane
 * arithmetic is bit-identical to sim::Device, so aggregates match
 * sched::runTrialsWith() exactly; the default warm mode agrees within
 * the differential-suite tolerances and is substantially faster.
 */

#ifndef CULPEO_BATCH_TRIAL_RUNNER_HPP
#define CULPEO_BATCH_TRIAL_RUNNER_HPP

#include "batch/engine.hpp"
#include "sched/engine.hpp"

namespace culpeo::batch {

/** Knobs for the batch sweep executor. */
struct TrialRunnerOptions
{
    /** Kernel options; exact_replay = true reproduces runTrialsWith. */
    BatchOptions batch;
    /** Trials per engine shard (one ThreadPool work item per shard). */
    std::size_t shard_lanes = 32;
};

/**
 * True when @p config can be executed by the batch runner: no fault
 * hooks, step observer or supervisor (all per-trial stateful or
 * Euler-forcing), no force_euler, and a piecewise-constant harvester
 * (the analytic segment stepper's eligibility condition).
 */
bool batchTrialsEligible(const sched::TrialConfig &config);

/**
 * Policy-aware eligibility: the config conditions above AND a
 * stationary policy (batch lanes share resolve-once PolicyTables, so
 * an online-adapting policy must run on the scalar serial path).
 */
bool batchTrialsEligible(const sched::TrialConfig &config,
                         const sched::Policy &policy);

/**
 * Run config.trials independently seeded trials of @p app under
 * @p policy on the batch engine and aggregate exactly like
 * sched::runTrialsWith(). Fatal when the config is not eligible —
 * callers route through batchTrialsEligible() first.
 */
sched::AggregateResult
runTrialsBatch(const sched::AppSpec &app, const sched::Policy &policy,
               const sched::TrialConfig &config,
               const TrialRunnerOptions &options = {});

/** Ergonomic handle mirroring the free functions. */
class BatchTrialRunner
{
  public:
    explicit BatchTrialRunner(TrialRunnerOptions options = {})
        : options_(options)
    {}

    static bool eligible(const sched::TrialConfig &config)
    {
        return batchTrialsEligible(config);
    }

    sched::AggregateResult runAll(const sched::AppSpec &app,
                                  const sched::Policy &policy,
                                  const sched::TrialConfig &config) const
    {
        return runTrialsBatch(app, policy, config, options_);
    }

  private:
    TrialRunnerOptions options_;
};

} // namespace culpeo::batch

#endif // CULPEO_BATCH_TRIAL_RUNNER_HPP
