#include "catalog.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace culpeo::caps {

const char *
technologyName(Technology tech)
{
    switch (tech) {
      case Technology::Electrolytic:
        return "electrolytic";
      case Technology::Ceramic:
        return "ceramic";
      case Technology::Tantalum:
        return "tantalum";
      case Technology::Supercapacitor:
        return "supercapacitor";
    }
    return "unknown";
}

namespace {

/** Per-technology scaling-law coefficients (anchored to paper values). */
struct TechLaw
{
    Technology tech;
    /** Part capacitance range this technology actually covers. */
    double min_c, max_c;
    /** volume_mm3 = vol_per_mf * (C/1mF)^vol_exp */
    double vol_per_mf, vol_exp;
    /** esr_ohms = esr_per_mf / (C/1mF)^esr_exp */
    double esr_per_mf, esr_exp;
    /** leakage_a = dcl_per_mf * (C/1mF) */
    double dcl_per_mf;
    /** Log-normal scatter sigma applied to volume and ESR. */
    double jitter;
};

constexpr TechLaw lawFor(Technology tech)
{
    switch (tech) {
      case Technology::Electrolytic:
        // Bulky; moderate ESR; uA-class leakage. Low-ESR variants are
        // dramatically larger (pint-glass for 45 mF banks).
        return {Technology::Electrolytic, 10e-6, 22e-3,
                1800.0, 0.85, 0.9, 0.55, 4e-6, 0.50};
      case Technology::Ceramic:
        // Tiny per-part ESR (~10 mOhm) but only uF-class capacitance in
        // low-profile packages: thousands of parts to reach 45 mF.
        return {Technology::Ceramic, 1e-6, 47e-6,
                150.0, 0.75, 0.010, 0.0, 0.2e-6, 0.35};
      case Technology::Tantalum:
        // Dense but leaky: DCL scales ~0.01 * C * V, mA-class for big
        // parts.
        return {Technology::Tantalum, 4.7e-6, 1.5e-3,
                95.0, 0.80, 1.6, 0.60, 600e-6, 0.40};
      case Technology::Supercapacitor:
        // Densest by far and the least leaky, at ohm-class ESR.
        return {Technology::Supercapacitor, 1e-3, 45e-3,
                1.05, 0.90, 190.0, 1.0, 2.8e-9, 0.30};
    }
    return {};
}

} // namespace

std::vector<Part>
generateCatalog(const CatalogOptions &options)
{
    log::fatalIf(options.parts_per_technology == 0,
                 "catalog needs at least one part per technology");

    util::Rng rng(options.seed);
    std::vector<Part> parts;

    for (Technology tech : {Technology::Electrolytic, Technology::Ceramic,
                            Technology::Tantalum,
                            Technology::Supercapacitor}) {
        const TechLaw law = lawFor(tech);
        const double lo = std::max(law.min_c,
                                   options.min_capacitance.value());
        const double hi = std::min(law.max_c,
                                   options.max_capacitance.value());
        for (unsigned i = 0; i < options.parts_per_technology; ++i) {
            // Log-uniform capacitance across the technology's range.
            const double c = std::exp(
                rng.uniform(std::log(lo), std::log(hi)));
            const double c_mf = c * 1e3;

            Part part;
            part.technology = tech;
            part.capacitance = Farads(c);
            part.volume_mm3 = law.vol_per_mf *
                              std::pow(c_mf, law.vol_exp) *
                              std::exp(rng.gaussian(0.0, law.jitter));
            part.esr = Ohms(law.esr_per_mf /
                            std::pow(c_mf, law.esr_exp) *
                            std::exp(rng.gaussian(0.0, law.jitter)));
            part.leakage = Amps(law.dcl_per_mf * c_mf);

            std::ostringstream number;
            number << technologyName(tech)[0] << "-"
                   << unsigned(c * 1e6) << "uF-" << i;
            part.part_number = number.str();
            parts.push_back(part);
        }
    }
    return parts;
}

Part
referencePart()
{
    Part part;
    part.part_number = "CPX3225A752D";
    part.technology = Technology::Supercapacitor;
    part.capacitance = Farads(7.5e-3);
    part.esr = Ohms(24.0); // Per part; six in parallel give 4 ohm.
    part.volume_mm3 = 3.2 * 2.5 * 0.9; // 3225 footprint, 0.9 mm profile.
    part.leakage = Amps(20e-9);
    return part;
}

Bank
referenceBank()
{
    return composeBank(referencePart(), Farads(45e-3));
}

Bank
composeBank(const Part &part, Farads target)
{
    log::fatalIf(part.capacitance.value() <= 0.0,
                 "part capacitance must be positive");
    log::fatalIf(target.value() <= 0.0, "target capacitance must be positive");

    Bank bank;
    bank.part = part;
    bank.count = unsigned(
        std::ceil(target.value() / part.capacitance.value()));
    bank.capacitance = part.capacitance * double(bank.count);
    bank.esr = Ohms(part.esr.value() / double(bank.count));
    bank.volume_mm3 = part.volume_mm3 * double(bank.count);
    bank.leakage = part.leakage * double(bank.count);
    return bank;
}

std::vector<Bank>
composeBanks(const std::vector<Part> &parts, Farads target)
{
    std::vector<Bank> banks;
    banks.reserve(parts.size());
    for (const auto &part : parts)
        banks.push_back(composeBank(part, target));
    return banks;
}

std::vector<Bank>
paretoFrontier(std::vector<Bank> banks)
{
    std::sort(banks.begin(), banks.end(), [](const Bank &a, const Bank &b) {
        if (a.volume_mm3 != b.volume_mm3)
            return a.volume_mm3 < b.volume_mm3;
        return a.esr < b.esr;
    });
    std::vector<Bank> frontier;
    double best_esr = 1e300;
    for (const auto &bank : banks) {
        if (bank.esr.value() < best_esr) {
            best_esr = bank.esr.value();
            frontier.push_back(bank);
        }
    }
    return frontier;
}

const Bank *
smallestOfTechnology(const std::vector<Bank> &banks, Technology tech)
{
    const Bank *best = nullptr;
    for (const auto &bank : banks) {
        if (bank.part.technology != tech)
            continue;
        if (best == nullptr || bank.volume_mm3 < best->volume_mm3)
            best = &bank;
    }
    return best;
}

} // namespace culpeo::caps
