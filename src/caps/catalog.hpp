/**
 * @file
 * Synthetic capacitor part catalog for the Figure 3 design-space study:
 * volume vs. ESR of 45 mF banks built from different capacitor
 * technologies.
 *
 * The paper scrapes Digikey part metadata; we generate parts from
 * per-technology scaling laws anchored at the paper's quoted points
 * (supercap bank: six parts, 20 nA DCL, rice-grain volume, ohm-class
 * ESR; ceramic: ~10 mOhm per part, >2,000 parts for 45 mF; tantalum:
 * tens of mA leakage at the small end; electrolytic: pint-glass volumes
 * for low ESR). A deterministic RNG adds the catalog-like scatter.
 */

#ifndef CULPEO_CAPS_CATALOG_HPP
#define CULPEO_CAPS_CATALOG_HPP

#include <string>
#include <vector>

#include "util/random.hpp"
#include "util/units.hpp"

namespace culpeo::caps {

using units::Amps;
using units::Farads;
using units::Ohms;

/** Capacitor technology family. */
enum class Technology { Electrolytic, Ceramic, Tantalum, Supercapacitor };

/** Human-readable technology name. */
const char *technologyName(Technology tech);

/** One purchasable part. */
struct Part
{
    std::string part_number;
    Technology technology{};
    Farads capacitance{0.0};
    Ohms esr{0.0};
    double volume_mm3 = 0.0;
    Amps leakage{0.0}; ///< DC leakage (DCL).
};

/** A parallel bank of identical parts hitting a target capacitance. */
struct Bank
{
    Part part;
    unsigned count = 0;
    Farads capacitance{0.0};
    Ohms esr{0.0};
    double volume_mm3 = 0.0;
    Amps leakage{0.0};
};

/** Catalog generation options. */
struct CatalogOptions
{
    std::uint64_t seed = 2022;
    unsigned parts_per_technology = 60;
    /** Part capacitances are sampled in [min, max] log-uniformly. */
    Farads min_capacitance{1e-6};
    Farads max_capacitance{45e-3};
};

/** Generate the full synthetic catalog. */
std::vector<Part> generateCatalog(const CatalogOptions &options = {});

/**
 * The paper's own design point ("This work" in Fig. 3): a CPX3225A-class
 * 7.5 mF dense supercapacitor with 20 nA DCL; six in parallel form the
 * 45 mF Capybara bank.
 */
Part referencePart();

/** The six-part, 45 mF reference bank built from referencePart(). */
Bank referenceBank();

/**
 * Compose a parallel bank of @p part reaching at least @p target
 * capacitance: N parts in parallel give N*C, R/N, N*volume, N*DCL.
 */
Bank composeBank(const Part &part, Farads target);

/** Compose one bank per catalog part for @p target capacitance. */
std::vector<Bank> composeBanks(const std::vector<Part> &parts,
                               Farads target);

/**
 * The Pareto frontier of @p banks over (volume, ESR): banks not
 * dominated by any other bank that is both smaller and lower-ESR.
 */
std::vector<Bank> paretoFrontier(std::vector<Bank> banks);

/** Smallest-volume bank of a given technology (the Fig. 3 callouts). */
const Bank *smallestOfTechnology(const std::vector<Bank> &banks,
                                 Technology tech);

} // namespace culpeo::caps

#endif // CULPEO_CAPS_CATALOG_HPP
