#include "api.hpp"

#include <algorithm>

#include "core/persistence.hpp"

#include "util/logging.hpp"

namespace culpeo::core {

Culpeo::Culpeo(PowerSystemModel model, std::unique_ptr<Profiler> profiler)
    : model_(model), profiler_(std::move(profiler))
{
    log::fatalIf(profiler_ == nullptr, "Culpeo requires a profiler");
}

void
Culpeo::profileStart(Volts vterm)
{
    profiler_->profileStart(vterm);
}

void
Culpeo::profileEnd(TaskId, Volts vterm)
{
    profiler_->profileEnd(vterm);
}

void
Culpeo::reboundEnd(TaskId id, Volts vterm)
{
    const RProfile profile = profiler_->reboundEnd(vterm);
    if (profile.valid())
        table_.storeProfile(id, buffer_, profile);
    else
        log::warn("discarding inconsistent profile for task ", id);
}

void
Culpeo::computeVsafe(TaskId id)
{
    const auto profile = table_.profile(id, buffer_);
    if (!profile.has_value())
        return; // Unpopulated entry: no-op per Section V-B.
    table_.storeResult(id, buffer_, culpeoR(*profile, model_));
}

Volts
Culpeo::getVsafe(TaskId id) const
{
    const auto result = table_.result(id, buffer_);
    if (!result.has_value())
        return model_.vhigh;
    // Never report a Vsafe above what the buffer can hold or below Voff.
    return Volts(std::clamp(result->vsafe.value(), model_.voff.value(),
                            model_.vhigh.value()));
}

Volts
Culpeo::getVdrop(TaskId id) const
{
    const auto result = table_.result(id, buffer_);
    if (!result.has_value())
        return Volts(-1.0);
    return result->vdelta_safe;
}

void
Culpeo::importPg(TaskId id, Volts vsafe, Volts vdelta)
{
    RResult result;
    result.vsafe = vsafe;
    result.vdelta_safe = vdelta;
    result.vdelta_observed = vdelta;
    result.vsafe_energy = Volts(
        std::max(model_.voff.value(), (vsafe - vdelta).value()));
    table_.storeResult(id, buffer_, result);
}

void
Culpeo::invalidate()
{
    table_.invalidateAll();
}

std::vector<std::uint8_t>
Culpeo::snapshot() const
{
    return saveTable(table_);
}

void
Culpeo::restore(const std::vector<std::uint8_t> &image)
{
    table_ = loadTable(image);
}

bool
Culpeo::hasResult(TaskId id) const
{
    return table_.result(id, buffer_).has_value();
}

Volts
Culpeo::getVsafeMulti(const std::vector<TaskId> &sequence) const
{
    std::vector<TaskRequirement> requirements;
    requirements.reserve(sequence.size());
    for (TaskId id : sequence) {
        const auto result = table_.result(id, buffer_);
        if (!result.has_value()) {
            // Unknown task: the only safe claim is a full buffer.
            return model_.vhigh;
        }
        requirements.push_back(
            requirementFrom("task" + std::to_string(id), *result,
                            model_.voff));
    }
    const MultiResult multi = vsafeMulti(requirements, model_.voff);
    return Volts(std::clamp(multi.vsafe_multi.value(), model_.voff.value(),
                            model_.vhigh.value()));
}

bool
Culpeo::feasible(TaskId id, Volts now) const
{
    return feasibleToStart(now, getVsafe(id));
}

void
Culpeo::tick(Seconds dt, Volts vterm)
{
    profiler_->tick(dt, vterm);
}

Amps
Culpeo::overheadCurrent(Volts vout) const
{
    return profiler_->overheadCurrent(vout);
}

} // namespace culpeo::core
