/**
 * @file
 * The Culpeo public API (Table I): the interface an intermittent runtime
 * or scheduler uses to profile tasks and retrieve safe starting voltages.
 *
 *   Profile                  Calculate           Access
 *   profile_start()          compute_vsafe(id)   get_vsafe(id)
 *   profile_end(id)                              get_vdrop(id)
 *   rebound_end(id)
 *
 * Both Culpeo-R implementations sit behind this facade; Culpeo-PG results
 * can be imported with importPg() so compile-time values flow through the
 * same access path.
 */

#ifndef CULPEO_CORE_API_HPP
#define CULPEO_CORE_API_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/power_model.hpp"
#include "core/profile_table.hpp"
#include "core/profiler.hpp"
#include "core/vsafe_multi.hpp"

namespace culpeo::core {

/**
 * The Culpeo charge-management interface. Owns the profiler and the
 * per-task tables; the embedding runtime drives tick() with the observed
 * capacitor terminal voltage.
 */
class Culpeo
{
  public:
    Culpeo(PowerSystemModel model, std::unique_ptr<Profiler> profiler);

    // --- Table I: Profile ---

    /** Begin profiling the task that is about to run. */
    void profileStart(Volts vterm);

    /** Task @p id finished; begin rebound tracking. */
    void profileEnd(TaskId id, Volts vterm);

    /** Rebound settled; store the completed profile for @p id. */
    void reboundEnd(TaskId id, Volts vterm);

    // --- Table I: Calculate ---

    /**
     * Run the Culpeo-R math for @p id using the stored profile. A no-op
     * when the task's profile-table entry is unpopulated (Section V-B).
     */
    void computeVsafe(TaskId id);

    // --- Table I: Access ---

    /** Vsafe for @p id; Vhigh when no valid value exists (Section V-B). */
    Volts getVsafe(TaskId id) const;

    /** Vdelta for @p id; -1 when no valid value exists (Section V-B). */
    Volts getVdrop(TaskId id) const;

    // --- Extensions ---

    /** Select the active buffer configuration tag for stores and gets. */
    void setBufferConfig(BufferId buffer) { buffer_ = buffer; }
    BufferId bufferConfig() const { return buffer_; }

    /** Import a compile-time (Culpeo-PG) result for @p id. */
    void importPg(TaskId id, Volts vsafe, Volts vdelta);

    /** Re-profiling trigger: drop all stored data. */
    void invalidate();

    /**
     * FRAM-style snapshot of all per-task data (see core/persistence):
     * intermittent devices checkpoint this across power failures.
     */
    std::vector<std::uint8_t> snapshot() const;

    /** Replace the tables with the contents of @p image. */
    void restore(const std::vector<std::uint8_t> &image);

    /** Does @p id have a computed result? */
    bool hasResult(TaskId id) const;

    /**
     * Sequence Vsafe (Section IV-A) for tasks run back-to-back; tasks
     * without results contribute a Vhigh-at-once conservative bound by
     * raising the result to Vhigh.
     */
    Volts getVsafeMulti(const std::vector<TaskId> &sequence) const;

    /** Theorem 1 feasibility check for a single task. */
    bool feasible(TaskId id, Volts now) const;

    // --- Simulation hooks ---

    /** Advance the profiler's measurement machinery. */
    void tick(Seconds dt, Volts vterm);

    /** Measurement overhead current to add to the present load. */
    Amps overheadCurrent(Volts vout) const;

    const PowerSystemModel &model() const { return model_; }
    const ProfileTable &table() const { return table_; }
    Profiler &profiler() { return *profiler_; }

  private:
    PowerSystemModel model_;
    std::unique_ptr<Profiler> profiler_;
    ProfileTable table_;
    BufferId buffer_ = 0;
};

} // namespace culpeo::core

#endif // CULPEO_CORE_API_HPP
