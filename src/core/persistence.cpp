#include "persistence.hpp"

#include <algorithm>
#include <cstring>

#include "util/logging.hpp"

namespace culpeo::core {

namespace {

constexpr std::uint32_t kMagic = 0x43554C50u; // "CULP"
constexpr std::uint16_t kVersion = 1;

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(std::uint8_t(v & 0xFF));
    out.push_back(std::uint8_t(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(v >> (8 * i)));
}

void
putDouble(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

/** Byte-order-independent reader with bounds checking. */
class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &data) : data_(data) {}

    std::uint16_t
    u16()
    {
        require(2);
        const std::uint16_t v = std::uint16_t(data_[pos_]) |
                                std::uint16_t(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        require(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        require(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::size_t position() const { return pos_; }

  private:
    const std::vector<std::uint8_t> &data_;
    std::size_t pos_ = 0;

    void
    require(std::size_t n) const
    {
        log::fatalIf(pos_ + n > data_.size(),
                     "profile-table image is truncated");
    }
};

/** FNV-1a over a byte range: cheap torn-write detection. */
std::uint64_t
checksum(const std::uint8_t *data, std::size_t length)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < length; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

std::vector<std::uint8_t>
saveTable(const ProfileTable &table)
{
    std::vector<std::uint8_t> out;
    putU32(out, kMagic);
    putU16(out, kVersion);

    // Canonical entry order: the table hands back hash-map order, but
    // the image must be a pure function of the table's *contents* so
    // that identical tables produce identical snapshots and save∘load
    // is a byte fixed point (the persistence-idempotence invariant).
    auto profiles = table.allProfiles();
    auto results = table.allResults();
    const auto by_key = [](const auto &a, const auto &b) {
        return std::make_pair(std::get<1>(a), std::get<0>(a)) <
               std::make_pair(std::get<1>(b), std::get<0>(b));
    };
    std::sort(profiles.begin(), profiles.end(), by_key);
    std::sort(results.begin(), results.end(), by_key);
    putU32(out, std::uint32_t(profiles.size()));
    putU32(out, std::uint32_t(results.size()));

    for (const auto &[task, buffer, profile] : profiles) {
        putU32(out, task);
        putU32(out, buffer);
        putDouble(out, profile.vstart.value());
        putDouble(out, profile.vmin.value());
        putDouble(out, profile.vfinal.value());
    }
    for (const auto &[task, buffer, result] : results) {
        putU32(out, task);
        putU32(out, buffer);
        putDouble(out, result.vsafe.value());
        putDouble(out, result.vsafe_energy.value());
        putDouble(out, result.vdelta_safe.value());
        putDouble(out, result.vdelta_observed.value());
    }

    putU64(out, checksum(out.data(), out.size()));
    return out;
}

ProfileTable
loadTable(const std::vector<std::uint8_t> &image)
{
    log::fatalIf(image.size() < 4 + 2 + 4 + 4 + 8,
                 "profile-table image is too small");

    // Verify the trailing checksum before trusting any field.
    const std::size_t body = image.size() - 8;
    std::uint64_t stored_sum = 0;
    for (int i = 0; i < 8; ++i)
        stored_sum |= std::uint64_t(image[body + i]) << (8 * i);
    log::fatalIf(checksum(image.data(), body) != stored_sum,
                 "profile-table image failed its checksum (torn write?)");

    Reader reader(image);
    log::fatalIf(reader.u32() != kMagic,
                 "profile-table image has the wrong magic");
    log::fatalIf(reader.u16() != kVersion,
                 "profile-table image has an unsupported version");

    const std::uint32_t profile_count = reader.u32();
    const std::uint32_t result_count = reader.u32();

    ProfileTable table;
    for (std::uint32_t i = 0; i < profile_count; ++i) {
        const TaskId task = reader.u32();
        const BufferId buffer = reader.u32();
        RProfile profile;
        profile.vstart = units::Volts(reader.f64());
        profile.vmin = units::Volts(reader.f64());
        profile.vfinal = units::Volts(reader.f64());
        table.storeProfile(task, buffer, profile);
    }
    for (std::uint32_t i = 0; i < result_count; ++i) {
        const TaskId task = reader.u32();
        const BufferId buffer = reader.u32();
        RResult result;
        result.vsafe = units::Volts(reader.f64());
        result.vsafe_energy = units::Volts(reader.f64());
        result.vdelta_safe = units::Volts(reader.f64());
        result.vdelta_observed = units::Volts(reader.f64());
        table.storeResult(task, buffer, result);
    }
    log::fatalIf(reader.position() != body,
                 "profile-table image has trailing garbage");
    return table;
}

bool
imageIsValid(const std::vector<std::uint8_t> &image)
{
    try {
        loadTable(image);
        return true;
    } catch (const log::FatalError &) {
        return false;
    }
}

} // namespace culpeo::core
