/**
 * @file
 * Nonvolatile persistence for Culpeo's per-task tables.
 *
 * The paper's prototype keeps its profile and Vsafe tables "in-memory"
 * on an MSP430FR-class MCU — which is FRAM, so the tables survive power
 * failure. On an SRAM-based part the tables must be explicitly
 * checkpointed. This module serializes a ProfileTable to a compact,
 * versioned, checksummed byte image (an FRAM snapshot) and restores it,
 * rejecting torn or corrupted images — exactly the failure mode an
 * intermittent device must guard against when it can lose power during
 * the write itself.
 */

#ifndef CULPEO_CORE_PERSISTENCE_HPP
#define CULPEO_CORE_PERSISTENCE_HPP

#include <cstdint>
#include <vector>

#include "core/profile_table.hpp"

namespace culpeo::core {

/** Serialize @p table to a self-validating byte image. */
std::vector<std::uint8_t> saveTable(const ProfileTable &table);

/**
 * Restore a table from @p image.
 * @throws log::FatalError if the image is truncated, has the wrong
 *         magic/version, or fails its checksum (a torn FRAM write).
 */
ProfileTable loadTable(const std::vector<std::uint8_t> &image);

/** True when @p image would load cleanly (no exception probe). */
bool imageIsValid(const std::vector<std::uint8_t> &image);

} // namespace culpeo::core

#endif // CULPEO_CORE_PERSISTENCE_HPP
