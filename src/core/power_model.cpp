#include "power_model.hpp"

#include <algorithm>

namespace culpeo::core {

double
EfficiencyLine::at(Volts v) const
{
    return std::clamp(slope * v.value() + intercept, min_eta, max_eta);
}

PowerSystemModel
modelFromConfig(const sim::PowerSystemConfig &config)
{
    PowerSystemModel model;
    model.capacitance = config.capacitor.capacitance;
    // The ESR-vs-frequency curve as a profiling rig would measure it from
    // the real part (the designer profiles this once, Section IV-B).
    model.esr = config.capacitor.profiledEsrCurve();
    model.vhigh = config.monitor.vhigh;
    model.voff = config.monitor.voff;
    model.vout = config.output.vout;

    // The designer fits a *conservative* line to the measured efficiency
    // curve: the tangent line minus the worst droop (curvature at Voff
    // plus current droop at a mid-range 25 mA load) over the operating
    // window, so the model never promises more efficiency than the part
    // delivers.
    const sim::Efficiency &truth = config.output.efficiency;
    const sim::Efficiency linear = truth.linearApprox();
    const double v_span = truth.v_ref - config.monitor.voff.value();
    const double worst_droop =
        truth.curvature * v_span * v_span + truth.current_coeff * 0.025;
    model.efficiency.slope = linear.slope;
    model.efficiency.intercept = linear.intercept - worst_droop;
    model.efficiency.min_eta = linear.min_eta;
    model.efficiency.max_eta = linear.max_eta;
    return model;
}

} // namespace culpeo::core
