/**
 * @file
 * Culpeo's model of the target power system (Section IV-B): what the
 * power-system *designer* supplies to the library, independent of any
 * application load.
 *
 * The model deliberately simplifies the physical system: the capacitor is
 * an ideal C in series with a resistor chosen from a measured
 * ESR-vs-frequency curve, and the output booster's efficiency is a line
 * in input voltage. These simplifications are the source of Culpeo-PG's
 * compounding error on high-energy workloads (Section VII-A).
 */

#ifndef CULPEO_CORE_POWER_MODEL_HPP
#define CULPEO_CORE_POWER_MODEL_HPP

#include "sim/capacitor.hpp"
#include "sim/power_system.hpp"
#include "util/units.hpp"

namespace culpeo::core {

using units::Amps;
using units::Farads;
using units::Hertz;
using units::Ohms;
using units::Seconds;
using units::Volts;

/** Linear efficiency line eta(V) = slope * V + intercept, clamped. */
struct EfficiencyLine
{
    double slope = 0.055;
    double intercept = 0.70;
    double min_eta = 0.30;
    double max_eta = 0.97;

    double at(Volts v) const;
};

/** Designer-provided description of the power system. */
struct PowerSystemModel
{
    Farads capacitance{45e-3};            ///< Datasheet capacitance.
    sim::EsrCurve esr = sim::EsrCurve::flat(Ohms(8.0)); ///< Measured curve.
    Volts vhigh{2.56};
    Volts voff{1.60};
    Volts vout{2.55};
    EfficiencyLine efficiency{};

    /** Operating voltage range Vhigh - Voff. */
    Volts operatingRange() const { return vhigh - voff; }
};

/**
 * Derive the designer model from a simulated power system: datasheet
 * capacitance, the measured ESR curve, thresholds, and the *linear
 * approximation* of the booster efficiency (Culpeo never sees the true
 * curvature/current droop).
 */
PowerSystemModel modelFromConfig(const sim::PowerSystemConfig &config);

} // namespace culpeo::core

#endif // CULPEO_CORE_POWER_MODEL_HPP
