#include "profile_table.hpp"

#include <vector>

namespace culpeo::core {

void
ProfileTable::storeProfile(TaskId task, BufferId buffer,
                           const RProfile &profile)
{
    profiles_[key(task, buffer)] = profile;
}

std::optional<RProfile>
ProfileTable::profile(TaskId task, BufferId buffer) const
{
    const auto it = profiles_.find(key(task, buffer));
    if (it == profiles_.end())
        return std::nullopt;
    return it->second;
}

void
ProfileTable::storeResult(TaskId task, BufferId buffer, const RResult &result)
{
    results_[key(task, buffer)] = result;
}

std::optional<RResult>
ProfileTable::result(TaskId task, BufferId buffer) const
{
    const auto it = results_.find(key(task, buffer));
    if (it == results_.end())
        return std::nullopt;
    return it->second;
}

std::vector<std::tuple<TaskId, BufferId, RProfile>>
ProfileTable::allProfiles() const
{
    std::vector<std::tuple<TaskId, BufferId, RProfile>> entries;
    entries.reserve(profiles_.size());
    for (const auto &[k, profile] : profiles_) {
        entries.emplace_back(TaskId(k & 0xFFFFFFFFu), BufferId(k >> 32),
                             profile);
    }
    return entries;
}

std::vector<std::tuple<TaskId, BufferId, RResult>>
ProfileTable::allResults() const
{
    std::vector<std::tuple<TaskId, BufferId, RResult>> entries;
    entries.reserve(results_.size());
    for (const auto &[k, result] : results_) {
        entries.emplace_back(TaskId(k & 0xFFFFFFFFu), BufferId(k >> 32),
                             result);
    }
    return entries;
}

void
ProfileTable::invalidateAll()
{
    profiles_.clear();
    results_.clear();
}

void
ProfileTable::invalidateBuffer(BufferId buffer)
{
    auto prune = [buffer](auto &map) {
        std::vector<Key> doomed;
        for (const auto &[k, v] : map) {
            if ((k >> 32) == buffer)
                doomed.push_back(k);
        }
        for (Key k : doomed)
            map.erase(k);
    };
    prune(profiles_);
    prune(results_);
}

} // namespace culpeo::core
