/**
 * @file
 * In-memory per-task measurement and result tables (Section V-B).
 *
 * Culpeo-R stores one RProfile per (task, buffer-configuration) pair and,
 * after compute_vsafe, the derived Vsafe / Vdelta. Devices with
 * reconfigurable energy buffers tag entries with a buffer identifier so
 * a later get must name the configuration it wants.
 */

#ifndef CULPEO_CORE_PROFILE_TABLE_HPP
#define CULPEO_CORE_PROFILE_TABLE_HPP

#include <cstdint>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/vsafe_r.hpp"

namespace culpeo::core {

/** Task identifier as used across the Table I API. */
using TaskId = std::uint32_t;

/** Buffer-configuration identifier (0 = the default buffer). */
using BufferId = std::uint32_t;

/** Keyed storage of task profiles and computed Vsafe results. */
class ProfileTable
{
  public:
    void storeProfile(TaskId task, BufferId buffer, const RProfile &profile);
    std::optional<RProfile> profile(TaskId task, BufferId buffer) const;

    void storeResult(TaskId task, BufferId buffer, const RResult &result);
    std::optional<RResult> result(TaskId task, BufferId buffer) const;

    /** Drop everything (triggered by a harvestable-power change). */
    void invalidateAll();

    /** Drop entries for one buffer configuration. */
    void invalidateBuffer(BufferId buffer);

    std::size_t profileCount() const { return profiles_.size(); }
    std::size_t resultCount() const { return results_.size(); }

    /** All stored profiles as (task, buffer, profile), unordered. */
    std::vector<std::tuple<TaskId, BufferId, RProfile>> allProfiles() const;

    /** All stored results as (task, buffer, result), unordered. */
    std::vector<std::tuple<TaskId, BufferId, RResult>> allResults() const;

  private:
    using Key = std::uint64_t;

    static Key key(TaskId task, BufferId buffer)
    {
        return (Key(buffer) << 32) | Key(task);
    }

    std::unordered_map<Key, RProfile> profiles_;
    std::unordered_map<Key, RResult> results_;
};

} // namespace culpeo::core

#endif // CULPEO_CORE_PROFILE_TABLE_HPP
