#include "profiler.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace culpeo::core {

IsrProfiler::IsrProfiler(mcu::AdcConfig adc, Seconds rebound_wake)
    : adc_(adc), rebound_wake_(rebound_wake)
{
    log::fatalIf(rebound_wake_.value() <= 0.0,
                 "rebound wake period must be positive");
}

void
IsrProfiler::profileStart(Volts vterm)
{
    log::fatalIf(phase_ != Phase::Idle,
                 "profileStart while a profile is in progress");
    phase_ = Phase::Task;
    // The profiling timer free-runs, so its phase relative to the task
    // is arbitrary; model it half a period in so samples do not line up
    // with segment boundaries.
    accumulated_ = 0.5 * adc_.samplePeriod().value();
    // Vstart is rounded up one LSB: underestimating the start voltage
    // would underestimate the consumed energy and bias Vsafe unsafe.
    vstart_ = adc_.readCeil(vterm);
    vmin_ = adc_.read(vterm);
    vmax_ = Volts(0.0);
}

void
IsrProfiler::profileEnd(Volts vterm)
{
    log::fatalIf(phase_ != Phase::Task, "profileEnd without profileStart");
    // Section V-C: the timer interrupt and ADC are disabled and the MCU
    // goes to sleep — the minimum is whatever the ISR samples captured.
    phase_ = Phase::Rebound;
    accumulated_ = 0.0;
    vmax_ = adc_.read(vterm);
}

RProfile
IsrProfiler::reboundEnd(Volts vterm)
{
    log::fatalIf(phase_ != Phase::Rebound, "reboundEnd without profileEnd");
    vmax_ = std::max(vmax_, adc_.read(vterm));
    phase_ = Phase::Idle;

    RProfile profile;
    profile.vstart = vstart_;
    profile.vmin = vmin_;
    profile.vfinal = vmax_;
    return profile;
}

void
IsrProfiler::tick(Seconds dt, Volts vterm)
{
    if (phase_ == Phase::Idle)
        return;
    log::fatalIf(dt.value() <= 0.0, "tick requires dt > 0");

    const double period = phase_ == Phase::Task
        ? adc_.samplePeriod().value()
        : rebound_wake_.value();
    accumulated_ += dt.value();
    while (accumulated_ >= period) {
        accumulated_ -= period;
        const Volts reading = adc_.read(vterm);
        if (phase_ == Phase::Task)
            vmin_ = std::min(vmin_, reading);
        else
            vmax_ = std::max(vmax_, reading);
    }
}

Amps
IsrProfiler::overheadCurrent(Volts vout) const
{
    switch (phase_) {
      case Phase::Idle:
        return Amps(0.0);
      case Phase::Task:
        // The on-chip ADC is powered for the whole task.
        return adc_.supplyCurrent(vout);
      case Phase::Rebound: {
        // Sleeping MCU, ADC duty-cycled: ~1 ms conversion per wake.
        const double duty = 1e-3 / rebound_wake_.value();
        const double power = adc_.config().active_power.value() * duty +
                             mcu::msp430SleepPower().value();
        return Amps(power / vout.value());
      }
    }
    return Amps(0.0);
}

UArchProfiler::UArchProfiler(mcu::AdcConfig adc) : block_(adc) {}

void
UArchProfiler::profileStart(Volts vterm)
{
    log::fatalIf(active_, "profileStart while a profile is in progress");
    active_ = true;
    // Section V-D: configure(on), read current value as Vstart, then
    // prepare(min) and sample(min). Vstart is rounded up one LSB so
    // quantization cannot underestimate the consumed energy.
    block_.configure(true);
    vstart_ = block_.adc().readCeil(vterm);
    block_.prepare(mcu::CaptureMode::Min);
    block_.sample(mcu::CaptureMode::Min);
}

void
UArchProfiler::profileEnd(Volts)
{
    log::fatalIf(!active_, "profileEnd without profileStart");
    // Table II flow: read() extracts the captured minimum, then the
    // register is re-armed for maximum (rebound) tracking.
    vmin_ = block_.readVolts();
    block_.prepare(mcu::CaptureMode::Max);
    block_.sample(mcu::CaptureMode::Max);
}

RProfile
UArchProfiler::reboundEnd(Volts vterm)
{
    log::fatalIf(!active_, "reboundEnd without profileStart");
    block_.tick(Seconds(1e-6), vterm); // Flush any pending sample point.
    const Volts vmax = std::max(block_.readVolts(),
                                block_.adc().toVolts(
                                    block_.convertNow(vterm)));
    block_.configure(false);
    active_ = false;

    RProfile profile;
    profile.vstart = vstart_;
    profile.vmin = vmin_;
    profile.vfinal = vmax;
    return profile;
}

void
UArchProfiler::tick(Seconds dt, Volts vterm)
{
    block_.tick(dt, vterm);
}

Amps
UArchProfiler::overheadCurrent(Volts vout) const
{
    return block_.supplyCurrent(vout);
}

} // namespace culpeo::core
