/**
 * @file
 * Culpeo-R profiler implementations (Sections V-C and V-D): the machinery
 * that observes a task's Vstart / Vmin / Vfinal while it runs.
 *
 * Profilers are driven by the simulation harness through tick(), which
 * delivers the evolving capacitor terminal voltage, and report the extra
 * load current their measurement machinery imposes (the ISR design's ADC
 * power is charged to the task being profiled, Section V-D).
 */

#ifndef CULPEO_CORE_PROFILER_HPP
#define CULPEO_CORE_PROFILER_HPP

#include <memory>

#include "core/vsafe_r.hpp"
#include "mcu/adc.hpp"
#include "mcu/uarch_block.hpp"

namespace culpeo::core {

using units::Seconds;

/** Interface shared by the ISR and uArch profilers. */
class Profiler
{
  public:
    virtual ~Profiler() = default;

    /** Begin profiling: record Vstart, start minimum tracking. */
    virtual void profileStart(Volts vterm) = 0;

    /** Task finished: freeze the minimum, begin rebound (max) tracking. */
    virtual void profileEnd(Volts vterm) = 0;

    /** Rebound settled: freeze Vfinal and return the profile. */
    virtual RProfile reboundEnd(Volts vterm) = 0;

    /** Simulation hook: advance measurement machinery by dt at vterm. */
    virtual void tick(Seconds dt, Volts vterm) = 0;

    /** Extra load the profiler imposes right now, at supply vout. */
    virtual Amps overheadCurrent(Volts vout) const = 0;

    /** True between profileStart and reboundEnd. */
    virtual bool active() const = 0;
};

/**
 * Culpeo-R-ISR: a 1 ms hardware timer fires an ISR that reads the MCU's
 * on-chip 12-bit ADC and updates the minimum; after the task the MCU
 * sleeps, waking every 50 ms to track the rebound maximum.
 */
class IsrProfiler : public Profiler
{
  public:
    explicit IsrProfiler(mcu::AdcConfig adc = mcu::msp430OnChipAdc(),
                         Seconds rebound_wake = Seconds(50e-3));

    void profileStart(Volts vterm) override;
    void profileEnd(Volts vterm) override;
    RProfile reboundEnd(Volts vterm) override;
    void tick(Seconds dt, Volts vterm) override;
    Amps overheadCurrent(Volts vout) const override;
    bool active() const override { return phase_ != Phase::Idle; }

    const mcu::Adc &adc() const { return adc_; }

  private:
    enum class Phase { Idle, Task, Rebound };

    mcu::Adc adc_;
    Seconds rebound_wake_;
    Phase phase_ = Phase::Idle;
    double accumulated_ = 0.0; ///< Time since the last sample (s).
    Volts vstart_{0.0};
    Volts vmin_{0.0};
    Volts vmax_{0.0};
};

/**
 * Culpeo-R-uArch: delegates min/max tracking to the dedicated peripheral
 * block; the MCU only issues Table II commands at task boundaries.
 */
class UArchProfiler : public Profiler
{
  public:
    explicit UArchProfiler(mcu::AdcConfig adc = mcu::dedicated8BitAdc());

    void profileStart(Volts vterm) override;
    void profileEnd(Volts vterm) override;
    RProfile reboundEnd(Volts vterm) override;
    void tick(Seconds dt, Volts vterm) override;
    Amps overheadCurrent(Volts vout) const override;
    bool active() const override { return active_; }

    const mcu::UArchBlock &block() const { return block_; }

  private:
    mcu::UArchBlock block_;
    bool active_ = false;
    Volts vstart_{0.0};
    Volts vmin_{0.0};
};

} // namespace culpeo::core

#endif // CULPEO_CORE_PROFILER_HPP
