#include "vsafe_multi.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::core {

TaskRequirement
requirementFrom(const std::string &name, const RResult &r, Volts voff)
{
    TaskRequirement req;
    req.name = name;
    req.v_energy = Volts(std::max(0.0, (r.vsafe_energy - voff).value()));
    req.vdelta = r.vdelta_safe;
    return req;
}

TaskRequirement
requirementFrom(const std::string &name, Volts vsafe, Volts vdelta,
                Volts voff)
{
    TaskRequirement req;
    req.name = name;
    req.v_energy =
        Volts(std::max(0.0, (vsafe - vdelta - voff).value()));
    req.vdelta = vdelta;
    return req;
}

MultiResult
vsafeMulti(const std::vector<TaskRequirement> &tasks, Volts voff)
{
    MultiResult result;
    result.per_task_vsafe.assign(tasks.size(), Volts(0.0));
    result.penalties.assign(tasks.size(), Volts(0.0));

    // Backward pass; the requirement after the last task is Voff.
    Volts v_next = voff;
    for (std::size_t i = tasks.size(); i-- > 0;) {
        const auto &task = tasks[i];
        const Volts drop_floor = voff + task.vdelta;
        const Volts penalty = drop_floor > v_next
            ? drop_floor - v_next
            : Volts(0.0);
        const Volts vsafe_i = task.v_energy + penalty + v_next;
        result.penalties[i] = penalty;
        result.per_task_vsafe[i] = vsafe_i;
        v_next = vsafe_i;
    }
    result.vsafe_multi = tasks.empty() ? voff : result.per_task_vsafe.front();
    return result;
}

MultiResult
vsafeMultiExact(const std::vector<TaskRequirement> &tasks, Volts voff)
{
    MultiResult result;
    result.per_task_vsafe.assign(tasks.size(), Volts(0.0));
    result.penalties.assign(tasks.size(), Volts(0.0));

    Volts v_next = voff;
    for (std::size_t i = tasks.size(); i-- > 0;) {
        const auto &task = tasks[i];
        const Volts drop_floor = voff + task.vdelta;
        const Volts base = std::max(v_next, drop_floor);
        result.penalties[i] = base - v_next;

        // Convert the additive energy increment into a V^2 increment
        // anchored at Voff, then apply it on top of the base requirement.
        const double at_floor = (voff + task.v_energy).value();
        const double energy_sq = at_floor * at_floor -
                                 voff.value() * voff.value();
        const double vsafe_sq = base.value() * base.value() + energy_sq;
        const Volts vsafe_i = Volts(std::sqrt(vsafe_sq));
        result.per_task_vsafe[i] = vsafe_i;
        v_next = vsafe_i;
    }
    result.vsafe_multi = tasks.empty() ? voff : result.per_task_vsafe.front();
    return result;
}

bool
feasibleToStart(Volts now, Volts vsafe)
{
    return now >= vsafe;
}

} // namespace culpeo::core
