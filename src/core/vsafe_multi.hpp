/**
 * @file
 * Vsafe composition for task sequences (Section IV-A).
 *
 * A scheduler that wants to run tasks e0..en back-to-back in a single
 * discharge needs a starting voltage that satisfies every task's energy
 * *and* every task's transient ESR drop. The paper composes per-task
 * requirements backwards with a penalty term:
 *
 *   penalty_i = max(0, Voff + Vdelta_i - Vsafe_{i+1})
 *   Vsafe_i   = V(E_i) + penalty_i + Vsafe_{i+1},  Vsafe_{n+1} = Voff
 *
 * If the follower's requirement is already above the drop floor, the
 * rebound "repays" the drop and no penalty accrues.
 *
 * We provide the paper's additive formulation plus an exact energy-domain
 * variant (requirements composed as V^2 increments) used by the penalty
 * ablation bench.
 */

#ifndef CULPEO_CORE_VSAFE_MULTI_HPP
#define CULPEO_CORE_VSAFE_MULTI_HPP

#include <string>
#include <vector>

#include "core/power_model.hpp"
#include "core/vsafe_r.hpp"

namespace culpeo::core {

/** Per-task requirement fed into the sequence composition. */
struct TaskRequirement
{
    std::string name;
    /** Voltage increment (above the follower's requirement) that covers
     * the task's consumed energy: V(E_i). */
    Volts v_energy{0.0};
    /** Worst-case transient ESR drop of the task: Vdelta_i. */
    Volts vdelta{0.0};
};

/** Build a requirement from a Culpeo-R result. */
TaskRequirement requirementFrom(const std::string &name, const RResult &r,
                                Volts voff);

/** Build a requirement from a (vsafe, vdelta) pair, e.g. Culpeo-PG. */
TaskRequirement requirementFrom(const std::string &name, Volts vsafe,
                                Volts vdelta, Volts voff);

/** Composition result: the sequence Vsafe plus per-task detail. */
struct MultiResult
{
    Volts vsafe_multi{0.0};
    std::vector<Volts> per_task_vsafe; ///< Vsafe_i for each suffix.
    std::vector<Volts> penalties;      ///< penalty_i for each task.
};

/** The paper's additive composition. */
MultiResult vsafeMulti(const std::vector<TaskRequirement> &tasks, Volts voff);

/**
 * Exact energy-domain composition: each task's energy increment is
 * applied in the V^2 domain on top of max(follower requirement, drop
 * floor). Slightly tighter than the additive form; used for ablation.
 */
MultiResult vsafeMultiExact(const std::vector<TaskRequirement> &tasks,
                            Volts voff);

/**
 * The corrected feasibility test of Theorem 1: a task may start iff the
 * current voltage is at or above its (sequence) Vsafe.
 */
bool feasibleToStart(Volts now, Volts vsafe);

} // namespace culpeo::core

#endif // CULPEO_CORE_VSAFE_MULTI_HPP
