#include "vsafe_pg.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hpp"

namespace culpeo::core {

namespace {

/**
 * Width of the longest run of samples at or above 10% of the trace peak;
 * "excluding high frequency noise" (Section IV-B) by ignoring sub-peak
 * blips shorter than one sample period automatically.
 */
Seconds
widestPulse(const load::SampledTrace &trace)
{
    Amps peak{0.0};
    for (std::size_t i = 0; i < trace.size(); ++i)
        peak = std::max(peak, trace[i]);
    const Amps threshold = peak * 0.1;

    std::size_t widest = 0;
    std::size_t run = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (peak.value() > 0.0 && trace[i] >= threshold) {
            ++run;
            widest = std::max(widest, run);
        } else {
            run = 0;
        }
    }
    const double period = trace.samplePeriod().value();
    return Seconds(std::max(double(widest), 1.0) * period);
}

} // namespace

PgResult
culpeoPg(const load::SampledTrace &trace, const PowerSystemModel &model)
{
    PgResult result;
    result.vsafe = model.voff;

    if (trace.size() == 0)
        return result;

    result.esr_used = model.esr.forPulseWidth(widestPulse(trace));

    const double dt = trace.samplePeriod().value();
    const double c = model.capacitance.value();
    const double vout = model.vout.value();
    const double voff = model.voff.value();
    const double r = result.esr_used.value();
    const double eta_off = model.efficiency.at(model.voff);

    // Backward pass (Algorithm 1). v_req holds V[i+1]: the requirement of
    // everything after the current step; the base case is Voff.
    double v_req = voff;
    double max_drop = 0.0;
    for (std::size_t idx = trace.size(); idx-- > 0;) {
        const double i_load = trace[idx].value();

        // Estimate Vcap during this step by the post-step requirement:
        // conservative, since a lower Vcap draws more input current.
        const double vcap_est = std::max(v_req, voff);
        const double eta = model.efficiency.at(Volts(vcap_est));

        // Current out of the capacitor (line 8). The booster draws the
        // most input current at the lowest admissible input voltage, so
        // the bound evaluates both the efficiency and the voltage at
        // Voff: budgeting a step by the (smaller) current of the
        // post-step estimate under-predicts the transient drop on parts
        // with a large surface-branch resistance, where the true floor
        // sits near Voff.
        const double i_in = i_load * vout / (eta_off * voff);

        // Energy drawn from the buffer by this step (line 6): the power
        // delivered into the booster plus the power the buffer's own ESR
        // dissipates while sourcing it.
        const double energy =
            (i_load * vout / eta + i_in * i_in * r) * dt;

        // ESR drop this step (line 9) and resulting voltage floor
        // (line 10).
        const double v_delta = i_in * r;
        max_drop = std::max(max_drop, v_delta);
        const double v_penalty = std::max(voff + v_delta, v_req);

        // Raise the requirement by this step's energy in the V^2 domain
        // (line 11).
        v_req = std::sqrt(2.0 * energy / c + v_penalty * v_penalty);
    }

    result.vsafe = Volts(v_req);
    result.vdelta = Volts(max_drop);
    return result;
}

PgResult
culpeoPg(const load::CurrentProfile &profile, const PowerSystemModel &model,
         Hertz rate)
{
    return culpeoPg(load::SampledTrace::fromProfile(profile, rate), model);
}

} // namespace culpeo::core
