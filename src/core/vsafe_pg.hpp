/**
 * @file
 * Culpeo-PG: the compile-time, profile-guided Vsafe calculation
 * (Algorithm 1 of the paper).
 *
 * Input: a uniformly sampled current trace of a task (captured on a
 * continuously powered rig) and the designer's power-system model.
 * Output: the safe starting voltage Vsafe and the worst ESR drop Vdelta
 * observed by the model.
 *
 * The algorithm walks the trace *backwards*, maintaining the voltage
 * requirement of the remainder of the trace; each step adds its energy
 * requirement in the energy (V^2) domain and raises the floor to survive
 * its ESR drop.
 */

#ifndef CULPEO_CORE_VSAFE_PG_HPP
#define CULPEO_CORE_VSAFE_PG_HPP

#include "core/power_model.hpp"
#include "load/profile.hpp"

namespace culpeo::core {

/** Result of a profile-guided Vsafe computation. */
struct PgResult
{
    Volts vsafe{0.0};  ///< Minimum safe starting voltage.
    Volts vdelta{0.0}; ///< Largest single-step ESR drop in the model.
    Ohms esr_used{0.0}; ///< ESR picked from the frequency curve.
};

/**
 * Algorithm 1: compute Vsafe for @p trace under @p model.
 *
 * The ESR value is picked from the model's frequency curve using the
 * width of the widest current pulse in the trace (excluding noise below
 * 10% of the peak), per Section IV-B.
 */
PgResult culpeoPg(const load::SampledTrace &trace,
                  const PowerSystemModel &model);

/** Convenience: sample @p profile at @p rate (default 125 kHz) first. */
PgResult culpeoPg(const load::CurrentProfile &profile,
                  const PowerSystemModel &model,
                  Hertz rate = Hertz(125e3));

} // namespace culpeo::core

#endif // CULPEO_CORE_VSAFE_PG_HPP
