#include "vsafe_r.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::core {

RResult
culpeoR(const RProfile &profile, const PowerSystemModel &model)
{
    log::fatalIf(!profile.valid(),
                 "culpeoR requires a populated, consistent profile");

    RResult result;
    const double voff = model.voff.value();
    const double vstart = profile.vstart.value();
    const double vmin = profile.vmin.value();
    // Rebound can only restore voltage; clamp against sampling noise.
    const double vfinal = std::max(profile.vfinal.value(), vmin);

    // Observed ESR drop: the rebound height (Figure 8a).
    const double vdelta = vfinal - vmin;
    result.vdelta_observed = Volts(vdelta);

    // Equation 1c: scale the observed drop to what it would be at Voff,
    // where the booster draws more current at lower efficiency.
    const double eta_min = model.efficiency.at(Volts(vmin));
    const double eta_off = model.efficiency.at(model.voff);
    const double vdelta_safe = vdelta * (vmin * eta_min) / (voff * eta_off);
    result.vdelta_safe = Volts(vdelta_safe);

    // Equation 3: energy component, collapsing eta(V) to constants known
    // at compile time (eta at Vstart on the measured side, eta at Voff on
    // the extrapolated side).
    const double eta_start = model.efficiency.at(profile.vstart);
    const double vsafe_e_sq = eta_start / eta_off *
                                  (vstart * vstart - vfinal * vfinal) +
                              voff * voff;
    const double vsafe_e = std::sqrt(std::max(vsafe_e_sq, voff * voff));
    result.vsafe_energy = Volts(vsafe_e);

    result.vsafe = Volts(vsafe_e + vdelta_safe);
    return result;
}

} // namespace culpeo::core
