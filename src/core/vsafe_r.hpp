/**
 * @file
 * Culpeo-R: the runtime Vsafe calculation (Section IV-D).
 *
 * From only three measured voltages — Vstart, the minimum voltage during
 * the task Vmin, and the rebound-settled final voltage Vfinal — Culpeo-R
 * computes:
 *
 *   Vdelta       = Vfinal - Vmin                       (observed ESR drop)
 *   Vdelta_safe  = Vdelta * (Vmin * eta(Vmin)) / (Voff * eta(Voff)) (Eq 1c)
 *   Vsafe_E^2    = eta(Vstart)/eta(Voff) * (Vstart^2 - Vfinal^2) + Voff^2
 *                                                       (Eq 3)
 *   Vsafe        = Vsafe_E + Vdelta_safe
 *
 * so the task can be profiled from an *arbitrary* starting voltage and
 * the estimate extrapolated to the worst case at Voff.
 */

#ifndef CULPEO_CORE_VSAFE_R_HPP
#define CULPEO_CORE_VSAFE_R_HPP

#include "core/power_model.hpp"

namespace culpeo::core {

/** The three-point measurement a Culpeo-R profiler captures per task. */
struct RProfile
{
    Volts vstart{0.0}; ///< Terminal voltage when the task began.
    Volts vmin{0.0};   ///< Minimum terminal voltage during the task.
    Volts vfinal{0.0}; ///< Settled voltage after the post-task rebound.

    bool valid() const
    {
        return vstart.value() > 0.0 && vmin.value() > 0.0 &&
               vfinal.value() > 0.0 && vmin <= vstart;
    }
};

/** Result of the runtime Vsafe computation. */
struct RResult
{
    Volts vsafe{0.0};       ///< Safe starting voltage.
    Volts vsafe_energy{0.0}; ///< Energy component (Vsafe_E, Eq. 3).
    Volts vdelta_safe{0.0}; ///< Worst-case ESR drop component (Eq. 1c).
    Volts vdelta_observed{0.0}; ///< Raw Vfinal - Vmin measurement.
};

/**
 * The Culpeo-R closed-form calculation. @p profile must be valid();
 * callers feed ADC-quantized voltages so the result reflects the
 * profiler's precision.
 */
RResult culpeoR(const RProfile &profile, const PowerSystemModel &model);

} // namespace culpeo::core

#endif // CULPEO_CORE_VSAFE_R_HPP
