#include "env/field.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace culpeo::env {

namespace {

/** splitmix64 finalizer: the bit mixer behind all field noise. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic uniform [0, 1) from (seed, cell, piece). */
double
noise01(std::uint64_t seed, std::int64_t cx, std::int64_t cy,
        std::int64_t piece)
{
    std::uint64_t h = mix64(seed ^ 0x5bf03635aca1fd6bULL);
    h = mix64(h ^ static_cast<std::uint64_t>(cx));
    h = mix64(h ^ static_cast<std::uint64_t>(cy));
    h = mix64(h ^ static_cast<std::uint64_t>(piece));
    // 53 high bits -> double in [0, 1).
    return double(h >> 11) * 0x1.0p-53;
}

std::int64_t
cellOf(double coord, double cell_size)
{
    return static_cast<std::int64_t>(std::floor(coord / cell_size));
}

/** Piece index containing t, and its end on the sample grid. */
std::int64_t
pieceOf(double t, double period)
{
    return static_cast<std::int64_t>(std::floor(t / period));
}

/**
 * End of the sample-grid piece containing t, strictly greater than t
 * (the HarvestField contract): a boundary landing at or below t from
 * floating rounding advances one full piece.
 */
double
pieceEnd(double t, double period)
{
    const double end = double(pieceOf(t, period) + 1) * period;
    return end > t ? end : end + period;
}

} // namespace

UniformField::UniformField(Watts power) : power_(power)
{
    log::fatalIf(power.value() < 0.0,
                 "UniformField power cannot be negative");
}

SolarDiurnalField::SolarDiurnalField(SolarConfig config)
    : config_(config)
{
    log::fatalIf(config_.peak.value() < 0.0,
                 "solar peak cannot be negative");
    log::fatalIf(config_.day_length.value() <= 0.0,
                 "solar day_length must be positive");
    log::fatalIf(config_.daylight_fraction <= 0.0 ||
                     config_.daylight_fraction > 1.0,
                 "solar daylight_fraction must be in (0, 1]");
    log::fatalIf(config_.sample_period.value() <= 0.0,
                 "solar sample_period must be positive");
    log::fatalIf(config_.cloud_depth < 0.0 || config_.cloud_depth > 1.0,
                 "solar cloud_depth must be in [0, 1]");
    log::fatalIf(config_.shading_depth < 0.0 ||
                     config_.shading_depth > 1.0,
                 "solar shading_depth must be in [0, 1]");
    log::fatalIf(config_.cell_size <= 0.0,
                 "solar cell_size must be positive");
}

Watts
SolarDiurnalField::powerAt(Position pos, Seconds t) const
{
    const SolarConfig &c = config_;
    const double period = c.sample_period.value();
    const std::int64_t piece = pieceOf(t.value(), period);
    // Irradiance is evaluated at the piece's start so the whole piece
    // sees one value (the piecewise-constant contract).
    const double t0 = double(piece) * period;
    const double day = c.day_length.value();
    double local = std::fmod(t0 + c.dawn_offset.value(), day);
    if (local < 0.0)
        local += day;
    const double daylight = day * c.daylight_fraction;
    double irradiance = 0.0;
    if (local < daylight)
        irradiance = std::sin(M_PI * local / daylight);
    if (irradiance <= 0.0)
        return Watts(0.0);

    const std::int64_t cx = cellOf(pos.x, c.cell_size);
    const std::int64_t cy = cellOf(pos.y, c.cell_size);
    // Static per-cell shading (piece index pinned to a sentinel so the
    // draw is time-invariant), then per-(cell, piece) cloud cover.
    const double shade =
        1.0 - c.shading_depth * noise01(c.seed, cx, cy, -1);
    const double cloud =
        1.0 - c.cloud_depth * noise01(c.seed, cx, cy, piece);
    return Watts(c.peak.value() * irradiance * shade * cloud);
}

Seconds
SolarDiurnalField::constantUntil(Position, Seconds t) const
{
    return Seconds(pieceEnd(t.value(), config_.sample_period.value()));
}

KineticBurstField::KineticBurstField(KineticConfig config)
    : config_(config)
{
    log::fatalIf(config_.baseline.value() < 0.0,
                 "kinetic baseline cannot be negative");
    log::fatalIf(config_.burst.value() < 0.0,
                 "kinetic burst cannot be negative");
    log::fatalIf(config_.sample_period.value() <= 0.0,
                 "kinetic sample_period must be positive");
    log::fatalIf(config_.burst_probability < 0.0 ||
                     config_.burst_probability > 1.0,
                 "kinetic burst_probability must be in [0, 1]");
    log::fatalIf(config_.cell_size <= 0.0,
                 "kinetic cell_size must be positive");
}

Watts
KineticBurstField::powerAt(Position pos, Seconds t) const
{
    const KineticConfig &c = config_;
    const std::int64_t piece =
        pieceOf(t.value(), c.sample_period.value());
    const std::int64_t cx = cellOf(pos.x, c.cell_size);
    const std::int64_t cy = cellOf(pos.y, c.cell_size);
    const bool bursting =
        noise01(c.seed, cx, cy, piece) < c.burst_probability;
    return bursting ? c.burst : c.baseline;
}

Seconds
KineticBurstField::constantUntil(Position, Seconds t) const
{
    return Seconds(pieceEnd(t.value(), config_.sample_period.value()));
}

} // namespace culpeo::env
