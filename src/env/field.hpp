/**
 * @file
 * Spatio-temporal harvest fields (DESIGN.md §16): the shared
 * environment a fleet of devices harvests from. A HarvestField maps
 * (position, time) to available power through parametric generators —
 * uniform, solar-diurnal with seeded cloud noise, kinetic bursts —
 * and every generator is *piecewise constant in time*: power is held
 * fixed over [t, constantUntil(pos, t)) with a strictly positive
 * piece length. That contract is what lets per-device FieldHarvester
 * views ride the analytic segment stepper and the SoA batch kernel
 * (Harvester::piecewiseConstant): macro steps are capped at the piece
 * boundary and each piece is a constant-harvest regime.
 *
 * Fields are immutable after construction and sampled concurrently
 * from fleet shards, so all sampling is const and derives any noise
 * deterministically from (seed, cell, piece index) — never from
 * mutable state.
 */

#ifndef CULPEO_ENV_FIELD_HPP
#define CULPEO_ENV_FIELD_HPP

#include <cstdint>
#include <limits>
#include <optional>

#include "sim/harvester.hpp"
#include "util/units.hpp"

namespace culpeo::env {

using units::Seconds;
using units::Watts;

/** A device's fixed location in the deployment plane (meters). */
struct Position
{
    double x = 0.0;
    double y = 0.0;
};

/** Interface: harvestable power available at (position, time). */
class HarvestField
{
  public:
    virtual ~HarvestField() = default;

    /** Power available at @p pos at time @p t (the piece's power). */
    virtual Watts powerAt(Position pos, Seconds t) const = 0;

    /**
     * End of the constancy piece containing @p t at @p pos: powerAt
     * is constant on [t, constantUntil(pos, t)), and the result is
     * strictly greater than @p t (the piecewise-constant contract).
     */
    virtual Seconds constantUntil(Position pos, Seconds t) const = 0;

    /**
     * The constant power delivered at @p pos at *every* instant, or
     * nullopt for time-varying fields. Lets a FieldHarvester report
     * Harvester::constantPower so constant scenarios keep the
     * equilibrium-based Unreachable wait verdicts.
     */
    virtual std::optional<Watts> constantPower(Position pos) const
    {
        (void)pos;
        return std::nullopt;
    }
};

/** Spatially and temporally uniform field (the paper's condition). */
class UniformField : public HarvestField
{
  public:
    explicit UniformField(Watts power);

    Watts powerAt(Position, Seconds) const override { return power_; }
    Seconds constantUntil(Position, Seconds) const override
    {
        return Seconds(std::numeric_limits<double>::infinity());
    }
    std::optional<Watts> constantPower(Position) const override
    {
        return power_;
    }

  private:
    Watts power_;
};

/** Knobs of the solar-diurnal generator. */
struct SolarConfig
{
    /** Clear-sky peak harvest at an unshaded position. */
    Watts peak{50e-6};
    /** Length of one simulated day. */
    Seconds day_length{86400.0};
    /** Fraction of the day the sun is up (half-sine irradiance). */
    double daylight_fraction = 0.5;
    /** Dawn offset: local solar time at t = 0 (0 = dawn). */
    Seconds dawn_offset{0.0};
    /**
     * Piece length: irradiance and cloud cover are re-sampled on this
     * grid and held constant between samples (the piecewise-constant
     * contract). Macro steps cannot exceed it, so shorter pieces cost
     * proportionally more stepper work.
     */
    Seconds sample_period{60.0};
    /**
     * Cloud-noise depth in [0, 1]: each (cell, piece) draws a
     * deterministic attenuation in [1 - depth, 1]. 0 disables clouds.
     */
    double cloud_depth = 0.4;
    /** Spatial cell size of the cloud pattern (meters). */
    double cell_size = 25.0;
    /**
     * Per-position shading: an unshaded position harvests peak; this
     * fraction of peak is deterministically lost at the worst cell.
     */
    double shading_depth = 0.3;
    /** Noise seed; fields with equal seeds are identical. */
    std::uint64_t seed = 1;
};

/**
 * Solar-diurnal field: half-sine daytime irradiance over a repeating
 * day, multiplied by per-cell static shading and per-(cell, piece)
 * cloud attenuation. Both noise terms hash (seed, cell, piece) so the
 * field is a pure function of its config — byte-reproducible across
 * runs and shard layouts.
 */
class SolarDiurnalField : public HarvestField
{
  public:
    explicit SolarDiurnalField(SolarConfig config = {});

    Watts powerAt(Position pos, Seconds t) const override;
    Seconds constantUntil(Position pos, Seconds t) const override;

    const SolarConfig &config() const { return config_; }

  private:
    SolarConfig config_;
};

/** Knobs of the kinetic-burst generator. */
struct KineticConfig
{
    /** Power between bursts (vibration floor; may be zero). */
    Watts baseline{2e-6};
    /** Power while a burst is active. */
    Watts burst{150e-6};
    /** Piece length; bursts start and stop on this grid. */
    Seconds sample_period{5.0};
    /** Probability a given (cell, piece) is bursting. */
    double burst_probability = 0.1;
    /** Spatial cell size of the excitation pattern (meters). */
    double cell_size = 10.0;
    /** Noise seed; fields with equal seeds are identical. */
    std::uint64_t seed = 1;
};

/**
 * Kinetic-burst field: a sparse on/off excitation (machinery, motion)
 * where each (cell, piece) independently bursts with the configured
 * probability, deterministically from the seed.
 */
class KineticBurstField : public HarvestField
{
  public:
    explicit KineticBurstField(KineticConfig config = {});

    Watts powerAt(Position pos, Seconds t) const override;
    Seconds constantUntil(Position pos, Seconds t) const override;

    const KineticConfig &config() const { return config_; }

  private:
    KineticConfig config_;
};

/**
 * One device's view of a field: a sim::Harvester sampling the field
 * at a fixed position. Declares itself piecewise constant, so
 * PowerSystem's analytic stepper and BatchEngine lanes accept it; a
 * field that is constant at the position also reports constantPower,
 * keeping equilibrium Unreachable verdicts for constant scenarios.
 * Borrows the field (the Fleet/TrialBuilder owner keeps it alive).
 */
class FieldHarvester : public sim::Harvester
{
  public:
    FieldHarvester(const HarvestField &field, Position pos)
        : field_(&field), pos_(pos)
    {}

    Watts powerAt(Seconds t) const override
    {
        return field_->powerAt(pos_, t);
    }
    std::optional<Watts> constantPower() const override
    {
        return field_->constantPower(pos_);
    }
    bool piecewiseConstant() const override { return true; }
    Seconds constantUntil(Seconds t) const override
    {
        return field_->constantUntil(pos_, t);
    }

    Position position() const { return pos_; }
    const HarvestField &field() const { return *field_; }

  private:
    const HarvestField *field_;
    Position pos_;
};

} // namespace culpeo::env

#endif // CULPEO_ENV_FIELD_HPP
