#include "env/trace.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace culpeo::env {

namespace {

/** CRC-32 lookup table, built once (IEEE 802.3 reflected polynomial). */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

void
putU16(std::string &out, std::uint16_t v)
{
    out.push_back(char(v & 0xFF));
    out.push_back(char((v >> 8) & 0xFF));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto &table = crcTable();
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = seed ^ 0xFFFFFFFFU;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFU;
}

const char *
traceErrorName(TraceErrorCode code)
{
    switch (code) {
    case TraceErrorCode::Io:
        return "io";
    case TraceErrorCode::Truncated:
        return "truncated";
    case TraceErrorCode::BadMagic:
        return "bad_magic";
    case TraceErrorCode::BadVersion:
        return "bad_version";
    case TraceErrorCode::HeaderCorrupt:
        return "header_corrupt";
    case TraceErrorCode::ZeroLengthBlock:
        return "zero_length_block";
    case TraceErrorCode::BlockCrcMismatch:
        return "block_crc_mismatch";
    case TraceErrorCode::NonFiniteSample:
        return "non_finite_sample";
    case TraceErrorCode::NonMonotonicTime:
        return "non_monotonic_time";
    case TraceErrorCode::DuplicateTime:
        return "duplicate_time";
    case TraceErrorCode::OutOfRangeCurrent:
        return "out_of_range_current";
    case TraceErrorCode::OutOfRangeVoltage:
        return "out_of_range_voltage";
    case TraceErrorCode::TrailingData:
        return "trailing_data";
    case TraceErrorCode::EmptyTrace:
        return "empty_trace";
    }
    return "unknown";
}

const char *
recoveryModeName(RecoveryMode mode)
{
    switch (mode) {
    case RecoveryMode::Strict:
        return "strict";
    case RecoveryMode::Clamp:
        return "clamp";
    case RecoveryMode::Skip:
        return "skip";
    }
    return "unknown";
}

std::string
TraceError::message() const
{
    std::ostringstream out;
    out << traceErrorName(code) << " at byte " << byte_offset
        << " (block " << block << ", sample " << sample << ")";
    if (!detail.empty())
        out << ": " << detail;
    return out.str();
}

util::Expected<void, TraceError>
writeTrace(const std::string &path, const TraceData &data,
           const TraceWriteOptions &options)
{
    const std::size_t n = data.size();
    if (n == 0)
        return util::fail(TraceError{TraceErrorCode::EmptyTrace,
                                     "refusing to write a trace with no "
                                     "samples",
                                     0, 0, 0});
    if (data.current_a.size() != n || data.voltage_v.size() != n)
        return util::fail(
            TraceError{TraceErrorCode::Truncated,
                       "column lengths disagree (time " +
                           std::to_string(n) + ", current " +
                           std::to_string(data.current_a.size()) +
                           ", voltage " +
                           std::to_string(data.voltage_v.size()) + ")",
                       0, 0, 0});
    const double rate = data.sample_rate.value();
    if (!std::isfinite(rate) || rate <= 0.0)
        return util::fail(TraceError{TraceErrorCode::HeaderCorrupt,
                                     "sample rate must be positive and "
                                     "finite",
                                     0, 0, 0});
    for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(data.time_s[i]) ||
            !std::isfinite(data.current_a[i]) ||
            !std::isfinite(data.voltage_v[i]))
            return util::fail(TraceError{TraceErrorCode::NonFiniteSample,
                                         "refusing to write a non-finite "
                                         "sample",
                                         0, 0, i});
        if (i > 0 && data.time_s[i] <= data.time_s[i - 1]) {
            const TraceErrorCode code =
                data.time_s[i] == data.time_s[i - 1]
                    ? TraceErrorCode::DuplicateTime
                    : TraceErrorCode::NonMonotonicTime;
            return util::fail(TraceError{
                code, "refusing to write an unordered timestamp", 0, 0,
                i});
        }
    }

    const std::uint32_t block_samples =
        options.block_samples == 0 ? 1
        : options.block_samples > kTraceMaxBlockSamples
            ? kTraceMaxBlockSamples
            : options.block_samples;

    std::string bytes;
    bytes.reserve(kTraceHeaderSize +
                  (n * 24 + (n / block_samples + 1) *
                                kTraceBlockHeaderSize));
    putU32(bytes, kTraceMagic);
    putU16(bytes, kTraceVersion);
    putU16(bytes, 0); // flags
    putF64(bytes, rate);
    putF64(bytes, 1.0); // current_scale
    putF64(bytes, 1.0); // voltage_scale
    putU64(bytes, n);
    putU32(bytes, block_samples);
    putU32(bytes, 0); // reserved
    for (int i = 0; i < 12; ++i)
        bytes.push_back('\0');
    putU32(bytes, crc32(bytes.data(), bytes.size()));

    for (std::size_t start = 0; start < n; start += block_samples) {
        const std::size_t count =
            std::min<std::size_t>(block_samples, n - start);
        std::string payload;
        payload.reserve(count * 24);
        for (std::size_t i = 0; i < count; ++i)
            putF64(payload, data.time_s[start + i]);
        for (std::size_t i = 0; i < count; ++i)
            putF64(payload, data.current_a[start + i]);
        for (std::size_t i = 0; i < count; ++i)
            putF64(payload, data.voltage_v[start + i]);
        putU32(bytes, std::uint32_t(count));
        putU32(bytes, 0);
        putU32(bytes, 0);
        putU32(bytes, crc32(payload.data(), payload.size()));
        bytes += payload;
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
        return util::fail(TraceError{TraceErrorCode::Io,
                                     "cannot open for writing: " + path,
                                     0, 0, 0});
    out.write(bytes.data(), std::streamsize(bytes.size()));
    out.flush();
    if (!out.good())
        return util::fail(TraceError{TraceErrorCode::Io,
                                     "short write: " + path, 0, 0, 0});
    return {};
}

TraceData
recordField(const HarvestField &field, Position pos, Seconds duration,
            Hertz rate, const TraceRecordOptions &options)
{
    log::fatalIf(rate.value() <= 0.0 || !std::isfinite(rate.value()),
                 "trace record rate must be positive");
    log::fatalIf(duration.value() <= 0.0 ||
                     !std::isfinite(duration.value()),
                 "trace record duration must be positive");
    log::fatalIf(options.bus_voltage.value() <= 0.0,
                 "trace record bus voltage must be positive");

    const double period = 1.0 / rate.value();
    const std::size_t n =
        std::size_t(std::ceil(duration.value() * rate.value()));
    TraceData data;
    data.sample_rate = rate;
    data.time_s.reserve(n);
    data.current_a.reserve(n);
    data.voltage_v.reserve(n);
    const double bus = options.bus_voltage.value();
    for (std::size_t k = 0; k < n; ++k) {
        const double t = double(k) * period;
        const double power = field.powerAt(pos, Seconds(t)).value();
        data.time_s.push_back(t);
        data.current_a.push_back(power / bus);
        data.voltage_v.push_back(bus);
    }
    return data;
}

} // namespace culpeo::env
