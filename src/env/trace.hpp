/**
 * @file
 * The Culpeo harvest-trace format (DESIGN.md §18): a compact columnar
 * on-disk container for sensor-recorded (time, I_harvest, V_harvest)
 * series, the artifact a production fleet service ingests instead of
 * parametric skies. Shepherd-style recorders log harvesting conditions
 * at points in space over time and replay them against node
 * populations; this file defines the container, the recoverable error
 * taxonomy every malformed-input class maps onto, and the writer /
 * recorder half of the round trip. trace_reader.hpp holds the
 * defensive mmap'd decoder and the env::Field replay adapter.
 *
 * Layout (little-endian, all offsets 8-byte aligned by construction):
 *
 *     FileHeader (64 bytes)
 *       u32  magic           "CTRC"
 *       u16  version         1
 *       u16  flags           reserved, 0
 *       f64  sample_rate_hz  nominal rate (informational; timestamps
 *                            are explicit so gappy captures are legal)
 *       f64  current_scale   stored I × scale = amps (writer emits 1)
 *       f64  voltage_scale   stored V × scale = volts (writer emits 1)
 *       u64  sample_count    total samples across all blocks
 *       u32  block_samples   max samples per block
 *       u32  reserved        0
 *       u8   pad[12]         0
 *       u32  header_crc      CRC-32 of bytes [0, 60)
 *     Block, repeated:
 *       u32  count           samples in this block (1..block_samples)
 *       u32  reserved[2]     0
 *       u32  payload_crc     CRC-32 of the payload bytes
 *       f64  time[count]     then f64 current[count], f64 voltage[count]
 *
 * Columnar blocks mean one CRC guards a bounded span (a flipped bit
 * corrupts one block, not the file), and the per-column layout keeps
 * replay reads sequential. Every decode failure is a typed TraceError,
 * never a crash or an abort — the ingestion boundary is the robustness
 * boundary.
 */

#ifndef CULPEO_ENV_TRACE_HPP
#define CULPEO_ENV_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "env/field.hpp"
#include "util/expected.hpp"
#include "util/units.hpp"

namespace culpeo::env {

using units::Hertz;
using units::Seconds;
using units::Volts;

/** "CTRC" read as a little-endian u32. */
inline constexpr std::uint32_t kTraceMagic = 0x43525443U;
inline constexpr std::uint16_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderSize = 64;
inline constexpr std::size_t kTraceBlockHeaderSize = 16;
/** Upper bound on block_samples a well-formed header may declare. */
inline constexpr std::uint32_t kTraceMaxBlockSamples = 1U << 20;

/**
 * Every malformed-input class the decoder can meet. Codes are stable:
 * the fuzzer asserts each mutated input classifies into exactly one of
 * these, and telemetry interns their names.
 */
enum class TraceErrorCode : std::uint8_t {
    Io,               ///< open/stat/mmap failed (missing file, EACCES…).
    Truncated,        ///< File or block cut short of its declared size.
    BadMagic,         ///< Not a trace file.
    BadVersion,       ///< A version this decoder does not speak.
    HeaderCorrupt,    ///< Header CRC mismatch or nonsensical fields.
    ZeroLengthBlock,  ///< A block declaring zero samples.
    BlockCrcMismatch, ///< Block payload failed its CRC.
    NonFiniteSample,  ///< NaN/Inf time, current, or voltage.
    NonMonotonicTime, ///< Timestamp at or below its predecessor.
    DuplicateTime,    ///< Timestamp exactly equal to its predecessor.
    OutOfRangeCurrent, ///< Negative or implausibly large current.
    OutOfRangeVoltage, ///< Negative or implausibly large voltage.
    TrailingData,     ///< Bytes past the declared sample count.
    EmptyTrace,       ///< No samples survive decoding.
};

/** Stable lowercase-snake name for @p code (telemetry, diagnostics). */
const char *traceErrorName(TraceErrorCode code);

/** One decode failure, locatable enough to debug a capture rig. */
struct TraceError
{
    TraceErrorCode code = TraceErrorCode::Io;
    std::string detail;            ///< Human-readable specifics.
    std::uint64_t byte_offset = 0; ///< Where in the file it was found.
    std::uint64_t block = 0;       ///< Block index (0-based).
    std::uint64_t sample = 0;      ///< Global sample index (0-based).

    /** "<code> at byte N (block B, sample S): detail" */
    std::string message() const;
};

/**
 * What the decoder does when it meets a malformed input class that is
 * recoverable (sample- or block-local; structural header damage always
 * fails the open).
 */
enum class RecoveryMode : std::uint8_t {
    /** Fail the open with the first TraceError, full diagnostics. */
    Strict,
    /**
     * Keep the time grid: a bad value at a good timestamp saturates to
     * the last good (I, V); samples with bad timestamps and blocks
     * with bad CRCs are dropped (the previous value holds over the
     * gap). Every repair is counted and telemetered.
     */
    Clamp,
    /**
     * Keep only good data: corrupt samples and blocks are dropped
     * wholesale and the previous value holds across the gap.
     */
    Skip,
};

const char *recoveryModeName(RecoveryMode mode);

/** What recovery did; populated by the reader even when telemetry is off. */
struct TraceStats
{
    std::uint64_t samples_decoded = 0; ///< Survived into the replay view.
    std::uint64_t samples_clamped = 0; ///< Values saturated to last-good.
    std::uint64_t samples_dropped = 0; ///< Samples removed entirely.
    std::uint64_t blocks_total = 0;    ///< Blocks seen in the file.
    std::uint64_t blocks_dropped = 0;  ///< CRC-failed / truncated blocks.
    std::uint64_t trailing_bytes = 0;  ///< Ignored bytes past the end.
    /** Header sample_count disagreed with the decoded blocks. */
    bool count_mismatch = false;
    /** First errors met (bounded; enough to name the corruption). */
    std::vector<TraceError> errors;

    /** True when any recovery action fired. */
    bool corrupted() const
    {
        return samples_clamped != 0 || samples_dropped != 0 ||
               blocks_dropped != 0 || trailing_bytes != 0 ||
               count_mismatch;
    }
};

/**
 * An in-memory (time, I, V) series: what the writer consumes, the
 * recorder and downsampler produce, and a recovering decode
 * materializes. Parallel columns; times strictly increasing.
 */
struct TraceData
{
    Hertz sample_rate{1.0};
    std::vector<double> time_s;
    std::vector<double> current_a;
    std::vector<double> voltage_v;

    std::size_t size() const { return time_s.size(); }
    units::Watts powerAt(std::size_t i) const
    {
        return units::Watts(current_a[i] * voltage_v[i]);
    }
};

/** Writer knobs. */
struct TraceWriteOptions
{
    /** Samples per CRC-guarded block. */
    std::uint32_t block_samples = 512;
};

/**
 * Write @p data to @p path in the format above. Returns a TraceError
 * (Io, NonFiniteSample, NonMonotonicTime, DuplicateTime, EmptyTrace)
 * instead of writing a file that could not be decoded back.
 */
util::Expected<void, TraceError>
writeTrace(const std::string &path, const TraceData &data,
           const TraceWriteOptions &options = {});

/** Recorder knobs: how a live env field is quantized into a trace. */
struct TraceRecordOptions
{
    /**
     * The harvest-bus voltage the recorder books samples against:
     * stored I = P / bus, stored V = bus, so replayed power is
     * I × V. The default 1 V makes the round trip exact in floating
     * point; a rig-realistic bus (e.g. 3.3 V) costs at most 1 ulp.
     */
    Volts bus_voltage{1.0};
};

/**
 * Record @p field at @p pos into a trace: sample k is the field's
 * power at k / rate over [0, duration). A rate whose period divides
 * the field's piece length captures a piecewise-constant field
 * exactly; coarser rates alias (use the downsampler deliberately
 * instead). Fatal on a non-positive rate or duration (configuration,
 * not input).
 */
TraceData recordField(const HarvestField &field, Position pos,
                      Seconds duration, Hertz rate,
                      const TraceRecordOptions &options = {});

/** CRC-32 (IEEE 802.3, reflected) of @p size bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

} // namespace culpeo::env

#endif // CULPEO_ENV_TRACE_HPP
