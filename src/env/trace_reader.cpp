#include "env/trace_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace culpeo::env {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint16_t
readU16(const unsigned char *p)
{
    return std::uint16_t(p[0]) | std::uint16_t(p[1]) << 8;
}

std::uint32_t
readU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
readU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

double
readF64(const unsigned char *p)
{
    std::uint64_t bits = readU64(p);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Decoded header fields (post-validation). */
struct Header
{
    double sample_rate = 1.0;
    double current_scale = 1.0;
    double voltage_scale = 1.0;
    std::uint64_t sample_count = 0;
    std::uint32_t block_samples = 0;
};

std::optional<TraceError>
parseHeader(const unsigned char *data, std::size_t size, Header &header)
{
    if (size < kTraceHeaderSize)
        return TraceError{TraceErrorCode::Truncated,
                          "file shorter than the 64-byte header", size, 0,
                          0};
    if (readU32(data) != kTraceMagic)
        return TraceError{TraceErrorCode::BadMagic,
                          "not a Culpeo trace file", 0, 0, 0};
    const std::uint16_t version = readU16(data + 4);
    if (version != kTraceVersion)
        return TraceError{TraceErrorCode::BadVersion,
                          "trace version " + std::to_string(version) +
                              " (decoder speaks " +
                              std::to_string(kTraceVersion) + ")",
                          4, 0, 0};
    if (crc32(data, 60) != readU32(data + 60))
        return TraceError{TraceErrorCode::HeaderCorrupt,
                          "header CRC mismatch", 60, 0, 0};
    header.sample_rate = readF64(data + 8);
    header.current_scale = readF64(data + 16);
    header.voltage_scale = readF64(data + 24);
    header.sample_count = readU64(data + 32);
    header.block_samples = readU32(data + 40);
    if (!std::isfinite(header.sample_rate) || header.sample_rate <= 0.0)
        return TraceError{TraceErrorCode::HeaderCorrupt,
                          "sample rate must be positive and finite", 8, 0,
                          0};
    if (!std::isfinite(header.current_scale) ||
        header.current_scale <= 0.0 ||
        !std::isfinite(header.voltage_scale) ||
        header.voltage_scale <= 0.0)
        return TraceError{TraceErrorCode::HeaderCorrupt,
                          "unit scales must be positive and finite", 16,
                          0, 0};
    if (header.block_samples == 0 ||
        header.block_samples > kTraceMaxBlockSamples)
        return TraceError{TraceErrorCode::HeaderCorrupt,
                          "block_samples out of range", 40, 0, 0};
    return std::nullopt;
}

/** How a bad sample is bad: the code, and whether its *time* is bad. */
struct SampleFault
{
    TraceErrorCode code;
    bool time_bad;
};

std::optional<SampleFault>
classifySample(double prev_time, double t, double current, double voltage,
               const TraceReadOptions &options)
{
    if (!std::isfinite(t))
        return SampleFault{TraceErrorCode::NonFiniteSample, true};
    if (t == prev_time)
        return SampleFault{TraceErrorCode::DuplicateTime, true};
    if (t < prev_time)
        return SampleFault{TraceErrorCode::NonMonotonicTime, true};
    if (!std::isfinite(current) || !std::isfinite(voltage))
        return SampleFault{TraceErrorCode::NonFiniteSample, false};
    if (current < 0.0 || current > options.max_current_a)
        return SampleFault{TraceErrorCode::OutOfRangeCurrent, false};
    if (voltage < 0.0 || voltage > options.max_voltage_v)
        return SampleFault{TraceErrorCode::OutOfRangeVoltage, false};
    return std::nullopt;
}

/** Everything one decode pass needs to see. */
struct DecodeCtx
{
    const unsigned char *data = nullptr;
    std::size_t size = 0;
    Header header;
    const TraceReadOptions *options = nullptr;
    /** Stats + telemetry are recorded on the first pass only. */
    bool emit = true;
    TraceStats *stats = nullptr;
};

/** Count an error into stats and telemetry (bounded, emit-pass only). */
void
noteError(const DecodeCtx &ctx, const TraceError &error)
{
    if (!ctx.emit)
        return;
    if (ctx.stats->errors.size() < ctx.options->max_errors_kept)
        ctx.stats->errors.push_back(error);
    if constexpr (telemetry::kEnabled) {
        telemetry::Telemetry *tel = ctx.options->telemetry;
        if (tel != nullptr) {
            tel->registry()
                .counter(telemetry::names::kTraceCorruption)
                .add(1);
            tel->emit(telemetry::EventKind::TraceCorruption,
                      /*time_s=*/0.0, /*voltage_v=*/0.0,
                      tel->trace().intern(traceErrorName(error.code)),
                      double(error.block),
                      /*flag=*/ctx.options->mode != RecoveryMode::Strict);
        }
    }
}

/**
 * The one block walk both passes share. Strict mode returns the first
 * error; Clamp/Skip repair and keep going. @p refs (nullable) collects
 * zero-copy spans for fully clean blocks; @p out (nullable)
 * materializes the recovered series; @p needs_own (nullable) reports
 * whether any sample-level repair made the refs unusable.
 */
std::optional<TraceError>
walkBlocks(const DecodeCtx &ctx, std::vector<double> *kept_probe,
           TraceData *out, bool *needs_own, std::uint64_t &kept_count)
{
    const TraceReadOptions &options = *ctx.options;
    const RecoveryMode mode = options.mode;
    const bool strict = mode == RecoveryMode::Strict;

    std::size_t offset = kTraceHeaderSize;
    std::uint64_t block = 0;
    std::uint64_t file_samples = 0; ///< Declared by parsed block headers.
    double prev_time = -kInf;
    double last_current = 0.0;
    double last_voltage = 0.0;
    kept_count = 0;

    while (offset < ctx.size) {
        const std::size_t remaining = ctx.size - offset;
        const bool past_declared = file_samples >= ctx.header.sample_count;
        if (remaining < kTraceBlockHeaderSize) {
            const TraceError error{past_declared
                                       ? TraceErrorCode::TrailingData
                                       : TraceErrorCode::Truncated,
                                   "dangling " +
                                       std::to_string(remaining) +
                                       " bytes where a block header "
                                       "should be",
                                   offset, block, file_samples};
            noteError(ctx, error);
            if (strict)
                return error;
            if (ctx.emit)
                ctx.stats->trailing_bytes += remaining;
            break;
        }
        const std::uint32_t count = readU32(ctx.data + offset);
        if (count == 0) {
            const TraceError error{TraceErrorCode::ZeroLengthBlock,
                                   "block declares zero samples", offset,
                                   block, file_samples};
            noteError(ctx, error);
            if (strict)
                return error;
            if (ctx.emit) {
                ++ctx.stats->blocks_total;
                ++ctx.stats->blocks_dropped;
            }
            offset += kTraceBlockHeaderSize;
            ++block;
            continue;
        }
        const std::uint64_t payload_bytes = 24ULL * count;
        if (kTraceBlockHeaderSize + payload_bytes > remaining) {
            const TraceError error{past_declared
                                       ? TraceErrorCode::TrailingData
                                       : TraceErrorCode::Truncated,
                                   "block declares " +
                                       std::to_string(count) +
                                       " samples past end of file",
                                   offset, block, file_samples};
            noteError(ctx, error);
            if (strict)
                return error;
            if (ctx.emit) {
                ++ctx.stats->blocks_total;
                ++ctx.stats->blocks_dropped;
                ctx.stats->trailing_bytes += remaining;
            }
            break;
        }
        if (ctx.emit)
            ++ctx.stats->blocks_total;
        const unsigned char *payload =
            ctx.data + offset + kTraceBlockHeaderSize;
        const std::uint32_t stored_crc = readU32(ctx.data + offset + 12);
        if (crc32(payload, payload_bytes) != stored_crc) {
            const TraceError error{TraceErrorCode::BlockCrcMismatch,
                                   "payload CRC mismatch", offset, block,
                                   file_samples};
            noteError(ctx, error);
            if (strict)
                return error;
            if (ctx.emit) {
                ++ctx.stats->blocks_dropped;
                ctx.stats->samples_dropped += count;
            }
            file_samples += count;
            offset += kTraceBlockHeaderSize + payload_bytes;
            ++block;
            continue;
        }

        const unsigned char *tcol = payload;
        const unsigned char *icol = payload + 8ULL * count;
        const unsigned char *vcol = payload + 16ULL * count;
        bool block_clean = true;
        for (std::uint32_t i = 0; i < count; ++i) {
            const double t = readF64(tcol + 8ULL * i);
            const double current =
                readF64(icol + 8ULL * i) * ctx.header.current_scale;
            const double voltage =
                readF64(vcol + 8ULL * i) * ctx.header.voltage_scale;
            const std::optional<SampleFault> fault =
                classifySample(prev_time, t, current, voltage, options);
            if (!fault.has_value()) {
                prev_time = t;
                last_current = current;
                last_voltage = voltage;
                if (out != nullptr) {
                    out->time_s.push_back(t);
                    out->current_a.push_back(current);
                    out->voltage_v.push_back(voltage);
                }
                ++kept_count;
                continue;
            }
            const TraceError error{
                fault->code, "sample failed validation",
                offset + kTraceBlockHeaderSize + 8ULL * i, block,
                file_samples + i};
            noteError(ctx, error);
            if (strict)
                return error;
            block_clean = false;
            if (needs_own != nullptr)
                *needs_own = true;
            if (mode == RecoveryMode::Clamp && !fault->time_bad) {
                // The time grid survives: saturate to last-good values.
                prev_time = t;
                if (out != nullptr) {
                    out->time_s.push_back(t);
                    out->current_a.push_back(last_current);
                    out->voltage_v.push_back(last_voltage);
                }
                ++kept_count;
                if (ctx.emit)
                    ++ctx.stats->samples_clamped;
            } else if (ctx.emit) {
                ++ctx.stats->samples_dropped;
            }
        }
        if (kept_probe != nullptr && block_clean) {
            // Record the block's span as (first kept index, raw offset).
            kept_probe->push_back(double(kept_count) - double(count));
            kept_probe->push_back(double(offset));
        }
        file_samples += count;
        offset += kTraceBlockHeaderSize + payload_bytes;
        ++block;
    }

    if (file_samples != ctx.header.sample_count) {
        const TraceError error{
            file_samples < ctx.header.sample_count
                ? TraceErrorCode::Truncated
                : TraceErrorCode::TrailingData,
            "header declares " +
                std::to_string(ctx.header.sample_count) +
                " samples, blocks carry " + std::to_string(file_samples),
            offset, block, file_samples};
        // Only worth reporting when the block walk itself was clean
        // (a dropped tail already told this story).
        if (ctx.emit && !ctx.stats->count_mismatch) {
            noteError(ctx, error);
            ctx.stats->count_mismatch = true;
        }
        if (strict)
            return error;
    }
    return std::nullopt;
}

} // namespace

util::Expected<MappedFile, TraceError>
MappedFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return util::fail(TraceError{TraceErrorCode::Io,
                                     "cannot open " + path + ": " +
                                         std::strerror(errno),
                                     0, 0, 0});
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return util::fail(TraceError{TraceErrorCode::Io,
                                     path + " is not a regular file", 0,
                                     0, 0});
    }
    const std::size_t size = std::size_t(st.st_size);
    if (size == 0) {
        ::close(fd);
        return util::fail(TraceError{TraceErrorCode::Truncated,
                                     path + " is empty", 0, 0, 0});
    }
    void *mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapped == MAP_FAILED)
        return util::fail(TraceError{TraceErrorCode::Io,
                                     "mmap failed for " + path + ": " +
                                         std::strerror(errno),
                                     0, 0, 0});
    return MappedFile(static_cast<const unsigned char *>(mapped), size);
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(other.data_), size_(other.size_)
{
    other.data_ = nullptr;
    other.size_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        if (data_ != nullptr)
            ::munmap(const_cast<unsigned char *>(data_), size_);
        data_ = other.data_;
        size_ = other.size_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

MappedFile::~MappedFile()
{
    if (data_ != nullptr)
        ::munmap(const_cast<unsigned char *>(data_), size_);
}

util::Expected<TraceReader, TraceError>
TraceReader::open(const std::string &path, const TraceReadOptions &options)
{
    util::Expected<MappedFile, TraceError> map = MappedFile::open(path);
    if (!map) {
        TraceReader probe; // Emit the failure before surfacing it.
        DecodeCtx ctx;
        ctx.options = &options;
        ctx.stats = &probe.stats_;
        noteError(ctx, map.error());
        return util::fail(map.error());
    }

    TraceReader reader;
    reader.map_.emplace(std::move(*map));
    reader.mode_ = options.mode;

    DecodeCtx ctx;
    ctx.data = reader.map_->data();
    ctx.size = reader.map_->size();
    ctx.options = &options;
    ctx.emit = true;
    ctx.stats = &reader.stats_;

    Header header;
    if (std::optional<TraceError> error =
            parseHeader(ctx.data, ctx.size, header)) {
        noteError(ctx, *error);
        return util::fail(*error);
    }
    ctx.header = header;
    reader.sample_rate_ = Hertz(header.sample_rate);
    reader.current_scale_ = header.current_scale;
    reader.voltage_scale_ = header.voltage_scale;

    // Pass 1: validate + count, remembering clean-block spans.
    std::vector<double> spans;
    bool needs_own = false;
    std::uint64_t kept = 0;
    if (std::optional<TraceError> error =
            walkBlocks(ctx, &spans, nullptr, &needs_own, kept))
        return util::fail(*error);
    if (kept == 0) {
        const TraceError error{TraceErrorCode::EmptyTrace,
                               "no samples survived decoding", 0, 0, 0};
        noteError(ctx, error);
        return util::fail(error);
    }
    reader.stats_.samples_decoded = kept;
    reader.size_ = std::size_t(kept);

    if (!needs_own) {
        // Zero-copy: rebuild the BlockRefs from the recorded spans.
        reader.blocks_.reserve(spans.size() / 2);
        for (std::size_t s = 0; s + 1 < spans.size(); s += 2) {
            const std::size_t first = std::size_t(spans[s]);
            const std::size_t offset = std::size_t(spans[s + 1]);
            const std::uint32_t count = readU32(ctx.data + offset);
            const unsigned char *payload =
                ctx.data + offset + kTraceBlockHeaderSize;
            BlockRef ref;
            ref.first = first;
            ref.count = count;
            ref.time = reinterpret_cast<const double *>(payload);
            ref.current =
                reinterpret_cast<const double *>(payload + 8ULL * count);
            ref.voltage =
                reinterpret_cast<const double *>(payload + 16ULL * count);
            reader.blocks_.push_back(ref);
        }
        return reader;
    }

    // Pass 2: materialize the recovered series (stats already final).
    ctx.emit = false;
    reader.use_owned_ = true;
    reader.owned_.sample_rate = Hertz(header.sample_rate);
    reader.owned_.time_s.reserve(std::size_t(kept));
    reader.owned_.current_a.reserve(std::size_t(kept));
    reader.owned_.voltage_v.reserve(std::size_t(kept));
    std::uint64_t kept_again = 0;
    if (std::optional<TraceError> error =
            walkBlocks(ctx, nullptr, &reader.owned_, nullptr, kept_again))
        return util::fail(*error); // Unreachable: pass 1 already passed.
    log::panicIf(kept_again != kept,
                 "trace decode passes disagree on sample count");
    // Scales were applied during materialization.
    reader.current_scale_ = 1.0;
    reader.voltage_scale_ = 1.0;
    reader.map_.reset(); // The mapping is no longer referenced.
    return reader;
}

TraceReader
TraceReader::fromData(TraceData data)
{
    const std::size_t n = data.size();
    log::fatalIf(n == 0, "trace data must hold at least one sample");
    log::fatalIf(data.current_a.size() != n || data.voltage_v.size() != n,
                 "trace data columns must have equal lengths");
    log::fatalIf(data.sample_rate.value() <= 0.0 ||
                     !std::isfinite(data.sample_rate.value()),
                 "trace data sample rate must be positive");
    for (std::size_t i = 0; i < n; ++i) {
        log::fatalIf(!std::isfinite(data.time_s[i]) ||
                         !std::isfinite(data.current_a[i]) ||
                         !std::isfinite(data.voltage_v[i]),
                     "trace data sample ", i, " is not finite");
        log::fatalIf(i > 0 && data.time_s[i] <= data.time_s[i - 1],
                     "trace data timestamps must be strictly increasing "
                     "(sample ",
                     i, ")");
    }
    TraceReader reader;
    reader.use_owned_ = true;
    reader.size_ = n;
    reader.sample_rate_ = data.sample_rate;
    reader.stats_.samples_decoded = n;
    reader.owned_ = std::move(data);
    return reader;
}

TraceReader::Sample
TraceReader::sampleAt(std::size_t i) const
{
    log::panicIf(i >= size_, "trace sample index out of range");
    if (use_owned_)
        return {owned_.time_s[i], owned_.current_a[i],
                owned_.voltage_v[i]};
    // Last block whose first index is <= i.
    const auto it = std::upper_bound(
        blocks_.begin(), blocks_.end(), i,
        [](std::size_t index, const BlockRef &ref) {
            return index < ref.first;
        });
    const BlockRef &ref = *(it - 1);
    const std::size_t local = i - ref.first;
    return {ref.time[local], ref.current[local] * current_scale_,
            ref.voltage[local] * voltage_scale_};
}

double
TraceReader::timeAt(std::size_t i) const
{
    return sampleAt(i).time_s;
}

std::size_t
TraceReader::indexFor(double t) const
{
    if (use_owned_) {
        const auto it = std::upper_bound(owned_.time_s.begin(),
                                         owned_.time_s.end(), t);
        if (it == owned_.time_s.begin())
            return 0;
        return std::size_t(it - owned_.time_s.begin()) - 1;
    }
    // Last block whose first timestamp is <= t, then search within.
    const auto bit = std::upper_bound(
        blocks_.begin(), blocks_.end(), t,
        [](double value, const BlockRef &ref) {
            return value < ref.time[0];
        });
    if (bit == blocks_.begin())
        return blocks_.front().first;
    const BlockRef &ref = *(bit - 1);
    const double *end = ref.time + ref.count;
    const double *pos = std::upper_bound(ref.time, end, t);
    if (pos == ref.time)
        return ref.first;
    return ref.first + std::size_t(pos - ref.time) - 1;
}

TraceData
downsample(const TraceReader &reader, unsigned factor)
{
    log::fatalIf(factor == 0, "downsample factor must be positive");
    TraceData out;
    out.sample_rate = Hertz(reader.sampleRate().value() / double(factor));
    const std::size_t n = reader.size();
    out.time_s.reserve(n / factor + 1);
    out.current_a.reserve(n / factor + 1);
    out.voltage_v.reserve(n / factor + 1);
    std::size_t i = 0;
    while (i < n) {
        const std::size_t bin =
            std::min<std::size_t>(factor, n - i);
        double current = 0.0;
        double voltage = 0.0;
        const double t0 = reader.timeAt(i);
        for (std::size_t k = 0; k < bin; ++k) {
            const TraceReader::Sample s = reader.sampleAt(i + k);
            current += s.current_a;
            voltage += s.voltage_v;
        }
        out.time_s.push_back(t0);
        out.current_a.push_back(current / double(bin));
        out.voltage_v.push_back(voltage / double(bin));
        i += bin;
    }
    return out;
}

util::Expected<TraceField, TraceError>
TraceField::open(const std::string &path, const TraceReadOptions &options)
{
    util::Expected<TraceReader, TraceError> reader =
        TraceReader::open(path, options);
    if (!reader)
        return util::fail(reader.error());
    return TraceField(std::move(*reader));
}

TraceField::TraceField(TraceData data)
    : TraceField(TraceReader::fromData(std::move(data)))
{}

TraceField::TraceField(TraceReader reader) : reader_(std::move(reader))
{
    computeConstantPower();
}

void
TraceField::computeConstantPower()
{
    const std::size_t n = reader_.size();
    const double first = reader_.sampleAt(0).power_w();
    for (std::size_t i = 1; i < n; ++i) {
        if (reader_.sampleAt(i).power_w() != first)
            return;
    }
    constant_power_ = Watts(first);
}

Watts
TraceField::powerAt(Position, Seconds t) const
{
    return Watts(reader_.sampleAt(reader_.indexFor(t.value())).power_w());
}

Seconds
TraceField::constantUntil(Position, Seconds t) const
{
    const std::size_t index = reader_.indexFor(t.value());
    if (index + 1 < reader_.size())
        return Seconds(reader_.timeAt(index + 1));
    return Seconds(kInf);
}

std::optional<Watts>
TraceField::constantPower(Position) const
{
    return constant_power_;
}

Seconds
TraceField::endTime() const
{
    return Seconds(reader_.timeAt(reader_.size() - 1));
}

} // namespace culpeo::env
