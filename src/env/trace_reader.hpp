/**
 * @file
 * The defensive half of the harvest-trace subsystem (DESIGN.md §18):
 * an mmap'd zero-copy TraceReader whose decoder treats every byte of
 * input as hostile, a streaming downsampler, and TraceField — the
 * env::HarvestField adapter that replays a recorded trace through the
 * same piecewise-constant seam the parametric skies use, so scalar
 * sim::Device lanes, the SoA batch engine, and fleet shards all see
 * bit-identical harvest without any engine changes.
 *
 * Decoder contract (the trace-corruption fuzzer enforces all three):
 *  - it never crashes and never reads out of bounds, whatever the
 *    input bytes (every block extent is checked against the mapped
 *    size before the payload is touched);
 *  - every malformed input classifies into the TraceErrorCode
 *    taxonomy (trace.hpp);
 *  - it lands in the declared RecoveryMode: Strict fails the open
 *    with the first error, Clamp/Skip repair sample- and block-local
 *    damage, count every repair in TraceStats, and telemeter them
 *    (`trace.corruption` counter + TraceCorruption events) when a
 *    sink is attached. Structural header damage (bad magic/version,
 *    header CRC, nothing decodable) fails the open in every mode.
 *
 * Zero-copy: a clean file — and one whose only damage is whole
 * dropped blocks or trailing bytes — is served straight from the
 * mapping (block-ref spans; all column offsets are 8-aligned by
 * format construction). Sample-level repairs (clamped values,
 * dropped samples) materialize an owned, recovered copy instead;
 * zeroCopy() reports which path is live. Readers are immutable after
 * open and safe to sample from concurrent fleet shards.
 */

#ifndef CULPEO_ENV_TRACE_READER_HPP
#define CULPEO_ENV_TRACE_READER_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "env/trace.hpp"
#include "util/expected.hpp"

namespace culpeo::telemetry {
class Telemetry;
}

namespace culpeo::env {

/** Read-only mmap of a whole file; movable RAII over fd + mapping. */
class MappedFile
{
  public:
    static util::Expected<MappedFile, TraceError>
    open(const std::string &path);

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    ~MappedFile();

    const unsigned char *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    MappedFile(const unsigned char *data, std::size_t size)
        : data_(data), size_(size)
    {}

    const unsigned char *data_ = nullptr;
    std::size_t size_ = 0;
};

/** Decoder knobs: recovery mode, plausibility bounds, telemetry. */
struct TraceReadOptions
{
    RecoveryMode mode = RecoveryMode::Strict;
    /**
     * Corruption telemetry sink (may be null): every detected error
     * bumps `trace.corruption` and emits one TraceCorruption event
     * carrying the error-code name and the block it was found in.
     */
    telemetry::Telemetry *telemetry = nullptr;
    /** Currents outside [0, max] are OutOfRangeCurrent. */
    double max_current_a = 100.0;
    /** Voltages outside [0, max] are OutOfRangeVoltage. */
    double max_voltage_v = 1000.0;
    /** First errors kept in TraceStats::errors (the rest only count). */
    std::size_t max_errors_kept = 16;
};

/**
 * Decoded, recovered view of one trace file. Samples are exposed by
 * index and by time; both resolve through the zero-copy block refs or
 * the materialized recovery copy transparently.
 */
class TraceReader
{
  public:
    /** Decode @p path under @p options; see the file comment. */
    static util::Expected<TraceReader, TraceError>
    open(const std::string &path, const TraceReadOptions &options = {});

    /** Wrap an in-memory series (tests, benches, recorder output). */
    static TraceReader fromData(TraceData data);

    /** One decoded sample. */
    struct Sample
    {
        double time_s = 0.0;
        double current_a = 0.0;
        double voltage_v = 0.0;

        double power_w() const { return current_a * voltage_v; }
    };

    /** Samples that survived recovery (>= 1 on a successful open). */
    std::size_t size() const { return size_; }

    Hertz sampleRate() const { return sample_rate_; }

    Sample sampleAt(std::size_t i) const;
    double timeAt(std::size_t i) const;

    /**
     * Index of the last sample with time <= @p t; 0 when @p t is
     * before the first sample (the first value is held backwards).
     */
    std::size_t indexFor(double t) const;

    /** What the decoder met and repaired. */
    const TraceStats &stats() const { return stats_; }

    RecoveryMode mode() const { return mode_; }

    /** True while replay reads straight from the mapping. */
    bool zeroCopy() const { return !use_owned_; }

  private:
    /** A clean block's columns inside the mapping. */
    struct BlockRef
    {
        std::size_t first = 0; ///< Global index of the block's sample 0.
        std::size_t count = 0;
        const double *time = nullptr;
        const double *current = nullptr;
        const double *voltage = nullptr;
    };

    TraceReader() = default;

    std::optional<MappedFile> map_;
    std::vector<BlockRef> blocks_; ///< Zero-copy path (clean blocks).
    TraceData owned_;              ///< Materialized path (repairs).
    bool use_owned_ = false;
    std::size_t size_ = 0;
    Hertz sample_rate_{1.0};
    /** Header unit scales, applied on the zero-copy read path (the
     * materialized path bakes them in and resets these to 1). */
    double current_scale_ = 1.0;
    double voltage_scale_ = 1.0;
    RecoveryMode mode_ = RecoveryMode::Strict;
    TraceStats stats_;
};

/**
 * Streaming decimation: each output sample is the mean (I, V) of
 * @p factor consecutive inputs, stamped with the bin's first
 * timestamp; the nominal rate divides by @p factor. A trailing
 * partial bin averages what is there. Fatal on factor == 0
 * (configuration, not input).
 */
TraceData downsample(const TraceReader &reader, unsigned factor);

/**
 * A recorded trace as a harvest field: sample k's power holds over
 * [time[k], time[k+1]) — the piecewise-constant contract — the first
 * sample is held before the trace starts and the last after it ends,
 * and recovery gaps hold the previous value. Position-independent (a
 * trace records one point in space); replays identically from every
 * fleet position. A trace whose samples all carry one power reports
 * constantPower(), keeping equilibrium Unreachable wait verdicts.
 */
class TraceField : public HarvestField
{
  public:
    /** Decode @p path; error taxonomy and recovery per the reader. */
    static util::Expected<TraceField, TraceError>
    open(const std::string &path, const TraceReadOptions &options = {});

    /** Replay an in-memory series. Fatal on empty/unordered data. */
    explicit TraceField(TraceData data);

    Watts powerAt(Position pos, Seconds t) const override;
    Seconds constantUntil(Position pos, Seconds t) const override;
    std::optional<Watts> constantPower(Position pos) const override;

    const TraceReader &reader() const { return reader_; }
    const TraceStats &stats() const { return reader_.stats(); }

    /** Timestamp of the last sample (the held-forever tail begins). */
    Seconds endTime() const;

  private:
    explicit TraceField(TraceReader reader);

    void computeConstantPower();

    TraceReader reader_;
    std::optional<Watts> constant_power_;
};

} // namespace culpeo::env

#endif // CULPEO_ENV_TRACE_READER_HPP
