#include "degradation.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::fault {

bool
DegradationModel::active() const
{
    return capacitance_fraction_end < 1.0 || esr_multiplier_end > 1.0 ||
           leakage_growth.value() > 0.0;
}

double
DegradationModel::progressAt(Seconds t) const
{
    log::fatalIf(ramp.value() <= 0.0,
                 "degradation ramp must be positive");
    const double elapsed = (t - onset).value();
    if (elapsed <= 0.0)
        return 0.0;
    const double x = elapsed / ramp.value();
    switch (shape) {
    case DriftShape::Linear:
        return std::min(1.0, x);
    case DriftShape::Exponential:
        return 1.0 - std::exp(-x);
    }
    return 0.0;
}

double
DegradationModel::capacitanceFractionAt(Seconds t) const
{
    const double p = progressAt(t);
    return 1.0 + (capacitance_fraction_end - 1.0) * p;
}

double
DegradationModel::esrMultiplierAt(Seconds t) const
{
    const double p = progressAt(t);
    return 1.0 + (esr_multiplier_end - 1.0) * p;
}

Amps
DegradationModel::extraLeakageAt(Seconds t) const
{
    return Amps(leakage_growth.value() * progressAt(t));
}

} // namespace culpeo::fault
