/**
 * @file
 * Continuous degradation models: smooth capacitance fade, ESR growth,
 * and leakage ramp over a trial's lifetime. The one-shot AgingStep
 * models abrupt damage (a cell failing); a DegradationModel models the
 * slow wear a deployed supercapacitor actually accumulates — the drift
 * the sched::Supervisor has to detect and absorb.
 *
 * The model is a pure function of simulation time, so replays are
 * deterministic and the injector can evaluate it every step without
 * state. Values interpolate from the pristine part (fraction 1, ESR
 * multiplier 1, zero extra leakage) toward the configured end-of-ramp
 * values; after the ramp the part holds its degraded state (Linear) or
 * keeps approaching it asymptotically (Exponential).
 *
 * Composition with AgingStep: `applyAging` replaces the capacitor's
 * aging knobs absolutely, so the injector multiplies the continuous
 * model into whatever step-aging is in effect (fractions multiply, ESR
 * multipliers multiply) — a stepped part keeps drifting from its
 * stepped state.
 */

#ifndef CULPEO_FAULT_DEGRADATION_HPP
#define CULPEO_FAULT_DEGRADATION_HPP

#include "util/units.hpp"

namespace culpeo::fault {

using units::Amps;
using units::Seconds;

/** Time profile of a continuous drift. */
enum class DriftShape {
    Linear,      ///< Ramp linearly over [onset, onset + ramp], then hold.
    Exponential, ///< 1 - exp(-(t - onset)/ramp): fast early, asymptotic.
};

/** Smooth aging applied on top of any fired AgingSteps. */
struct DegradationModel
{
    DriftShape shape = DriftShape::Linear;
    Seconds onset{0.0}; ///< Drift starts here; pristine before.
    /** Linear: time to reach the end values. Exponential: time constant. */
    Seconds ramp{1.0};
    double capacitance_fraction_end = 1.0; ///< (0, 1]; 1 = no fade.
    double esr_multiplier_end = 1.0;       ///< >= 1; 1 = no growth.
    Amps leakage_growth{0.0}; ///< Extra leakage at full progress.

    /** True when the model perturbs anything at all. */
    bool active() const;

    /** Drift progress in [0, 1] at time @p t (0 before onset). */
    double progressAt(Seconds t) const;

    double capacitanceFractionAt(Seconds t) const;
    double esrMultiplierAt(Seconds t) const;
    Amps extraLeakageAt(Seconds t) const;
};

} // namespace culpeo::fault

#endif // CULPEO_FAULT_DEGRADATION_HPP
