#include "injector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace culpeo::fault {

namespace {

double
harvestTraceScale(const std::vector<HarvestPoint> &trace, Seconds t)
{
    if (trace.empty())
        return 1.0;
    if (t <= trace.front().time)
        return trace.front().scale;
    if (t >= trace.back().time)
        return trace.back().scale;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (t <= trace[i].time) {
            const auto &lo = trace[i - 1];
            const auto &hi = trace[i];
            const double span = (hi.time - lo.time).value();
            const double frac =
                span <= 0.0 ? 1.0 : (t - lo.time).value() / span;
            return lo.scale + (hi.scale - lo.scale) * frac;
        }
    }
    return trace.back().scale;
}

} // namespace

std::string
FaultPlan::summary() const
{
    std::ostringstream os;
    os << "faults{harvest_pts=" << harvest_trace.size()
       << " dropouts=" << dropouts.size()
       << " leak_spikes=" << leakage_spikes.size()
       << " aging=" << aging_steps.size()
       << " brownouts=" << brownouts.size()
       << " adc_offset=" << adc.offset.value() * 1e3 << "mV"
       << " adc_noise=" << adc.noise_stddev.value() * 1e3 << "mV";
    if (degradation && degradation->active()) {
        os << " drift="
           << (degradation->shape == DriftShape::Linear ? "linear"
                                                        : "exp")
           << "{cap->" << degradation->capacitance_fraction_end
           << " esr->" << degradation->esr_multiplier_end << "x leak+"
           << degradation->leakage_growth.value() * 1e6 << "uA}";
    }
    os << "}";
    return os.str();
}

FaultPlan
randomPlan(util::Rng &rng, Seconds horizon, const FaultKnobs &knobs)
{
    log::fatalIf(horizon.value() <= 0.0,
                 "fault plan horizon must be positive");
    FaultPlan plan;
    const double h = horizon.value();

    const unsigned harvest_points =
        unsigned(rng.uniformInt(knobs.max_harvest_points + 1));
    for (unsigned i = 0; i < harvest_points; ++i) {
        plan.harvest_trace.push_back(
            {Seconds(rng.uniform(0.0, h)),
             rng.uniform(knobs.min_harvest_scale, 1.0)});
    }
    std::sort(plan.harvest_trace.begin(), plan.harvest_trace.end(),
              [](const HarvestPoint &a, const HarvestPoint &b) {
                  return a.time < b.time;
              });

    const unsigned dropouts =
        unsigned(rng.uniformInt(knobs.max_dropouts + 1));
    for (unsigned i = 0; i < dropouts; ++i) {
        const double start = rng.uniform(0.0, h);
        const double length =
            rng.uniform(0.0, knobs.max_dropout_length.value());
        plan.dropouts.push_back({Seconds(start),
                                 Seconds(std::min(h, start + length)),
                                 rng.uniform() < 0.5 ? 0.0
                                                     : rng.uniform()});
    }

    const unsigned spikes =
        unsigned(rng.uniformInt(knobs.max_leakage_spikes + 1));
    for (unsigned i = 0; i < spikes; ++i) {
        const double start = rng.uniform(0.0, h);
        const double length = rng.uniform(0.0, 0.2 * h);
        plan.leakage_spikes.push_back(
            {Seconds(start), Seconds(std::min(h, start + length)),
             Amps(rng.uniform(0.0, knobs.max_leakage.value()))});
    }

    const unsigned aging =
        unsigned(rng.uniformInt(knobs.max_aging_steps + 1));
    for (unsigned i = 0; i < aging; ++i) {
        plan.aging_steps.push_back(
            {Seconds(rng.uniform(0.0, h)),
             rng.uniform(knobs.min_capacitance_fraction, 1.0),
             rng.uniform(1.0, knobs.max_esr_multiplier)});
    }
    std::sort(plan.aging_steps.begin(), plan.aging_steps.end(),
              [](const AgingStep &a, const AgingStep &b) {
                  return a.at < b.at;
              });
    // Later steps must not rejuvenate the part: aging is monotone.
    for (std::size_t i = 1; i < plan.aging_steps.size(); ++i) {
        auto &step = plan.aging_steps[i];
        const auto &prev = plan.aging_steps[i - 1];
        step.capacitance_fraction = std::min(step.capacitance_fraction,
                                             prev.capacitance_fraction);
        step.esr_multiplier =
            std::max(step.esr_multiplier, prev.esr_multiplier);
    }

    const unsigned brownouts =
        unsigned(rng.uniformInt(knobs.max_brownouts + 1));
    for (unsigned i = 0; i < brownouts; ++i)
        plan.brownouts.push_back({Seconds(rng.uniform(0.0, h))});
    std::sort(plan.brownouts.begin(), plan.brownouts.end(),
              [](const ForcedBrownout &a, const ForcedBrownout &b) {
                  return a.at < b.at;
              });

    plan.adc.offset = Volts(rng.uniform(-knobs.max_adc_offset.value(),
                                        knobs.max_adc_offset.value()));
    plan.adc.noise_stddev =
        Volts(rng.uniform(0.0, knobs.max_adc_noise.value()));

    // Guarded on the knob BEFORE any draw so the default configuration
    // consumes exactly the historical rng sequence (seed replays and
    // the seed-regression golden depend on it).
    if (knobs.drift_probability > 0.0 &&
        rng.uniform() < knobs.drift_probability) {
        DegradationModel drift;
        drift.shape = rng.uniform() < 0.5 ? DriftShape::Linear
                                          : DriftShape::Exponential;
        drift.onset = Seconds(rng.uniform(0.0, 0.5 * h));
        drift.ramp = Seconds(rng.uniform(0.1 * h, h));
        drift.capacitance_fraction_end =
            rng.uniform(knobs.min_drift_capacitance_fraction, 1.0);
        drift.esr_multiplier_end =
            rng.uniform(1.0, knobs.max_drift_esr_multiplier);
        drift.leakage_growth =
            Amps(rng.uniform(0.0, knobs.max_drift_leakage.value()));
        plan.degradation = drift;
    }
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t noise_seed)
    : plan_(std::move(plan)), noise_seed_(noise_seed), noise_(noise_seed)
{
    std::sort(plan_.aging_steps.begin(), plan_.aging_steps.end(),
              [](const AgingStep &a, const AgingStep &b) {
                  return a.at < b.at;
              });
    std::sort(plan_.brownouts.begin(), plan_.brownouts.end(),
              [](const ForcedBrownout &a, const ForcedBrownout &b) {
                  return a.at < b.at;
              });
}

void
FaultInjector::onTelemetry(telemetry::Telemetry *telemetry)
{
    if constexpr (!telemetry::kEnabled) {
        (void)telemetry;
        return;
    }
    telemetry_ = telemetry;
    injected_ = nullptr;
    if (telemetry_ == nullptr)
        return;
    injected_ =
        &telemetry_->registry().counter(telemetry::names::kFaultInjected);
    label_dropout_ = telemetry_->trace().intern("dropout");
    label_leakage_ = telemetry_->trace().intern("leakage_spike");
    label_aging_ = telemetry_->trace().intern("aging_step");
    label_brownout_ = telemetry_->trace().intern("forced_brownout");
    label_degradation_ = telemetry_->trace().intern("degradation");
}

void
FaultInjector::noteInjection(Seconds now, std::uint32_t label,
                             double value)
{
    if constexpr (telemetry::kEnabled) {
        if (telemetry_ == nullptr)
            return;
        injected_->add();
        // The injector runs below the voltage read path, so the event
        // carries no terminal voltage (0).
        telemetry_->emit(telemetry::EventKind::FaultInjected, now.value(),
                         0.0, label, value);
    } else {
        (void)now;
        (void)label;
        (void)value;
    }
}

sim::FaultActions
FaultInjector::onStep(Seconds now, Seconds dt)
{
    (void)dt;
    sim::FaultActions actions;

    noted_dropouts_.resize(plan_.dropouts.size(), false);
    noted_spikes_.resize(plan_.leakage_spikes.size(), false);

    actions.harvest_scale = harvestTraceScale(plan_.harvest_trace, now);
    for (std::size_t i = 0; i < plan_.dropouts.size(); ++i) {
        const auto &window = plan_.dropouts[i];
        if (now >= window.start && now < window.end) {
            actions.harvest_scale *= window.scale;
            if (!noted_dropouts_[i]) {
                noted_dropouts_[i] = true;
                noteInjection(now, label_dropout_, window.scale);
            }
        }
    }

    for (std::size_t i = 0; i < plan_.leakage_spikes.size(); ++i) {
        const auto &spike = plan_.leakage_spikes[i];
        if (now >= spike.start && now < spike.end) {
            actions.extra_leakage += spike.extra;
            if (!noted_spikes_[i]) {
                noted_spikes_[i] = true;
                noteInjection(now, label_leakage_, spike.extra.value());
            }
        }
    }

    while (next_aging_ < plan_.aging_steps.size() &&
           now >= plan_.aging_steps[next_aging_].at) {
        const AgingStep &step = plan_.aging_steps[next_aging_];
        step_capacitance_fraction_ = step.capacitance_fraction;
        step_esr_multiplier_ = step.esr_multiplier;
        ++next_aging_;
        noteInjection(now, label_aging_, step.esr_multiplier);
    }

    // Compose the continuous drift over the stepped state. applyAging
    // replaces the capacitor's knobs absolutely, so the injector owns
    // the product and only re-applies when it moved by more than the
    // resolution threshold (keeps analytic-ineligible Euler runs from
    // re-deriving branch state every tick for a sub-ppm change).
    double capacitance_fraction = step_capacitance_fraction_;
    double esr_multiplier = step_esr_multiplier_;
    if (plan_.degradation && plan_.degradation->active()) {
        const DegradationModel &drift = *plan_.degradation;
        capacitance_fraction *= drift.capacitanceFractionAt(now);
        esr_multiplier *= drift.esrMultiplierAt(now);
        actions.extra_leakage += drift.extraLeakageAt(now);
        if (!noted_degradation_ && drift.progressAt(now) > 0.0) {
            noted_degradation_ = true;
            noteInjection(now, label_degradation_,
                          drift.esr_multiplier_end);
        }
    }
    constexpr double kAgingResolution = 1e-4;
    if (std::abs(capacitance_fraction - applied_capacitance_fraction_) >
            kAgingResolution ||
        std::abs(esr_multiplier - applied_esr_multiplier_) >
            kAgingResolution) {
        actions.apply_aging = true;
        actions.capacitance_fraction = capacitance_fraction;
        actions.esr_multiplier = esr_multiplier;
        applied_capacitance_fraction_ = capacitance_fraction;
        applied_esr_multiplier_ = esr_multiplier;
    }

    if (next_brownout_ < plan_.brownouts.size() &&
        now >= plan_.brownouts[next_brownout_].at) {
        actions.force_brownout = true;
        ++next_brownout_;
        ++fired_brownouts_;
        noteInjection(now, label_brownout_, 0.0);
    }
    return actions;
}

Volts
FaultInjector::perturbReading(Volts v)
{
    double observed = v.value() + plan_.adc.offset.value();
    if (plan_.adc.noise_stddev.value() > 0.0)
        observed = noise_.gaussian(observed,
                                   plan_.adc.noise_stddev.value());
    return Volts(std::max(0.0, observed));
}

void
FaultInjector::reset()
{
    next_aging_ = 0;
    next_brownout_ = 0;
    fired_brownouts_ = 0;
    step_capacitance_fraction_ = 1.0;
    step_esr_multiplier_ = 1.0;
    applied_capacitance_fraction_ = 1.0;
    applied_esr_multiplier_ = 1.0;
    noted_degradation_ = false;
    noise_ = util::Rng(noise_seed_);
    noted_dropouts_.assign(noted_dropouts_.size(), false);
    noted_spikes_.assign(noted_spikes_.size(), false);
}

} // namespace culpeo::fault
