/**
 * @file
 * Deterministic fault injection for the power-system simulator.
 *
 * A FaultPlan is a complete, explicit schedule of disturbances — harvest
 * scaling traces and dropouts, leakage spikes, abrupt ESR/capacitance
 * aging steps, continuous degradation (fault/degradation.hpp), forced
 * brown-outs (reboots), and an ADC error model for software voltage
 * reads. Plans are either hand-authored or generated
 * from a single seed by randomPlan(); a FaultInjector replays a plan
 * through the sim::FaultHooks seam, so any failing run is reproducible
 * from its seed alone.
 *
 * The default FaultKnobs keep every *continuous* disturbance within the
 * scheduler's dispatch guard band (ADC error well under the 20 mV
 * margin, leakage spikes under a millivolt of extra ESR drop), matching
 * how a real deployment reasons: bounded noise is absorbed by margins,
 * while unbounded disturbances (forced brown-outs) power the device off
 * and are handled by the reboot path, not by Vsafe.
 */

#ifndef CULPEO_FAULT_INJECTOR_HPP
#define CULPEO_FAULT_INJECTOR_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/degradation.hpp"
#include "sim/instrumentation.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace culpeo::telemetry {
class Counter;
} // namespace culpeo::telemetry

namespace culpeo::fault {

using units::Amps;
using units::Seconds;
using units::Volts;

/** Harvested power scaled by @p scale over [start, end). */
struct DropoutWindow
{
    Seconds start{0.0};
    Seconds end{0.0};
    double scale = 0.0; ///< 0 = full dropout; 0.5 = half power.
};

/** Extra buffer drain of @p extra over [start, end). */
struct LeakageSpike
{
    Seconds start{0.0};
    Seconds end{0.0};
    Amps extra{0.0};
};

/** Abrupt capacitor degradation applied once at time @p at. */
struct AgingStep
{
    Seconds at{0.0};
    double capacitance_fraction = 1.0;
    double esr_multiplier = 1.0;
};

/** Injected power failure (reboot) fired once at time @p at. */
struct ForcedBrownout
{
    Seconds at{0.0};
};

/**
 * One point of a piecewise-linear harvest scaling trace (a randomized
 * harvest condition layered on the app's base harvester). Queries clamp
 * to the first/last point outside the covered span; an empty trace
 * means a constant scale of 1.
 */
struct HarvestPoint
{
    Seconds time{0.0};
    double scale = 1.0;
};

/** ADC error model for software voltage reads. */
struct AdcFault
{
    Volts offset{0.0};        ///< Systematic read offset.
    Volts noise_stddev{0.0};  ///< Gaussian read noise.
};

/** A complete, explicit disturbance schedule. */
struct FaultPlan
{
    std::vector<HarvestPoint> harvest_trace;
    std::vector<DropoutWindow> dropouts;
    std::vector<LeakageSpike> leakage_spikes;
    std::vector<AgingStep> aging_steps;
    std::vector<ForcedBrownout> brownouts;
    AdcFault adc;
    /** Continuous wear layered multiplicatively over the aging steps. */
    std::optional<DegradationModel> degradation;

    /** One-line human-readable description (for failure reports). */
    std::string summary() const;
};

/** Bounds for randomPlan(). See the file comment for the rationale. */
struct FaultKnobs
{
    unsigned max_harvest_points = 4;
    double min_harvest_scale = 0.2;
    unsigned max_dropouts = 3;
    Seconds max_dropout_length{0.5};
    unsigned max_leakage_spikes = 2;
    Amps max_leakage{200e-6};
    unsigned max_aging_steps = 1;
    double max_esr_multiplier = 1.5;
    double min_capacitance_fraction = 0.85;
    unsigned max_brownouts = 2;
    Volts max_adc_offset{5e-3};
    Volts max_adc_noise{2e-3};
    /**
     * Chance that the plan carries a continuous DegradationModel.
     * Defaults to 0 so existing seeds replay bit-exactly: randomPlan()
     * consumes NO extra rng draws unless this is raised above zero.
     */
    double drift_probability = 0.0;
    double max_drift_esr_multiplier = 2.5;
    double min_drift_capacitance_fraction = 0.75;
    Amps max_drift_leakage{100e-6};
};

/** Generate a random plan covering [0, horizon) from @p rng. */
FaultPlan randomPlan(util::Rng &rng, Seconds horizon,
                     const FaultKnobs &knobs = {});

/**
 * Replays a FaultPlan through the simulator's fault seam. One-shot
 * events (aging steps, brown-outs) fire on the first step whose start
 * time reaches them; call reset() to replay the same plan from t = 0.
 */
class FaultInjector : public sim::FaultHooks
{
  public:
    /** @param noise_seed seeds the ADC read-noise stream. */
    explicit FaultInjector(FaultPlan plan, std::uint64_t noise_seed = 1);

    sim::FaultActions onStep(Seconds now, Seconds dt) override;
    Volts perturbReading(Volts v) override;

    /**
     * Capture the trial's telemetry sink: every injected disturbance
     * bumps `fault.injected` and emits one FaultInjected trace event —
     * one-shot events (aging, forced brown-outs) when they fire,
     * windowed ones (dropouts, leakage spikes) on first entry.
     */
    void onTelemetry(telemetry::Telemetry *telemetry) override;

    const FaultPlan &plan() const { return plan_; }

    /** Forced brown-outs fired so far. */
    unsigned firedBrownouts() const { return fired_brownouts_; }

    /** Aging steps applied so far. */
    unsigned appliedAgingSteps() const { return next_aging_; }

    /** Rewind all one-shot events and the noise stream for a replay. */
    void reset();

  private:
    void noteInjection(Seconds now, std::uint32_t label, double value);

    FaultPlan plan_;
    std::uint64_t noise_seed_;
    util::Rng noise_;
    std::size_t next_aging_ = 0;
    std::size_t next_brownout_ = 0;
    unsigned fired_brownouts_ = 0;
    /** Aging state from fired steps (continuous drift multiplies it). */
    double step_capacitance_fraction_ = 1.0;
    double step_esr_multiplier_ = 1.0;
    /** Last values pushed through applyAging (re-apply on real change). */
    double applied_capacitance_fraction_ = 1.0;
    double applied_esr_multiplier_ = 1.0;
    bool noted_degradation_ = false;

    telemetry::Telemetry *telemetry_ = nullptr;
    telemetry::Counter *injected_ = nullptr;
    std::uint32_t label_dropout_ = 0;
    std::uint32_t label_leakage_ = 0;
    std::uint32_t label_aging_ = 0;
    std::uint32_t label_brownout_ = 0;
    std::uint32_t label_degradation_ = 0;
    /** First-entry latches for windowed disturbances (reset() clears). */
    std::vector<bool> noted_dropouts_;
    std::vector<bool> noted_spikes_;
};

} // namespace culpeo::fault

#endif // CULPEO_FAULT_INJECTOR_HPP
