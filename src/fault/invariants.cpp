#include "invariants.hpp"

#include <memory>
#include <sstream>

#include "core/persistence.hpp"
#include "core/profiler.hpp"

namespace culpeo::fault {

namespace {

constexpr double kEps = 1e-9;

std::string
volts(Volts v)
{
    std::ostringstream os;
    os << v.value() << " V";
    return os.str();
}

} // namespace

InvariantMonitor::InvariantMonitor(Volts voff) : voff_(voff) {}

void
InvariantMonitor::onCommit(const std::string &name, Volts admitted_at,
                           Volts vsafe)
{
    in_commit_ = true;
    commit_name_ = name;
    commit_admitted_ = admitted_at;
    commit_vsafe_ = vsafe;
    ++commits_;
    // Theorem 1 is conditional on V >= Vsafe at dispatch. An admission
    // below the requirement can only come from injected ADC read error;
    // the window is tracked but makes no safety claim.
    premise_holds_ = admitted_at.value() + kEps >= vsafe.value();
    if (!premise_holds_)
        ++noise_admissions_;
}

void
InvariantMonitor::onCommitEnd(bool completed)
{
    (void)completed;
    in_commit_ = false;
}

void
InvariantMonitor::onStep(const sim::StepResult &step)
{
    if (!in_commit_)
        return;

    if (step.forced_brownout) {
        // Injected reboot: the admission premise (the profiled power
        // system keeps running) is void. End the window as exempt.
        ++exempted_reboots_;
        in_commit_ = false;
        return;
    }
    if (!premise_holds_)
        return;

    if (step.power_failed) {
        std::ostringstream os;
        os << "committed task '" << commit_name_ << "' admitted at "
           << volts(commit_admitted_) << " (Vsafe "
           << volts(commit_vsafe_) << ") browned out: Vterm "
           << volts(step.terminal) << " < Voff " << volts(voff_);
        violations_.push_back(
            {"vterm>=voff", os.str(), step.time});
        in_commit_ = false; // The device is off; the window is over.
    } else if (step.collapsed) {
        std::ostringstream os;
        os << "committed task '" << commit_name_ << "' admitted at "
           << volts(commit_admitted_) << " (Vsafe "
           << volts(commit_vsafe_)
           << ") collapsed the output booster at Vterm "
           << volts(step.terminal);
        violations_.push_back({"no-collapse", os.str(), step.time});
        in_commit_ = false;
    }
}

std::string
InvariantMonitor::report(std::uint64_t seed) const
{
    std::ostringstream os;
    os << violations_.size() << " invariant violation(s) across "
       << commits_ << " commitment(s), " << exempted_reboots_
       << " exempted injected reboot(s), " << noise_admissions_
       << " noise admission(s); replay with CULPEO_FUZZ_SEED=" << seed
       << '\n';
    for (const auto &violation : violations_) {
        os << "  [" << violation.invariant << "] t="
           << violation.time.value() << " s: " << violation.detail
           << '\n';
    }
    return os.str();
}

std::optional<Violation>
checkPersistenceIdempotence(const core::Culpeo &culpeo,
                            const std::vector<core::TaskId> &ids)
{
    const std::vector<std::uint8_t> image = culpeo.snapshot();
    if (!core::imageIsValid(image)) {
        return Violation{"persistence-idempotent",
                         "snapshot image fails its own validation",
                         Seconds(0.0)};
    }

    // Byte fixed point: load → save reproduces the image exactly.
    const core::ProfileTable table = core::loadTable(image);
    if (core::saveTable(table) != image) {
        return Violation{"persistence-idempotent",
                         "save(load(image)) differs from image",
                         Seconds(0.0)};
    }

    // Value fixed point: a rebooted device restoring the snapshot sees
    // the same Vsafe/Vdelta for every task.
    core::Culpeo restored(culpeo.model(),
                          std::make_unique<core::IsrProfiler>());
    restored.restore(image);
    restored.setBufferConfig(culpeo.bufferConfig());
    for (const core::TaskId id : ids) {
        if (restored.hasResult(id) != culpeo.hasResult(id) ||
            restored.getVsafe(id).value() !=
                culpeo.getVsafe(id).value() ||
            restored.getVdrop(id).value() !=
                culpeo.getVdrop(id).value()) {
            std::ostringstream os;
            os << "task " << id
               << " differs after snapshot/restore reboot";
            return Violation{"persistence-idempotent", os.str(),
                             Seconds(0.0)};
        }
    }
    if (restored.snapshot() != image) {
        return Violation{"persistence-idempotent",
                         "re-snapshot after restore differs",
                         Seconds(0.0)};
    }
    return std::nullopt;
}

std::optional<Violation>
checkCompositionDominance(const std::vector<core::TaskRequirement> &tasks,
                          Volts voff)
{
    const core::MultiResult additive = core::vsafeMulti(tasks, voff);
    const core::MultiResult exact = core::vsafeMultiExact(tasks, voff);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const std::vector<core::TaskRequirement> alone{tasks[i]};
        const double single_add =
            core::vsafeMulti(alone, voff).vsafe_multi.value();
        const double single_exact =
            core::vsafeMultiExact(alone, voff).vsafe_multi.value();
        if (additive.per_task_vsafe[i].value() + kEps < single_add ||
            exact.per_task_vsafe[i].value() + kEps < single_exact) {
            std::ostringstream os;
            os << "sequence requirement at position " << i << " ('"
               << tasks[i].name
               << "') is below the single-task requirement";
            return Violation{"composition-dominates", os.str(),
                             Seconds(0.0)};
        }
    }
    return std::nullopt;
}

} // namespace culpeo::fault
