/**
 * @file
 * Invariant monitoring for fault-injected runs: the machine-checkable
 * form of the paper's safety claims.
 *
 *  1. Theorem 1 (Section IV): a task admitted at or above its Vsafe
 *     never drives the terminal voltage below Voff mid-execution. The
 *     InvariantMonitor observes every simulation step inside a
 *     commitment window and records a violation on any electrical
 *     brown-out or booster collapse. Injected (forced) brown-outs power
 *     the device off for an external reason and are exempt — they void
 *     the theorem's premise, and the reboot path handles them.
 *     Commitments whose true dispatch voltage was below the requirement
 *     (possible only through injected ADC read error) are likewise
 *     tracked but exempt: the theorem is conditional on V >= Vsafe.
 *  2. Persistence is idempotent across injected reboots: a snapshot of
 *     Culpeo's tables restores to an identical table, byte-for-byte and
 *     value-for-value, no matter how often the save/load cycle repeats.
 *  3. Vsafe_multi composition (Section IV-A) never admits a sequence a
 *     single-task check would reject: every position's sequence
 *     requirement dominates that task's standalone requirement.
 */

#ifndef CULPEO_FAULT_INVARIANTS_HPP
#define CULPEO_FAULT_INVARIANTS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "sim/instrumentation.hpp"
#include "sim/power_system.hpp"
#include "util/units.hpp"

namespace culpeo::fault {

using units::Seconds;
using units::Volts;

/** One observed invariant violation. */
struct Violation
{
    std::string invariant; ///< Short identifier, e.g. "vterm>=voff".
    std::string detail;    ///< Human-readable specifics.
    Seconds time{0.0};     ///< Simulation time of the observation.
};

/**
 * Streaming checker for invariant 1, attached to a PowerSystem as its
 * StepObserver. The scheduler/runtime reports commitment windows via
 * notifyCommit()/notifyCommitEnd(); every step inside a window with the
 * admission premise intact must stay brown-out free.
 */
class InvariantMonitor : public sim::StepObserver
{
  public:
    explicit InvariantMonitor(Volts voff);

    void onStep(const sim::StepResult &step) override;
    void onCommit(const std::string &name, Volts admitted_at,
                  Volts vsafe) override;
    void onCommitEnd(bool completed) override;

    bool clean() const { return violations_.empty(); }
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    unsigned commits() const { return commits_; }
    /** Commitment windows ended by an injected (exempt) reboot. */
    unsigned exemptedReboots() const { return exempted_reboots_; }
    /** Commitments whose true dispatch voltage was below Vsafe. */
    unsigned noiseAdmissions() const { return noise_admissions_; }

    /** Multi-line failure report including the replay seed. */
    std::string report(std::uint64_t seed) const;

  private:
    Volts voff_;
    bool in_commit_ = false;
    bool premise_holds_ = false;
    std::string commit_name_;
    Volts commit_vsafe_{0.0};
    Volts commit_admitted_{0.0};
    unsigned commits_ = 0;
    unsigned exempted_reboots_ = 0;
    unsigned noise_admissions_ = 0;
    std::vector<Violation> violations_;
};

/**
 * Invariant 2: Culpeo's FRAM-style snapshot is a fixed point of the
 * save/load cycle, and restoring it into a fresh instance reproduces
 * every stored Vsafe/Vdelta for @p ids exactly.
 */
std::optional<Violation>
checkPersistenceIdempotence(const core::Culpeo &culpeo,
                            const std::vector<core::TaskId> &ids);

/**
 * Invariant 3: in both the additive and the exact composition, the
 * sequence requirement at every position dominates that task's
 * standalone (single-task) requirement, so composing can never admit a
 * task a single-task Theorem 1 check would reject.
 */
std::optional<Violation>
checkCompositionDominance(const std::vector<core::TaskRequirement> &tasks,
                          Volts voff);

} // namespace culpeo::fault

#endif // CULPEO_FAULT_INVARIANTS_HPP
