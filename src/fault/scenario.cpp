#include "scenario.hpp"

#include <string>
#include <vector>

namespace culpeo::fault {

namespace {

using load::CurrentProfile;
using load::Segment;
using units::Amps;
using units::Ohms;
using units::Seconds;
using units::Watts;

sim::PowerSystemConfig
randomConfig(util::Rng &rng)
{
    sim::PowerSystemConfig config = sim::capybaraConfig();
    config.capacitor.capacitance =
        units::Farads(rng.uniform(30e-3, 60e-3));
    config.capacitor.series_esr = Ohms(rng.uniform(1.0, 2.2));
    config.capacitor.bulk_resistance = Ohms(rng.uniform(6.0, 11.0));
    config.capacitor.surface_resistance = Ohms(rng.uniform(0.8, 1.6));
    config.capacitor.surface_fraction = rng.uniform(0.10, 0.25);
    config.capacitor.capacitance_fraction = rng.uniform(0.85, 1.0);
    config.capacitor.esr_multiplier = rng.uniform(1.0, 1.4);
    return config;
}

CurrentProfile
randomProfile(util::Rng &rng, const std::string &name)
{
    std::vector<Segment> segments;
    const unsigned count = 1 + unsigned(rng.uniformInt(3));
    for (unsigned i = 0; i < count; ++i) {
        segments.push_back({Seconds(rng.uniform(0.5e-3, 15e-3)),
                            Amps(rng.uniform(2e-3, 40e-3))});
    }
    // A third of the tasks get the paper's low-power compute tail.
    if (rng.uniform() < 1.0 / 3.0) {
        segments.push_back(
            {Seconds(rng.uniform(20e-3, 80e-3)), Amps(1.5e-3)});
    }
    return CurrentProfile(name, std::move(segments));
}

} // namespace

TaskScenario
randomTaskScenario(std::uint64_t seed)
{
    util::Rng rng(seed);
    TaskScenario scenario;
    scenario.seed = seed;
    scenario.config = randomConfig(rng);
    scenario.profile =
        randomProfile(rng, "fuzz_" + std::to_string(seed));
    return scenario;
}

AppScenario
randomAppScenario(std::uint64_t seed)
{
    util::Rng rng(seed);
    AppScenario scenario;
    scenario.seed = seed;
    scenario.duration = Seconds(rng.uniform(6.0, 10.0));

    sched::AppSpec &app = scenario.app;
    app.name = "fuzz_app_" + std::to_string(seed);
    app.power = randomConfig(rng);
    // Lean incoming power: comparable to the apps' average demand, so
    // the buffer actually hovers near the policies' thresholds and
    // dispatches exercise the admission rules. Generous harvest lets
    // every policy dispatch from a nearly full buffer, which would hide
    // exactly the threshold errors the differential harness exists to
    // expose.
    app.harvest = Watts(rng.uniform(0.6e-3, 6e-3));

    core::TaskId next_id = 1;
    const unsigned event_count = 1 + unsigned(rng.uniformInt(2));
    for (unsigned e = 0; e < event_count; ++e) {
        sched::EventSpec event;
        event.name = "event" + std::to_string(e);
        event.arrival = rng.uniform() < 0.5 ? sched::Arrival::Periodic
                                            : sched::Arrival::Poisson;
        event.interval = Seconds(rng.uniform(0.4, 1.5));
        event.deadline = Seconds(rng.uniform(0.2, 0.8));
        const unsigned chain_length = 1 + unsigned(rng.uniformInt(3));
        for (unsigned t = 0; t < chain_length; ++t) {
            sched::SchedTask task;
            task.id = next_id++;
            task.name = event.name + "_t" + std::to_string(t);
            task.profile = randomProfile(rng, task.name);
            event.chain.push_back(std::move(task));
        }
        app.events.push_back(std::move(event));
    }

    if (rng.uniform() < 0.5) {
        sched::SchedTask background;
        background.id = next_id++;
        background.name = "background";
        background.profile = randomProfile(rng, background.name);
        app.background = std::move(background);
        app.background_period = Seconds(rng.uniform(0.5, 2.0));
    }

    scenario.plan = randomPlan(rng, scenario.duration);
    return scenario;
}

} // namespace culpeo::fault
