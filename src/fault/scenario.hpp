/**
 * @file
 * Machine-generated adversarial scenarios for the differential test
 * harness: randomized task sets, capacitor/power-system variations,
 * application specs, and fault plans, all derived deterministically
 * from a single 64-bit seed so any failure replays exactly.
 *
 * Parameter ranges bracket the paper's evaluation space: load currents
 * of a few to tens of mA against ohm-class ESR (Table III), Capybara-
 * class buffers with aging within the Section IV-C limits, and weak
 * constant harvesting perturbed by randomized traces and dropouts.
 */

#ifndef CULPEO_FAULT_SCENARIO_HPP
#define CULPEO_FAULT_SCENARIO_HPP

#include <cstdint>

#include "fault/injector.hpp"
#include "load/profile.hpp"
#include "sched/app.hpp"
#include "sim/power_system.hpp"

namespace culpeo::fault {

/** One randomized single-task differential scenario. */
struct TaskScenario
{
    std::uint64_t seed = 0;
    sim::PowerSystemConfig config;
    load::CurrentProfile profile;
};

/**
 * Deterministic scenario from @p seed: a randomized piecewise-constant
 * task profile (possibly with a compute tail) on a randomized
 * Capybara-class power system.
 */
TaskScenario randomTaskScenario(std::uint64_t seed);

/** One randomized scheduler application plus its disturbance plan. */
struct AppScenario
{
    std::uint64_t seed = 0;
    sched::AppSpec app;
    FaultPlan plan;
    units::Seconds duration{8.0};
};

/**
 * Deterministic app scenario from @p seed: 1-2 event types with task
 * chains and deadlines, optional background work, a randomized power
 * system and harvest level, and a fault plan covering the trial.
 */
AppScenario randomAppScenario(std::uint64_t seed);

} // namespace culpeo::fault

#endif // CULPEO_FAULT_SCENARIO_HPP
