#include "fleet/fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <utility>

#include "batch/trial_driver.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace culpeo::fleet {

namespace {

/** splitmix64 finalizer: decorrelates (seed, index) sampling streams. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Shortest round-trippable decimal for deterministic report output. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
validate(const FleetSpec &spec, const FleetOptions &options)
{
    log::fatalIf(spec.field == nullptr, "FleetSpec::field is required");
    log::fatalIf(spec.devices == 0, "fleet needs at least one device");
    log::fatalIf(spec.cohorts.empty(), "fleet needs at least one cohort");
    double total_weight = 0.0;
    for (const Cohort &c : spec.cohorts) {
        log::fatalIf(c.app == nullptr, "every cohort needs an app");
        log::fatalIf(c.policy == nullptr && c.policy_name.empty(),
                     "every cohort needs a policy instance or a "
                     "registered policy_name");
        log::fatalIf(c.policy != nullptr && !c.policy_name.empty(),
                     "cohort '", c.name,
                     "' sets both policy and policy_name; pick one");
        log::fatalIf(c.weight <= 0.0, "cohort weights must be positive");
        total_weight += c.weight;
    }
    log::fatalIf(total_weight <= 0.0, "cohort weights must sum > 0");
    const auto badRange = [](const ParamRange &r) {
        return r.lo <= 0.0 || r.hi < r.lo;
    };
    log::fatalIf(badRange(spec.capacitance_scale) ||
                     badRange(spec.esr_scale),
                 "scale ranges need 0 < lo <= hi");
    log::fatalIf(spec.extent <= 0.0, "fleet extent must be positive");
    log::fatalIf(spec.duration.value() <= 0.0,
                 "fleet duration must be positive");
    log::fatalIf(options.shard_devices == 0,
                 "fleet shard_devices must be >= 1");
}

} // namespace

DeviceRecord
sampleDevice(const FleetSpec &spec, std::size_t index)
{
    log::fatalIf(spec.cohorts.empty(), "fleet needs at least one cohort");
    // Keyed on (seed, index) only — never the shard layout — so the
    // same device is sampled identically under any sharding.
    std::uint64_t s = mix64(spec.seed ^ 0x0f1ee7d071ce5ULL);
    s = mix64(s ^ static_cast<std::uint64_t>(index));
    util::Rng rng(s);

    DeviceRecord rec;
    rec.index = index;

    double total_weight = 0.0;
    for (const Cohort &c : spec.cohorts)
        total_weight += c.weight;
    const double pick = rng.uniform() * total_weight;
    double cumulative = 0.0;
    rec.cohort = spec.cohorts.size() - 1;
    for (std::size_t i = 0; i < spec.cohorts.size(); ++i) {
        cumulative += spec.cohorts[i].weight;
        if (pick < cumulative) {
            rec.cohort = i;
            break;
        }
    }

    rec.pos.x = rng.uniform(0.0, spec.extent);
    rec.pos.y = rng.uniform(0.0, spec.extent);
    rec.cap_scale =
        rng.uniform(spec.capacitance_scale.lo, spec.capacitance_scale.hi);
    rec.esr_scale = rng.uniform(spec.esr_scale.lo, spec.esr_scale.hi);
    rec.trial_seed = spec.seed + index * spec.seed_stride;
    return rec;
}

Histo::Histo(double lo_, double hi_, std::size_t nbins)
    : lo(lo_), hi(hi_), bins(nbins, 0)
{
    log::fatalIf(nbins == 0 || hi_ <= lo_,
                 "Histo needs bins >= 1 and hi > lo");
}

void
Histo::add(double v)
{
    if (count == 0) {
        min = max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    ++count;
    sum += v;
    // Out-of-range samples clamp into the edge bins so population
    // totals always equal the device count.
    double f = (v - lo) / (hi - lo);
    f = std::min(std::max(f, 0.0), 1.0);
    std::size_t b = static_cast<std::size_t>(f * double(bins.size()));
    if (b >= bins.size())
        b = bins.size() - 1;
    ++bins[b];
}

double
SummaryReport::overallCaptureRate() const
{
    std::uint64_t arrived = 0;
    std::uint64_t captured = 0;
    for (const DeviceResult &d : devices) {
        arrived += d.arrived;
        captured += d.captured;
    }
    return arrived == 0 ? 0.0 : double(captured) / double(arrived);
}

unsigned
SummaryReport::totalPowerFailures() const
{
    unsigned total = 0;
    for (const DeviceResult &d : devices)
        total += d.power_failures;
    return total;
}

void
SummaryReport::writeCsv(std::ostream &out) const
{
    out << "index,cohort,x,y,cap_scale,esr_scale,arrived,captured,"
           "capture_rate,power_failures,background_runs,sheds\n";
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const DeviceResult &d = devices[i];
        out << i << ',' << cohorts[d.cohort].name << ',' << num(d.pos.x)
            << ',' << num(d.pos.y) << ',' << num(d.cap_scale) << ','
            << num(d.esr_scale) << ',' << d.arrived << ',' << d.captured
            << ',' << num(d.captureRate()) << ',' << d.power_failures
            << ',' << d.background_runs << ',' << d.sheds << '\n';
    }
}

void
SummaryReport::writeJsonl(std::ostream &out) const
{
    out << "{\"type\":\"fleet_summary\",\"devices\":" << devices.size()
        << ",\"capture_rate\":" << num(overallCaptureRate())
        << ",\"power_failures\":" << totalPowerFailures() << "}\n";
    for (const CohortSummary &c : cohorts) {
        out << "{\"type\":\"cohort\",\"name\":\"" << c.name
            << "\",\"devices\":" << c.devices
            << ",\"arrived\":" << c.arrived
            << ",\"captured\":" << c.captured
            << ",\"capture_rate\":" << num(c.captureRate())
            << ",\"power_failures\":" << c.power_failures
            << ",\"background_runs\":" << c.background_runs
            << ",\"sheds\":" << c.sheds << "}\n";
    }
    const auto histogram = [&](const char *name, const Histo &h) {
        out << "{\"type\":\"histogram\",\"name\":\"" << name
            << "\",\"lo\":" << num(h.lo) << ",\"hi\":" << num(h.hi)
            << ",\"count\":" << h.count << ",\"min\":" << num(h.min)
            << ",\"max\":" << num(h.max) << ",\"mean\":" << num(h.mean())
            << ",\"bins\":[";
        for (std::size_t i = 0; i < h.bins.size(); ++i)
            out << (i == 0 ? "" : ",") << h.bins[i];
        out << "]}\n";
    };
    histogram("capture_rate", capture_rate);
    histogram("power_failures", power_failures);
    histogram("sheds", sheds);
}

void
SummaryReport::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    log::fatalIf(!out, "cannot open fleet CSV output file: ", path);
    writeCsv(out);
    log::fatalIf(!out.good(), "failed while writing fleet CSV: ", path);
}

void
SummaryReport::writeJsonlFile(const std::string &path) const
{
    std::ofstream out(path);
    log::fatalIf(!out, "cannot open fleet JSONL output file: ", path);
    writeJsonl(out);
    log::fatalIf(!out.good(),
                 "failed while writing fleet JSONL: ", path);
}

SummaryReport
runFleet(const FleetSpec &spec, const FleetOptions &options)
{
    validate(spec, options);

    // Registry-named cohorts get an owned instance, initialized here
    // against the cohort's app; instance cohorts are borrowed as-is.
    std::vector<std::unique_ptr<sched::Policy>> owned_policies;
    std::vector<const sched::Policy *> policies(spec.cohorts.size());
    for (std::size_t i = 0; i < spec.cohorts.size(); ++i) {
        const Cohort &c = spec.cohorts[i];
        if (c.policy != nullptr) {
            policies[i] = c.policy;
            continue;
        }
        owned_policies.push_back(sched::makePolicy(c.policy_name));
        owned_policies.back()->initialize(*c.app);
        policies[i] = owned_policies.back().get();
    }

    // Policy thresholds are design-time artifacts: resolved once per
    // cohort at nominal parameters, shared by every sampled device.
    // (PolicyTables rejects non-stationary policies.)
    sched::TrialConfig config;
    config.duration = spec.duration;
    std::vector<batch::PolicyTables> tables;
    tables.reserve(spec.cohorts.size());
    for (std::size_t i = 0; i < spec.cohorts.size(); ++i)
        tables.emplace_back(*spec.cohorts[i].app, *policies[i]);

    telemetry::Telemetry *sink =
        telemetry::kEnabled ? options.telemetry : nullptr;

    struct DeviceRun
    {
        DeviceResult result;
        std::shared_ptr<telemetry::Telemetry> scratch;
    };

    const std::size_t shard_devices = options.shard_devices;
    const std::size_t shards =
        (spec.devices + shard_devices - 1) / shard_devices;

    // One pool item per shard; each shard steps its lanes in lockstep
    // through one BatchEngine. Lanes are mutually independent (they
    // share only the immutable field), so results depend only on the
    // device index, never on the shard layout.
    const auto runShard = [&](std::size_t s) {
        const std::size_t d0 = s * shard_devices;
        const std::size_t d1 = std::min(spec.devices, d0 + shard_devices);
        std::vector<DeviceRun> runs(d1 - d0);
        // Reserved up front: lane specs borrow these harvester views by
        // address, so the vector must never reallocate.
        std::vector<env::FieldHarvester> views;
        views.reserve(d1 - d0);
        std::vector<std::unique_ptr<batch::TrialDriver>> drivers;
        drivers.reserve(d1 - d0);
        batch::BatchEngine engine(options.batch);
        for (std::size_t d = d0; d < d1; ++d) {
            const DeviceRecord rec = sampleDevice(spec, d);
            const Cohort &cohort = spec.cohorts[rec.cohort];
            DeviceRun &run = runs[d - d0];
            run.result.cohort = rec.cohort;
            run.result.pos = rec.pos;
            run.result.cap_scale = rec.cap_scale;
            run.result.esr_scale = rec.esr_scale;
            if (sink != nullptr) {
                run.scratch = std::make_shared<telemetry::Telemetry>(
                    sink->config());
                run.scratch->setTrial(std::uint32_t(d));
            }
            drivers.push_back(std::make_unique<batch::TrialDriver>(
                *cohort.app, config, tables[rec.cohort], rec.trial_seed,
                run.scratch.get()));
            views.emplace_back(*spec.field, rec.pos);

            batch::LaneSpec lane;
            lane.config = cohort.app->power;
            // Heterogeneity scales the nominal part values directly
            // (the aging knobs capacitance_fraction/esr_multiplier have
            // their own restricted validity semantics).
            sim::CapacitorConfig &cap = lane.config.capacitor;
            cap.capacitance =
                units::Farads(cap.capacitance.value() * rec.cap_scale);
            cap.series_esr =
                units::Ohms(cap.series_esr.value() * rec.esr_scale);
            cap.bulk_resistance =
                units::Ohms(cap.bulk_resistance.value() * rec.esr_scale);
            cap.surface_resistance = units::Ohms(
                cap.surface_resistance.value() * rec.esr_scale);
            lane.vstart = lane.config.monitor.vhigh;
            lane.start_enabled = true;
            lane.harvester = &views.back();
            lane.source = drivers.back().get();
            engine.addLane(lane);
        }
        engine.run();
        for (std::size_t d = d0; d < d1; ++d) {
            DeviceRun &run = runs[d - d0];
            const sched::TrialResult &trial = drivers[d - d0]->result();
            for (const sched::EventTypeStats &e : trial.per_event) {
                run.result.arrived += e.arrived;
                run.result.captured += e.captured;
            }
            run.result.background_runs = trial.background_runs;
            run.result.power_failures =
                engine.result(d - d0).power_failures;
            if (run.scratch != nullptr)
                run.result.sheds =
                    unsigned(run.scratch->summary().sheds);
        }
        return runs;
    };

    std::vector<std::size_t> shard_index(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shard_index[s] = s;
    util::ThreadPool &pool = options.pool != nullptr
                                 ? *options.pool
                                 : util::ThreadPool::shared();
    std::vector<std::vector<DeviceRun>> shard_runs =
        pool.parallelMap(shard_index, runShard);

    SummaryReport report;
    report.devices.reserve(spec.devices);
    report.cohorts.resize(spec.cohorts.size());
    for (std::size_t i = 0; i < spec.cohorts.size(); ++i)
        report.cohorts[i].name = spec.cohorts[i].name;
    report.capture_rate = Histo(0.0, 1.0, 20);
    report.power_failures = Histo(0.0, 16.0, 16);
    report.sheds = Histo(0.0, 16.0, 16);

    // Device-order merge: shard layout cannot reorder anything.
    for (std::vector<DeviceRun> &runs : shard_runs) {
        for (DeviceRun &run : runs) {
            const DeviceResult &d = run.result;
            CohortSummary &c = report.cohorts[d.cohort];
            ++c.devices;
            c.arrived += d.arrived;
            c.captured += d.captured;
            c.power_failures += d.power_failures;
            c.background_runs += d.background_runs;
            c.sheds += d.sheds;
            report.capture_rate.add(d.captureRate());
            report.power_failures.add(double(d.power_failures));
            report.sheds.add(double(d.sheds));
            if (run.scratch != nullptr)
                sink->merge(*run.scratch);
            report.devices.push_back(std::move(run.result));
        }
    }
    return report;
}

} // namespace culpeo::fleet
