/**
 * @file
 * Fleet-scale population simulator (DESIGN.md §16): N heterogeneous
 * devices deployed across a shared env::HarvestField, each running a
 * full scheduler trial on its own batch::BatchEngine lane via the
 * batch::TrialDriver replica, sharded over the thread pool.
 *
 * Determinism contract: every per-device draw (cohort, position,
 * parameter scales, trial seed) is a pure function of (FleetSpec::seed,
 * device index) — never of the shard layout — and shard merge happens
 * in device order, so a run with shard_devices = 1 and shard_devices =
 * 10 000 produce byte-identical SummaryReports.
 */

#ifndef CULPEO_FLEET_FLEET_HPP
#define CULPEO_FLEET_FLEET_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "batch/engine.hpp"
#include "env/field.hpp"
#include "sched/app.hpp"
#include "sched/policy.hpp"

namespace culpeo::telemetry {
class Telemetry;
}
namespace culpeo::util {
class ThreadPool;
}

namespace culpeo::fleet {

using units::Seconds;

/**
 * One device archetype: an application paired with a charge policy.
 * Devices are assigned to cohorts by weighted draw at sampling time.
 *
 * The policy is selected exactly one of two ways: `policy` borrows an
 * instance the caller already initialized against *app, while
 * `policy_name` names a registry entry (sched::makePolicy) that
 * runFleet instantiates, owns, and initializes against *app — so a
 * heterogeneous population mixes policies without the caller managing
 * instances. Fleet lanes share per-cohort threshold tables, so either
 * way the policy must be stationary.
 */
struct Cohort
{
    std::string name;
    const sched::AppSpec *app = nullptr;
    const sched::Policy *policy = nullptr; ///< Initialized for *app.
    std::string policy_name; ///< Registry name (alternative to policy).
    double weight = 1.0;                   ///< Relative population share.
};

/** Closed range a per-device scale factor is drawn uniformly from. */
struct ParamRange
{
    double lo = 1.0;
    double hi = 1.0;
};

/** The population to simulate: who, where, under what sky. */
struct FleetSpec
{
    std::vector<Cohort> cohorts;
    std::size_t devices = 1000;
    /**
     * Per-device capacitance spread: the nominal bank capacitance is
     * multiplied by a uniform draw from this range (manufacturing
     * tolerance / deployment-age spread).
     */
    ParamRange capacitance_scale{1.0, 1.0};
    /** Same, applied to series/bulk/surface resistances. */
    ParamRange esr_scale{1.0, 1.0};
    /** Deployment extent: positions are uniform in [0, extent)². */
    double extent = 100.0;
    /** The shared environment; required. Borrowed, caller keeps alive. */
    const env::HarvestField *field = nullptr;
    /** Simulated time each device runs for. */
    Seconds duration{300.0};
    /** Root seed: drives sampling and every per-device trial stream. */
    std::uint64_t seed = 7;
    /** Trial seed of device i is seed + i * seed_stride. */
    std::uint64_t seed_stride = 1000003ULL;
};

/** Execution knobs; the defaults shard 64 lanes per pool item. */
struct FleetOptions
{
    batch::BatchOptions batch;
    /** Devices per shard (one BatchEngine per shard). */
    std::size_t shard_devices = 64;
    /**
     * Telemetry sink; may be null. Each device records into a private
     * scratch merged into this sink in device order (trial index =
     * device index), so sink contents are shard-count invariant.
     */
    telemetry::Telemetry *telemetry = nullptr;
    /** Pool to shard on; null uses util::ThreadPool::shared(). */
    util::ThreadPool *pool = nullptr;
};

/** Everything sampled for one device; pure function of (seed, index). */
struct DeviceRecord
{
    std::size_t index = 0;
    std::size_t cohort = 0;
    env::Position pos;
    double cap_scale = 1.0;
    double esr_scale = 1.0;
    std::uint64_t trial_seed = 0;
};

/**
 * Sample device @p index of @p spec. Exposed so tests can assert the
 * draw is shard-independent and seeded-reproducible.
 */
DeviceRecord sampleDevice(const FleetSpec &spec, std::size_t index);

/** One device's trial outcome, joined with its sampled identity. */
struct DeviceResult
{
    std::size_t cohort = 0;
    env::Position pos;
    double cap_scale = 1.0;
    double esr_scale = 1.0;
    unsigned arrived = 0;
    unsigned captured = 0;
    unsigned power_failures = 0;
    unsigned background_runs = 0;
    /** Supervisor load-sheds (0 unless telemetry captured them). */
    unsigned sheds = 0;

    double captureRate() const
    {
        return arrived == 0 ? 0.0 : double(captured) / double(arrived);
    }
};

/**
 * Plain fixed-bin histogram for population summaries. (Deliberately
 * not telemetry::Histogram: that type is atomic for concurrent
 * emission and therefore unmovable; report aggregation is
 * single-threaded and wants value semantics.)
 */
struct Histo
{
    Histo() = default;
    Histo(double lo, double hi, std::size_t bins);

    void add(double v);

    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> bins;
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;

    double mean() const { return count == 0 ? 0.0 : sum / double(count); }
};

/** Per-cohort (per app × policy) population breakdown. */
struct CohortSummary
{
    std::string name;
    std::size_t devices = 0;
    unsigned arrived = 0;
    unsigned captured = 0;
    unsigned power_failures = 0;
    unsigned background_runs = 0;
    unsigned sheds = 0;

    double captureRate() const
    {
        return arrived == 0 ? 0.0 : double(captured) / double(arrived);
    }
};

/** Population-level aggregate of a fleet run. */
struct SummaryReport
{
    std::vector<DeviceResult> devices; ///< Indexed by device.
    std::vector<CohortSummary> cohorts;
    Histo capture_rate;   ///< Per-device capture rate, 20 bins on [0, 1].
    Histo power_failures; ///< Per-device brown-out count.
    Histo sheds;          ///< Per-device supervisor shed count.

    double overallCaptureRate() const;
    unsigned totalPowerFailures() const;

    /** Per-device rows (index, cohort, position, scales, outcomes). */
    void writeCsv(std::ostream &out) const;
    void writeCsvFile(const std::string &path) const;
    /** Summary, cohort, and histogram records, one JSON object per line. */
    void writeJsonl(std::ostream &out) const;
    void writeJsonlFile(const std::string &path) const;
};

/**
 * Run the whole population: sample spec.devices devices, shard them
 * options.shard_devices per BatchEngine across the pool, drive each
 * lane with a TrialDriver under its own env::FieldHarvester view of
 * spec.field, and aggregate in device order.
 */
SummaryReport runFleet(const FleetSpec &spec,
                       const FleetOptions &options = {});

} // namespace culpeo::fleet

#endif // CULPEO_FLEET_FLEET_HPP
