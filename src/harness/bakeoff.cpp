#include "harness/bakeoff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <tuple>

#include "batch/trial_runner.hpp"
#include "sched/engine.hpp"
#include "sched/policy.hpp"
#include "util/logging.hpp"

namespace culpeo::harness {

namespace {

using units::Watts;

/** Shortest round-trippable decimal for deterministic report output. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
validate(const BakeoffMatrix &matrix)
{
    log::fatalIf(matrix.policies.empty(),
                 "bake-off matrix needs at least one policy");
    log::fatalIf(matrix.buffers.empty(),
                 "bake-off matrix needs at least one buffer variant");
    log::fatalIf(matrix.loads.empty(),
                 "bake-off matrix needs at least one load mix");
    log::fatalIf(matrix.environments.empty(),
                 "bake-off matrix needs at least one harvest scenario");
    log::fatalIf(matrix.duration.value() <= 0.0,
                 "bake-off trial duration must be positive");
    log::fatalIf(matrix.trials == 0,
                 "bake-off needs at least one trial per cell");
    for (const std::string &name : matrix.policies)
        log::fatalIf(!sched::policyRegistered(name), "bake-off policy '",
                     name, "' is not registered");
    for (const LoadMix &load : matrix.loads)
        log::fatalIf(load.app == nullptr, "bake-off load mix '",
                     load.name, "' has no app");
    for (const BufferVariant &buffer : matrix.buffers) {
        log::fatalIf(buffer.capacitance_scale <= 0.0, "buffer variant '",
                     buffer.name,
                     "': capacitance_scale must be positive");
        log::fatalIf(buffer.esr_scale <= 0.0, "buffer variant '",
                     buffer.name, "': esr_scale must be positive");
    }
    for (const HarvestScenario &env : matrix.environments)
        log::fatalIf(env.field == nullptr && env.harvest_scale <= 0.0,
                     "harvest scenario '", env.name,
                     "': harvest_scale must be positive");
}

/** The app with one cell's buffer variant and harvest scale applied. */
sched::AppSpec
cellApp(const LoadMix &load, const BufferVariant &buffer,
        const HarvestScenario &env)
{
    sched::AppSpec app = *load.app;
    sim::CapacitorConfig &cap = app.power.capacitor;
    cap.capacitance = cap.capacitance * buffer.capacitance_scale;
    cap.series_esr = cap.series_esr * buffer.esr_scale;
    cap.bulk_resistance = cap.bulk_resistance * buffer.esr_scale;
    cap.surface_resistance = cap.surface_resistance * buffer.esr_scale;
    if (env.field == nullptr)
        app.harvest = app.harvest * env.harvest_scale;
    return app;
}

/**
 * Mean harvest power over the trial window: the constant source
 * directly, or the field view averaged over 64 midpoint samples
 * (exact for the piecewise-constant fields when segments align;
 * a close deterministic estimate otherwise).
 */
double
meanHarvestWatts(const sched::AppSpec &app, const sim::Harvester *view,
                 Seconds duration)
{
    if (view == nullptr)
        return app.harvest.value();
    constexpr int kSamples = 64;
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double t =
            duration.value() * (double(i) + 0.5) / double(kSamples);
        sum += view->powerAt(Seconds(t)).value();
    }
    return sum / double(kSamples);
}

BakeoffCell
runCell(const BakeoffMatrix &matrix, const std::string &policy_name,
        const BufferVariant &buffer, const LoadMix &load,
        const HarvestScenario &env)
{
    const sched::AppSpec app = cellApp(load, buffer, env);

    // A fresh policy instance per cell: online policies must not leak
    // learned state between cells of the matrix.
    std::unique_ptr<sched::Policy> policy =
        sched::makePolicy(policy_name);
    policy->initialize(app);

    std::optional<env::FieldHarvester> view;
    sched::TrialConfig config;
    config.duration = matrix.duration;
    config.trials = matrix.trials;
    config.seed = matrix.seed;
    if (env.field != nullptr) {
        view.emplace(*env.field, env.position);
        config.harvester = &*view;
    }

    // Stationary policies take the batch sweep executor in exact-replay
    // mode; adaptive ones take the scalar path (serial, carrying state).
    sched::AggregateResult agg;
    if (batch::batchTrialsEligible(config, *policy)) {
        batch::TrialRunnerOptions options;
        options.batch.exact_replay = true;
        agg = batch::runTrialsBatch(app, *policy, config, options);
    } else {
        agg = sched::runTrialsWith(app, *policy, config);
    }

    BakeoffCell cell;
    cell.policy = policy_name;
    cell.buffer = buffer.name;
    cell.load = load.name;
    cell.environment = env.name;
    for (std::size_t i = 0; i < agg.arrivals.size(); ++i) {
        cell.arrived += agg.arrivals[i];
        cell.captured += std::uint64_t(std::llround(
            agg.capture_rates[i] * double(agg.arrivals[i])));
    }
    cell.tasks_started = agg.tasks_started;
    cell.tasks_completed = agg.tasks_completed;
    cell.capture_rate = agg.overallCaptureRate();
    cell.power_failures_per_trial = agg.power_failures_per_trial;
    cell.mean_latency_s = agg.meanCaptureLatency();
    cell.completion_rate = agg.taskCompletionRate();

    const double joules =
        meanHarvestWatts(app, config.harvester, matrix.duration) *
        matrix.duration.value() * double(matrix.trials);
    cell.captures_per_joule =
        joules <= 0.0 ? 0.0 : double(cell.captured) / joules;
    return cell;
}

} // namespace

double
BakeoffResult::meanCaptureRate(const std::string &policy) const
{
    std::uint64_t arrived = 0;
    std::uint64_t captured = 0;
    for (const BakeoffCell &cell : cells) {
        if (cell.policy != policy)
            continue;
        arrived += cell.arrived;
        captured += cell.captured;
    }
    return arrived == 0 ? 0.0 : double(captured) / double(arrived);
}

void
BakeoffResult::writeCsv(std::ostream &out) const
{
    out << "rank,policy,buffer,load,environment,arrived,captured,"
           "capture_rate,power_failures_per_trial,mean_latency_s,"
           "completion_rate,captures_per_joule\n";
    for (const BakeoffCell &c : cells) {
        out << c.rank << ',' << c.policy << ',' << c.buffer << ','
            << c.load << ',' << c.environment << ',' << c.arrived << ','
            << c.captured << ',' << num(c.capture_rate) << ','
            << num(c.power_failures_per_trial) << ','
            << num(c.mean_latency_s) << ',' << num(c.completion_rate)
            << ',' << num(c.captures_per_joule) << '\n';
    }
}

void
BakeoffResult::writeJsonl(std::ostream &out) const
{
    out << "{\"type\":\"bakeoff\",\"cells\":" << cells.size() << "}\n";
    for (const BakeoffCell &c : cells) {
        out << "{\"type\":\"cell\",\"rank\":" << c.rank
            << ",\"policy\":\"" << c.policy << "\",\"buffer\":\""
            << c.buffer << "\",\"load\":\"" << c.load
            << "\",\"environment\":\"" << c.environment
            << "\",\"arrived\":" << c.arrived
            << ",\"captured\":" << c.captured
            << ",\"capture_rate\":" << num(c.capture_rate)
            << ",\"power_failures_per_trial\":"
            << num(c.power_failures_per_trial)
            << ",\"mean_latency_s\":" << num(c.mean_latency_s)
            << ",\"completion_rate\":" << num(c.completion_rate)
            << ",\"captures_per_joule\":" << num(c.captures_per_joule)
            << "}\n";
    }
}

void
BakeoffResult::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    log::fatalIf(!out, "cannot open bake-off CSV output file: ", path);
    writeCsv(out);
    log::fatalIf(!out.good(),
                 "failed while writing bake-off CSV: ", path);
}

void
BakeoffResult::writeJsonlFile(const std::string &path) const
{
    std::ofstream out(path);
    log::fatalIf(!out, "cannot open bake-off JSONL output file: ", path);
    writeJsonl(out);
    log::fatalIf(!out.good(),
                 "failed while writing bake-off JSONL: ", path);
}

BakeoffResult
runBakeoff(const BakeoffMatrix &matrix)
{
    validate(matrix);

    BakeoffResult result;
    result.cells.reserve(matrix.policies.size() *
                         matrix.buffers.size() * matrix.loads.size() *
                         matrix.environments.size());
    // Cells run serially — each is internally parallel across its
    // trials — in a fixed nesting order; the sort below is stable with
    // a total tie-break key, so the scorecard is byte-deterministic.
    for (const std::string &policy : matrix.policies)
        for (const BufferVariant &buffer : matrix.buffers)
            for (const LoadMix &load : matrix.loads)
                for (const HarvestScenario &env : matrix.environments)
                    result.cells.push_back(
                        runCell(matrix, policy, buffer, load, env));

    std::stable_sort(
        result.cells.begin(), result.cells.end(),
        [](const BakeoffCell &a, const BakeoffCell &b) {
            return std::make_tuple(-a.capture_rate,
                                   a.power_failures_per_trial,
                                   a.mean_latency_s, a.policy, a.buffer,
                                   a.load, a.environment) <
                   std::make_tuple(-b.capture_rate,
                                   b.power_failures_per_trial,
                                   b.mean_latency_s, b.policy, b.buffer,
                                   b.load, b.environment);
        });
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        result.cells[i].rank = unsigned(i + 1);
    return result;
}

} // namespace culpeo::harness
