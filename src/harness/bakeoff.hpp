/**
 * @file
 * Hardware-agnostic policy bake-off (the matrix evaluation of Nasser
 * et al., "Managing Task Execution for Unknown Workloads in Batteryless
 * IoT: A Hardware-Agnostic Evaluation"): sweep every registered charge
 * policy across capacitor configurations × load mixes × harvest
 * scenarios, score each cell (capture rate, brown-outs, latency,
 * energy efficiency), and emit a ranked CSV/JSONL scorecard.
 *
 * Policies are selected by registry name (sched::makePolicy), so any
 * user-registered policy joins the matrix without code changes here.
 * Stationary policies run each cell through the batch sweep executor
 * in exact-replay mode (bit-identical, reproducible scorecards);
 * online-adapting policies run the scalar serial path, carrying their
 * learned state across a cell's trials. Cells execute serially — each
 * is internally parallel — so nested pool fan-out never oversubscribes.
 *
 * Like the batch trial sources, bakeoff.cpp compiles into culpeo_sched
 * (it drives sched:: entry points) while the interface lives here.
 */

#ifndef CULPEO_HARNESS_BAKEOFF_HPP
#define CULPEO_HARNESS_BAKEOFF_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "env/field.hpp"
#include "sched/app.hpp"

namespace culpeo::harness {

using units::Seconds;

/** One capacitor configuration: scale factors on the app's buffer. */
struct BufferVariant
{
    std::string name;
    double capacitance_scale = 1.0;
    /** Applied to series ESR and both branch resistances. */
    double esr_scale = 1.0;
};

/** One application workload (borrowed; must outlive runBakeoff). */
struct LoadMix
{
    std::string name;
    const sched::AppSpec *app = nullptr;
};

/** One harvest scenario: a field view, or scaled constant harvest. */
struct HarvestScenario
{
    std::string name;
    /**
     * Spatio-temporal field sampled at `position`; null runs the
     * app's constant harvest scaled by `harvest_scale`. Borrowed.
     */
    const env::HarvestField *field = nullptr;
    env::Position position{};
    double harvest_scale = 1.0;
};

/** The full matrix: policies × buffers × loads × environments. */
struct BakeoffMatrix
{
    std::vector<std::string> policies; ///< Registry names.
    std::vector<BufferVariant> buffers;
    std::vector<LoadMix> loads;
    std::vector<HarvestScenario> environments;
    Seconds duration{120.0};
    unsigned trials = 4; ///< Independently seeded trials per cell.
    std::uint64_t seed = 7;
};

/** One scored cell of the matrix. */
struct BakeoffCell
{
    std::string policy;
    std::string buffer;
    std::string load;
    std::string environment;

    std::uint64_t arrived = 0;
    std::uint64_t captured = 0;
    std::uint64_t tasks_started = 0;
    std::uint64_t tasks_completed = 0;

    double capture_rate = 0.0;
    double power_failures_per_trial = 0.0;
    /** Mean arrival-to-completion latency of captured events. */
    double mean_latency_s = 0.0;
    /** Completed/started committed dispatches. */
    double completion_rate = 0.0;
    /** Events captured per joule of harvested energy (efficiency). */
    double captures_per_joule = 0.0;

    /** 1-based position after ranking (1 = best). */
    unsigned rank = 0;
};

/** The ranked scorecard. */
struct BakeoffResult
{
    /**
     * All cells, best first: capture rate descending, then fewer
     * brown-outs, then lower latency, then stable lexicographic order
     * — byte-deterministic for a given matrix.
     */
    std::vector<BakeoffCell> cells;

    /** Arrival-weighted capture rate of @p policy over all its cells. */
    double meanCaptureRate(const std::string &policy) const;

    /** Ranked rows; columns match the JSONL cell fields. */
    void writeCsv(std::ostream &out) const;
    void writeCsvFile(const std::string &path) const;
    /** A matrix header record, then one JSON object per ranked cell. */
    void writeJsonl(std::ostream &out) const;
    void writeJsonlFile(const std::string &path) const;
};

/** Run every cell of @p matrix and rank. Fatal on an empty dimension. */
BakeoffResult runBakeoff(const BakeoffMatrix &matrix);

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_BAKEOFF_HPP
