#include "baselines.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::harness {

BaselineEstimates
estimateBaselines(const sim::PowerSystemConfig &config,
                  const load::CurrentProfile &profile,
                  units::Seconds slow_delay)
{
    BaselineEstimates estimates;

    sim::Device device(config);
    device.setBufferVoltage(config.monitor.vhigh);
    device.forceOutputEnabled(true);
    device.captureTrace(true); // Forces the Euler path: per-step samples.

    const units::Joules energy_before =
        device.system().capacitor().storedEnergy();

    RunOptions options;
    options.dt = chooseDt(profile);
    options.stop_on_failure = false; // Profiling rig is continuously fed.
    const RunResult run = runTask(device, profile, options);
    estimates.run = run;

    const double voff = config.monitor.voff.value();
    const double vstart = run.vstart.value();

    // Energy-Direct: oracle task energy drawn from the buffer, converted
    // to a voltage increment above Voff in the V^2 domain.
    const units::Joules energy_after =
        device.system().capacitor().storedEnergy();
    const double energy = std::max(
        0.0, (energy_before - energy_after).value());
    const double c = config.capacitor.capacitance.value();
    estimates.energy_direct =
        Volts(std::sqrt(voff * voff + 2.0 * energy / c));

    // Energy-V: end-to-end voltage-as-energy with settled endpoints.
    const double vfinal = run.vfinal.value();
    estimates.energy_v = Volts(
        std::sqrt(std::max(voff * voff,
                           voff * voff + vstart * vstart - vfinal * vfinal)));

    // CatNap-Measured: additive voltage budget, endpoint sampled at the
    // final loaded instant (no rebound has occurred yet).
    estimates.catnap_measured =
        Volts(voff + std::max(0.0, vstart - run.vend_loaded.value()));

    // CatNap-Slow: endpoint sampled slow_delay after completion; the
    // instantaneous series-ESR rebound has already happened and part of
    // the redistribution recovery too, so the drop is under-counted.
    const Volts v_slow =
        device.system().trace().terminalAt(run.task_end + slow_delay);
    estimates.catnap_slow =
        Volts(voff + std::max(0.0, vstart - v_slow.value()));

    return estimates;
}

} // namespace culpeo::harness
