/**
 * @file
 * The energy-only Vsafe estimators Culpeo is compared against
 * (Sections II-D and VII):
 *
 *  - Energy-Direct: oracle knowledge of the task's energy draw, mapped
 *    to a voltage via E = 1/2 C V^2.
 *  - Energy-V: end-to-end voltage-as-energy approximation using the
 *    fully rebounded start/final voltages.
 *  - CatNap-Measured: the published CatNap approach — capacitor voltage
 *    sampled immediately at task completion, before the ESR drop
 *    rebounds.
 *  - CatNap-Slow: the same measurement taken 2 ms after completion.
 *
 * All of these ignore the transient ESR drop (or capture it only by
 * accident of measurement timing), which is precisely the failure the
 * paper demonstrates.
 */

#ifndef CULPEO_HARNESS_BASELINES_HPP
#define CULPEO_HARNESS_BASELINES_HPP

#include "harness/task_runner.hpp"

namespace culpeo::harness {

/** All baseline estimates derived from one profiling execution. */
struct BaselineEstimates
{
    Volts energy_direct{0.0};
    Volts energy_v{0.0};
    Volts catnap_measured{0.0};
    Volts catnap_slow{0.0};
    RunResult run; ///< The profiling run the estimates came from.
};

/**
 * Profile @p profile once from a full buffer on an isolated copy of
 * @p config and compute every baseline estimate.
 *
 * @param slow_delay measurement delay for CatNap-Slow (paper: 2 ms).
 */
BaselineEstimates estimateBaselines(const sim::PowerSystemConfig &config,
                                    const load::CurrentProfile &profile,
                                    units::Seconds slow_delay =
                                        units::Seconds(2e-3));

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_BASELINES_HPP
