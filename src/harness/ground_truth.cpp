#include "ground_truth.hpp"

#include "util/logging.hpp"

namespace culpeo::harness {

bool
completesFrom(const sim::PowerSystemConfig &config, Volts vstart,
              const load::CurrentProfile &profile)
{
    RunOptions options;
    options.dt = chooseDt(profile);
    options.settle_rebound = false;
    const RunResult result = runTaskFrom(config, vstart, profile, options);
    return result.completed;
}

GroundTruth
findTrueVsafe(const sim::PowerSystemConfig &config,
              const load::CurrentProfile &profile, Volts resolution)
{
    log::fatalIf(resolution.value() <= 0.0, "resolution must be positive");

    GroundTruth truth;
    Volts lo = config.monitor.voff;
    Volts hi = config.monitor.vhigh;

    // The search needs a passing upper bound.
    ++truth.trials;
    if (!completesFrom(config, hi, profile)) {
        truth.feasible = false;
        truth.vsafe = hi;
        return truth;
    }
    truth.feasible = true;

    while (hi - lo > resolution) {
        const Volts mid = Volts((hi.value() + lo.value()) / 2.0);
        ++truth.trials;
        if (completesFrom(config, mid, profile))
            hi = mid;
        else
            lo = mid;
    }
    truth.vsafe = hi;

    // Record the margin the found Vsafe leaves above Voff.
    RunOptions options;
    options.dt = chooseDt(profile);
    options.settle_rebound = false;
    const RunResult at_vsafe = runTaskFrom(config, hi, profile, options);
    truth.vmin_at_vsafe = at_vsafe.vmin;
    ++truth.trials;
    return truth;
}

} // namespace culpeo::harness
