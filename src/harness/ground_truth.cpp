#include "ground_truth.hpp"

#include "util/logging.hpp"

namespace culpeo::harness {

bool
completesFrom(const sim::PowerSystemConfig &config, Volts vstart,
              const load::CurrentProfile &profile, bool allow_fast_path)
{
    RunOptions options;
    options.dt = chooseDt(profile);
    options.settle_rebound = false;
    options.allow_fast_path = allow_fast_path;
    const RunResult result = runTaskFrom(config, vstart, profile, options);
    return result.completed;
}

GroundTruth
findTrueVsafe(const sim::PowerSystemConfig &config,
              const load::CurrentProfile &profile,
              const SearchOptions &search)
{
    log::fatalIf(search.resolution.value() <= 0.0,
                 "resolution must be positive");

    RunOptions options;
    options.dt = chooseDt(profile);
    options.settle_rebound = false;
    options.allow_fast_path = search.allow_fast_path;

    GroundTruth truth;
    Volts lo = config.monitor.voff;
    Volts hi = config.monitor.vhigh;

    // The search needs a passing upper bound. The latest passing run at
    // the current `hi` is kept so the converged bound's vmin doubles as
    // vmin_at_vsafe without a redundant final trial.
    ++truth.trials;
    RunResult at_hi = runTaskFrom(config, hi, profile, options);
    if (!at_hi.completed) {
        truth.feasible = false;
        truth.vsafe = hi;
        return truth;
    }
    truth.feasible = true;

    while (hi - lo > search.resolution) {
        const Volts mid = Volts((hi.value() + lo.value()) / 2.0);
        ++truth.trials;
        RunResult at_mid = runTaskFrom(config, mid, profile, options);
        if (at_mid.completed) {
            hi = mid;
            at_hi = at_mid;
        } else {
            lo = mid;
        }
    }
    truth.vsafe = hi;
    truth.vmin_at_vsafe = at_hi.vmin;
    return truth;
}

GroundTruth
findTrueVsafe(const sim::PowerSystemConfig &config,
              const load::CurrentProfile &profile, Volts resolution)
{
    SearchOptions search;
    search.resolution = resolution;
    return findTrueVsafe(config, profile, search);
}

} // namespace culpeo::harness
