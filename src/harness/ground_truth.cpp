#include "ground_truth.hpp"

#include "batch/engine.hpp"
#include "util/logging.hpp"

namespace culpeo::harness {

namespace {

/**
 * Bisection state for one query, advanced one candidate verdict at a
 * time so the scalar loop and the lockstep batch loop share the exact
 * same control flow (and therefore converge on the same bounds).
 */
struct Bisection
{
    Volts lo{0.0};
    Volts hi{0.0};
    Volts resolution{1e-3};
    GroundTruth truth;
    /** Vmin of the latest passing run at the current `hi`. */
    Volts vmin_at_hi{0.0};
    bool probing_hi = true;
    bool done = false;

    explicit Bisection(const sim::PowerSystemConfig &config,
                       Volts resolution_)
        : lo(config.monitor.voff), hi(config.monitor.vhigh),
          resolution(resolution_)
    {}

    /** The next start voltage to try (valid while !done). */
    Volts candidate() const
    {
        if (probing_hi)
            return hi;
        return Volts((hi.value() + lo.value()) / 2.0);
    }

    /** Consume the verdict of running candidate(); may set done. */
    void record(bool completed, Volts vmin)
    {
        ++truth.trials;
        if (probing_hi) {
            probing_hi = false;
            if (!completed) {
                truth.feasible = false;
                truth.vsafe = hi;
                done = true;
                return;
            }
            truth.feasible = true;
            vmin_at_hi = vmin;
        } else if (completed) {
            hi = candidate();
            vmin_at_hi = vmin;
        } else {
            lo = candidate();
        }
        if (done)
            return;
        if (hi - lo <= resolution) {
            truth.vsafe = hi;
            truth.vmin_at_vsafe = vmin_at_hi;
            done = true;
        }
    }
};

/** The single-op lane program every candidate trial runs. */
std::vector<batch::LaneOp>
trialProgram(const load::CurrentProfile &profile)
{
    return {batch::LaneOp::runProfile(&profile, chooseDt(profile))};
}

GroundTruth
findTrueVsafeScalar(const sim::PowerSystemConfig &config,
                    const load::CurrentProfile &profile,
                    const SearchOptions &search)
{
    RunOptions options;
    options.dt = chooseDt(profile);
    options.settle_rebound = false;
    options.allow_fast_path = search.allow_fast_path;

    Bisection bisect(config, search.resolution);
    while (!bisect.done) {
        const RunResult run =
            runTaskFrom(config, bisect.candidate(), profile, options);
        bisect.record(run.completed, run.vmin);
    }
    return bisect.truth;
}

GroundTruth
findTrueVsafeBatched(const sim::PowerSystemConfig &config,
                     const load::CurrentProfile &profile,
                     const SearchOptions &search)
{
    // Exact replay keeps every trial verdict — and thus the converged
    // vsafe — bit-identical to the runTaskFrom path the scalar search
    // uses. One engine and one lane are reused across the bisection.
    batch::BatchOptions kernel;
    kernel.exact_replay = true;
    batch::BatchEngine engine(kernel);

    batch::LaneSpec spec;
    spec.config = config;
    spec.program = trialProgram(profile);

    Bisection bisect(config, search.resolution);
    spec.vstart = bisect.candidate();
    engine.addLane(spec);
    for (;;) {
        engine.run();
        const batch::OpOutcome &out = engine.result(0).ops.front();
        bisect.record(out.completed, out.vmin);
        if (bisect.done)
            return bisect.truth;
        engine.resetLane(0, bisect.candidate(), true);
    }
}

} // namespace

bool
completesFrom(const sim::PowerSystemConfig &config, Volts vstart,
              const load::CurrentProfile &profile, bool allow_fast_path)
{
    RunOptions options;
    options.dt = chooseDt(profile);
    options.settle_rebound = false;
    options.allow_fast_path = allow_fast_path;
    const RunResult result = runTaskFrom(config, vstart, profile, options);
    return result.completed;
}

GroundTruth
findTrueVsafe(const sim::PowerSystemConfig &config,
              const load::CurrentProfile &profile,
              const SearchOptions &search)
{
    log::fatalIf(search.resolution.value() <= 0.0,
                 "resolution must be positive");
    if (search.use_batch && search.allow_fast_path)
        return findTrueVsafeBatched(config, profile, search);
    return findTrueVsafeScalar(config, profile, search);
}

GroundTruth
findTrueVsafe(const sim::PowerSystemConfig &config,
              const load::CurrentProfile &profile, Volts resolution)
{
    SearchOptions search;
    search.resolution = resolution;
    return findTrueVsafe(config, profile, search);
}

std::vector<GroundTruth>
findTrueVsafeBatch(const std::vector<VsafeQuery> &queries,
                   const SearchOptions &options)
{
    log::fatalIf(options.resolution.value() <= 0.0,
                 "resolution must be positive");
    for (const VsafeQuery &query : queries)
        log::fatalIf(query.profile == nullptr,
                     "VsafeQuery requires a profile");

    if (!options.use_batch || !options.allow_fast_path) {
        std::vector<GroundTruth> results;
        results.reserve(queries.size());
        for (const VsafeQuery &query : queries)
            results.push_back(
                findTrueVsafe(query.config, *query.profile, options));
        return results;
    }

    batch::BatchOptions kernel;
    kernel.exact_replay = true;
    batch::BatchEngine engine(kernel);

    std::vector<Bisection> bisections;
    bisections.reserve(queries.size());
    for (const VsafeQuery &query : queries) {
        Bisection &bisect = bisections.emplace_back(query.config,
                                                    options.resolution);
        batch::LaneSpec spec;
        spec.config = query.config;
        spec.program = trialProgram(*query.profile);
        spec.vstart = bisect.candidate();
        engine.addLane(spec);
    }

    // Each round runs every still-searching query's candidate as one
    // lane of the same lockstep batch; converged lanes get an empty
    // program and sit out.
    std::size_t active = queries.size();
    while (active > 0) {
        engine.run();
        for (std::size_t q = 0; q < queries.size(); ++q) {
            Bisection &bisect = bisections[q];
            if (bisect.done)
                continue;
            const batch::OpOutcome &out = engine.result(q).ops.front();
            bisect.record(out.completed, out.vmin);
            if (bisect.done) {
                engine.setLaneProgram(q, {});
                --active;
            } else {
                engine.resetLane(q, bisect.candidate(), true);
            }
        }
    }

    std::vector<GroundTruth> results;
    results.reserve(queries.size());
    for (const Bisection &bisect : bisections)
        results.push_back(bisect.truth);
    return results;
}

} // namespace culpeo::harness
