/**
 * @file
 * Known-good Vsafe by brute-force binary search (Section VI-A): the test
 * harness repeatedly runs a load profile from candidate starting
 * voltages, isolated from incoming power, until it finds the lowest
 * start at which the minimum voltage stays at or above Voff.
 */

#ifndef CULPEO_HARNESS_GROUND_TRUTH_HPP
#define CULPEO_HARNESS_GROUND_TRUTH_HPP

#include <optional>
#include <vector>

#include "harness/task_runner.hpp"

namespace culpeo::harness {

/** Result of the brute-force search. */
struct GroundTruth
{
    Volts vsafe{0.0};    ///< Lowest passing start voltage found.
    bool feasible = false; ///< False if even Vhigh fails.
    Volts vmin_at_vsafe{0.0}; ///< Minimum voltage when started at vsafe.
    unsigned trials = 0;  ///< Number of simulated executions.
};

/** Controls for the brute-force search. */
struct SearchOptions
{
    /**
     * Convergence width of the bisection (the paper converges until
     * Vmin is within 5 mV of Voff).
     */
    Volts resolution{1e-3};
    /** Permit the analytic segment fast path for each trial. */
    bool allow_fast_path = true;
    /**
     * Execute the bisection's trial runs on the SoA batch engine
     * (exact-replay mode, so verdicts — and therefore the converged
     * vsafe — are bit-identical to the sim::Device path). The engine
     * and its lane are built once and rewound per candidate instead of
     * constructing a fresh Device per trial. Ignored (scalar fallback)
     * when allow_fast_path is false, since the batch kernel is the
     * analytic stepper.
     */
    bool use_batch = true;
};

/**
 * Binary-search the true Vsafe of @p profile on @p config to within
 * options.resolution. The final passing trial at the converged upper
 * bound doubles as the vmin_at_vsafe measurement — no extra run.
 */
GroundTruth findTrueVsafe(const sim::PowerSystemConfig &config,
                          const load::CurrentProfile &profile,
                          const SearchOptions &options);

/** Convenience overload keeping the original resolution-only call. */
GroundTruth findTrueVsafe(const sim::PowerSystemConfig &config,
                          const load::CurrentProfile &profile,
                          Volts resolution = Volts(1e-3));

/** One bisection problem for the lockstep multi-query search. */
struct VsafeQuery
{
    sim::PowerSystemConfig config{};
    /** Borrowed; caller keeps it alive for the duration of the call. */
    const load::CurrentProfile *profile = nullptr;
};

/**
 * Run many independent Vsafe bisections in lockstep: every round, all
 * still-searching queries execute their current candidate as one lane
 * of a shared BatchEngine (converged queries sit out). Results are
 * indexed like @p queries and bit-identical to calling findTrueVsafe
 * per query. Falls back to the per-query scalar search when
 * options.use_batch or options.allow_fast_path is false.
 */
std::vector<GroundTruth>
findTrueVsafeBatch(const std::vector<VsafeQuery> &queries,
                   const SearchOptions &options = {});

/**
 * Does @p profile complete when started at @p vstart with no incoming
 * power? (One isolated trial.)
 */
bool completesFrom(const sim::PowerSystemConfig &config, Volts vstart,
                   const load::CurrentProfile &profile,
                   bool allow_fast_path = true);

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_GROUND_TRUTH_HPP
