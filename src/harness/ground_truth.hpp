/**
 * @file
 * Known-good Vsafe by brute-force binary search (Section VI-A): the test
 * harness repeatedly runs a load profile from candidate starting
 * voltages, isolated from incoming power, until it finds the lowest
 * start at which the minimum voltage stays at or above Voff.
 */

#ifndef CULPEO_HARNESS_GROUND_TRUTH_HPP
#define CULPEO_HARNESS_GROUND_TRUTH_HPP

#include <optional>

#include "harness/task_runner.hpp"

namespace culpeo::harness {

/** Result of the brute-force search. */
struct GroundTruth
{
    Volts vsafe{0.0};    ///< Lowest passing start voltage found.
    bool feasible = false; ///< False if even Vhigh fails.
    Volts vmin_at_vsafe{0.0}; ///< Minimum voltage when started at vsafe.
    unsigned trials = 0;  ///< Number of simulated executions.
};

/**
 * Binary-search the true Vsafe of @p profile on @p config to within
 * @p resolution (the paper converges until Vmin is within 5 mV of Voff).
 */
GroundTruth findTrueVsafe(const sim::PowerSystemConfig &config,
                          const load::CurrentProfile &profile,
                          Volts resolution = Volts(1e-3));

/**
 * Does @p profile complete when started at @p vstart with no incoming
 * power? (One isolated trial.)
 */
bool completesFrom(const sim::PowerSystemConfig &config, Volts vstart,
                   const load::CurrentProfile &profile);

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_GROUND_TRUTH_HPP
