#include "profiling.hpp"

#include "util/logging.hpp"

namespace culpeo::harness {

ProfileOutcome
profileTask(sim::Device &device, core::Culpeo &culpeo, core::TaskId id,
            const load::CurrentProfile &profile, RunOptions options)
{
    ProfileOutcome outcome;

    culpeo.profileStart(device.restingVoltage());

    RunOptions task_options = options;
    task_options.culpeo = &culpeo;
    task_options.settle_rebound = false;
    outcome.run = runTask(device, profile, task_options);

    culpeo.profileEnd(id, outcome.run.vend_loaded);

    const Volts vfinal = settleRebound(device, options, &culpeo);
    outcome.run.vfinal = vfinal;
    outcome.run.settle_end = device.now();
    culpeo.reboundEnd(id, vfinal);

    if (!outcome.run.completed) {
        // A browned-out profiling run is useless; drop any stored entry.
        log::warn("profiling run for task ", id, " failed; discarding");
        return outcome;
    }

    culpeo.computeVsafe(id);
    const auto stored =
        culpeo.table().result(id, culpeo.bufferConfig());
    if (stored.has_value()) {
        outcome.result = *stored;
        outcome.stored = true;
    }
    return outcome;
}

ProfileOutcome
profileTaskFrom(const sim::PowerSystemConfig &config, Volts vstart,
                core::Culpeo &culpeo, core::TaskId id,
                const load::CurrentProfile &profile, RunOptions options)
{
    sim::Device device(config);
    device.setBufferVoltage(vstart);
    device.forceOutputEnabled(true);
    if (options.dt.value() == RunOptions{}.dt.value())
        options.dt = chooseDt(profile);
    return profileTask(device, culpeo, id, profile, options);
}

units::Ohms
measureApparentEsr(const sim::CapacitorConfig &config, units::Amps i_pulse,
                   units::Seconds width, Volts vstart)
{
    log::fatalIf(i_pulse.value() <= 0.0, "probe current must be positive");
    sim::Capacitor cap(config);
    cap.setOpenCircuitVoltage(vstart);

    // The rig pulses the buffer terminals directly (Section IV-B): one
    // exact closed-form advance over the pulse — the same two-branch
    // solution the segment fast path is built on — replaces the old
    // per-step Euler loop.
    cap.advanceAnalytic(width, i_pulse);
    const Volts voc = cap.openCircuitVoltage();
    const Volts vterm = cap.terminalVoltage(i_pulse);
    return units::Ohms((voc - vterm).value() / i_pulse.value());
}

sim::EsrCurve
measureEsrCurve(const sim::CapacitorConfig &config, units::Amps i_pulse,
                const std::vector<units::Seconds> &widths, Volts vstart)
{
    std::vector<sim::EsrCurve::Point> points;
    points.reserve(widths.size());
    for (const auto width : widths) {
        points.push_back({units::Hertz(1.0 / (2.0 * width.value())),
                          measureApparentEsr(config, i_pulse, width,
                                             vstart)});
    }
    return sim::EsrCurve(std::move(points));
}

} // namespace culpeo::harness
