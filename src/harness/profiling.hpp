/**
 * @file
 * End-to-end Culpeo-R profiling of a task on the simulator: drives the
 * Table I call sequence (profile_start → run task → profile_end →
 * rebound → rebound_end → compute_vsafe) exactly as a scheduler would
 * (Section V-B), and measures the apparent ESR of a capacitor the way a
 * characterization rig would (Section IV-B).
 */

#ifndef CULPEO_HARNESS_PROFILING_HPP
#define CULPEO_HARNESS_PROFILING_HPP

#include "core/api.hpp"
#include "harness/task_runner.hpp"

namespace culpeo::harness {

/** Outcome of one profiling execution. */
struct ProfileOutcome
{
    RunResult run;            ///< The profiling execution itself.
    core::RResult result{};   ///< Computed Vsafe data (when successful).
    bool stored = false;      ///< Profile stored and Vsafe computed.
};

/**
 * Profile task @p id by executing @p profile on @p device with
 * @p culpeo's profiler attached, then compute its Vsafe. The device
 * should be charged and its output enabled; profiling failures (task
 * browned out) leave the table unpopulated.
 */
ProfileOutcome profileTask(sim::Device &device, core::Culpeo &culpeo,
                           core::TaskId id,
                           const load::CurrentProfile &profile,
                           RunOptions options = {});

/**
 * Charge an isolated copy of @p config to @p vstart and profile there
 * (the one-time pre-deployment profiling pass used when harvested power
 * is stable, Section VI-B).
 */
ProfileOutcome profileTaskFrom(const sim::PowerSystemConfig &config,
                               Volts vstart, core::Culpeo &culpeo,
                               core::TaskId id,
                               const load::CurrentProfile &profile,
                               RunOptions options = {});

/**
 * Measure the apparent ESR of @p config for a current pulse of
 * @p width at @p i_pulse, as (Voc - Vterm) / I at the end of the pulse.
 */
units::Ohms measureApparentEsr(const sim::CapacitorConfig &config,
                               units::Amps i_pulse, units::Seconds width,
                               Volts vstart = Volts(2.5));

/** Measure the full ESR-vs-frequency curve over @p widths. */
sim::EsrCurve measureEsrCurve(const sim::CapacitorConfig &config,
                              units::Amps i_pulse,
                              const std::vector<units::Seconds> &widths,
                              Volts vstart = Volts(2.5));

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_PROFILING_HPP
