#include "task_runner.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace culpeo::harness {

Seconds
chooseDt(const load::CurrentProfile &profile)
{
    // Resolve the shortest segment with at least 20 steps, but never
    // step coarser than 100 us or finer than 5 us.
    double shortest = 0.1;
    for (const auto &seg : profile.segments())
        shortest = std::min(shortest, seg.duration.value());
    return Seconds(std::clamp(shortest / 20.0, 5e-6, 100e-6));
}

RunResult
runTask(sim::PowerSystem &system, const load::CurrentProfile &profile,
        const RunOptions &options)
{
    log::fatalIf(options.dt.value() <= 0.0, "run dt must be positive");

    RunResult result;
    result.vstart = system.restingVoltage();
    result.vmin = result.vstart;
    result.vend_loaded = result.vstart;

    core::Culpeo *culpeo = options.culpeo;
    const Volts vout = system.vout();
    const Seconds duration = profile.duration();
    const double dt = options.dt.value();

    // With no Culpeo attached (nothing to tick per step) and an
    // instrumentation-free system, each piecewise-constant profile
    // segment can be advanced with the analytic fast path.
    if (options.allow_fast_path && culpeo == nullptr &&
        system.analyticEligible()) {
        sim::SegmentOptions seg_options;
        seg_options.fallback_dt = options.dt;
        seg_options.stop_on_failure = options.stop_on_failure;
        bool fast_failed = false;
        for (const auto &seg : profile.segments()) {
            const sim::SegmentResult seg_result =
                system.runSegment(seg.duration, seg.current, seg_options);
            result.vmin = std::min(result.vmin, seg_result.vmin);
            result.vend_loaded = seg_result.vend;
            if (seg_result.power_failed || seg_result.collapsed) {
                result.power_failed =
                    result.power_failed || seg_result.power_failed;
                result.collapsed =
                    result.collapsed || seg_result.collapsed;
                fast_failed = true;
                if (options.stop_on_failure)
                    break;
            }
        }
        result.completed = !fast_failed;
        result.task_end = system.now();
        result.vfinal = system.restingVoltage();
        if (options.settle_rebound)
            result.vfinal = settleRebound(system, options, culpeo);
        result.settle_end = system.now();
        return result;
    }

    bool failed = false;
    Seconds offset{0.0};
    while (offset < duration) {
        Amps demand = profile.currentAt(offset);
        if (culpeo != nullptr)
            demand += culpeo->overheadCurrent(vout);

        const sim::StepResult step = system.step(options.dt, demand);
        result.vmin = std::min(result.vmin, step.terminal);
        result.vend_loaded = step.terminal;
        if (culpeo != nullptr)
            culpeo->tick(options.dt, step.terminal);

        if (step.power_failed || step.collapsed) {
            result.power_failed = result.power_failed || step.power_failed;
            result.collapsed = result.collapsed || step.collapsed;
            failed = true;
            if (options.stop_on_failure)
                break;
        }
        offset += Seconds(dt);
    }
    result.completed = !failed;
    result.task_end = system.now();

    // Let the ESR drop rebound with no load, tracking the recovery, so
    // Vfinal reflects the post-redistribution voltage (Figure 8a).
    result.vfinal = system.restingVoltage();
    if (options.settle_rebound)
        result.vfinal = settleRebound(system, options, culpeo);
    result.settle_end = system.now();
    return result;
}

Volts
settleRebound(sim::PowerSystem &system, const RunOptions &options,
              core::Culpeo *culpeo)
{
    const Volts vout = system.vout();
    const Seconds deadline = system.now() + options.settle_timeout;
    Volts window_start = system.restingVoltage();
    Seconds window_elapsed{0.0};
    while (system.now() < deadline) {
        Amps demand{0.0};
        if (culpeo != nullptr)
            demand += culpeo->overheadCurrent(vout);
        const sim::StepResult step = system.step(options.settle_dt, demand);
        if (culpeo != nullptr)
            culpeo->tick(options.settle_dt, step.terminal);

        window_elapsed += options.settle_dt;
        if (window_elapsed >= options.settle_window) {
            if (step.terminal - window_start < options.settle_epsilon)
                break;
            window_start = step.terminal;
            window_elapsed = Seconds(0.0);
        }
    }
    return system.restingVoltage();
}

RunResult
runTaskFrom(const sim::PowerSystemConfig &config, Volts vstart,
            const load::CurrentProfile &profile, const RunOptions &options)
{
    sim::PowerSystem system(config);
    system.setBufferVoltage(vstart);
    system.forceOutputEnabled(true);
    return runTask(system, profile, options);
}

} // namespace culpeo::harness
