#include "task_runner.hpp"

#include <algorithm>
#include <optional>

#include "util/logging.hpp"

namespace culpeo::harness {

namespace {

/**
 * Adapts an attached core::Culpeo instance to sim::LoadStepDriver: its
 * measurement overhead current rides on the demand and its profiler is
 * ticked with each step's terminal voltage (the ISR design pays for its
 * own ADC).
 */
class CulpeoStepDriver : public sim::LoadStepDriver
{
  public:
    CulpeoStepDriver(core::Culpeo &culpeo, Volts vout)
        : culpeo_(culpeo), vout_(vout)
    {}

    Amps overheadCurrent() override
    {
        return culpeo_.overheadCurrent(vout_);
    }

    void onStep(Seconds dt, Volts terminal) override
    {
        culpeo_.tick(dt, terminal);
    }

  private:
    core::Culpeo &culpeo_;
    Volts vout_;
};

} // namespace

Seconds
chooseDt(const load::CurrentProfile &profile)
{
    // Resolve the shortest segment with at least 20 steps, but never
    // step coarser than 100 us or finer than 5 us.
    double shortest = 0.1;
    for (const auto &seg : profile.segments())
        shortest = std::min(shortest, seg.duration.value());
    return Seconds(std::clamp(shortest / 20.0, 5e-6, 100e-6));
}

RunResult
runTask(sim::Device &device, const load::CurrentProfile &profile,
        const RunOptions &options)
{
    std::optional<CulpeoStepDriver> driver;
    if (options.culpeo != nullptr)
        driver.emplace(*options.culpeo, device.vout());

    sim::LoadOptions load_options;
    load_options.dt = options.dt;
    load_options.stop_on_failure = options.stop_on_failure;
    load_options.allow_fast_path = options.allow_fast_path;
    load_options.driver = driver.has_value() ? &*driver : nullptr;

    const sim::LoadResult run = device.runLoad(profile, load_options);

    RunResult result;
    result.completed = run.completed;
    result.power_failed = run.power_failed;
    result.collapsed = run.collapsed;
    result.vstart = run.vstart;
    result.vmin = run.vmin;
    result.vend_loaded = run.vend;
    result.task_end = device.now();

    // Let the ESR drop rebound with no load, tracking the recovery, so
    // Vfinal reflects the post-redistribution voltage (Figure 8a).
    result.vfinal = device.restingVoltage();
    if (options.settle_rebound)
        result.vfinal = settleRebound(device, options, options.culpeo);
    result.settle_end = device.now();
    return result;
}

Volts
settleRebound(sim::Device &device, const RunOptions &options,
              core::Culpeo *culpeo)
{
    sim::SettleOptions settle;
    settle.dt = options.settle_dt;
    settle.timeout = options.settle_timeout;
    settle.epsilon = options.settle_epsilon;
    settle.window = options.settle_window;
    if (culpeo != nullptr) {
        CulpeoStepDriver driver(*culpeo, device.vout());
        settle.driver = &driver;
        return device.settle(settle);
    }
    return device.settle(settle);
}

RunResult
runTaskFrom(const sim::PowerSystemConfig &config, Volts vstart,
            const load::CurrentProfile &profile, const RunOptions &options)
{
    sim::Device device(config);
    device.setBufferVoltage(vstart);
    device.forceOutputEnabled(true);
    return runTask(device, profile, options);
}

} // namespace culpeo::harness
