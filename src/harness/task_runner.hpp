/**
 * @file
 * Drives a load profile on the simulated power system, mirroring the
 * paper's hardware test harness (Section VI-A): charge to a chosen
 * voltage, apply the load, observe whether the device browns out, and
 * optionally wait out the post-task rebound to capture Vfinal.
 *
 * When a Culpeo instance is attached, its profiler is ticked with the
 * evolving terminal voltage and its measurement overhead current is
 * added to the task load (the ISR design pays for its own ADC).
 */

#ifndef CULPEO_HARNESS_TASK_RUNNER_HPP
#define CULPEO_HARNESS_TASK_RUNNER_HPP

#include "core/api.hpp"
#include "load/profile.hpp"
#include "sim/device.hpp"

namespace culpeo::harness {

using units::Amps;
using units::Seconds;
using units::Volts;

/** Controls for one task execution. */
struct RunOptions
{
    /** Simulation step during the task. */
    Seconds dt{50e-6};
    /** Simulation step while waiting out the rebound. */
    Seconds settle_dt{1e-3};
    /** Wait for the rebound to settle after the task. */
    bool settle_rebound = true;
    /**
     * Give up waiting for settle after this long. The default covers
     * ~7 redistribution time constants of the Capybara bank; it must
     * stay bounded because with incoming power the voltage never stops
     * rising, and crediting charging time against the task would
     * corrupt the profiled energy.
     */
    Seconds settle_timeout{0.4};
    /** Rebound is settled once it gains less than this per window. */
    Volts settle_epsilon{0.2e-3};
    /** Window over which settle_epsilon is evaluated. */
    Seconds settle_window{20e-3};
    /** Attached Culpeo instance (profiling overhead + ticks), or null. */
    core::Culpeo *culpeo = nullptr;
    /** Abort the run at the first brown-out (a real device would). */
    bool stop_on_failure = true;
    /**
     * Permit analytic segment stepping (PowerSystem::runSegment) when no
     * Culpeo instance is attached and the system is instrumentation-free.
     * False forces the reference Euler loop at dt.
     */
    bool allow_fast_path = true;
};

/** Outcome of one task execution. */
struct RunResult
{
    bool completed = false;    ///< All load served without brown-out.
    bool power_failed = false; ///< Monitor crossed Voff during the task.
    bool collapsed = false;    ///< Booster could not source the power.
    Volts vstart{0.0};         ///< Resting terminal voltage at start.
    Volts vmin{0.0};           ///< Minimum terminal voltage during task.
    Volts vend_loaded{0.0};    ///< Terminal voltage at the last loaded step.
    Volts vfinal{0.0};         ///< Settled terminal voltage after rebound.
    Seconds task_end{0.0};     ///< Simulation time when the load ended.
    Seconds settle_end{0.0};   ///< Simulation time when settle finished.
};

/**
 * Run @p profile on @p device from its current state via
 * sim::Device::runLoad, adapting the attached Culpeo instance (if any)
 * to the per-step driver interface. The monitor state is left as
 * configured by the caller (force it on for isolated harness runs).
 */
RunResult runTask(sim::Device &device,
                  const load::CurrentProfile &profile,
                  const RunOptions &options = {});

/**
 * Idle the device until the post-load rebound settles (gain below
 * options.settle_epsilon per settle_window) or settle_timeout elapses.
 * Returns the settled resting voltage. Ticks/charges @p culpeo's
 * profiler when non-null.
 */
Volts settleRebound(sim::Device &device, const RunOptions &options,
                    core::Culpeo *culpeo);

/**
 * Convenience: build an isolated device at @p vstart (settled, output
 * forced on, no harvester) and run @p profile on it.
 */
RunResult runTaskFrom(const sim::PowerSystemConfig &config, Volts vstart,
                      const load::CurrentProfile &profile,
                      const RunOptions &options = {});

/** Pick a task simulation step that resolves @p profile's features. */
Seconds chooseDt(const load::CurrentProfile &profile);

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_TASK_RUNNER_HPP
