#include "vsafe_cache.hpp"

#include <algorithm>
#include <bit>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace culpeo::harness {

namespace {

/** splitmix64 finalizer: the standard strong 64-bit mixer. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

struct Hasher
{
    std::uint64_t state = 0x435553504f4b4559ULL; // "CUSPOKEY"

    void add(std::uint64_t v) { state = mix(state ^ v); }
    void add(double v)
    {
        // Normalize -0.0 so numerically equal configs key identically.
        add(std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
    }
    void add(bool v) { add(std::uint64_t(v ? 1 : 2)); }
};

} // namespace

std::uint64_t
groundTruthKey(const sim::PowerSystemConfig &config,
               const load::CurrentProfile &profile,
               const SearchOptions &options)
{
    Hasher h;

    const sim::CapacitorConfig &cap = config.capacitor;
    h.add(cap.capacitance.value());
    h.add(cap.series_esr.value());
    h.add(cap.surface_fraction);
    h.add(cap.bulk_resistance.value());
    h.add(cap.surface_resistance.value());
    h.add(cap.leakage.value());
    h.add(cap.capacitance_fraction);
    h.add(cap.esr_multiplier);

    const sim::OutputBoosterConfig &out = config.output;
    h.add(out.vout.value());
    h.add(out.efficiency.slope);
    h.add(out.efficiency.intercept);
    h.add(out.efficiency.curvature);
    h.add(out.efficiency.current_coeff);
    h.add(out.efficiency.v_ref);
    h.add(out.efficiency.min_eta);
    h.add(out.efficiency.max_eta);
    h.add(out.dropout.value());
    h.add(out.quiescent.value());

    const sim::InputBoosterConfig &in = config.input;
    h.add(in.efficiency);
    h.add(in.vhigh.value());
    h.add(in.max_charge_current.value());

    h.add(config.monitor.vhigh.value());
    h.add(config.monitor.voff.value());

    h.add(std::uint64_t(profile.segments().size()));
    for (const auto &seg : profile.segments()) {
        h.add(seg.duration.value());
        h.add(seg.current.value());
    }

    h.add(options.resolution.value());
    h.add(options.allow_fast_path);
    return h.state;
}

VsafeCache::VsafeCache(std::size_t max_entries)
    : max_entries_(max_entries)
{
    log::fatalIf(max_entries == 0, "vsafe cache needs max_entries >= 1");
}

VsafeCache &
VsafeCache::global()
{
    static VsafeCache cache;
    return cache;
}

void
VsafeCache::evictDownToLocked(std::size_t limit)
{
    while (entries_.size() > limit && !order_.empty()) {
        const std::uint64_t victim = order_.front();
        order_.pop_front();
        if (entries_.erase(victim) > 0)
            ++evictions_;
    }
}

GroundTruth
VsafeCache::findOrCompute(const sim::PowerSystemConfig &config,
                          const load::CurrentProfile &profile,
                          const SearchOptions &options)
{
    const std::uint64_t key = groundTruthKey(config, profile, options);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            return it->second;
        }
    }
    const GroundTruth truth = findTrueVsafe(config, profile, options);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++misses_;
        // A racing thread may have inserted the same key while the
        // search ran outside the lock; only track insertion order for
        // keys that actually entered the table.
        if (entries_.emplace(key, truth).second) {
            order_.push_back(key);
            evictDownToLocked(max_entries_);
        }
    }
    return truth;
}

std::size_t
VsafeCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
VsafeCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t
VsafeCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::size_t
VsafeCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
VsafeCache::maxEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_entries_;
}

void
VsafeCache::setMaxEntries(std::size_t max_entries)
{
    log::fatalIf(max_entries == 0, "vsafe cache needs max_entries >= 1");
    std::lock_guard<std::mutex> lock(mutex_);
    max_entries_ = max_entries;
    evictDownToLocked(max_entries_);
}

void
VsafeCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    order_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

void
VsafeCache::publishTo(telemetry::Registry &registry) const
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hits = hits_;
        misses = misses_;
        evictions = evictions_;
    }
    namespace names = telemetry::names;
    registry.gauge(names::kVsafeCacheHits, telemetry::GaugeMode::Last)
        .record(double(hits));
    registry.gauge(names::kVsafeCacheMisses, telemetry::GaugeMode::Last)
        .record(double(misses));
    registry
        .gauge(names::kVsafeCacheEvictions, telemetry::GaugeMode::Last)
        .record(double(evictions));
}

} // namespace culpeo::harness
