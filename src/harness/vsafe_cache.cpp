#include "vsafe_cache.hpp"

#include <algorithm>
#include <bit>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace culpeo::harness {

namespace {

/** splitmix64 finalizer: the standard strong 64-bit mixer. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

struct Hasher
{
    std::uint64_t state = 0x435553504f4b4559ULL; // "CUSPOKEY"

    void add(std::uint64_t v) { state = mix(state ^ v); }
    void add(double v)
    {
        // Normalize -0.0 so numerically equal configs key identically.
        add(std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
    }
    void add(bool v) { add(std::uint64_t(v ? 1 : 2)); }
};

} // namespace

std::uint64_t
groundTruthKey(const sim::PowerSystemConfig &config,
               const load::CurrentProfile &profile,
               const SearchOptions &options)
{
    Hasher h;

    const sim::CapacitorConfig &cap = config.capacitor;
    h.add(cap.capacitance.value());
    h.add(cap.series_esr.value());
    h.add(cap.surface_fraction);
    h.add(cap.bulk_resistance.value());
    h.add(cap.surface_resistance.value());
    h.add(cap.leakage.value());
    h.add(cap.capacitance_fraction);
    h.add(cap.esr_multiplier);

    const sim::OutputBoosterConfig &out = config.output;
    h.add(out.vout.value());
    h.add(out.efficiency.slope);
    h.add(out.efficiency.intercept);
    h.add(out.efficiency.curvature);
    h.add(out.efficiency.current_coeff);
    h.add(out.efficiency.v_ref);
    h.add(out.efficiency.min_eta);
    h.add(out.efficiency.max_eta);
    h.add(out.dropout.value());
    h.add(out.quiescent.value());

    const sim::InputBoosterConfig &in = config.input;
    h.add(in.efficiency);
    h.add(in.vhigh.value());
    h.add(in.max_charge_current.value());

    h.add(config.monitor.vhigh.value());
    h.add(config.monitor.voff.value());

    h.add(std::uint64_t(profile.segments().size()));
    for (const auto &seg : profile.segments()) {
        h.add(seg.duration.value());
        h.add(seg.current.value());
    }

    h.add(options.resolution.value());
    h.add(options.allow_fast_path);
    return h.state;
}

VsafeCache::VsafeCache(std::size_t max_entries, std::size_t stripes)
    : stripe_count_(std::min(std::max<std::size_t>(stripes, 1),
                             std::max<std::size_t>(max_entries, 1))),
      max_entries_(max_entries)
{
    log::fatalIf(max_entries == 0, "vsafe cache needs max_entries >= 1");
    stripes_ = std::make_unique<Stripe[]>(stripe_count_);
    distributeCapsLocked(max_entries_);
}

VsafeCache &
VsafeCache::global()
{
    static VsafeCache cache;
    return cache;
}

void
VsafeCache::Stripe::evictDownToLocked(std::size_t limit)
{
    while (entries.size() > limit && !order.empty()) {
        const std::uint64_t victim = order.front();
        order.pop_front();
        if (entries.erase(victim) > 0)
            ++evictions;
    }
}

void
VsafeCache::distributeCapsLocked(std::size_t max_entries)
{
    const std::size_t base = max_entries / stripe_count_;
    const std::size_t extra = max_entries % stripe_count_;
    for (std::size_t s = 0; s < stripe_count_; ++s) {
        Stripe &stripe = stripes_[s];
        std::lock_guard<std::mutex> lock(stripe.mutex);
        stripe.max_entries = base + (s < extra ? 1 : 0);
        stripe.evictDownToLocked(stripe.max_entries);
    }
}

GroundTruth
VsafeCache::findOrCompute(const sim::PowerSystemConfig &config,
                          const load::CurrentProfile &profile,
                          const SearchOptions &options)
{
    const std::uint64_t key = groundTruthKey(config, profile, options);
    Stripe &stripe = stripeFor(key);
    {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        const auto it = stripe.entries.find(key);
        if (it != stripe.entries.end()) {
            ++stripe.hits;
            return it->second;
        }
    }
    const GroundTruth truth = findTrueVsafe(config, profile, options);
    {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        ++stripe.misses;
        // A racing thread may have inserted the same key while the
        // search ran outside the lock; only track insertion order for
        // keys that actually entered the table.
        if (stripe.entries.emplace(key, truth).second) {
            stripe.order.push_back(key);
            stripe.evictDownToLocked(stripe.max_entries);
        }
    }
    return truth;
}

std::size_t
VsafeCache::hits() const
{
    std::size_t total = 0;
    for (std::size_t s = 0; s < stripe_count_; ++s) {
        std::lock_guard<std::mutex> lock(stripes_[s].mutex);
        total += stripes_[s].hits;
    }
    return total;
}

std::size_t
VsafeCache::misses() const
{
    std::size_t total = 0;
    for (std::size_t s = 0; s < stripe_count_; ++s) {
        std::lock_guard<std::mutex> lock(stripes_[s].mutex);
        total += stripes_[s].misses;
    }
    return total;
}

std::size_t
VsafeCache::evictions() const
{
    std::size_t total = 0;
    for (std::size_t s = 0; s < stripe_count_; ++s) {
        std::lock_guard<std::mutex> lock(stripes_[s].mutex);
        total += stripes_[s].evictions;
    }
    return total;
}

std::size_t
VsafeCache::size() const
{
    std::size_t total = 0;
    for (std::size_t s = 0; s < stripe_count_; ++s) {
        std::lock_guard<std::mutex> lock(stripes_[s].mutex);
        total += stripes_[s].entries.size();
    }
    return total;
}

std::size_t
VsafeCache::maxEntries() const
{
    std::lock_guard<std::mutex> lock(config_mutex_);
    return max_entries_;
}

void
VsafeCache::setMaxEntries(std::size_t max_entries)
{
    log::fatalIf(max_entries == 0, "vsafe cache needs max_entries >= 1");
    std::lock_guard<std::mutex> lock(config_mutex_);
    max_entries_ = max_entries;
    distributeCapsLocked(max_entries_);
}

void
VsafeCache::clear()
{
    for (std::size_t s = 0; s < stripe_count_; ++s) {
        Stripe &stripe = stripes_[s];
        std::lock_guard<std::mutex> lock(stripe.mutex);
        stripe.entries.clear();
        stripe.order.clear();
        stripe.hits = 0;
        stripe.misses = 0;
        stripe.evictions = 0;
    }
}

void
VsafeCache::publishTo(telemetry::Registry &registry) const
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    for (std::size_t s = 0; s < stripe_count_; ++s) {
        std::lock_guard<std::mutex> lock(stripes_[s].mutex);
        hits += stripes_[s].hits;
        misses += stripes_[s].misses;
        evictions += stripes_[s].evictions;
    }
    namespace names = telemetry::names;
    registry.gauge(names::kVsafeCacheHits, telemetry::GaugeMode::Last)
        .record(double(hits));
    registry.gauge(names::kVsafeCacheMisses, telemetry::GaugeMode::Last)
        .record(double(misses));
    registry
        .gauge(names::kVsafeCacheEvictions, telemetry::GaugeMode::Last)
        .record(double(evictions));
}

} // namespace culpeo::harness
