/**
 * @file
 * Memoized ground truth: the figure sweeps and the fuzz campaigns call
 * findTrueVsafe with overlapping (config, profile, resolution) tuples —
 * notably ablation variants that share a baseline — and each search
 * costs a bisection's worth of simulated executions. The cache keys the
 * exact numeric content of the search inputs and is safe to share
 * across the sweep executor's threads.
 *
 * The table is bounded (max_entries, FIFO eviction): drift and fuzz
 * campaigns mutate the power-system config continuously, so every
 * aging state keys a fresh entry and an unbounded memo would grow with
 * the campaign length. FIFO is deliberate — entries are write-once
 * truths with heavy temporal locality (a sweep finishes with a config
 * before moving on), so recency tracking would buy little for its
 * bookkeeping cost.
 */

#ifndef CULPEO_HARNESS_VSAFE_CACHE_HPP
#define CULPEO_HARNESS_VSAFE_CACHE_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "harness/ground_truth.hpp"

namespace culpeo::telemetry {
class Registry;
} // namespace culpeo::telemetry

namespace culpeo::harness {

/**
 * 64-bit key over every double that feeds a ground-truth search: all
 * capacitor/booster/monitor config fields, each profile segment's
 * (duration, current), the search resolution, and the fast-path flag.
 * splitmix64-mixed; collisions are astronomically unlikely at sweep
 * scale, and a collision only ever substitutes another *computed*
 * ground truth.
 */
std::uint64_t groundTruthKey(const sim::PowerSystemConfig &config,
                             const load::CurrentProfile &profile,
                             const SearchOptions &options);

/**
 * Thread-safe memo table for findTrueVsafe results. Lookups and
 * inserts are mutex-protected; the search itself runs outside the lock
 * so concurrent threads never serialize on a miss (a duplicated
 * compute is benign — both arrive at the same truth).
 */
class VsafeCache
{
  public:
    /** Default bound: ~64k entries, a few MiB of GroundTruths. */
    static constexpr std::size_t kDefaultMaxEntries = 65536;

    explicit VsafeCache(std::size_t max_entries = kDefaultMaxEntries);

    /** Process-wide cache shared by the sweeps. */
    static VsafeCache &global();

    /** Cached search: hit returns the memoized truth, miss computes. */
    GroundTruth findOrCompute(const sim::PowerSystemConfig &config,
                              const load::CurrentProfile &profile,
                              const SearchOptions &options = {});

    std::size_t hits() const;
    std::size_t misses() const;
    std::size_t evictions() const;
    std::size_t size() const;
    std::size_t maxEntries() const;
    /** Rebound the table; evicts oldest-first down to the new cap. */
    void setMaxEntries(std::size_t max_entries);
    void clear();

    /**
     * Publish hit/miss/eviction totals into @p registry as the
     * harness.vsafe_cache.* gauges (GaugeMode::Last — totals, not
     * deltas, so repeated publishes don't double-count).
     */
    void publishTo(telemetry::Registry &registry) const;

  private:
    void evictDownToLocked(std::size_t limit);

    mutable std::mutex mutex_;
    std::size_t max_entries_;
    std::unordered_map<std::uint64_t, GroundTruth> entries_;
    /** Insertion order of live keys (front = oldest = next evicted). */
    std::deque<std::uint64_t> order_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
};

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_VSAFE_CACHE_HPP
