/**
 * @file
 * Memoized ground truth: the figure sweeps and the fuzz campaigns call
 * findTrueVsafe with overlapping (config, profile, resolution) tuples —
 * notably ablation variants that share a baseline — and each search
 * costs a bisection's worth of simulated executions. The cache keys the
 * exact numeric content of the search inputs and is safe to share
 * across the sweep executor's threads.
 *
 * Locking is striped (DESIGN.md §15): the table is split into N
 * independent shards, each with its own mutex, map, FIFO queue and
 * hit/miss/eviction counters. The splitmix64-mixed key picks the shard,
 * so concurrent sweep threads touching different keys never contend on
 * a shared lock; the aggregate counters are summed across shards on
 * read. The configured bound is distributed across shards, which makes
 * eviction FIFO *per shard* rather than globally — the same write-once,
 * temporal-locality argument applies shard-by-shard.
 *
 * The table is bounded (max_entries, FIFO eviction): drift and fuzz
 * campaigns mutate the power-system config continuously, so every
 * aging state keys a fresh entry and an unbounded memo would grow with
 * the campaign length. FIFO is deliberate — entries are write-once
 * truths with heavy temporal locality (a sweep finishes with a config
 * before moving on), so recency tracking would buy little for its
 * bookkeeping cost.
 */

#ifndef CULPEO_HARNESS_VSAFE_CACHE_HPP
#define CULPEO_HARNESS_VSAFE_CACHE_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "harness/ground_truth.hpp"

namespace culpeo::telemetry {
class Registry;
} // namespace culpeo::telemetry

namespace culpeo::harness {

/**
 * 64-bit key over every double that feeds a ground-truth search: all
 * capacitor/booster/monitor config fields, each profile segment's
 * (duration, current), the search resolution, and the fast-path flag.
 * splitmix64-mixed; collisions are astronomically unlikely at sweep
 * scale, and a collision only ever substitutes another *computed*
 * ground truth.
 */
std::uint64_t groundTruthKey(const sim::PowerSystemConfig &config,
                             const load::CurrentProfile &profile,
                             const SearchOptions &options);

/**
 * Thread-safe memo table for findTrueVsafe results. Lookups and
 * inserts lock only the key's stripe; the search itself runs outside
 * any lock so concurrent threads never serialize on a miss (a
 * duplicated compute is benign — both arrive at the same truth).
 */
class VsafeCache
{
  public:
    /** Default bound: ~64k entries, a few MiB of GroundTruths. */
    static constexpr std::size_t kDefaultMaxEntries = 65536;
    /** Default stripe count; plenty for the sweep executor's pools. */
    static constexpr std::size_t kDefaultStripes = 16;

    /**
     * @p stripes is clamped to @p max_entries so every stripe can hold
     * at least one entry. Pass stripes = 1 for the classic single-lock
     * table with one global FIFO order.
     */
    explicit VsafeCache(std::size_t max_entries = kDefaultMaxEntries,
                        std::size_t stripes = kDefaultStripes);

    /** Process-wide cache shared by the sweeps. */
    static VsafeCache &global();

    /** Cached search: hit returns the memoized truth, miss computes. */
    GroundTruth findOrCompute(const sim::PowerSystemConfig &config,
                              const load::CurrentProfile &profile,
                              const SearchOptions &options = {});

    // Aggregates, summed across stripes on read.
    std::size_t hits() const;
    std::size_t misses() const;
    std::size_t evictions() const;
    std::size_t size() const;

    std::size_t maxEntries() const;
    std::size_t stripeCount() const { return stripe_count_; }

    /**
     * Rebound the table; each stripe evicts oldest-first down to its
     * share of the new cap. Shrinking below stripeCount() leaves some
     * stripes with a zero share — their keys stop being cacheable
     * until the bound is raised again.
     */
    void setMaxEntries(std::size_t max_entries);
    void clear();

    /**
     * Publish hit/miss/eviction totals into @p registry as the
     * harness.vsafe_cache.* gauges (GaugeMode::Last — totals, not
     * deltas, so repeated publishes don't double-count).
     */
    void publishTo(telemetry::Registry &registry) const;

  private:
    struct Stripe
    {
        mutable std::mutex mutex;
        std::unordered_map<std::uint64_t, GroundTruth> entries;
        /** Insertion order of live keys (front = oldest = evicted). */
        std::deque<std::uint64_t> order;
        std::size_t max_entries = 0; ///< This stripe's share of the cap.
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t evictions = 0;

        void evictDownToLocked(std::size_t limit);
    };

    Stripe &stripeFor(std::uint64_t key)
    {
        return stripes_[key % stripe_count_];
    }

    /** Split @p max_entries across stripes (earlier stripes get +1). */
    void distributeCapsLocked(std::size_t max_entries);

    std::size_t stripe_count_;
    std::unique_ptr<Stripe[]> stripes_;
    /** Guards max_entries_ and cap redistribution, not lookups. */
    mutable std::mutex config_mutex_;
    std::size_t max_entries_;
};

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_VSAFE_CACHE_HPP
