/**
 * @file
 * Memoized ground truth: the figure sweeps and the fuzz campaigns call
 * findTrueVsafe with overlapping (config, profile, resolution) tuples —
 * notably ablation variants that share a baseline — and each search
 * costs a bisection's worth of simulated executions. The cache keys the
 * exact numeric content of the search inputs and is safe to share
 * across the sweep executor's threads.
 */

#ifndef CULPEO_HARNESS_VSAFE_CACHE_HPP
#define CULPEO_HARNESS_VSAFE_CACHE_HPP

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "harness/ground_truth.hpp"

namespace culpeo::harness {

/**
 * 64-bit key over every double that feeds a ground-truth search: all
 * capacitor/booster/monitor config fields, each profile segment's
 * (duration, current), the search resolution, and the fast-path flag.
 * splitmix64-mixed; collisions are astronomically unlikely at sweep
 * scale, and a collision only ever substitutes another *computed*
 * ground truth.
 */
std::uint64_t groundTruthKey(const sim::PowerSystemConfig &config,
                             const load::CurrentProfile &profile,
                             const SearchOptions &options);

/**
 * Thread-safe memo table for findTrueVsafe results. Lookups and
 * inserts are mutex-protected; the search itself runs outside the lock
 * so concurrent threads never serialize on a miss (a duplicated
 * compute is benign — both arrive at the same truth).
 */
class VsafeCache
{
  public:
    /** Process-wide cache shared by the sweeps. */
    static VsafeCache &global();

    /** Cached search: hit returns the memoized truth, miss computes. */
    GroundTruth findOrCompute(const sim::PowerSystemConfig &config,
                              const load::CurrentProfile &profile,
                              const SearchOptions &options = {});

    std::size_t hits() const;
    std::size_t misses() const;
    std::size_t size() const;
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, GroundTruth> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

} // namespace culpeo::harness

#endif // CULPEO_HARNESS_VSAFE_CACHE_HPP
