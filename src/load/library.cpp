#include "library.hpp"

#include <sstream>

namespace culpeo::load {

using units::literals::operator""_mA;
using units::literals::operator""_ms;
using units::literals::operator""_s;

namespace {

std::string
pointName(const char *kind, Amps i, Seconds t)
{
    std::ostringstream os;
    os << kind << "_" << i.value() * 1e3 << "mA_" << t.value() * 1e3 << "ms";
    return os.str();
}

} // namespace

CurrentProfile
uniform(Amps i_load, Seconds t_pulse)
{
    return CurrentProfile(pointName("uniform", i_load, t_pulse),
                          {{t_pulse, i_load}});
}

Amps
computeTailCurrent()
{
    return 1.5_mA;
}

CurrentProfile
pulseWithCompute(Amps i_load, Seconds t_pulse)
{
    return CurrentProfile(pointName("pulse", i_load, t_pulse),
                          {{t_pulse, i_load},
                           {100.0_ms, computeTailCurrent()}});
}

std::vector<SyntheticPoint>
figure10Sweep()
{
    return {
        {5.0_mA, 100.0_ms},  {10.0_mA, 100.0_ms}, {5.0_mA, 10.0_ms},
        {10.0_mA, 10.0_ms},  {25.0_mA, 10.0_ms},  {50.0_mA, 10.0_ms},
        {10.0_mA, 1.0_ms},   {25.0_mA, 1.0_ms},   {50.0_mA, 1.0_ms},
    };
}

std::vector<SyntheticPoint>
figure6Sweep()
{
    return {
        {5.0_mA, 100.0_ms}, {10.0_mA, 100.0_ms}, {5.0_mA, 10.0_ms},
        {10.0_mA, 10.0_ms}, {25.0_mA, 10.0_ms},  {50.0_mA, 10.0_ms},
    };
}

CurrentProfile
gestureSensor()
{
    // LED burst ramps up, holds peak, and trails off (Table III: 25 mA
    // max over 3.5 ms).
    return CurrentProfile("gesture", {
        {0.5_ms, 8.0_mA},
        {2.5_ms, 25.0_mA},
        {0.5_ms, 12.0_mA},
    });
}

CurrentProfile
bleRadio()
{
    // Radio wakeup, transmit burst, RX turnaround (13 mA max, 17 ms).
    return CurrentProfile("ble", {
        {3.0_ms, 5.0_mA},
        {9.0_ms, 13.0_mA},
        {5.0_ms, 7.0_mA},
    });
}

CurrentProfile
mnistCompute()
{
    return CurrentProfile("mnist", {{1.1_s, 5.0_mA}});
}

CurrentProfile
imuRead()
{
    // 32 samples: sensor power-up and FIFO burst read (high current up
    // front) followed by a low-power processing tail. The tail lets the
    // ESR drop rebound before an end-of-task voltage measurement — the
    // shape that defeats energy-only estimates (Section II-D).
    return CurrentProfile("imu_read", {
        {20.0_ms, 20.0_mA},
        {200.0_ms, 3.0_mA},
    });
}

CurrentProfile
photoSense()
{
    // A burst of photoresistor ADC reads plus averaging; runs
    // back-to-back whenever the scheduler grants low-priority energy.
    return CurrentProfile("photo_sense", {{50.0_ms, 3.0_mA}});
}

CurrentProfile
encrypt()
{
    return CurrentProfile("encrypt", {{50.0_ms, 3.0_mA}});
}

CurrentProfile
bleSendListen(Seconds listen_window)
{
    CurrentProfile listen("listen", {{listen_window, 1.2_mA}});
    return bleRadio().then(listen).renamed("ble_send_listen");
}

CurrentProfile
micSample()
{
    // 256 samples at 12 kHz is ~21.3 ms of mic + ADC activity.
    return CurrentProfile("mic_sample", {{Seconds(256.0 / 12000.0),
                                          2.5_mA}});
}

CurrentProfile
fftCompute()
{
    return CurrentProfile("fft", {{100.0_ms, 2.0_mA}});
}

} // namespace culpeo::load
