/**
 * @file
 * The load-profile library: the synthetic Uniform/Pulse loads and real
 * peripheral profiles of Table III, plus the per-task profiles of the
 * three full applications (Section VI-B).
 *
 * Peak currents and pulse widths follow the paper: gesture sensor 25 mA
 * for 3.5 ms, BLE radio 13 mA for 17 ms, compute acceleration (MNIST on a
 * Cortex-M4) 5 mA for 1.1 s, low-power compute tail 1.5 mA for 100 ms.
 */

#ifndef CULPEO_LOAD_LIBRARY_HPP
#define CULPEO_LOAD_LIBRARY_HPP

#include <vector>

#include "load/profile.hpp"

namespace culpeo::load {

// --- Synthetic loads (Table III) ---

/** Single rectangular pulse: Iload for tpulse. */
CurrentProfile uniform(Amps i_load, Seconds t_pulse);

/**
 * High-current pulse followed by 100 ms of low-power compute at
 * Icompute = 1.5 mA: peripheral activation then computation.
 */
CurrentProfile pulseWithCompute(Amps i_load, Seconds t_pulse);

/** The compute-tail current used by pulseWithCompute. */
Amps computeTailCurrent();

/** One (Iload, tpulse) point of the synthetic sweep. */
struct SyntheticPoint
{
    Amps i_load;
    Seconds t_pulse;
};

/**
 * The Figure 10 sweep: {5, 10} mA at 100 ms; {5, 10, 25, 50} mA at 10 ms;
 * {10, 25, 50} mA at 1 ms.
 */
std::vector<SyntheticPoint> figure10Sweep();

/** The Figure 6 subset (no 1 ms points). */
std::vector<SyntheticPoint> figure6Sweep();

// --- Real peripheral profiles (Table III) ---

/** APDS-9960 gesture-recognition sensing burst: 25 mA peak, 3.5 ms. */
CurrentProfile gestureSensor();

/** CC2650 BLE radio packet: 13 mA peak, 17 ms. */
CurrentProfile bleRadio();

/** MNIST digit-recognition DNN on a Cortex-M4: 5 mA for 1.1 s. */
CurrentProfile mnistCompute();

// --- Application task profiles (Section VI-B) ---

/** Read 32 samples from the IMU (Periodic Sensing / RR first task). */
CurrentProfile imuRead();

/** Background photoresistor read + averaging (PS / RR low priority). */
CurrentProfile photoSense();

/** Encrypt the IMU samples (RR second task). */
CurrentProfile encrypt();

/**
 * BLE transmit followed by a low-power listen window (RR third task:
 * 2 s listen; NMR report: configurable).
 */
CurrentProfile bleSendListen(Seconds listen_window);

/** Read 256 microphone samples at 12 kHz (NMR sampling task). */
CurrentProfile micSample();

/** FFT over the microphone samples (NMR low-priority task). */
CurrentProfile fftCompute();

} // namespace culpeo::load

#endif // CULPEO_LOAD_LIBRARY_HPP
