#include "profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::load {

CurrentProfile::CurrentProfile(std::string name, std::vector<Segment> segments)
    : name_(std::move(name)), segments_(std::move(segments))
{
    for (const auto &seg : segments_) {
        log::fatalIf(seg.duration.value() <= 0.0,
                     "profile segment durations must be positive: ", name_);
        log::fatalIf(seg.current.value() < 0.0,
                     "profile segment currents must be non-negative: ",
                     name_);
    }
    buildIndex();
}

void
CurrentProfile::buildIndex()
{
    cumulative_.clear();
    cumulative_.reserve(segments_.size());
    double t = 0.0;
    for (const auto &seg : segments_) {
        t += seg.duration.value();
        cumulative_.push_back(t);
    }
}

Seconds
CurrentProfile::duration() const
{
    return cumulative_.empty() ? Seconds(0.0) : Seconds(cumulative_.back());
}

Amps
CurrentProfile::currentAt(Seconds t) const
{
    if (segments_.empty() || t.value() < 0.0 ||
        t.value() >= cumulative_.back()) {
        return Amps(0.0);
    }
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), t.value());
    const auto idx = std::size_t(it - cumulative_.begin());
    return segments_[idx].current;
}

units::Coulombs
CurrentProfile::charge() const
{
    units::Coulombs total{0.0};
    for (const auto &seg : segments_)
        total = units::Coulombs(total.value() +
                                (seg.current * seg.duration).value());
    return total;
}

Joules
CurrentProfile::energyAt(Volts vout) const
{
    Joules total{0.0};
    for (const auto &seg : segments_)
        total += (vout * seg.current) * seg.duration;
    return total;
}

Amps
CurrentProfile::peakCurrent() const
{
    Amps peak{0.0};
    for (const auto &seg : segments_)
        peak = std::max(peak, seg.current);
    return peak;
}

Amps
CurrentProfile::meanCurrent() const
{
    const double total = duration().value();
    if (total <= 0.0)
        return Amps(0.0);
    return Amps(charge().value() / total);
}

Seconds
CurrentProfile::widestPulseAbove(Amps threshold) const
{
    Seconds widest{0.0};
    Seconds run{0.0};
    for (const auto &seg : segments_) {
        if (seg.current >= threshold) {
            run += seg.duration;
            widest = std::max(widest, run);
        } else {
            run = Seconds(0.0);
        }
    }
    return widest;
}

CurrentProfile
CurrentProfile::then(const CurrentProfile &next) const
{
    std::vector<Segment> combined = segments_;
    combined.insert(combined.end(), next.segments_.begin(),
                    next.segments_.end());
    return CurrentProfile(name_ + "+" + next.name_, std::move(combined));
}

CurrentProfile
CurrentProfile::repeat(unsigned times) const
{
    log::fatalIf(times == 0, "repeat count must be positive");
    std::vector<Segment> combined;
    combined.reserve(segments_.size() * times);
    for (unsigned i = 0; i < times; ++i)
        combined.insert(combined.end(), segments_.begin(), segments_.end());
    return CurrentProfile(name_ + "x" + std::to_string(times),
                          std::move(combined));
}

CurrentProfile
CurrentProfile::scaled(double factor) const
{
    log::fatalIf(factor < 0.0, "scale factor must be non-negative");
    std::vector<Segment> scaled = segments_;
    for (auto &seg : scaled)
        seg.current = seg.current * factor;
    return CurrentProfile(name_, std::move(scaled));
}

CurrentProfile
CurrentProfile::renamed(std::string name) const
{
    return CurrentProfile(std::move(name), segments_);
}

SampledTrace::SampledTrace(Hertz rate, std::vector<Amps> samples)
    : rate_(rate), samples_(std::move(samples))
{
    log::fatalIf(rate_.value() <= 0.0, "sample rate must be positive");
}

SampledTrace
SampledTrace::fromProfile(const CurrentProfile &profile, Hertz rate)
{
    log::fatalIf(rate.value() <= 0.0, "sample rate must be positive");
    const double period = 1.0 / rate.value();
    const double total = profile.duration().value();
    const auto count = std::size_t(std::ceil(total / period));
    std::vector<Amps> samples;
    samples.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Sample at the middle of each period to avoid edge ambiguity.
        samples.push_back(profile.currentAt(Seconds((double(i) + 0.5) *
                                                    period)));
    }
    return SampledTrace(rate, std::move(samples));
}

Seconds
SampledTrace::duration() const
{
    return Seconds(double(samples_.size()) / rate_.value());
}

} // namespace culpeo::load
