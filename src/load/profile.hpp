/**
 * @file
 * Load current profiles: piecewise-constant current demand over time.
 *
 * A profile describes what a software task draws from the output booster
 * at Vout. Profiles are the input both to the power-system simulator
 * ("run this task") and to Culpeo-PG ("here is the task's measured
 * current trace", Section V-A).
 */

#ifndef CULPEO_LOAD_PROFILE_HPP
#define CULPEO_LOAD_PROFILE_HPP

#include <string>
#include <vector>

#include "util/units.hpp"

namespace culpeo::load {

using units::Amps;
using units::Hertz;
using units::Joules;
using units::Seconds;
using units::Volts;

/** One constant-current stretch of a profile. */
struct Segment
{
    Seconds duration{0.0};
    Amps current{0.0};
};

/**
 * A named, piecewise-constant current profile. Immutable after
 * construction except through the composition helpers, which return new
 * profiles.
 */
class CurrentProfile
{
  public:
    CurrentProfile() = default;
    CurrentProfile(std::string name, std::vector<Segment> segments);

    const std::string &name() const { return name_; }
    const std::vector<Segment> &segments() const { return segments_; }
    bool empty() const { return segments_.empty(); }

    /** Total profile duration. */
    Seconds duration() const;

    /** Current demanded at offset @p t from the profile start. */
    Amps currentAt(Seconds t) const;

    /** Charge delivered to the load over the whole profile. */
    units::Coulombs charge() const;

    /** Load-side energy at supply voltage @p vout. */
    Joules energyAt(Volts vout) const;

    /** Highest current in any segment. */
    Amps peakCurrent() const;

    /** Mean current over the profile duration. */
    Amps meanCurrent() const;

    /**
     * Width of the longest contiguous stretch with current at or above
     * @p threshold. Culpeo-PG uses the widest pulse (excluding
     * high-frequency noise) to pick an ESR from the frequency curve
     * (Section IV-B).
     */
    Seconds widestPulseAbove(Amps threshold) const;

    /** New profile: this followed by @p next. */
    CurrentProfile then(const CurrentProfile &next) const;

    /** New profile: this repeated @p times. */
    CurrentProfile repeat(unsigned times) const;

    /** New profile with all currents multiplied by @p factor. */
    CurrentProfile scaled(double factor) const;

    /** New profile with the given name. */
    CurrentProfile renamed(std::string name) const;

  private:
    std::string name_;
    std::vector<Segment> segments_;
    std::vector<double> cumulative_; ///< Cumulative end time per segment.

    void buildIndex();
};

/**
 * A uniformly sampled current trace, the on-disk artifact Culpeo-PG
 * ingests (captured at 125 kHz on the prototype, Section V-A).
 */
class SampledTrace
{
  public:
    SampledTrace(Hertz rate, std::vector<Amps> samples);

    /** Sample @p profile at @p rate (last partial sample included). */
    static SampledTrace fromProfile(const CurrentProfile &profile,
                                    Hertz rate);

    Hertz rate() const { return rate_; }
    Seconds samplePeriod() const { return units::periodOf(rate_); }
    std::size_t size() const { return samples_.size(); }
    Amps operator[](std::size_t i) const { return samples_[i]; }
    const std::vector<Amps> &samples() const { return samples_; }
    Seconds duration() const;

  private:
    Hertz rate_;
    std::vector<Amps> samples_;
};

} // namespace culpeo::load

#endif // CULPEO_LOAD_PROFILE_HPP
