#include "trace_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.hpp"

namespace culpeo::load {

void
saveTraceCsv(const SampledTrace &trace, const std::string &path)
{
    std::ofstream out(path);
    log::fatalIf(!out.is_open(), "cannot open trace file for writing: ",
                 path);
    out << "sample_rate_hz," << std::setprecision(17)
        << trace.rate().value() << '\n';
    for (std::size_t i = 0; i < trace.size(); ++i)
        out << std::setprecision(17) << trace[i].value() << '\n';
    log::fatalIf(!out.good(), "failed while writing trace file: ", path);
}

SampledTrace
loadTraceCsv(const std::string &path)
{
    std::ifstream in(path);
    log::fatalIf(!in.is_open(), "cannot open trace file: ", path);

    std::string header;
    log::fatalIf(!std::getline(in, header),
                 "trace file is empty: ", path);
    const std::string prefix = "sample_rate_hz,";
    log::fatalIf(header.rfind(prefix, 0) != 0,
                 "trace file has a bad header: ", path);
    double rate = 0.0;
    try {
        rate = std::stod(header.substr(prefix.size()));
    } catch (const std::exception &) {
        log::fatal("trace file has an unparsable sample rate: ", path);
    }
    log::fatalIf(rate <= 0.0, "trace sample rate must be positive: ",
                 path);

    std::vector<Amps> samples;
    std::string line;
    std::size_t line_number = 1;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty())
            continue;
        try {
            std::size_t consumed = 0;
            const double value = std::stod(line, &consumed);
            log::fatalIf(consumed != line.size(),
                         "trailing characters on trace line ",
                         line_number, " of ", path);
            log::fatalIf(value < 0.0 || !std::isfinite(value),
                         "invalid current sample on line ", line_number,
                         " of ", path);
            samples.push_back(Amps(value));
        } catch (const log::FatalError &) {
            throw;
        } catch (const std::exception &) {
            log::fatal("unparsable sample on line ", line_number, " of ",
                       path);
        }
    }
    return SampledTrace(Hertz(rate), std::move(samples));
}

CurrentProfile
profileFromTrace(const SampledTrace &trace, const std::string &name,
                 Amps tolerance)
{
    log::fatalIf(tolerance.value() < 0.0, "tolerance cannot be negative");
    std::vector<Segment> segments;
    const double period = trace.samplePeriod().value();

    std::size_t i = 0;
    while (i < trace.size()) {
        const double level = trace[i].value();
        std::size_t run = 1;
        while (i + run < trace.size() &&
               std::abs(trace[i + run].value() - level) <=
                   tolerance.value()) {
            ++run;
        }
        // Zero-current stretches still occupy time in the profile, but
        // CurrentProfile requires non-negative currents only; keep the
        // measured level as-is.
        segments.push_back({units::Seconds(double(run) * period),
                            Amps(level)});
        i += run;
    }
    return CurrentProfile(name, std::move(segments));
}

} // namespace culpeo::load
