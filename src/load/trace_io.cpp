#include "trace_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.hpp"

namespace culpeo::load {

void
saveTraceCsv(const SampledTrace &trace, const std::string &path)
{
    std::ofstream out(path);
    log::fatalIf(!out.is_open(), "cannot open trace file for writing: ",
                 path);
    out << "sample_rate_hz," << std::setprecision(17)
        << trace.rate().value() << '\n';
    for (std::size_t i = 0; i < trace.size(); ++i)
        out << std::setprecision(17) << trace[i].value() << '\n';
    log::fatalIf(!out.good(), "failed while writing trace file: ", path);
}

util::Expected<SampledTrace, util::CsvError>
loadTraceCsvChecked(const std::string &path)
{
    util::Expected<std::vector<util::CsvRow>, util::CsvError> rows =
        util::readCsvRows(path, 1);
    if (!rows)
        return util::fail(rows.error());

    const util::CsvRow &header = rows->front();
    if (header.cells[0] != "sample_rate_hz")
        return util::fail(util::CsvError{
            util::CsvErrorCode::BadHeader, header.line,
            "expected 'sample_rate_hz,<rate>' in " + path});
    if (header.cells.size() < 2)
        return util::fail(
            util::CsvError{util::CsvErrorCode::ShortRow, header.line,
                           "header is missing the sample rate"});
    const util::Expected<double, util::CsvError> rate =
        util::csvNumber(header.cells[1], header.line);
    if (!rate)
        return util::fail(rate.error());
    if (*rate <= 0.0)
        return util::fail(
            util::CsvError{util::CsvErrorCode::BadValue, header.line,
                           "sample rate must be positive"});

    std::vector<Amps> samples;
    samples.reserve(rows->size() - 1);
    for (std::size_t r = 1; r < rows->size(); ++r) {
        const util::CsvRow &row = (*rows)[r];
        if (row.cells.size() != 1)
            return util::fail(util::CsvError{
                util::CsvErrorCode::MalformedRow, row.line,
                "expected one current sample per line, got " +
                    std::to_string(row.cells.size()) + " fields"});
        const util::Expected<double, util::CsvError> value =
            util::csvNumber(row.cells[0], row.line);
        if (!value)
            return util::fail(value.error());
        if (*value < 0.0)
            return util::fail(util::CsvError{
                util::CsvErrorCode::BadValue, row.line,
                "current samples cannot be negative"});
        samples.push_back(Amps(*value));
    }
    return SampledTrace(Hertz(*rate), std::move(samples));
}

SampledTrace
loadTraceCsv(const std::string &path)
{
    util::Expected<SampledTrace, util::CsvError> trace =
        loadTraceCsvChecked(path);
    if (!trace)
        log::fatal("trace file ", path, ": ", trace.error().message());
    return std::move(*trace);
}

CurrentProfile
profileFromTrace(const SampledTrace &trace, const std::string &name,
                 Amps tolerance)
{
    log::fatalIf(tolerance.value() < 0.0, "tolerance cannot be negative");
    std::vector<Segment> segments;
    const double period = trace.samplePeriod().value();

    std::size_t i = 0;
    while (i < trace.size()) {
        const double level = trace[i].value();
        std::size_t run = 1;
        while (i + run < trace.size() &&
               std::abs(trace[i + run].value() - level) <=
                   tolerance.value()) {
            ++run;
        }
        // Zero-current stretches still occupy time in the profile, but
        // CurrentProfile requires non-negative currents only; keep the
        // measured level as-is.
        segments.push_back({units::Seconds(double(run) * period),
                            Amps(level)});
        i += run;
    }
    return CurrentProfile(name, std::move(segments));
}

} // namespace culpeo::load
