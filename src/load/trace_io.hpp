/**
 * @file
 * File I/O for task current traces: the on-disk artifact a measurement
 * instrument (e.g. the STM32 power shield the paper profiles with,
 * Section V-A) produces and Culpeo-PG ingests.
 *
 * Format: plain CSV. The first line is the header
 * `sample_rate_hz,<rate>`; each following line is one current sample in
 * amperes. A round-trip through save/load is exact to double precision
 * (printed with 17 significant digits).
 */

#ifndef CULPEO_LOAD_TRACE_IO_HPP
#define CULPEO_LOAD_TRACE_IO_HPP

#include <string>

#include "load/profile.hpp"
#include "util/csv.hpp"
#include "util/expected.hpp"

namespace culpeo::load {

/** Write @p trace to @p path. @throws log::FatalError on I/O failure. */
void saveTraceCsv(const SampledTrace &trace, const std::string &path);

/**
 * Load a trace written by saveTraceCsv (or by an external capture
 * tool following the same format), reporting every malformed-input
 * class — missing file, bad or truncated header, short rows, an
 * unparsable / non-finite / negative sample — as a typed
 * util::CsvError locating the offending line instead of unwinding.
 */
util::Expected<SampledTrace, util::CsvError>
loadTraceCsvChecked(const std::string &path);

/**
 * loadTraceCsvChecked for call sites that treat a bad trace file as a
 * configuration error.
 * @throws log::FatalError carrying the CsvError's message.
 */
SampledTrace loadTraceCsv(const std::string &path);

/**
 * Reconstruct a piecewise-constant CurrentProfile from a sampled trace,
 * merging runs of (approximately) equal samples into single segments.
 * Useful for replaying captured traces through the simulator.
 *
 * @param tolerance samples within this of each other merge into one
 *        segment.
 */
CurrentProfile profileFromTrace(const SampledTrace &trace,
                                const std::string &name,
                                Amps tolerance = Amps(1e-5));

} // namespace culpeo::load

#endif // CULPEO_LOAD_TRACE_IO_HPP
