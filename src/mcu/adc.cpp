#include "adc.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::mcu {

AdcConfig
msp430OnChipAdc()
{
    AdcConfig cfg;
    cfg.bits = 12;
    cfg.sample_rate = Hertz(1000.0); // 1 ms profiling timer (Section V-C).
    cfg.vref = Volts(2.56);
    cfg.active_power = Watts(180e-6);
    return cfg;
}

AdcConfig
dedicated8BitAdc()
{
    AdcConfig cfg;
    cfg.bits = 8;
    cfg.sample_rate = Hertz(100e3); // 100 kHz block clock (Section V-D).
    cfg.vref = Volts(2.56);
    cfg.active_power = Watts(140e-9);
    return cfg;
}

Adc::Adc(AdcConfig config) : config_(config)
{
    log::fatalIf(config_.bits == 0 || config_.bits > 24,
                 "ADC resolution must be in 1..24 bits");
    log::fatalIf(config_.vref.value() <= 0.0, "vref must be positive");
    log::fatalIf(config_.sample_rate.value() <= 0.0,
                 "sample rate must be positive");
    max_code_ = (1u << config_.bits) - 1u;
}

std::uint32_t
Adc::quantize(Volts v) const
{
    const double clamped = std::clamp(v.value(), 0.0, config_.vref.value());
    const double code =
        std::floor(clamped / config_.vref.value() * double(max_code_ + 1u));
    return std::uint32_t(std::min(code, double(max_code_)));
}

Volts
Adc::toVolts(std::uint32_t code) const
{
    return Volts(double(code) * lsb().value());
}

Volts
Adc::readCeil(Volts v) const
{
    // Unlike a hardware register, this software-side bound may exceed
    // full scale by one LSB: a saturated conversion means "at least full
    // scale", and rounding down there would underestimate the energy.
    return toVolts(quantize(v) + 1u);
}

Volts
Adc::lsb() const
{
    return Volts(config_.vref.value() / double(max_code_ + 1u));
}

Amps
Adc::supplyCurrent(Volts vout) const
{
    log::fatalIf(vout.value() <= 0.0, "supply voltage must be positive");
    return Amps(config_.active_power.value() / vout.value());
}

Seconds
Adc::samplePeriod() const
{
    return units::periodOf(config_.sample_rate);
}

Watts
msp430ActivePower()
{
    // 8 MHz, Vcc = 2.5 V, 50% SRAM hit rate (paper footnote 1): ~4.3 mW,
    // which makes the 180 uW on-chip ADC 4.2% of MCU power and the 140 nW
    // dedicated ADC 0.003%.
    return Watts(4.3e-3);
}

Watts
msp430SleepPower()
{
    return Watts(2.0e-6);
}

} // namespace culpeo::mcu
