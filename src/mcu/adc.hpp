/**
 * @file
 * ADC models used by the two Culpeo-R implementations (Section V).
 *
 * Culpeo-R-ISR samples the capacitor voltage with the MCU's on-chip
 * 12-bit ADC at 1 kHz, burning ~180 uW while active; Culpeo-uArch uses a
 * dedicated 8-bit ADC at 100 kHz consuming ~140 nW. Quantization and
 * sample-rate aliasing are exactly the accuracy effects Figure 10
 * attributes to the two designs.
 */

#ifndef CULPEO_MCU_ADC_HPP
#define CULPEO_MCU_ADC_HPP

#include <cstdint>

#include "util/units.hpp"

namespace culpeo::mcu {

using units::Amps;
using units::Hertz;
using units::Seconds;
using units::Volts;
using units::Watts;

/** Static ADC description. */
struct AdcConfig
{
    unsigned bits = 12;         ///< Resolution.
    Hertz sample_rate{1000.0};  ///< Conversion rate while sampling.
    Volts vref{2.56};           ///< Full-scale input voltage.
    Watts active_power{180e-6}; ///< Power while converting.
};

/** MSP430-class on-chip 12-bit ADC (Culpeo-R-ISR, 1 ms timer). */
AdcConfig msp430OnChipAdc();

/** Dedicated 130 nm 8-bit ADC (Culpeo-uArch, 100 kHz clock, 140 nW). */
AdcConfig dedicated8BitAdc();

/**
 * Quantizing ADC. Stateless conversion plus a helper for the extra load
 * current its power draw adds at the regulated supply voltage.
 */
class Adc
{
  public:
    explicit Adc(AdcConfig config);

    const AdcConfig &config() const { return config_; }
    unsigned maxCode() const { return max_code_; }

    /** Convert @p v to a code (clamped to the full-scale range). */
    std::uint32_t quantize(Volts v) const;

    /** Voltage represented by @p code (code * LSB). */
    Volts toVolts(std::uint32_t code) const;

    /** One LSB in volts. */
    Volts lsb() const;

    /** Round-trip v through the converter (what software "reads"). */
    Volts read(Volts v) const { return toVolts(quantize(v)); }

    /**
     * Conservative upward read: one LSB above the truncated code.
     * Culpeo-R rounds Vstart up this way so quantization can only
     * overestimate the profiled energy (underestimating it would bias
     * Vsafe unsafe). May exceed full scale by one LSB: a saturated
     * conversion means "at least full scale".
     */
    Volts readCeil(Volts v) const;

    /** Extra load current while converting, at supply voltage @p vout. */
    Amps supplyCurrent(Volts vout) const;

    Seconds samplePeriod() const;

  private:
    AdcConfig config_;
    unsigned max_code_;
};

/** MSP430FR5994-class MCU power at 8 MHz, Vcc 2.5 V, 50% SRAM hit rate. */
Watts msp430ActivePower();

/** MCU sleep (LPM3-class) power used while waiting for rebound. */
Watts msp430SleepPower();

} // namespace culpeo::mcu

#endif // CULPEO_MCU_ADC_HPP
