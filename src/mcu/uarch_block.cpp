#include "uarch_block.hpp"

#include "util/logging.hpp"

namespace culpeo::mcu {

UArchBlock::UArchBlock(AdcConfig adc) : adc_(adc)
{
    log::fatalIf(adc.bits != 8,
                 "the Culpeo-uArch capture path is 8 bits wide");
}

void
UArchBlock::configure(bool on)
{
    enabled_ = on;
    if (!on) {
        sampling_ = false;
        accumulated_ = 0.0;
    }
}

void
UArchBlock::prepare(CaptureMode mode)
{
    log::fatalIf(!enabled_, "prepare() issued while the block is disabled");
    mode_ = mode;
    capture_ = (mode == CaptureMode::Min) ? 0xFF : 0x00;
}

void
UArchBlock::sample(CaptureMode mode)
{
    log::fatalIf(!enabled_, "sample() issued while the block is disabled");
    mode_ = mode;
    sampling_ = true;
    accumulated_ = 0.0;
}

std::uint8_t
UArchBlock::convertNow(Volts vcap) const
{
    return std::uint8_t(adc_.quantize(vcap));
}

void
UArchBlock::applyComparator(std::uint8_t code)
{
    // The XOR-selected comparator (Figure 9): write-enable asserts when
    // the new code is below (min mode) or above (max mode) the register.
    const bool write = (mode_ == CaptureMode::Min) ? (code < capture_)
                                                   : (code > capture_);
    if (write)
        capture_ = code;
}

void
UArchBlock::tick(Seconds dt, Volts vcap)
{
    if (!enabled_ || !sampling_)
        return;
    log::fatalIf(dt.value() <= 0.0, "tick requires dt > 0");

    const double period = adc_.samplePeriod().value();
    accumulated_ += dt.value();
    while (accumulated_ >= period) {
        accumulated_ -= period;
        applyComparator(convertNow(vcap));
    }
}

Amps
UArchBlock::supplyCurrent(Volts vout) const
{
    if (!enabled_)
        return Amps(0.0);
    return adc_.supplyCurrent(vout);
}

} // namespace culpeo::mcu
