/**
 * @file
 * The Culpeo-uArch on-chip peripheral (Figure 9): a dedicated 8-bit ADC,
 * an 8-bit digital comparator, and a single min/max capture register,
 * exposed to software through the memory-mapped command interface of
 * Table II (configure / prepare / sample / read).
 *
 * The block samples Vcap on its own clock with no MCU involvement; the
 * comparator conditionally overwrites the capture register so that after
 * a task it holds the minimum (or, during rebound, maximum) observed
 * voltage code.
 */

#ifndef CULPEO_MCU_UARCH_BLOCK_HPP
#define CULPEO_MCU_UARCH_BLOCK_HPP

#include <cstdint>

#include "mcu/adc.hpp"

namespace culpeo::mcu {

/** Min/max selection for the capture register ("min/max" input, Fig. 9). */
enum class CaptureMode : std::uint8_t { Min, Max };

/**
 * Behavioural model of the Culpeo-uArch peripheral block. The simulation
 * harness calls tick() with the evolving terminal voltage; the block
 * samples at its configured ADC rate and maintains the capture register
 * exactly as the hardware comparator would.
 */
class UArchBlock
{
  public:
    explicit UArchBlock(AdcConfig adc = dedicated8BitAdc());

    // --- Table II command interface ---

    /** configure([on/off]): enable or disable the ADC and comparator. */
    void configure(bool on);

    /** prepare([min/max]): preset the capture register (0xFF / 0x00). */
    void prepare(CaptureMode mode);

    /** sample([min/max]): start repeated sampling in the given mode. */
    void sample(CaptureMode mode);

    /** read(): current value of the capture register. */
    std::uint8_t read() const { return capture_; }

    /** Capture register as a voltage. */
    Volts readVolts() const { return adc_.toVolts(capture_); }

    /** Immediate one-shot conversion of the present input. */
    std::uint8_t convertNow(Volts vcap) const;

    // --- Simulation hooks ---

    /**
     * Advance the block by @p dt with the input at @p vcap. Performs all
     * ADC conversions whose sample instants fall in the elapsed window.
     * The input is treated as constant across the window, so callers
     * should tick at least as fast as the signal changes of interest.
     */
    void tick(Seconds dt, Volts vcap);

    /** Supply current while enabled (0 when off). */
    Amps supplyCurrent(Volts vout) const;

    bool enabled() const { return enabled_; }
    bool sampling() const { return sampling_; }
    CaptureMode mode() const { return mode_; }
    const Adc &adc() const { return adc_; }

  private:
    Adc adc_;
    bool enabled_ = false;
    bool sampling_ = false;
    CaptureMode mode_ = CaptureMode::Min;
    std::uint8_t capture_ = 0xFF;
    double accumulated_ = 0.0; ///< Time since the last conversion (s).

    void applyComparator(std::uint8_t code);
};

} // namespace culpeo::mcu

#endif // CULPEO_MCU_UARCH_BLOCK_HPP
