#include "intermittent.hpp"

#include "harness/task_runner.hpp"
#include "util/logging.hpp"

namespace culpeo::runtime {

unsigned
ProgramResult::totalFailures() const
{
    unsigned total = 0;
    for (const auto &stats : per_task)
        total += stats.failures;
    return total;
}

ProgramResult
runProgram(sim::PowerSystem &system, const std::vector<AtomicTask> &program,
            const RuntimeOptions &options)
{
    log::fatalIf(options.policy == DispatchPolicy::VsafeGated &&
                     options.culpeo == nullptr,
                 "VsafeGated dispatch requires a Culpeo instance");
    log::fatalIf(options.idle_dt.value() <= 0.0,
                 "idle_dt must be positive");

    ProgramResult result;
    result.per_task.reserve(program.size());
    for (const auto &task : program)
        result.per_task.push_back({task.name, 0, 0, 0});

    const Seconds deadline = system.now() + options.timeout;
    const Volts vhigh = system.vhigh();
    // "Full" for the non-termination check. The monitor re-enables when
    // the *charging* terminal voltage reaches Vhigh, which overshoots
    // the resting voltage by the charge current's ESR drop, so accept a
    // margin below Vhigh as "effectively full".
    const Volts full_threshold = vhigh - Volts(50e-3);

    for (std::size_t i = 0; i < program.size(); ++i) {
        const AtomicTask &task = program[i];
        TaskStats &stats = result.per_task[i];
        unsigned failures_from_full = 0;

        while (true) {
            if (system.now() >= deadline) {
                result.elapsed = system.now();
                return result; // Timed out; finished stays false.
            }

            // Wait for the dispatch condition. Software sees the
            // voltage through the attached fault hooks' ADC model.
            const bool enabled = system.monitor().enabled();
            const Volts observed = system.observedRestingVoltage();
            const bool gated =
                options.policy == DispatchPolicy::VsafeGated;
            bool may_run = enabled;
            if (may_run && gated) {
                may_run = options.culpeo->feasible(
                    task.id, observed - options.dispatch_margin);
            }
            if (!may_run) {
                system.step(options.idle_dt, units::Amps(0.0));
                continue;
            }

            // Atomic execution attempt. A Vsafe-gated dispatch is a
            // safety commitment the attached observer can audit;
            // opportunistic dispatch claims nothing.
            const bool from_full = observed >= full_threshold;
            if (gated) {
                system.notifyCommit(task.name, system.restingVoltage(),
                                    options.culpeo->getVsafe(task.id) +
                                        options.dispatch_margin);
            }
            harness::RunOptions run_options;
            run_options.dt = harness::chooseDt(task.profile);
            run_options.settle_rebound = false;
            ++stats.executions;
            const harness::RunResult run =
                harness::runTask(system, task.profile, run_options);
            if (gated)
                system.notifyCommitEnd(run.completed);
            if (run.completed) {
                ++stats.completions;
                break;
            }

            // Power failure: the task will re-execute from its start
            // once the device recharges (monitor hysteresis enforces a
            // full recharge).
            ++stats.failures;
            if (from_full) {
                ++failures_from_full;
                if (failures_from_full >= options.max_attempts_from_full) {
                    result.nonterminating = true;
                    result.stuck_task = task.name;
                    result.elapsed = system.now();
                    result.power_failures =
                        system.monitor().powerFailures();
                    return result;
                }
            }
        }
    }

    result.finished = true;
    result.elapsed = system.now();
    result.power_failures = system.monitor().powerFailures();
    return result;
}

} // namespace culpeo::runtime
