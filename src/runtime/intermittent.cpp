#include "intermittent.hpp"

#include "harness/task_runner.hpp"
#include "sched/supervisor.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace culpeo::runtime {

unsigned
ProgramResult::totalFailures() const
{
    unsigned total = 0;
    for (const auto &stats : per_task)
        total += stats.failures;
    return total;
}

namespace {

/** Fill the starvation fields when a dispatch wait is unsatisfiable. */
ProgramResult &
markStarved(ProgramResult &result, sim::Device &device,
            const std::string &task, const std::string &diagnostic)
{
    result.starved = true;
    result.stuck_task = task;
    result.diagnostic = diagnostic;
    result.elapsed = device.now();
    result.power_failures = device.system().monitor().powerFailures();
    return result;
}

/**
 * Boundary-rate telemetry for the runtime's dispatch loop: reboot and
 * retry counters plus TaskStart/TaskEnd trace events and per-task Vmin
 * histograms. All members stay null when no sink is attached (or the
 * build compiles telemetry out), and every use is null-guarded.
 */
struct RuntimeTelemetry
{
    telemetry::Telemetry *sink = nullptr;
    telemetry::Counter *reboots = nullptr;
    telemetry::Counter *retries = nullptr;

    explicit RuntimeTelemetry(sim::Device &device)
    {
        if constexpr (telemetry::kEnabled) {
            sink = device.telemetry();
            if (sink != nullptr) {
                namespace names = telemetry::names;
                reboots =
                    &sink->registry().counter(names::kRuntimeReboots);
                retries =
                    &sink->registry().counter(names::kRuntimeTaskRetries);
            }
        } else {
            (void)device;
        }
    }
};

} // namespace

ProgramResult
runProgram(sim::Device &device, const std::vector<AtomicTask> &program,
            const RuntimeOptions &options)
{
    const bool gated = options.policy == DispatchPolicy::VsafeGated;
    log::fatalIf(gated && options.culpeo == nullptr,
                 "VsafeGated dispatch requires a Culpeo instance");

    ProgramResult result;
    result.per_task.reserve(program.size());
    for (const auto &task : program)
        result.per_task.push_back({task.name, 0, 0, 0});

    RuntimeTelemetry tel(device);

    const Seconds deadline = device.now() + options.timeout;
    // "Full" for the non-termination check. The monitor re-enables when
    // the *charging* terminal voltage reaches Vhigh, which overshoots
    // the resting voltage by the charge current's ESR drop, so accept a
    // margin below Vhigh as "effectively full".
    const Volts full_threshold = device.vhigh() - Volts(50e-3);

    sched::Supervisor *supervisor = options.supervisor;

    for (std::size_t i = 0; i < program.size(); ++i) {
        const AtomicTask &task = program[i];
        TaskStats &stats = result.per_task[i];
        unsigned failures_from_full = 0;
        const auto skipTask = [&] {
            stats.skipped = true;
            ++result.skipped_tasks;
        };

        // Telemetry handles for this task, resolved once outside the
        // retry loop (interning and registry lookups cost a lock each).
        std::uint32_t name_id = 0;
        telemetry::Histogram *vmin_hist = nullptr;
        if (tel.sink != nullptr) {
            name_id = tel.sink->trace().intern(task.name);
            vmin_hist = &tel.sink->registry().histogram(
                telemetry::names::taskVmin(task.name),
                device.voff().value(), device.vhigh().value(), 32);
        }

        while (true) {
            if (device.now() >= deadline) {
                result.elapsed = device.now();
                return result; // Timed out; finished stays false.
            }

            // Browned out: recharge until the monitor re-enables the
            // output (hysteresis enforces a full recharge) — or learn
            // that it never will.
            if (!device.on()) {
                if (tel.reboots != nullptr)
                    tel.reboots->add();
                const sim::WaitResult wait =
                    device.rechargeUntilOn(deadline);
                if (wait.status == sim::WaitStatus::Unreachable)
                    return markStarved(result, device, task.name,
                                       wait.diagnostic);
                continue; // Re-check the timeout, then dispatch.
            }

            // Supervised admission: a demoted task is skipped —
            // graceful degradation instead of livelocking on it. The
            // supervisor's adaptive margin raises the wait threshold
            // for both policies (Opportunistic dispatch gains a
            // threshold only once brown-outs have inflated the margin).
            const Volts base_need =
                gated ? options.culpeo->getVsafe(task.id) +
                            options.dispatch_margin
                      : device.voff();
            Volts need = base_need;
            if (supervisor != nullptr) {
                const sched::Admission admission =
                    supervisor->admitTask(task.name, base_need,
                                          device.vhigh(), device.now());
                if (!admission.admit) {
                    skipTask();
                    break; // On to the next task.
                }
                need = admission.need;
            }

            // Wait for the dispatch condition. Software sees the
            // voltage through the attached fault hooks' ADC model; the
            // gated wait is Theorem 1's feasible(observed - margin)
            // rearranged into a voltage threshold.
            Volts observed{0.0};
            if (gated || (supervisor != nullptr && need > base_need)) {
                const sim::WaitResult wait =
                    device.idleUntilVoltage(need, deadline);
                if (wait.status == sim::WaitStatus::Unreachable) {
                    if (supervisor != nullptr) {
                        supervisor->noteUnreachable(task.name,
                                                    device.now());
                        skipTask();
                        break;
                    }
                    return markStarved(result, device, task.name,
                                       wait.diagnostic);
                }
                if (!wait.reached())
                    continue; // Browned out / timed out: re-evaluate.
                observed = wait.voltage;
            } else {
                observed = device.observedVoltage();
            }

            // Atomic execution attempt. A Vsafe-gated dispatch is a
            // safety commitment the attached observer can audit;
            // opportunistic dispatch claims nothing.
            const bool from_full = observed >= full_threshold;
            const Volts resting = device.restingVoltage();
            if (gated)
                device.notifyCommit(task.name, resting, need);
            harness::RunOptions run_options;
            run_options.dt = harness::chooseDt(task.profile);
            run_options.settle_rebound = false;
            ++stats.executions;
            if (tel.sink != nullptr) {
                tel.sink->emit(telemetry::EventKind::TaskStart,
                               device.now().value(),
                               device.restingVoltage().value(), name_id,
                               double(task.id));
            }
            const harness::RunResult run =
                harness::runTask(device, task.profile, run_options);
            if (tel.sink != nullptr) {
                tel.sink->emit(telemetry::EventKind::TaskEnd,
                               device.now().value(),
                               run.vend_loaded.value(), name_id,
                               run.vmin.value(), run.completed);
                vmin_hist->record(run.vmin.value());
            }
            if (gated)
                device.notifyCommitEnd(run.completed);
            if (supervisor != nullptr) {
                supervisor->noteOutcome(task.name, run.completed,
                                        resting, base_need, run.vmin,
                                        device.voff(), device.now());
            }
            if (run.completed) {
                ++stats.completions;
                break;
            }

            // Power failure: the task will re-execute from its start
            // once the device recharges (monitor hysteresis enforces a
            // full recharge).
            ++stats.failures;
            if (tel.retries != nullptr)
                tel.retries->add();
            if (supervisor != nullptr) {
                // The supervisor's retry budget owns forward progress:
                // once it demotes the task, skip it and move on. The
                // legacy nonterminating bail below stays dormant.
                if (supervisor->stateOf(task.name) ==
                    sched::TaskHealth::Demoted) {
                    skipTask();
                    break;
                }
                continue;
            }
            if (from_full) {
                ++failures_from_full;
                if (failures_from_full >= options.max_attempts_from_full) {
                    result.nonterminating = true;
                    result.stuck_task = task.name;
                    result.elapsed = device.now();
                    result.power_failures =
                        device.system().monitor().powerFailures();
                    return result;
                }
            }
        }
    }

    result.finished = true;
    result.elapsed = device.now();
    result.power_failures = device.system().monitor().powerFailures();
    return result;
}

} // namespace culpeo::runtime
