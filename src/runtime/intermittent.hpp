/**
 * @file
 * A task-based intermittent runtime, the execution model Culpeo plugs
 * into (Section I / Figure 1a): a program is a sequence of atomic
 * tasks; a task interrupted by power failure re-executes from its start
 * after the device recharges.
 *
 * Two dispatch policies are provided:
 *  - Opportunistic: run the next task whenever the output booster is on
 *    (the prior-work behaviour of Figure 1a) — risking ESR brown-outs,
 *    wasted re-execution energy, and even non-termination.
 *  - VsafeGated: additionally wait until the buffer is at or above the
 *    task's Culpeo Vsafe (the Theorem 1 dispatch rule).
 *
 * The runtime also implements the forward-progress check the paper's
 * related work motivates [29]: a task that fails repeatedly from a full
 * buffer can never complete on this power system and is reported as
 * non-terminating instead of looping forever.
 *
 * Attaching a sched::Supervisor (RuntimeOptions::supervisor) upgrades
 * that check into self-healing dispatch: brown-outs inflate the task's
 * requirement with bounded retries, drift is tracked per task, and a
 * task that stays infeasible is *skipped* (TaskStats::skipped) so the
 * rest of the program keeps making progress instead of the run ending
 * in nonterminating/starved.
 */

#ifndef CULPEO_RUNTIME_INTERMITTENT_HPP
#define CULPEO_RUNTIME_INTERMITTENT_HPP

#include <string>
#include <vector>

#include "core/api.hpp"
#include "load/profile.hpp"
#include "sim/device.hpp"

namespace culpeo::sched {
class Supervisor;
} // namespace culpeo::sched

namespace culpeo::runtime {

using units::Seconds;
using units::Volts;

/** One atomic (all-or-nothing) task of an intermittent program. */
struct AtomicTask
{
    core::TaskId id = 0;
    std::string name;
    load::CurrentProfile profile;
};

/** When the runtime may dispatch the next task. */
enum class DispatchPolicy {
    Opportunistic, ///< Whenever the output booster is enabled.
    VsafeGated,    ///< Additionally require V >= Culpeo's Vsafe.
};

/** Per-task execution counters. */
struct TaskStats
{
    std::string name;
    unsigned executions = 0;
    unsigned completions = 0;
    unsigned failures = 0;
    /** Supervisor shed this task (never completed, program went on). */
    bool skipped = false;
};

/** Outcome of one program run. */
struct ProgramResult
{
    bool finished = false;
    /** True when a task failed repeatedly from a full buffer. */
    bool nonterminating = false;
    /**
     * True when a dispatch wait was unsatisfiable: the harvester can
     * never lift the buffer to the required voltage, so the runtime
     * reports the starvation instead of idling until the timeout.
     */
    bool starved = false;
    std::string stuck_task;
    /** Cause of a starved run (from the device wait diagnostic). */
    std::string diagnostic;
    Seconds elapsed{0.0};
    unsigned power_failures = 0;
    /** Tasks the supervisor shed; finished stays true when > 0. */
    unsigned skipped_tasks = 0;
    std::vector<TaskStats> per_task;

    /** Total failed executions (wasted atomic re-executions). */
    unsigned totalFailures() const;
};

/** Runtime knobs. */
struct RuntimeOptions
{
    DispatchPolicy policy = DispatchPolicy::Opportunistic;
    /** Required for VsafeGated; may carry pre-profiled Vsafe values. */
    const core::Culpeo *culpeo = nullptr;
    /** Give up (finished = false) after this much simulated time. */
    Seconds timeout{600.0};
    /** Failures from a full buffer before declaring non-termination. */
    unsigned max_attempts_from_full = 3;
    /**
     * Guard band added to the Vsafe gate (VsafeGated only): dispatch
     * waits until the observed voltage exceeds Vsafe by this much,
     * absorbing ADC read error and Vsafe model error. Default 0 keeps
     * the bare Theorem 1 gate.
     */
    Volts dispatch_margin{0.0};
    /**
     * Drift-aware safety supervisor; may be null. When attached, every
     * dispatch is admitted through it (its adaptive margin raises the
     * wait threshold, even for Opportunistic dispatch after brown-outs)
     * and demoted tasks are skipped instead of ending the run as
     * nonterminating or starved — the supervisor's retry budget
     * replaces max_attempts_from_full. The caller owns reset() between
     * unrelated runs.
     */
    sched::Supervisor *supervisor = nullptr;
};

/**
 * Execute @p program on @p device (with whatever harvester the caller
 * attached) under @p options. The device should be charged and enabled,
 * or the runtime will first wait for the monitor to enable it. Idle and
 * recharge waits run at the device's idle_dt decision tick and use the
 * analytic fast path whenever the device is instrumentation-free.
 */
ProgramResult runProgram(sim::Device &device,
                         const std::vector<AtomicTask> &program,
                         const RuntimeOptions &options);

} // namespace culpeo::runtime

#endif // CULPEO_RUNTIME_INTERMITTENT_HPP
