#include "adaptive.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace culpeo::sched {

ChargeRateMonitor::ChargeRateMonitor(double relative_threshold)
    : relative_threshold_(relative_threshold)
{
    log::fatalIf(relative_threshold <= 0.0,
                 "re-profiling threshold must be positive");
}

void
ChargeRateMonitor::baseline(units::Watts level)
{
    log::fatalIf(level.value() < 0.0, "harvest level cannot be negative");
    baseline_ = level;
    has_baseline_ = true;
}

bool
ChargeRateMonitor::observe(units::Watts level) const
{
    if (!has_baseline_)
        return true; // Never profiled: any observation demands one.
    const double base = baseline_.value();
    if (base <= 0.0)
        return level.value() > 0.0;
    return std::abs(level.value() - base) / base > relative_threshold_;
}

} // namespace culpeo::sched
