/**
 * @file
 * Adaptive re-profiling support (Section V-B): Culpeo-R values depend on
 * the level of incoming power, so schedulers that monitor charge rate
 * should re-profile when harvestable power changes past a threshold.
 *
 * ChargeRateMonitor watches the observed harvest level and reports when
 * it has drifted enough from the level the current profiles were taken
 * at; the owner then calls Culpeo::invalidate() and re-profiles.
 */

#ifndef CULPEO_SCHED_ADAPTIVE_HPP
#define CULPEO_SCHED_ADAPTIVE_HPP

#include "util/units.hpp"

namespace culpeo::sched {

/** Detects harvest-level changes that warrant re-profiling. */
class ChargeRateMonitor
{
  public:
    /**
     * @param relative_threshold fractional change in harvested power
     *        (relative to the profiling baseline) that triggers
     *        re-profiling; e.g. 0.25 = 25%.
     */
    explicit ChargeRateMonitor(double relative_threshold = 0.25);

    /**
     * Record the harvest level the active profiles were taken at.
     * Resets the trigger.
     */
    void baseline(units::Watts level);

    /**
     * Observe the present harvest level; returns true when it has moved
     * beyond the threshold from the baseline (the caller should then
     * invalidate and re-profile, and set a new baseline).
     */
    bool observe(units::Watts level) const;

    units::Watts currentBaseline() const { return baseline_; }
    double threshold() const { return relative_threshold_; }

  private:
    double relative_threshold_;
    units::Watts baseline_{0.0};
    bool has_baseline_ = false;
};

} // namespace culpeo::sched

#endif // CULPEO_SCHED_ADAPTIVE_HPP
