/**
 * @file
 * Application model for the scheduler evaluation (Section VI-B): an app
 * is a set of event types, each triggering a chain of high-priority
 * tasks that must complete within a deadline, plus an optional
 * low-priority background task run opportunistically when energy allows.
 */

#ifndef CULPEO_SCHED_APP_HPP
#define CULPEO_SCHED_APP_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/profile_table.hpp"
#include "load/profile.hpp"
#include "sim/power_system.hpp"

namespace culpeo::sched {

using units::Seconds;
using units::Volts;
using units::Watts;

/** A schedulable software task with a known load profile. */
struct SchedTask
{
    core::TaskId id = 0;
    std::string name;
    load::CurrentProfile profile;
};

/** How an event type's arrivals are generated. */
enum class Arrival { Periodic, Poisson };

/** One event type: arrivals trigger a task chain with a deadline. */
struct EventSpec
{
    std::string name;
    Arrival arrival = Arrival::Periodic;
    Seconds interval{1.0}; ///< Period, or mean inter-arrival for Poisson.
    Seconds deadline{1.0}; ///< Chain must finish this long after arrival.
    std::vector<SchedTask> chain;
};

/** A complete application: events, background work, power system. */
struct AppSpec
{
    std::string name;
    std::vector<EventSpec> events;
    std::optional<SchedTask> background;
    /** Minimum gap between background executions. */
    Seconds background_period{1.0};
    sim::PowerSystemConfig power;
    Watts harvest{10e-3};
};

} // namespace culpeo::sched

#endif // CULPEO_SCHED_APP_HPP
