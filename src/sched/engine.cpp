#include "engine.hpp"

#include <algorithm>

#include "harness/task_runner.hpp"
#include "sim/device.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace culpeo::sched {

const EventTypeStats &
TrialResult::eventStats(const std::string &name) const
{
    for (const auto &stats : per_event) {
        if (stats.name == name)
            return stats;
    }
    log::fatal("no event type named ", name);
}

double
TrialResult::overallCaptureRate() const
{
    unsigned arrived = 0;
    unsigned captured = 0;
    for (const auto &stats : per_event) {
        arrived += stats.arrived;
        captured += stats.captured;
    }
    return arrived == 0 ? 1.0 : double(captured) / double(arrived);
}

namespace {

/** One concrete event instance awaiting service. */
struct PendingEvent
{
    Seconds arrival{0.0};
    std::size_t spec_index = 0;
    bool handled = false;
};

std::vector<PendingEvent>
generateArrivals(const AppSpec &app, Seconds duration, util::Rng &rng)
{
    std::vector<PendingEvent> arrivals;
    for (std::size_t i = 0; i < app.events.size(); ++i) {
        const EventSpec &spec = app.events[i];
        Seconds t{0.0};
        while (true) {
            if (spec.arrival == Arrival::Periodic)
                t += spec.interval;
            else
                t += Seconds(rng.exponential(spec.interval.value()));
            if (t >= duration)
                break;
            arrivals.push_back({t, i, false});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const PendingEvent &a, const PendingEvent &b) {
                  return a.arrival < b.arrival;
              });
    return arrivals;
}

/** Mutable trial state shared across the helpers below. */
struct Trial
{
    const AppSpec &app;
    const Policy &policy;
    sim::Device device;
    TrialResult result;

    Trial(const AppSpec &app_in, const Policy &policy_in,
          sim::DeviceOptions device_options)
        : app(app_in), policy(policy_in),
          device(app_in.power, device_options)
    {}

    bool
    deviceOn() const
    {
        return device.on();
    }

    /** Run one task; returns true when it completed. */
    bool
    runOne(const SchedTask &task)
    {
        harness::RunOptions options;
        options.dt = harness::chooseDt(task.profile);
        options.settle_rebound = false;
        const harness::RunResult run =
            harness::runTask(device, task.profile, options);
        return run.completed;
    }

    /**
     * Run one task as a commitment the attached observer can audit: the
     * policy admitted it at the current voltage against @p need.
     */
    bool
    runCommitted(const SchedTask &task, Volts need)
    {
        device.notifyCommit(task.name, device.restingVoltage(), need);
        const bool completed = runOne(task);
        device.notifyCommitEnd(completed);
        return completed;
    }

    /**
     * A wait the device proved unsatisfiable still consumes the event's
     * whole window: the per-tick loop this replaces only gave up once
     * the deadline had passed, and the trial clock must stay identical.
     */
    void
    idleOutWindow(const sim::WaitResult &wait, Seconds deadline)
    {
        if (wait.status != sim::WaitStatus::Unreachable)
            return;
        device.idleUntil(deadline);
        while (device.now() <= deadline)
            device.idleFor(device.options().idle_dt);
    }

    /**
     * Service one event: wait for charge, run the chain, decide
     * captured/lost. Returns once the event is resolved (or the device
     * browned out). Dispatch waits go through the device layer, which
     * reads the (fault-hook) ADC model at every decision tick and
     * reports an unsatisfiable threshold instead of spinning on it.
     */
    void
    serviceEvent(const PendingEvent &event, EventTypeStats &stats)
    {
        const EventSpec &spec = app.events[event.spec_index];
        const Seconds deadline = event.arrival + spec.deadline;
        const Volts need = policy.chainStart(spec);

        sim::WaitResult wait = device.idleUntilVoltage(need, deadline);
        if (!wait.reached()) {
            idleOutWindow(wait, deadline);
            ++stats.lost;
            return;
        }

        for (const auto &task : spec.chain) {
            const Volts task_need = policy.taskStart(task);
            wait = device.idleUntilVoltage(task_need, deadline);
            if (!wait.reached()) {
                idleOutWindow(wait, deadline);
                ++stats.lost;
                return;
            }
            if (!runCommitted(task, task_need)) {
                // Brown-out mid-chain: the event is lost and the device
                // must fully recharge before doing anything else.
                ++stats.lost;
                return;
            }
        }

        if (device.now() <= deadline)
            ++stats.captured;
        else
            ++stats.lost;
    }
};

} // namespace

TrialResult
runTrial(const AppSpec &app, const Policy &policy, Seconds duration,
         std::uint64_t seed, const TrialInstruments &instruments)
{
    util::Rng rng(seed);
    sim::DeviceOptions device_options;
    device_options.allow_fast_path = !instruments.force_euler;
    Trial trial(app, policy, device_options);

    sim::ConstantHarvester harvester(app.harvest);
    trial.device.setHarvester(&harvester);
    trial.device.setFaultHooks(instruments.faults);
    trial.device.setObserver(instruments.observer);
    trial.device.setBufferVoltage(app.power.monitor.vhigh);
    trial.device.forceOutputEnabled(true);

    trial.result.per_event.resize(app.events.size());
    for (std::size_t i = 0; i < app.events.size(); ++i)
        trial.result.per_event[i].name = app.events[i].name;

    std::vector<PendingEvent> arrivals =
        generateArrivals(app, duration, rng);
    std::size_t next_arrival = 0;
    Seconds last_background{-1e9};

    while (trial.device.now() < duration) {
        // Retire any arrival whose deadline already passed unserviced.
        bool serviced = false;
        for (std::size_t i = next_arrival; i < arrivals.size(); ++i) {
            PendingEvent &event = arrivals[i];
            if (event.arrival > trial.device.now())
                break;
            if (event.handled)
                continue;
            EventTypeStats &stats =
                trial.result.per_event[event.spec_index];
            const EventSpec &spec = app.events[event.spec_index];
            ++stats.arrived;
            event.handled = true;
            if (i == next_arrival)
                ++next_arrival;

            if (trial.device.now() >
                event.arrival + spec.deadline) {
                ++stats.lost; // Expired while the device was busy/off.
            } else if (!trial.deviceOn()) {
                ++stats.lost; // Device is off recharging.
            } else {
                trial.serviceEvent(event, stats);
            }
            serviced = true;
            break; // Re-evaluate time/arrivals after servicing.
        }
        if (serviced)
            continue;

        // The next not-yet-due arrival bounds every idle wait below.
        // The per-tick loops this replaces re-scanned arrivals each
        // tick; the chunked waits must instead hand control back at the
        // arrival instant, so the wait deadline — which a wait exceeds
        // strictly before giving up — sits one tick earlier, and an
        // expired or unsatisfiable wait tops up to the target.
        Seconds target = duration;
        for (std::size_t i = next_arrival; i < arrivals.size(); ++i) {
            if (arrivals[i].handled)
                continue;
            target = std::min(target, arrivals[i].arrival);
            break;
        }
        const Seconds wait_deadline =
            target - trial.device.options().idle_dt;

        if (!trial.deviceOn()) {
            const sim::WaitResult wait =
                trial.device.rechargeUntilOn(wait_deadline);
            if (!wait.reached())
                trial.device.idleUntil(target);
            continue;
        }

        // No pending event: consider background work. Dueness keeps the
        // per-tick loop's exact difference-form comparison so trial
        // traces stay bit-compatible with the pre-device engine.
        if (app.background.has_value() &&
            trial.device.now() - last_background >=
                app.background_period) {
            const Volts threshold = policy.backgroundThreshold(app);
            if (trial.device.observedVoltage() >= threshold) {
                trial.runCommitted(*app.background, threshold);
                ++trial.result.background_runs;
                last_background = trial.device.now();
            } else {
                const sim::WaitResult wait =
                    trial.device.idleUntilVoltage(threshold,
                                                  wait_deadline);
                if (wait.status == sim::WaitStatus::DeadlineExpired ||
                    wait.status == sim::WaitStatus::Unreachable)
                    trial.device.idleUntil(target);
            }
            continue;
        }

        Seconds next_decision = target;
        if (app.background.has_value()) {
            next_decision = std::min(
                next_decision, last_background + app.background_period);
        }
        if (next_decision > trial.device.now()) {
            trial.device.idleUntil(next_decision);
        } else {
            // The sum above can round below now() while the difference
            // form still reads not-yet-due; tick once and re-evaluate,
            // exactly as the per-tick loop did.
            trial.device.idleFor(trial.device.options().idle_dt);
        }
    }

    trial.result.power_failures =
        trial.device.system().monitor().powerFailures();
    return trial.result;
}

double
AggregateResult::rateOf(const std::string &name) const
{
    for (std::size_t i = 0; i < event_names.size(); ++i) {
        if (event_names[i] == name)
            return capture_rates[i];
    }
    log::fatal("no aggregated event type named ", name);
}

AggregateResult
runTrials(const AppSpec &app, const Policy &policy, Seconds duration,
          unsigned trials, std::uint64_t base_seed,
          const TrialInstruments &instruments)
{
    log::fatalIf(trials == 0, "at least one trial is required");

    AggregateResult aggregate;
    for (const auto &event : app.events)
        aggregate.event_names.push_back(event.name);
    aggregate.capture_rates.assign(app.events.size(), 0.0);

    unsigned total_failures = 0;
    std::vector<unsigned> arrived(app.events.size(), 0);
    std::vector<unsigned> captured(app.events.size(), 0);
    for (unsigned t = 0; t < trials; ++t) {
        const TrialResult result =
            runTrial(app, policy, duration, base_seed + t * 1000003ULL,
                     instruments);
        for (std::size_t i = 0; i < result.per_event.size(); ++i) {
            arrived[i] += result.per_event[i].arrived;
            captured[i] += result.per_event[i].captured;
        }
        total_failures += result.power_failures;
    }
    for (std::size_t i = 0; i < aggregate.capture_rates.size(); ++i) {
        aggregate.capture_rates[i] =
            arrived[i] == 0 ? 1.0
                            : double(captured[i]) / double(arrived[i]);
    }
    aggregate.power_failures_per_trial =
        double(total_failures) / double(trials);
    return aggregate;
}

} // namespace culpeo::sched
