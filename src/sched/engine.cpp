#include "engine.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "harness/task_runner.hpp"
#include "sched/supervisor.hpp"
#include "sim/device.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace culpeo::sched {

const EventTypeStats &
TrialResult::eventStats(const std::string &name) const
{
    for (const auto &stats : per_event) {
        if (stats.name == name)
            return stats;
    }
    log::fatal("no event type named ", name);
}

double
TrialResult::overallCaptureRate() const
{
    unsigned arrived = 0;
    unsigned captured = 0;
    for (const auto &stats : per_event) {
        arrived += stats.arrived;
        captured += stats.captured;
    }
    return arrived == 0 ? 0.0 : double(captured) / double(arrived);
}

namespace {

/** One concrete event instance awaiting service. */
struct PendingEvent
{
    Seconds arrival{0.0};
    std::size_t spec_index = 0;
    bool handled = false;
};

std::vector<PendingEvent>
generateArrivals(const AppSpec &app, Seconds duration, util::Rng &rng)
{
    std::vector<PendingEvent> arrivals;
    for (std::size_t i = 0; i < app.events.size(); ++i) {
        const EventSpec &spec = app.events[i];
        Seconds t{0.0};
        while (true) {
            if (spec.arrival == Arrival::Periodic)
                t += spec.interval;
            else
                t += Seconds(rng.exponential(spec.interval.value()));
            if (t >= duration)
                break;
            arrivals.push_back({t, i, false});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const PendingEvent &a, const PendingEvent &b) {
                  return a.arrival < b.arrival;
              });
    return arrivals;
}

/** Mutable trial state shared across the helpers below. */
struct Trial
{
    const AppSpec &app;
    Policy &policy;
    sim::Device device;
    TrialResult result;
    /** Per-trial scratch sink; null when telemetry is not attached. */
    telemetry::Telemetry *tel = nullptr;
    /** Safety supervisor; null runs the policy unsupervised. */
    Supervisor *sup = nullptr;
    /** Committed dispatches (event-chain tasks + background runs). */
    unsigned tasks_started = 0;
    unsigned tasks_completed = 0;

    /**
     * Per-task telemetry handles, resolved once per task and reused on
     * every dispatch: interning the label and the registry's name map
     * both cost a lock + string lookup, far too much for a path that
     * runs hundreds of times per simulated minute.
     */
    struct TaskTel
    {
        std::uint32_t name_id = 0;
        telemetry::Histogram *vmin = nullptr;
    };
    std::map<const SchedTask *, TaskTel> task_tel;

    const TaskTel &
    taskTel(const SchedTask &task)
    {
        const auto it = task_tel.find(&task);
        if (it != task_tel.end())
            return it->second;
        TaskTel handles;
        handles.name_id = tel->trace().intern(task.name);
        handles.vmin = &tel->registry().histogram(
            telemetry::names::taskVmin(task.name),
            device.voff().value(), device.vhigh().value(), 32);
        return task_tel.emplace(&task, handles).first->second;
    }

    Trial(const AppSpec &app_in, Policy &policy_in,
          sim::DeviceOptions device_options)
        : app(app_in), policy(policy_in),
          device(app_in.power, device_options)
    {}

    bool
    deviceOn() const
    {
        return device.on();
    }

    /**
     * Honor an admission's side requests before its threshold: a
     * policy managing a bank array attaches the buffer configuration
     * it wants on the rail, and the engine applies it unconditionally
     * (policies rely on that — the Admission::buffer contract).
     */
    void
    applyAdmission(const Admission &admission)
    {
        if (admission.buffer != nullptr)
            device.reconfigureBuffer(*admission.buffer);
    }

    /** Harvest power at the device's current simulation time. */
    Watts
    currentHarvest() const
    {
        const sim::Harvester *harvester = device.system().harvester();
        return harvester == nullptr ? Watts(0.0)
                                    : harvester->powerAt(device.now());
    }

    /**
     * Run one task as a commitment the attached observer can audit: the
     * policy (plus any supervisor margin) admitted it at the current
     * voltage against @p need; @p base_need is the bare policy
     * requirement the supervisor's drift estimator compares against.
     * Emits the TaskStart/TaskEnd trace pair and the per-task Vmin
     * histogram when telemetry is attached.
     */
    bool
    runCommitted(const SchedTask &task, Volts need, Volts base_need)
    {
        ++tasks_started;
        const Volts resting = device.restingVoltage();
        const TaskTel *handles = nullptr;
        if (tel != nullptr) {
            handles = &taskTel(task);
            const double now_s = device.now().value();
            tel->emit(telemetry::EventKind::VsafeUpdate, now_s,
                      resting.value(), handles->name_id, need.value());
            tel->emit(telemetry::EventKind::TaskStart, now_s,
                      resting.value(), handles->name_id, need.value());
        }
        device.notifyCommit(task.name, resting, need);
        harness::RunOptions options;
        options.dt = harness::chooseDt(task.profile);
        options.settle_rebound = false;
        const harness::RunResult run =
            harness::runTask(device, task.profile, options);
        device.notifyCommitEnd(run.completed);
        if (tel != nullptr) {
            tel->emit(telemetry::EventKind::TaskEnd,
                      device.now().value(), run.vend_loaded.value(),
                      handles->name_id, run.vmin.value(),
                      run.completed);
            handles->vmin->record(run.vmin.value());
        }
        if (sup != nullptr) {
            sup->noteOutcome(task.name, run.completed, resting,
                             base_need, run.vmin, device.voff(),
                             device.now());
        }
        TaskOutcome outcome;
        outcome.task = &task;
        outcome.completed = run.completed;
        outcome.started_at = resting;
        outcome.need = need;
        outcome.base_need = base_need;
        outcome.vmin = run.vmin;
        outcome.vend = run.vend_loaded;
        outcome.voff = device.voff();
        outcome.harvest = currentHarvest();
        outcome.now = device.now();
        policy.observe(outcome);
        if (run.completed)
            ++tasks_completed;
        return run.completed;
    }

    /**
     * A wait the device proved unsatisfiable still consumes the event's
     * whole window: the per-tick loop this replaces only gave up once
     * the deadline had passed, and the trial clock must stay identical.
     */
    void
    idleOutWindow(const sim::WaitResult &wait, Seconds deadline)
    {
        if (wait.status != sim::WaitStatus::Unreachable)
            return;
        device.idleUntil(deadline);
        while (device.now() <= deadline)
            device.idleFor(device.options().idle_dt);
    }

    /**
     * Service one event: wait for charge, run the chain, decide
     * captured/lost. Returns once the event is resolved (or the device
     * browned out). Dispatch waits go through the device layer, which
     * reads the (fault-hook) ADC model at every decision tick and
     * reports an unsatisfiable threshold instead of spinning on it.
     */
    void
    serviceEvent(const PendingEvent &event, EventTypeStats &stats)
    {
        const EventSpec &spec = app.events[event.spec_index];
        const Seconds deadline = event.arrival + spec.deadline;

        // Shed the whole event up front when a demoted link makes the
        // chain un-runnable — better one counted loss now than burning
        // the deadline waiting for a chain that cannot finish.
        if (sup != nullptr && !sup->admitChain(spec, device.now())) {
            ++stats.lost;
            return;
        }

        const Admission chain_admission = policy.admitChain(spec);
        if (!chain_admission.admit) {
            ++stats.lost; // The policy refused the whole chain.
            return;
        }
        applyAdmission(chain_admission);
        const Volts need = chain_admission.need;

        sim::WaitResult wait = device.idleUntilVoltage(need, deadline);
        if (!wait.reached()) {
            idleOutWindow(wait, deadline);
            ++stats.lost;
            return;
        }

        for (const auto &task : spec.chain) {
            const Admission task_admission = policy.admitTask(task);
            if (!task_admission.admit) {
                ++stats.lost; // The policy refused mid-chain.
                return;
            }
            applyAdmission(task_admission);
            const Volts base_need = task_admission.need;
            Volts task_need = base_need;
            if (sup != nullptr) {
                const Admission admission = sup->admitTask(
                    task.name, base_need, device.vhigh(), device.now());
                if (!admission.admit) {
                    ++stats.lost; // Shed mid-chain (demotion).
                    return;
                }
                task_need = admission.need;
            }
            wait = device.idleUntilVoltage(task_need, deadline);
            if (!wait.reached()) {
                if (sup != nullptr &&
                    wait.status == sim::WaitStatus::Unreachable)
                    sup->noteUnreachable(task.name, device.now());
                idleOutWindow(wait, deadline);
                ++stats.lost;
                return;
            }
            if (!runCommitted(task, task_need, base_need)) {
                // Brown-out mid-chain: the event is lost and the device
                // must fully recharge before doing anything else.
                ++stats.lost;
                return;
            }
        }

        if (device.now() <= deadline) {
            ++stats.captured;
            result.capture_latency += device.now() - event.arrival;
        } else {
            ++stats.lost;
        }
    }
};

/**
 * Trial-end counter roll-up: the per-event totals the loop already
 * tracks, recorded once into the scratch registry (boundary-rate, never
 * inside the hot loop).
 */
void
recordTrialCounters(telemetry::Telemetry &tel, const TrialResult &result,
                    Seconds elapsed)
{
    namespace names = telemetry::names;
    telemetry::Registry &reg = tel.registry();
    unsigned arrived = 0;
    unsigned captured = 0;
    unsigned lost = 0;
    for (const auto &stats : result.per_event) {
        arrived += stats.arrived;
        captured += stats.captured;
        lost += stats.lost;
    }
    reg.counter(names::kSchedEventsArrived).add(arrived);
    reg.counter(names::kSchedEventsCaptured).add(captured);
    reg.counter(names::kSchedEventsLost).add(lost);
    reg.counter(names::kSchedBackgroundRuns).add(result.background_runs);
    reg.gauge(names::kTrialSimSeconds, telemetry::GaugeMode::Sum)
        .record(elapsed.value());
}

} // namespace

TrialResult
runSeededTrial(const AppSpec &app, Policy &policy,
               const TrialConfig &config, std::uint64_t seed,
               telemetry::Telemetry *scratch)
{
    util::Rng rng(seed);
    sim::DeviceOptions device_options;
    device_options.allow_fast_path = !config.force_euler;
    Trial trial(app, policy, device_options);
    const Seconds duration = config.duration;

    sim::ConstantHarvester default_harvester(app.harvest);
    trial.device.setHarvester(config.harvester != nullptr
                                  ? config.harvester
                                  : &default_harvester);
    trial.device.setFaultHooks(config.faults);
    trial.device.setObserver(config.observer);
    trial.device.setBufferVoltage(app.power.monitor.vhigh);
    trial.device.forceOutputEnabled(true);
    trial.device.setTelemetry(scratch);
    trial.tel = trial.device.telemetry();
    trial.sup = config.supervisor;
    if (config.faults != nullptr)
        config.faults->onTelemetry(trial.tel);
    if (config.supervisor != nullptr)
        config.supervisor->onTelemetry(trial.tel);

    trial.result.per_event.resize(app.events.size());
    for (std::size_t i = 0; i < app.events.size(); ++i)
        trial.result.per_event[i].name = app.events[i].name;

    std::vector<PendingEvent> arrivals =
        generateArrivals(app, duration, rng);
    std::size_t next_arrival = 0;
    Seconds last_background{-1e9};

    while (trial.device.now() < duration) {
        // Retire any arrival whose deadline already passed unserviced.
        bool serviced = false;
        for (std::size_t i = next_arrival; i < arrivals.size(); ++i) {
            PendingEvent &event = arrivals[i];
            if (event.arrival > trial.device.now())
                break;
            if (event.handled)
                continue;
            EventTypeStats &stats =
                trial.result.per_event[event.spec_index];
            const EventSpec &spec = app.events[event.spec_index];
            ++stats.arrived;
            event.handled = true;
            if (i == next_arrival)
                ++next_arrival;

            if (trial.device.now() >
                event.arrival + spec.deadline) {
                ++stats.lost; // Expired while the device was busy/off.
            } else if (!trial.deviceOn()) {
                ++stats.lost; // Device is off recharging.
            } else {
                trial.serviceEvent(event, stats);
            }
            serviced = true;
            break; // Re-evaluate time/arrivals after servicing.
        }
        if (serviced)
            continue;

        // The next not-yet-due arrival bounds every idle wait below.
        // The per-tick loops this replaces re-scanned arrivals each
        // tick; the chunked waits must instead hand control back at the
        // arrival instant, so the wait deadline — which a wait exceeds
        // strictly before giving up — sits one tick earlier, and an
        // expired or unsatisfiable wait tops up to the target.
        Seconds target = duration;
        for (std::size_t i = next_arrival; i < arrivals.size(); ++i) {
            if (arrivals[i].handled)
                continue;
            target = std::min(target, arrivals[i].arrival);
            break;
        }
        const Seconds wait_deadline =
            target - trial.device.options().idle_dt;

        if (!trial.deviceOn()) {
            const sim::WaitResult wait =
                trial.device.rechargeUntilOn(wait_deadline);
            if (!wait.reached())
                trial.device.idleUntil(target);
            continue;
        }

        // No pending event: consider background work. Dueness keeps the
        // per-tick loop's exact difference-form comparison so trial
        // traces stay bit-compatible with the pre-device engine.
        if (app.background.has_value() &&
            trial.device.now() - last_background >=
                app.background_period) {
            const Admission bg_admission =
                trial.policy.admitBackground(app);
            trial.applyAdmission(bg_admission);
            const Volts threshold = bg_admission.need;
            bool admitted = bg_admission.admit;
            Volts bg_need = threshold;
            if (admitted && trial.sup != nullptr) {
                const Admission admission = trial.sup->admitTask(
                    app.background->name, threshold,
                    trial.device.vhigh(), trial.device.now());
                admitted = admission.admit;
                bg_need = admission.need;
            }
            if (!admitted) {
                // Shed this slot but keep the pacing clock running so
                // a demoted background task costs one skipped period,
                // not a tight re-admission poll.
                last_background = trial.device.now();
            } else if (trial.device.observedVoltage() >= bg_need) {
                trial.runCommitted(*app.background, bg_need, threshold);
                ++trial.result.background_runs;
                last_background = trial.device.now();
            } else {
                const sim::WaitResult wait =
                    trial.device.idleUntilVoltage(bg_need,
                                                  wait_deadline);
                if (trial.sup != nullptr &&
                    wait.status == sim::WaitStatus::Unreachable) {
                    trial.sup->noteUnreachable(app.background->name,
                                               trial.device.now());
                }
                if (wait.status == sim::WaitStatus::DeadlineExpired ||
                    wait.status == sim::WaitStatus::Unreachable)
                    trial.device.idleUntil(target);
            }
            continue;
        }

        Seconds next_decision = target;
        if (app.background.has_value()) {
            next_decision = std::min(
                next_decision, last_background + app.background_period);
        }
        if (next_decision > trial.device.now()) {
            trial.device.idleUntil(next_decision);
        } else {
            // The sum above can round below now() while the difference
            // form still reads not-yet-due; tick once and re-evaluate,
            // exactly as the per-tick loop did.
            trial.device.idleFor(trial.device.options().idle_dt);
        }
    }

    trial.result.power_failures =
        trial.device.system().monitor().powerFailures();
    trial.result.tasks_started = trial.tasks_started;
    trial.result.tasks_completed = trial.tasks_completed;
    if (trial.tel != nullptr) {
        namespace names = telemetry::names;
        trial.tel->registry()
            .counter(names::kSchedTasksStarted)
            .add(trial.tasks_started);
        trial.tel->registry()
            .counter(names::kSchedTasksCompleted)
            .add(trial.tasks_completed);
        recordTrialCounters(*trial.tel, trial.result,
                            trial.device.now());
    }
    if (config.faults != nullptr)
        config.faults->onTelemetry(nullptr);
    if (config.supervisor != nullptr)
        config.supervisor->onTelemetry(nullptr);
    return trial.result;
}

TrialResult
runTrialWith(const AppSpec &app, Policy &policy,
             const TrialConfig &config)
{
    telemetry::Telemetry *sink =
        telemetry::kEnabled ? config.telemetry : nullptr;
    std::optional<telemetry::Telemetry> scratch;
    if (sink != nullptr) {
        scratch.emplace(sink->config());
        scratch->setTrial(0);
    }
    TrialResult result =
        runSeededTrial(app, policy, config, config.seed,
                    scratch.has_value() ? &*scratch : nullptr);
    if (scratch.has_value()) {
        result.telemetry = scratch->summary();
        sink->merge(*scratch);
    }
    return result;
}

double
AggregateResult::rateOf(const std::string &name) const
{
    for (std::size_t i = 0; i < event_names.size(); ++i) {
        if (event_names[i] == name)
            return capture_rates[i];
    }
    log::fatal("no aggregated event type named ", name);
}

double
AggregateResult::overallCaptureRate() const
{
    // arrivals[i] and capture_rates[i] reconstruct the captured count
    // exactly (the rate was computed as captured/arrived).
    double arrived = 0.0;
    double captured = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        if (arrivals[i] == 0)
            continue; // Empty type: no evidence either way.
        arrived += double(arrivals[i]);
        captured += capture_rates[i] * double(arrivals[i]);
    }
    return arrived == 0.0 ? 0.0 : captured / arrived;
}

double
AggregateResult::meanCaptureLatency() const
{
    double captured = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i)
        captured += capture_rates[i] * double(arrivals[i]);
    return captured <= 0.0 ? 0.0 : capture_latency_s / captured;
}

double
AggregateResult::taskCompletionRate() const
{
    return tasks_started == 0
               ? 0.0
               : double(tasks_completed) / double(tasks_started);
}

AggregateResult
runTrialsWith(const AppSpec &app, Policy &policy,
              const TrialConfig &config)
{
    log::fatalIf(config.trials == 0, "at least one trial is required");

    AggregateResult aggregate;
    for (const auto &event : app.events)
        aggregate.event_names.push_back(event.name);
    aggregate.capture_rates.assign(app.events.size(), 0.0);
    aggregate.arrivals.assign(app.events.size(), 0);

    telemetry::Telemetry *sink =
        telemetry::kEnabled ? config.telemetry : nullptr;

    struct TrialRun
    {
        TrialResult result;
        std::shared_ptr<telemetry::Telemetry> scratch;
    };
    const auto runAt = [&](unsigned t) {
        TrialRun run;
        if (sink != nullptr) {
            run.scratch =
                std::make_shared<telemetry::Telemetry>(sink->config());
            run.scratch->setTrial(t);
        }
        run.result =
            runSeededTrial(app, policy, config,
                           config.seed + t * config.seed_stride,
                           run.scratch.get());
        if (run.scratch != nullptr)
            run.result.telemetry = run.scratch->summary();
        return run;
    };

    // Stateful instruments (a fault injector's one-shot schedule, an
    // invariant monitor's commitment stack, a supervisor's adaptive
    // margins) cannot be shared across concurrent trials; clean sweeps
    // parallelize. Either way, per-trial seeds depend only on the index
    // and the merge below runs in trial order, so results are identical.
    std::vector<TrialRun> runs;
    const bool parallel_ok = config.faults == nullptr &&
                             config.observer == nullptr &&
                             config.supervisor == nullptr &&
                             policy.stationary();
    if (parallel_ok && config.trials > 1) {
        std::vector<unsigned> indices(config.trials);
        for (unsigned t = 0; t < config.trials; ++t)
            indices[t] = t;
        runs = util::parallelMap(indices, runAt);
    } else {
        runs.reserve(config.trials);
        for (unsigned t = 0; t < config.trials; ++t)
            runs.push_back(runAt(t));
    }

    unsigned total_failures = 0;
    std::vector<unsigned> captured(app.events.size(), 0);
    for (TrialRun &run : runs) {
        for (std::size_t i = 0; i < run.result.per_event.size(); ++i) {
            aggregate.arrivals[i] += run.result.per_event[i].arrived;
            captured[i] += run.result.per_event[i].captured;
        }
        total_failures += run.result.power_failures;
        aggregate.tasks_started += run.result.tasks_started;
        aggregate.tasks_completed += run.result.tasks_completed;
        aggregate.capture_latency_s += run.result.capture_latency.value();
        if (run.scratch != nullptr)
            sink->merge(*run.scratch);
    }
    for (std::size_t i = 0; i < aggregate.capture_rates.size(); ++i) {
        aggregate.capture_rates[i] =
            aggregate.arrivals[i] == 0
                ? 0.0
                : double(captured[i]) / double(aggregate.arrivals[i]);
    }
    aggregate.power_failures_per_trial =
        double(total_failures) / double(config.trials);
    return aggregate;
}

} // namespace culpeo::sched
