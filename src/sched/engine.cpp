#include "engine.hpp"

#include <algorithm>

#include "harness/task_runner.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace culpeo::sched {

const EventTypeStats &
TrialResult::eventStats(const std::string &name) const
{
    for (const auto &stats : per_event) {
        if (stats.name == name)
            return stats;
    }
    log::fatal("no event type named ", name);
}

double
TrialResult::overallCaptureRate() const
{
    unsigned arrived = 0;
    unsigned captured = 0;
    for (const auto &stats : per_event) {
        arrived += stats.arrived;
        captured += stats.captured;
    }
    return arrived == 0 ? 1.0 : double(captured) / double(arrived);
}

namespace {

/** One concrete event instance awaiting service. */
struct PendingEvent
{
    Seconds arrival{0.0};
    std::size_t spec_index = 0;
    bool handled = false;
};

std::vector<PendingEvent>
generateArrivals(const AppSpec &app, Seconds duration, util::Rng &rng)
{
    std::vector<PendingEvent> arrivals;
    for (std::size_t i = 0; i < app.events.size(); ++i) {
        const EventSpec &spec = app.events[i];
        Seconds t{0.0};
        while (true) {
            if (spec.arrival == Arrival::Periodic)
                t += spec.interval;
            else
                t += Seconds(rng.exponential(spec.interval.value()));
            if (t >= duration)
                break;
            arrivals.push_back({t, i, false});
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const PendingEvent &a, const PendingEvent &b) {
                  return a.arrival < b.arrival;
              });
    return arrivals;
}

/** Mutable trial state shared across the helpers below. */
struct Trial
{
    const AppSpec &app;
    const Policy &policy;
    sim::PowerSystem system;
    const Seconds idle_dt{1e-3};
    TrialResult result;

    explicit Trial(const AppSpec &app_in, const Policy &policy_in)
        : app(app_in), policy(policy_in), system(app_in.power)
    {}

    void
    idleStep()
    {
        system.step(idle_dt, units::Amps(0.0));
    }

    bool
    deviceOn() const
    {
        return system.monitor().enabled();
    }

    /** Run one task; returns true when it completed. */
    bool
    runOne(const SchedTask &task)
    {
        harness::RunOptions options;
        options.dt = harness::chooseDt(task.profile);
        options.settle_rebound = false;
        const harness::RunResult run =
            harness::runTask(system, task.profile, options);
        return run.completed;
    }

    /**
     * Run one task as a commitment the attached observer can audit: the
     * policy admitted it at the current voltage against @p need.
     */
    bool
    runCommitted(const SchedTask &task, Volts need)
    {
        system.notifyCommit(task.name, system.restingVoltage(), need);
        const bool completed = runOne(task);
        system.notifyCommitEnd(completed);
        return completed;
    }

    /**
     * Service one event: wait for charge, run the chain, decide
     * captured/lost. Returns once the event is resolved (or the device
     * browned out).
     */
    void
    serviceEvent(const PendingEvent &event, EventTypeStats &stats)
    {
        const EventSpec &spec = app.events[event.spec_index];
        const Seconds deadline = event.arrival + spec.deadline;
        const Volts need = policy.chainStart(spec);

        // Wait (recharging) until the chain may start. Dispatch reads
        // go through the fault hooks' ADC model when attached.
        while (system.observedRestingVoltage() < need) {
            if (system.now() > deadline || !deviceOn()) {
                ++stats.lost;
                return;
            }
            idleStep();
        }

        for (const auto &task : spec.chain) {
            const Volts task_need = policy.taskStart(task);
            while (system.observedRestingVoltage() < task_need) {
                if (system.now() > deadline || !deviceOn()) {
                    ++stats.lost;
                    return;
                }
                idleStep();
            }
            if (!runCommitted(task, task_need)) {
                // Brown-out mid-chain: the event is lost and the device
                // must fully recharge before doing anything else.
                ++stats.lost;
                return;
            }
        }

        if (system.now() <= deadline)
            ++stats.captured;
        else
            ++stats.lost;
    }
};

} // namespace

TrialResult
runTrial(const AppSpec &app, const Policy &policy, Seconds duration,
         std::uint64_t seed, const TrialInstruments &instruments)
{
    util::Rng rng(seed);
    Trial trial(app, policy);

    sim::ConstantHarvester harvester(app.harvest);
    trial.system.setHarvester(&harvester);
    trial.system.setFaultHooks(instruments.faults);
    trial.system.setObserver(instruments.observer);
    trial.system.setBufferVoltage(app.power.monitor.vhigh);
    trial.system.forceOutputEnabled(true);

    trial.result.per_event.resize(app.events.size());
    for (std::size_t i = 0; i < app.events.size(); ++i)
        trial.result.per_event[i].name = app.events[i].name;

    std::vector<PendingEvent> arrivals =
        generateArrivals(app, duration, rng);
    std::size_t next_arrival = 0;
    Seconds last_background{-1e9};

    while (trial.system.now() < duration) {
        // Retire any arrival whose deadline already passed unserviced.
        bool serviced = false;
        for (std::size_t i = next_arrival; i < arrivals.size(); ++i) {
            PendingEvent &event = arrivals[i];
            if (event.arrival > trial.system.now())
                break;
            if (event.handled)
                continue;
            EventTypeStats &stats =
                trial.result.per_event[event.spec_index];
            const EventSpec &spec = app.events[event.spec_index];
            ++stats.arrived;
            event.handled = true;
            if (i == next_arrival)
                ++next_arrival;

            if (trial.system.now() >
                event.arrival + spec.deadline) {
                ++stats.lost; // Expired while the device was busy/off.
            } else if (!trial.deviceOn()) {
                ++stats.lost; // Device is off recharging.
            } else {
                trial.serviceEvent(event, stats);
            }
            serviced = true;
            break; // Re-evaluate time/arrivals after servicing.
        }
        if (serviced)
            continue;

        if (!trial.deviceOn()) {
            trial.idleStep();
            continue;
        }

        // No pending event: consider background work.
        if (app.background.has_value() &&
            trial.system.now() - last_background >=
                app.background_period &&
            trial.system.observedRestingVoltage() >=
                policy.backgroundThreshold(app)) {
            trial.runCommitted(*app.background,
                               policy.backgroundThreshold(app));
            ++trial.result.background_runs;
            last_background = trial.system.now();
            continue;
        }

        trial.idleStep();
    }

    trial.result.power_failures = trial.system.monitor().powerFailures();
    return trial.result;
}

double
AggregateResult::rateOf(const std::string &name) const
{
    for (std::size_t i = 0; i < event_names.size(); ++i) {
        if (event_names[i] == name)
            return capture_rates[i];
    }
    log::fatal("no aggregated event type named ", name);
}

AggregateResult
runTrials(const AppSpec &app, const Policy &policy, Seconds duration,
          unsigned trials, std::uint64_t base_seed)
{
    log::fatalIf(trials == 0, "at least one trial is required");

    AggregateResult aggregate;
    for (const auto &event : app.events)
        aggregate.event_names.push_back(event.name);
    aggregate.capture_rates.assign(app.events.size(), 0.0);

    unsigned total_failures = 0;
    std::vector<unsigned> arrived(app.events.size(), 0);
    std::vector<unsigned> captured(app.events.size(), 0);
    for (unsigned t = 0; t < trials; ++t) {
        const TrialResult result =
            runTrial(app, policy, duration, base_seed + t * 1000003ULL);
        for (std::size_t i = 0; i < result.per_event.size(); ++i) {
            arrived[i] += result.per_event[i].arrived;
            captured[i] += result.per_event[i].captured;
        }
        total_failures += result.power_failures;
    }
    for (std::size_t i = 0; i < aggregate.capture_rates.size(); ++i) {
        aggregate.capture_rates[i] =
            arrived[i] == 0 ? 1.0
                            : double(captured[i]) / double(arrived[i]);
    }
    aggregate.power_failures_per_trial =
        double(total_failures) / double(trials);
    return aggregate;
}

} // namespace culpeo::sched
