/**
 * @file
 * Event-driven scheduler engine: runs an application (event chains +
 * background work) on the simulated power system under a charge
 * management policy, and reports per-event capture rates — the Figure 12
 * and 13 metric.
 *
 * Semantics follow Section VI-B: an event is captured when its whole
 * task chain completes within the deadline; a brown-out mid-chain powers
 * the device off until the buffer fully recharges to Vhigh (hysteresis),
 * typically losing the event and any that arrive while off.
 */

#ifndef CULPEO_SCHED_ENGINE_HPP
#define CULPEO_SCHED_ENGINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sched/app.hpp"
#include "sched/policy.hpp"
#include "sim/harvester.hpp"

namespace culpeo::sched {

/** Outcome counters for one event type. */
struct EventTypeStats
{
    std::string name;
    unsigned arrived = 0;
    unsigned captured = 0;
    unsigned lost = 0;

    double captureRate() const
    {
        return arrived == 0 ? 1.0 : double(captured) / double(arrived);
    }
};

/** Outcome of one trial. */
struct TrialResult
{
    std::vector<EventTypeStats> per_event;
    unsigned power_failures = 0;
    unsigned background_runs = 0;

    const EventTypeStats &eventStats(const std::string &name) const;
    double overallCaptureRate() const;
};

/**
 * Optional instrumentation attached to a trial's device: a fault model
 * (disturbances + ADC read error) and a step/commitment observer (e.g.
 * fault::InvariantMonitor). Either may be null. Attaching either forces
 * the per-tick Euler backend (hooks need per-step fidelity).
 */
struct TrialInstruments
{
    sim::FaultHooks *faults = nullptr;
    sim::StepObserver *observer = nullptr;
    /**
     * Force the per-tick Euler wait backend even when no instruments
     * are attached — the reference baseline for the device fast path
     * in equivalence tests and benchmarks. Task loads still use the
     * analytic segment stepping when eligible, exactly as the
     * pre-device per-tick engine did via harness::runTask.
     */
    bool force_euler = false;
};

/** Run one trial of @p app under @p policy (already initialized). */
TrialResult runTrial(const AppSpec &app, const Policy &policy,
                     Seconds duration, std::uint64_t seed,
                     const TrialInstruments &instruments = {});

/** Averaged capture rates over @p trials independent trials. */
struct AggregateResult
{
    std::vector<std::string> event_names;
    std::vector<double> capture_rates; ///< Parallel to event_names.
    double power_failures_per_trial = 0.0;

    double rateOf(const std::string &name) const;
};

AggregateResult runTrials(const AppSpec &app, const Policy &policy,
                          Seconds duration, unsigned trials,
                          std::uint64_t base_seed = 7,
                          const TrialInstruments &instruments = {});

} // namespace culpeo::sched

#endif // CULPEO_SCHED_ENGINE_HPP
