/**
 * @file
 * Event-driven scheduler engine: runs an application (event chains +
 * background work) on the simulated power system under a charge
 * management policy, and reports per-event capture rates — the Figure 12
 * and 13 metric.
 *
 * Semantics follow Section VI-B: an event is captured when its whole
 * task chain completes within the deadline; a brown-out mid-chain powers
 * the device off until the buffer fully recharges to Vhigh (hysteresis),
 * typically losing the event and any that arrive while off.
 *
 * Entry points: one trial is runTrialWith(app, policy, config); a sweep
 * of config.trials independently seeded trials is runTrialsWith(). All
 * knobs — duration, seeding, instrumentation, supervision, telemetry —
 * live in TrialConfig; the fluent culpeo::TrialBuilder
 * (sched/trial.hpp) is the ergonomic front end.
 */

#ifndef CULPEO_SCHED_ENGINE_HPP
#define CULPEO_SCHED_ENGINE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/app.hpp"
#include "sched/policy.hpp"
#include "sim/harvester.hpp"
#include "telemetry/telemetry.hpp"

namespace culpeo::sched {

class Supervisor;

/** Outcome counters for one event type. */
struct EventTypeStats
{
    std::string name;
    unsigned arrived = 0;
    unsigned captured = 0;
    unsigned lost = 0;

    /** No instance of this event type arrived during the trial. */
    bool empty() const { return arrived == 0; }

    /**
     * Fraction of arrivals captured; 0 for an empty type (an event
     * type that never fired captured nothing — it must not read as a
     * perfect 1.0, which inflated aggregates in short trials).
     */
    double captureRate() const
    {
        return arrived == 0 ? 0.0 : double(captured) / double(arrived);
    }
};

/** Outcome of one trial. */
struct TrialResult
{
    std::vector<EventTypeStats> per_event;
    unsigned power_failures = 0;
    unsigned background_runs = 0;
    /** Committed dispatches (event-chain tasks + background runs). */
    unsigned tasks_started = 0;
    unsigned tasks_completed = 0;
    /** Summed arrival-to-completion time over captured events. */
    Seconds capture_latency{0.0};
    /** Per-trial roll-up, present when TrialConfig::telemetry was set. */
    std::optional<telemetry::TelemetrySummary> telemetry;

    const EventTypeStats &eventStats(const std::string &name) const;
    /** Captured/arrived over all types; empty types contribute nothing. */
    double overallCaptureRate() const;
};

/**
 * Everything configurable about a trial (or a sweep of trials) beyond
 * the app and the policy. Defaults run one clean 300 s trial: no
 * instrumentation, no telemetry, analytic fast path allowed.
 */
struct TrialConfig
{
    /** Simulated length of each trial. */
    Seconds duration{300.0};
    /** Arrival-process seed (first trial of a sweep). */
    std::uint64_t seed = 7;
    /** Trial count for runTrialsWith(); runTrialWith() ignores it. */
    unsigned trials = 1;
    /** Seed for trial t of a sweep is seed + t * seed_stride. */
    std::uint64_t seed_stride = 1000003ULL;
    /**
     * Force the per-tick Euler wait backend even when no instruments
     * are attached — the reference baseline for the device fast path
     * in equivalence tests and benchmarks. Task loads still use the
     * analytic segment stepping when eligible, exactly as the
     * pre-device per-tick engine did via harness::runTask.
     */
    bool force_euler = false;
    /**
     * Harvester override; null uses a constant harvester at
     * AppSpec::harvest. Piecewise-constant sources (e.g. an
     * env::FieldHarvester) keep the analytic wait fast path; a
     * harvester that declares neither constant nor piecewise-constant
     * power disqualifies it (sim::analyticEligible) and falls back to
     * per-tick Euler waits. Must be safe for concurrent powerAt()
     * queries when shared across a parallel sweep.
     */
    const sim::Harvester *harvester = nullptr;
    /**
     * Fault model (disturbances + ADC read error); may be null.
     * Attaching one forces the per-tick Euler backend and serializes
     * runTrialsWith() (the injector's one-shot state is per-run).
     */
    sim::FaultHooks *faults = nullptr;
    /**
     * Step/commitment observer (e.g. fault::InvariantMonitor); may be
     * null. Same Euler/serial consequences as faults.
     */
    sim::StepObserver *observer = nullptr;
    /**
     * Telemetry sink; may be null. Each trial records into a private
     * scratch (so parallel sweeps stay deterministic) which is merged
     * into this sink in trial order; trace events carry the trial
     * index. Attaching telemetry does NOT force the Euler backend.
     */
    telemetry::Telemetry *telemetry = nullptr;
    /**
     * Drift-aware safety supervisor (sched/supervisor.hpp); may be
     * null. When attached, every dispatch is gated through it and every
     * outcome feeds its drift/recovery state. The supervisor learns
     * across a sweep's trials and is stateful, so attaching one
     * serializes runTrialsWith(); it does NOT force the Euler backend.
     */
    Supervisor *supervisor = nullptr;
};

/**
 * Run one trial of @p app under @p policy (already initialized). The
 * policy is non-const: every committed dispatch feeds back through
 * Policy::observe(), so online policies learn as the trial runs.
 */
TrialResult runTrialWith(const AppSpec &app, Policy &policy,
                         const TrialConfig &config = {});

/**
 * The engine proper: one trial at an explicit @p seed, emitting into
 * @p scratch when non-null. The caller owns scratch creation and the
 * in-order merge into any user sink — this is the building block both
 * runTrialWith()/runTrialsWith() and the batch::BatchTrialRunner sweep
 * executor drive; TrialConfig::seed and ::trials are ignored here.
 */
TrialResult runSeededTrial(const AppSpec &app, Policy &policy,
                           const TrialConfig &config, std::uint64_t seed,
                           telemetry::Telemetry *scratch);

/** Averaged capture rates over independent trials. */
struct AggregateResult
{
    std::vector<std::string> event_names;
    std::vector<double> capture_rates; ///< Parallel to event_names.
    /** Total arrivals per type across all trials (0 = empty type). */
    std::vector<unsigned> arrivals;
    double power_failures_per_trial = 0.0;
    /** Committed dispatches summed over all trials. */
    std::uint64_t tasks_started = 0;
    std::uint64_t tasks_completed = 0;
    /** Summed arrival-to-completion time over all captured events. */
    double capture_latency_s = 0.0;

    double rateOf(const std::string &name) const;
    /** Mean arrival-to-completion latency of captured events (0 if none). */
    double meanCaptureLatency() const;
    /** Completed/started over all committed dispatches (0 if none). */
    double taskCompletionRate() const;
    /**
     * Captured/arrived over all types and trials. Event types with no
     * arrivals are excluded — they carry no evidence either way.
     */
    double overallCaptureRate() const;
};

/**
 * Run config.trials independently seeded trials and aggregate. Trials
 * run on the shared thread pool when no fault hooks, observer, or
 * supervisor are attached AND the policy is stationary (results are
 * bit-identical to a serial run: per-trial seeds depend only on the
 * trial index and aggregation is order-independent). Non-stationary
 * policies run serially, in trial order, carrying their learned state
 * across the sweep.
 */
AggregateResult runTrialsWith(const AppSpec &app, Policy &policy,
                              const TrialConfig &config = {});

} // namespace culpeo::sched

#endif // CULPEO_SCHED_ENGINE_HPP
