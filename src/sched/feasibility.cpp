#include "feasibility.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace culpeo::sched {

namespace {

/** A pending dispatch on the analysis timeline. */
struct Release
{
    double time;
    std::size_t task;

    bool
    operator>(const Release &other) const
    {
        return time > other.time;
    }
};

/**
 * Walk the release timeline, charging between dispatches and serving
 * releases in time order. @p requirement maps a task to the minimum
 * voltage its dispatch needs.
 */
template <typename Requirement>
FeasibilityVerdict
walkTimeline(const FeasibilityInput &input, Requirement requirement)
{
    log::fatalIf(input.tasks.empty(), "feasibility needs at least a task");
    log::fatalIf(input.charge_volts_per_sec < 0.0,
                 "charge slope cannot be negative");

    double horizon = input.horizon.value();
    if (horizon <= 0.0) {
        double longest = 0.0;
        for (const auto &task : input.tasks)
            longest = std::max(longest, task.period.value());
        horizon = 4.0 * longest;
    }

    std::priority_queue<Release, std::vector<Release>, std::greater<>>
        releases;
    for (std::size_t i = 0; i < input.tasks.size(); ++i)
        releases.push({input.tasks[i].period.value(), i});

    FeasibilityVerdict verdict;
    double v = input.vhigh.value(); // Deployment starts fully charged.
    double now = 0.0;
    const double vhigh = input.vhigh.value();

    while (!releases.empty() && releases.top().time <= horizon) {
        const Release release = releases.top();
        releases.pop();
        const PeriodicTaskSpec &task = input.tasks[release.task];

        // Charge from `now` to the release instant.
        v = std::min(vhigh,
                     v + (release.time - now) *
                             input.charge_volts_per_sec);
        now = release.time;

        const double need = requirement(task);
        const double margin = v - need;
        if (margin < verdict.worst_margin.value())
            verdict.worst_margin = Volts(margin);
        if (margin < 0.0 && verdict.feasible) {
            verdict.feasible = false;
            verdict.limiting_task = task.name;
            verdict.violation_time = Seconds(now);
        }

        // Execute: consumes its energy; the ESR drop rebounds.
        v = std::max(input.voff.value(), v - task.v_energy.value());
        now += task.duration.value();
        releases.push({release.time + task.period.value(), release.task});
    }
    return verdict;
}

} // namespace

FeasibilityVerdict
catnapFeasibility(const FeasibilityInput &input)
{
    const double voff = input.voff.value();
    return walkTimeline(input, [voff](const PeriodicTaskSpec &task) {
        return voff + task.v_energy.value();
    });
}

FeasibilityVerdict
theorem1Feasibility(const FeasibilityInput &input)
{
    const double voff = input.voff.value();
    return walkTimeline(input, [voff](const PeriodicTaskSpec &task) {
        return voff + task.v_energy.value() + task.vdelta.value();
    });
}

} // namespace culpeo::sched
