/**
 * @file
 * Analytic feasibility tests for periodic task sets (Section VII-B).
 *
 * CatNap's test is "at any time there is always energy in the capacitor
 * after executing the task scheduled at time t": an energy-only check.
 * Theorem 1 corrects it: tasks {e0..en} are feasible iff for every
 * dispatch the voltage is at or above the task's ESR-aware Vsafe *and*
 * energy remains. Both tests are evaluated by walking the release
 * timeline over an analysis horizon with idealized charging.
 */

#ifndef CULPEO_SCHED_FEASIBILITY_HPP
#define CULPEO_SCHED_FEASIBILITY_HPP

#include <string>
#include <vector>

#include "util/units.hpp"

namespace culpeo::sched {

using units::Seconds;
using units::Volts;

/** One periodic task for the analytic tests. */
struct PeriodicTaskSpec
{
    std::string name;
    Seconds period{1.0};
    Seconds duration{0.01}; ///< Execution time per dispatch.
    /** Voltage cost of the energy one dispatch consumes. */
    Volts v_energy{0.0};
    /** Worst transient ESR drop during a dispatch. */
    Volts vdelta{0.0};
};

/** System-side inputs of the analytic tests. */
struct FeasibilityInput
{
    std::vector<PeriodicTaskSpec> tasks;
    Volts vhigh{2.56};
    Volts voff{1.60};
    /** Idealized recharge slope while no task executes. */
    double charge_volts_per_sec = 0.02;
    /** Analysis horizon; defaults to 4x the longest period. */
    Seconds horizon{0.0};
};

/** Outcome of an analytic feasibility test. */
struct FeasibilityVerdict
{
    bool feasible = true;
    std::string limiting_task; ///< First task to violate, if any.
    Seconds violation_time{0.0};
    /** Smallest margin between available and required voltage seen. */
    Volts worst_margin{1e9};
};

/**
 * CatNap's energy-only test: every dispatch needs only its energy cost
 * above Voff (∀t, ecap(t) > 0).
 */
FeasibilityVerdict catnapFeasibility(const FeasibilityInput &input);

/**
 * The corrected Theorem 1 test: every dispatch additionally needs the
 * voltage to be at or above its ESR-aware Vsafe
 * (Voff + V(E) + penalty, where a lone dispatch's penalty is Vdelta).
 */
FeasibilityVerdict theorem1Feasibility(const FeasibilityInput &input);

} // namespace culpeo::sched

#endif // CULPEO_SCHED_FEASIBILITY_HPP
