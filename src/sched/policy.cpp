#include "policy.hpp"

#include <algorithm>

#include "harness/baselines.hpp"
#include "harness/profiling.hpp"
#include "util/logging.hpp"

namespace culpeo::sched {

namespace {

/** Every task an app can run (chains plus background). */
std::vector<const SchedTask *>
allTasks(const AppSpec &app)
{
    std::vector<const SchedTask *> tasks;
    for (const auto &event : app.events)
        for (const auto &task : event.chain)
            tasks.push_back(&task);
    if (app.background.has_value())
        tasks.push_back(&*app.background);
    return tasks;
}

} // namespace

void
CatnapPolicy::initialize(const AppSpec &app)
{
    voff_ = app.power.monitor.voff;
    vhigh_ = app.power.monitor.vhigh;
    cost_.clear();
    for (const SchedTask *task : allTasks(app)) {
        const harness::BaselineEstimates estimates =
            harness::estimateBaselines(app.power, task->profile);
        // CatNap's task cost is the start-to-completion voltage drop.
        cost_[task->id] = estimates.catnap_measured - voff_;
    }
}

Volts
CatnapPolicy::costOf(core::TaskId id) const
{
    const auto it = cost_.find(id);
    log::fatalIf(it == cost_.end(), "no CatNap cost for task ", id);
    return it->second;
}

Volts
CatnapPolicy::taskStart(const SchedTask &task) const
{
    return voff_ + costOf(task.id);
}

Volts
CatnapPolicy::chainStart(const EventSpec &event) const
{
    // "Energy bucket": the sum of per-task voltage costs.
    Volts total = voff_;
    for (const auto &task : event.chain)
        total += costOf(task.id);
    return std::min(total, vhigh_);
}

Volts
CatnapPolicy::backgroundThreshold(const AppSpec &app) const
{
    // Keep an energy reserve for the most expensive event chain, plus
    // the background task's own cost. ESR is not considered, so this
    // reserve lets the buffer discharge too deep (Section VII-C).
    Volts reserve = voff_;
    for (const auto &event : app.events)
        reserve = std::max(reserve, chainStart(event));
    if (app.background.has_value())
        reserve += costOf(app.background->id);
    return std::min(reserve, vhigh_);
}

CulpeoPolicy::CulpeoPolicy(bool use_uarch, Volts dispatch_margin)
    : use_uarch_(use_uarch), dispatch_margin_(dispatch_margin)
{
    log::fatalIf(dispatch_margin.value() < 0.0,
                 "dispatch margin cannot be negative");
}

const core::Culpeo &
CulpeoPolicy::culpeo() const
{
    log::fatalIf(culpeo_ == nullptr, "CulpeoPolicy not initialized");
    return *culpeo_;
}

void
CulpeoPolicy::initialize(const AppSpec &app)
{
    vhigh_ = app.power.monitor.vhigh;
    const core::PowerSystemModel model = core::modelFromConfig(app.power);
    std::unique_ptr<core::Profiler> profiler;
    if (use_uarch_)
        profiler = std::make_unique<core::UArchProfiler>();
    else
        profiler = std::make_unique<core::IsrProfiler>();
    culpeo_ = std::make_unique<core::Culpeo>(model, std::move(profiler));

    // Profile each task once from a full buffer, *in deployment*: the
    // app's harvester charges during profiling, so the estimates are
    // tuned to the present incoming power. Stable harvest means a
    // single pass suffices (Section VI-B); a charge-rate change should
    // trigger re-initialization (Section V-B, sched::ChargeRateMonitor).
    const sim::ConstantHarvester harvester(app.harvest);
    for (const SchedTask *task : allTasks(app)) {
        sim::Device device(app.power);
        device.setHarvester(&harvester);
        device.setBufferVoltage(app.power.monitor.vhigh);
        device.forceOutputEnabled(true);
        harness::RunOptions options;
        options.dt = harness::chooseDt(task->profile);
        const harness::ProfileOutcome outcome = harness::profileTask(
            device, *culpeo_, task->id, task->profile, options);
        if (!outcome.stored) {
            log::warn("Culpeo profiling failed for task ", task->name,
                      "; its Vsafe defaults to Vhigh");
        }
    }
}

Volts
CulpeoPolicy::taskStart(const SchedTask &task) const
{
    // The guard band applies to every dispatch, not only chain starts:
    // Vsafe estimates carry model error of a few mV (the Figure 10
    // accuracy band), and the fuzz harness shows that dispatching at
    // the bare estimate can brown out by exactly that margin.
    return std::min(culpeo().getVsafe(task.id) + dispatch_margin_,
                    vhigh_);
}

Volts
CulpeoPolicy::chainStart(const EventSpec &event) const
{
    std::vector<core::TaskId> ids;
    ids.reserve(event.chain.size());
    for (const auto &task : event.chain)
        ids.push_back(task.id);
    return std::min(culpeo().getVsafeMulti(ids) + dispatch_margin_,
                    vhigh_);
}

Volts
CulpeoPolicy::backgroundThreshold(const AppSpec &app) const
{
    if (!app.background.has_value())
        return vhigh_;
    // Background work may run only if, after it, the buffer could still
    // serve the most demanding event chain: compose background + chain.
    Volts threshold{0.0};
    for (const auto &event : app.events) {
        std::vector<core::TaskId> ids;
        ids.push_back(app.background->id);
        for (const auto &task : event.chain)
            ids.push_back(task.id);
        threshold = std::max(threshold, culpeo().getVsafeMulti(ids));
    }
    return std::min(threshold + dispatch_margin_, vhigh_);
}

} // namespace culpeo::sched
