#include "policy.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <utility>

#include "harness/baselines.hpp"
#include "harness/profiling.hpp"
#include "sched/policy_adaptive.hpp"
#include "util/logging.hpp"

namespace culpeo::sched {

namespace {

/** Every task an app can run (chains plus background). */
std::vector<const SchedTask *>
allTasks(const AppSpec &app)
{
    std::vector<const SchedTask *> tasks;
    for (const auto &event : app.events)
        for (const auto &task : event.chain)
            tasks.push_back(&task);
    if (app.background.has_value())
        tasks.push_back(&*app.background);
    return tasks;
}

} // namespace

bool
PolicyDescription::has(core::TaskId id) const
{
    for (const TaskCost &entry : tasks) {
        if (entry.id == id)
            return true;
    }
    return false;
}

const TaskCost &
PolicyDescription::costOf(core::TaskId id) const
{
    for (const TaskCost &entry : tasks) {
        if (entry.id == id)
            return entry;
    }
    log::fatal("policy '", policy, "' has no cost entry for task ", id);
}

PolicyDescription
Policy::describe() const
{
    PolicyDescription description;
    description.policy = name();
    return description;
}

// --- Policy registry ----------------------------------------------------

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, PolicyFactory> factories;
};

Registry &
registry()
{
    // Seeded on first use so registration order never depends on
    // static-initialization order across translation units. (The mutex
    // makes Registry unmovable, so seeding happens in a second static
    // rather than a by-value initializer.)
    static Registry instance;
    static const bool seeded = [] {
        instance.factories["catnap"] = [] {
            return std::unique_ptr<Policy>(new CatnapPolicy());
        };
        instance.factories["culpeo"] = [] {
            return std::unique_ptr<Policy>(new CulpeoPolicy());
        };
        instance.factories["culpeo-uarch"] = [] {
            return std::unique_ptr<Policy>(new CulpeoPolicy(true));
        };
        instance.factories["eab"] = [] {
            return std::unique_ptr<Policy>(
                new EnergyAdaptiveBufferPolicy());
        };
        instance.factories["adaptive"] = [] {
            return std::unique_ptr<Policy>(new AdaptiveWorkloadPolicy());
        };
        return true;
    }();
    (void)seeded;
    return instance;
}

} // namespace

void
registerPolicy(const std::string &name, PolicyFactory factory)
{
    log::fatalIf(name.empty(), "policy name cannot be empty");
    log::fatalIf(factory == nullptr, "policy factory cannot be null");
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const bool inserted =
        reg.factories.emplace(name, std::move(factory)).second;
    log::fatalIf(!inserted, "policy '", name, "' is already registered");
}

bool
policyRegistered(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.factories.find(name) != reg.factories.end();
}

std::unique_ptr<Policy>
makePolicy(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it == reg.factories.end()) {
        std::ostringstream known;
        for (const auto &entry : reg.factories)
            known << (known.tellp() > 0 ? ", " : "") << entry.first;
        log::fatal("unknown policy '", name, "' (registered: ",
                   known.str(), ")");
    }
    return it->second();
}

std::vector<std::string>
registeredPolicies()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.factories.size());
    for (const auto &entry : reg.factories)
        names.push_back(entry.first);
    return names; // std::map iterates sorted.
}

// --- CatnapPolicy -------------------------------------------------------

void
CatnapPolicy::initialize(const AppSpec &app)
{
    voff_ = app.power.monitor.voff;
    vhigh_ = app.power.monitor.vhigh;
    cost_.clear();
    for (const SchedTask *task : allTasks(app)) {
        const harness::BaselineEstimates estimates =
            harness::estimateBaselines(app.power, task->profile);
        // CatNap's task cost is the start-to-completion voltage drop.
        cost_[task->id] = {task->name,
                           estimates.catnap_measured - voff_};
    }
}

Volts
CatnapPolicy::costOf(core::TaskId id) const
{
    const auto it = cost_.find(id);
    log::fatalIf(it == cost_.end(), "no CatNap cost for task ", id);
    return it->second.cost;
}

Admission
CatnapPolicy::admitTask(const SchedTask &task) const
{
    return {true, voff_ + costOf(task.id)};
}

Admission
CatnapPolicy::admitChain(const EventSpec &event) const
{
    // "Energy bucket": the sum of per-task voltage costs.
    Volts total = voff_;
    for (const auto &task : event.chain)
        total += costOf(task.id);
    return {true, std::min(total, vhigh_)};
}

Admission
CatnapPolicy::admitBackground(const AppSpec &app) const
{
    // Keep an energy reserve for the most expensive event chain, plus
    // the background task's own cost. ESR is not considered, so this
    // reserve lets the buffer discharge too deep (Section VII-C).
    Volts reserve = voff_;
    for (const auto &event : app.events)
        reserve = std::max(reserve, admitChain(event).need);
    if (app.background.has_value())
        reserve += costOf(app.background->id);
    return {true, std::min(reserve, vhigh_)};
}

PolicyDescription
CatnapPolicy::describe() const
{
    PolicyDescription description;
    description.policy = name();
    for (const auto &entry : cost_) {
        TaskCost cost;
        cost.id = entry.first;
        cost.task = entry.second.name;
        cost.cost = entry.second.cost;
        cost.threshold = voff_ + entry.second.cost;
        description.tasks.push_back(std::move(cost));
    }
    return description;
}

// --- CulpeoPolicy -------------------------------------------------------

CulpeoPolicy::CulpeoPolicy(bool use_uarch, Volts dispatch_margin)
    : use_uarch_(use_uarch), dispatch_margin_(dispatch_margin)
{
    log::fatalIf(dispatch_margin.value() < 0.0,
                 "dispatch margin cannot be negative");
}

const core::Culpeo &
CulpeoPolicy::culpeo() const
{
    log::fatalIf(culpeo_ == nullptr, "CulpeoPolicy not initialized");
    return *culpeo_;
}

void
CulpeoPolicy::initialize(const AppSpec &app)
{
    voff_ = app.power.monitor.voff;
    vhigh_ = app.power.monitor.vhigh;
    const core::PowerSystemModel model = core::modelFromConfig(app.power);
    std::unique_ptr<core::Profiler> profiler;
    if (use_uarch_)
        profiler = std::make_unique<core::UArchProfiler>();
    else
        profiler = std::make_unique<core::IsrProfiler>();
    culpeo_ = std::make_unique<core::Culpeo>(model, std::move(profiler));

    // Profile each task once from a full buffer, *in deployment*: the
    // app's harvester charges during profiling, so the estimates are
    // tuned to the present incoming power. Stable harvest means a
    // single pass suffices (Section VI-B); a charge-rate change should
    // trigger re-initialization (Section V-B, sched::ChargeRateMonitor).
    profiled_.clear();
    const sim::ConstantHarvester harvester(app.harvest);
    for (const SchedTask *task : allTasks(app)) {
        sim::Device device(app.power);
        device.setHarvester(&harvester);
        device.setBufferVoltage(app.power.monitor.vhigh);
        device.forceOutputEnabled(true);
        harness::RunOptions options;
        options.dt = harness::chooseDt(task->profile);
        const harness::ProfileOutcome outcome = harness::profileTask(
            device, *culpeo_, task->id, task->profile, options);
        if (!outcome.stored) {
            log::warn("Culpeo profiling failed for task ", task->name,
                      "; its Vsafe defaults to Vhigh");
        }
        profiled_.emplace_back(task->id, task->name);
    }
}

Admission
CulpeoPolicy::admitTask(const SchedTask &task) const
{
    // The guard band applies to every dispatch, not only chain starts:
    // Vsafe estimates carry model error of a few mV (the Figure 10
    // accuracy band), and the fuzz harness shows that dispatching at
    // the bare estimate can brown out by exactly that margin.
    return {true, std::min(culpeo().getVsafe(task.id) + dispatch_margin_,
                           vhigh_)};
}

Admission
CulpeoPolicy::admitChain(const EventSpec &event) const
{
    std::vector<core::TaskId> ids;
    ids.reserve(event.chain.size());
    for (const auto &task : event.chain)
        ids.push_back(task.id);
    return {true, std::min(culpeo().getVsafeMulti(ids) + dispatch_margin_,
                           vhigh_)};
}

Admission
CulpeoPolicy::admitBackground(const AppSpec &app) const
{
    if (!app.background.has_value())
        return {true, vhigh_};
    // Background work may run only if, after it, the buffer could still
    // serve the most demanding event chain: compose background + chain.
    Volts threshold{0.0};
    for (const auto &event : app.events) {
        std::vector<core::TaskId> ids;
        ids.push_back(app.background->id);
        for (const auto &task : event.chain)
            ids.push_back(task.id);
        threshold = std::max(threshold, culpeo().getVsafeMulti(ids));
    }
    return {true, std::min(threshold + dispatch_margin_, vhigh_)};
}

PolicyDescription
CulpeoPolicy::describe() const
{
    PolicyDescription description;
    description.policy = name();
    std::vector<std::pair<core::TaskId, std::string>> sorted = profiled_;
    std::sort(sorted.begin(), sorted.end());
    for (const auto &entry : sorted) {
        TaskCost cost;
        cost.id = entry.first;
        cost.task = entry.second;
        cost.threshold =
            std::min(culpeo().getVsafe(entry.first) + dispatch_margin_,
                     vhigh_);
        cost.cost = cost.threshold - voff_;
        description.tasks.push_back(std::move(cost));
    }
    return description;
}

} // namespace culpeo::sched
