/**
 * @file
 * Charge-management policies for the scheduler engine.
 *
 * CatnapPolicy reproduces the energy-only reasoning of the CatNap
 * scheduler [71]: each task's cost is the capacitor voltage drop measured
 * at task completion (before the ESR rebound), and chains are budgeted by
 * summing those drops ("energy buckets"). Its background threshold keeps
 * only that energy-based reserve — which, because ESR is ignored,
 * discharges the buffer too far (Section VII-C).
 *
 * CulpeoPolicy replaces the estimates with Culpeo-R Vsafe values obtained
 * by profiling each task once through the Table I interface, and budgets
 * chains with Vsafe_multi (Section IV-A), implementing the corrected
 * feasibility test of Theorem 1.
 */

#ifndef CULPEO_SCHED_POLICY_HPP
#define CULPEO_SCHED_POLICY_HPP

#include <map>
#include <memory>

#include "core/api.hpp"
#include "sched/app.hpp"

namespace culpeo::sched {

/** Interface the engine consults for start/reserve voltage levels. */
class Policy
{
  public:
    virtual ~Policy() = default;

    virtual const char *name() const = 0;

    /**
     * One-time offline profiling pass against an isolated copy of the
     * app's power system (harvested power is stable in the evaluation,
     * Section VI-B, so profiling happens once before the app starts).
     */
    virtual void initialize(const AppSpec &app) = 0;

    /** Minimum voltage to begin an individual task. */
    virtual Volts taskStart(const SchedTask &task) const = 0;

    /** Minimum voltage to begin an event's full task chain. */
    virtual Volts chainStart(const EventSpec &event) const = 0;

    /**
     * Minimum voltage at which background (low-priority) work may run;
     * below it the scheduler hoards charge for future events.
     */
    virtual Volts backgroundThreshold(const AppSpec &app) const = 0;
};

/** Energy-only baseline (CatNap-style voltage-as-energy budgeting). */
class CatnapPolicy : public Policy
{
  public:
    const char *name() const override { return "catnap"; }
    void initialize(const AppSpec &app) override;
    Volts taskStart(const SchedTask &task) const override;
    Volts chainStart(const EventSpec &event) const override;
    Volts backgroundThreshold(const AppSpec &app) const override;

    /** Measured voltage-drop cost of a task (for inspection/tests). */
    Volts costOf(core::TaskId id) const;

  private:
    std::map<core::TaskId, Volts> cost_; ///< Per-task measured drop.
    Volts voff_{0.0};
    Volts vhigh_{0.0};
};

/** Culpeo-R-ISR integrated policy (Section VI-B). */
class CulpeoPolicy : public Policy
{
  public:
    /**
     * @param use_uarch profile with the uArch block instead of the ISR.
     * @param dispatch_margin guard band added to every dispatch
     *        threshold (task, chain start, background) on top of the
     *        raw Vsafe values: the scheduler idles the buffer this far
     *        above the requirement so that estimate noise and Vsafe
     *        model error (the Figure 10 accuracy band) cannot leave a
     *        dispatch exactly at the brown-out boundary. Default 20 mV
     *        (~2% of the operating range).
     */
    explicit CulpeoPolicy(bool use_uarch = false,
                          Volts dispatch_margin = Volts(20e-3));

    const char *name() const override
    {
        return use_uarch_ ? "culpeo-uarch" : "culpeo";
    }
    void initialize(const AppSpec &app) override;
    Volts taskStart(const SchedTask &task) const override;
    Volts chainStart(const EventSpec &event) const override;
    Volts backgroundThreshold(const AppSpec &app) const override;

    /** The underlying Culpeo instance (valid after initialize). */
    const core::Culpeo &culpeo() const;

  private:
    bool use_uarch_;
    Volts dispatch_margin_;
    std::unique_ptr<core::Culpeo> culpeo_;
    Volts vhigh_{0.0};
};

} // namespace culpeo::sched

#endif // CULPEO_SCHED_POLICY_HPP
