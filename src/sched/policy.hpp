/**
 * @file
 * Charge-management policies for the scheduler engine.
 *
 * A Policy is consulted at every dispatch decision and returns an
 * Admission: whether to dispatch, the start-voltage requirement, and an
 * optional buffer-reconfiguration request (for policies that manage a
 * switchable bank array). Policies may be *stateful*: the engine feeds
 * every committed task's outcome back through observe(), so online
 * strategies can learn from completions and brown-outs. Policies whose
 * admissions are pure functions of the initialized app report
 * stationary() == true and stay eligible for the batch sweep executor's
 * resolve-once threshold tables.
 *
 * CatnapPolicy reproduces the energy-only reasoning of the CatNap
 * scheduler [71]: each task's cost is the capacitor voltage drop measured
 * at task completion (before the ESR rebound), and chains are budgeted by
 * summing those drops ("energy buckets"). Its background threshold keeps
 * only that energy-based reserve — which, because ESR is ignored,
 * discharges the buffer too far (Section VII-C).
 *
 * CulpeoPolicy replaces the estimates with Culpeo-R Vsafe values obtained
 * by profiling each task once through the Table I interface, and budgets
 * chains with Vsafe_multi (Section IV-A), implementing the corrected
 * feasibility test of Theorem 1.
 *
 * Concrete policies register in a process-wide registry so front ends
 * (TrialBuilder, harness::runBakeoff, fleet cohorts) can select them by
 * name: makePolicy("culpeo"), TrialBuilder().policy("eab"), ...
 */

#ifndef CULPEO_SCHED_POLICY_HPP
#define CULPEO_SCHED_POLICY_HPP

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "sched/app.hpp"

namespace culpeo::sim {
struct CapacitorConfig;
} // namespace culpeo::sim

namespace culpeo::sched {

/**
 * Verdict for one dispatch request — returned by Policy::admit*() and
 * by the safety supervisor's admission layer (sched/supervisor.hpp).
 */
struct Admission
{
    bool admit = false;
    /** Effective start-voltage requirement (base + adaptive margin). */
    Volts need{0.0};
    /**
     * Optional buffer-reconfiguration request: a policy managing a
     * switchable bank array (sim/bank_array.hpp) points at the
     * aggregate capacitor configuration it wants on the rail before
     * this dispatch. The pointee is owned by the policy and stable
     * until the next initialize(). The engine applies the request via
     * sim::Device::reconfigureBuffer() before honoring `need`; a
     * policy may therefore assume an attached request takes effect.
     * Null (the default, and always for the built-in threshold
     * policies) leaves the buffer untouched.
     */
    const sim::CapacitorConfig *buffer = nullptr;
    /** Active bank count implied by `buffer` (0 when not applicable). */
    unsigned banks = 0;
    /**
     * Static human-readable reason for telemetry/scorecards (e.g.
     * "eab:shrink(harvest)"). Never null; "" means unremarkable.
     */
    const char *rationale = "";
};

/**
 * Feedback for one committed dispatch, fed to Policy::observe() after
 * the task ran (or browned out). All voltages are terminal-side.
 */
struct TaskOutcome
{
    const SchedTask *task = nullptr;
    bool completed = false;
    Volts started_at{0.0}; ///< Resting voltage the dispatch left from.
    Volts need{0.0};       ///< Requirement it was admitted against.
    Volts base_need{0.0};  ///< Bare policy requirement (no margins).
    Volts vmin{0.0};       ///< Minimum terminal voltage of the run.
    Volts vend{0.0};       ///< Terminal voltage when the run ended.
    Volts voff{0.0};       ///< Brown-out threshold.
    Watts harvest{0.0};    ///< Harvest power at completion time.
    Seconds now{0.0};      ///< Simulation time when the run ended.
};

/** One task's entry in a policy's introspection report. */
struct TaskCost
{
    core::TaskId id = 0;
    std::string task;       ///< Task name.
    Volts threshold{0.0};   ///< Admission requirement for the lone task.
    Volts cost{0.0};        ///< threshold - Voff: the budgeted drop.
};

/**
 * Generic, policy-agnostic introspection surface: what a policy
 * currently believes each task requires. Tests and the bake-off
 * scorecard read this instead of downcasting to concrete types.
 */
struct PolicyDescription
{
    std::string policy;          ///< Policy name.
    std::vector<TaskCost> tasks; ///< Sorted by task id.
    std::string notes;           ///< Free-form state summary.

    bool has(core::TaskId id) const;
    /** Entry for @p id; fatal when the policy has no estimate for it. */
    const TaskCost &costOf(core::TaskId id) const;
};

/** Interface the engine consults for every dispatch decision. */
class Policy
{
  public:
    virtual ~Policy() = default;

    virtual const char *name() const = 0;

    /**
     * One-time offline pass against an isolated copy of the app's
     * power system (profiling, table construction, estimator reset).
     * Must be called before any admit*()/describe() query.
     */
    virtual void initialize(const AppSpec &app) = 0;

    /** May an individual task dispatch, and from what voltage? */
    virtual Admission admitTask(const SchedTask &task) const = 0;

    /** May an event's full task chain begin, and from what voltage? */
    virtual Admission admitChain(const EventSpec &event) const = 0;

    /**
     * May background (low-priority) work run, and above what reserve?
     * Below the returned need the scheduler hoards charge for future
     * events.
     */
    virtual Admission admitBackground(const AppSpec &app) const = 0;

    /**
     * Runtime feedback: called by the engine after every committed
     * dispatch (chain tasks and background runs alike). Stateless
     * policies ignore it; online policies update their estimates here.
     */
    virtual void observe(const TaskOutcome &outcome) { (void)outcome; }

    /**
     * True when admissions are a pure function of the initialized app —
     * i.e. observe() never changes a future admission. Stationary
     * policies may have their thresholds resolved once per sweep
     * (batch::PolicyTables) and shared across parallel trials;
     * adapting policies must return false and run on the scalar
     * serial path.
     */
    virtual bool stationary() const { return true; }

    /**
     * Introspection snapshot (see PolicyDescription). The default
     * reports the name with no per-task entries; policies that hold
     * per-task estimates override it.
     */
    virtual PolicyDescription describe() const;
};

// --- Policy registry ----------------------------------------------------

/** Factory signature: a fresh, uninitialized policy instance. */
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

/**
 * Register @p factory under @p name. Fatal on an empty name or a
 * duplicate registration. The built-in policies ("catnap", "culpeo",
 * "culpeo-uarch", "eab", "adaptive") are pre-registered.
 */
void registerPolicy(const std::string &name, PolicyFactory factory);

/** True when @p name resolves to a registered factory. */
bool policyRegistered(const std::string &name);

/**
 * Instantiate a fresh, uninitialized policy by name; fatal (listing
 * the registered names) when @p name is unknown.
 */
std::unique_ptr<Policy> makePolicy(const std::string &name);

/** All registered policy names, sorted. */
std::vector<std::string> registeredPolicies();

// --- Built-in threshold policies ----------------------------------------

/** Energy-only baseline (CatNap-style voltage-as-energy budgeting). */
class CatnapPolicy : public Policy
{
  public:
    const char *name() const override { return "catnap"; }
    void initialize(const AppSpec &app) override;
    Admission admitTask(const SchedTask &task) const override;
    Admission admitChain(const EventSpec &event) const override;
    Admission admitBackground(const AppSpec &app) const override;
    PolicyDescription describe() const override;

  private:
    struct Entry
    {
        std::string name;
        Volts cost{0.0}; ///< Measured start-to-completion drop.
    };

    /** Measured voltage-drop cost of a task; fatal for unknown ids. */
    Volts costOf(core::TaskId id) const;

    std::map<core::TaskId, Entry> cost_;
    Volts voff_{0.0};
    Volts vhigh_{0.0};
};

/** Culpeo-R-ISR integrated policy (Section VI-B). */
class CulpeoPolicy : public Policy
{
  public:
    /**
     * @param use_uarch profile with the uArch block instead of the ISR.
     * @param dispatch_margin guard band added to every dispatch
     *        threshold (task, chain start, background) on top of the
     *        raw Vsafe values: the scheduler idles the buffer this far
     *        above the requirement so that estimate noise and Vsafe
     *        model error (the Figure 10 accuracy band) cannot leave a
     *        dispatch exactly at the brown-out boundary. Default 20 mV
     *        (~2% of the operating range).
     */
    explicit CulpeoPolicy(bool use_uarch = false,
                          Volts dispatch_margin = Volts(20e-3));

    const char *name() const override
    {
        return use_uarch_ ? "culpeo-uarch" : "culpeo";
    }
    void initialize(const AppSpec &app) override;
    Admission admitTask(const SchedTask &task) const override;
    Admission admitChain(const EventSpec &event) const override;
    Admission admitBackground(const AppSpec &app) const override;
    PolicyDescription describe() const override;

    /** The underlying Culpeo instance (valid after initialize). */
    const core::Culpeo &culpeo() const;

  private:
    bool use_uarch_;
    Volts dispatch_margin_;
    std::unique_ptr<core::Culpeo> culpeo_;
    /** (id, name) of every profiled task, for describe(). */
    std::vector<std::pair<core::TaskId, std::string>> profiled_;
    Volts voff_{0.0};
    Volts vhigh_{0.0};
};

} // namespace culpeo::sched

#endif // CULPEO_SCHED_POLICY_HPP
