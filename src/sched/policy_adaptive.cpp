#include "policy_adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace culpeo::sched {

namespace {

/** Every task an app can run (chains plus background). */
std::vector<const SchedTask *>
allTasks(const AppSpec &app)
{
    std::vector<const SchedTask *> tasks;
    for (const auto &event : app.events)
        for (const auto &task : event.chain)
            tasks.push_back(&task);
    if (app.background.has_value())
        tasks.push_back(&*app.background);
    return tasks;
}

} // namespace

// --- EnergyAdaptiveBufferPolicy -----------------------------------------

EnergyAdaptiveBufferPolicy::EnergyAdaptiveBufferPolicy(
    EnergyAdaptiveBufferOptions options)
    : options_(options)
{
    log::fatalIf(options_.total_banks == 0,
                 "eab needs at least one bank");
    log::fatalIf(options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0,
                 "eab ewma_alpha must be in (0, 1]");
    log::fatalIf(options_.shrink_ratio >= options_.grow_ratio,
                 "eab shrink_ratio must be below grow_ratio");
}

void
EnergyAdaptiveBufferPolicy::initialize(const AppSpec &app)
{
    vhigh_ = app.power.monitor.vhigh;
    profiled_harvest_ = app.harvest;
    harvest_ewma_w_ = 0.0;
    ewma_valid_ = false;
    pending_rationale_ = "";

    // Split the app's capacitor into total_banks identical parallel
    // sub-banks: a k-of-n aggregate then has k/n of the capacitance and
    // leakage and n/k of every branch resistance, so the full array
    // reproduces the app's buffer (plus the parallel switch path).
    const double n = double(options_.total_banks);
    sim::BankArrayConfig array;
    array.sub_bank = app.power.capacitor;
    array.sub_bank.capacitance = app.power.capacitor.capacitance / n;
    array.sub_bank.leakage = app.power.capacitor.leakage / n;
    array.sub_bank.series_esr = app.power.capacitor.series_esr * n;
    array.sub_bank.bulk_resistance = app.power.capacitor.bulk_resistance * n;
    array.sub_bank.surface_resistance =
        app.power.capacitor.surface_resistance * n;
    array.total_banks = options_.total_banks;
    array.switch_resistance = options_.switch_resistance;
    bank_.emplace(array);

    // Per-configuration Culpeo profiles: every bank count gets its own
    // ESR-aware threshold set (profile data is tagged with a buffer
    // configuration, Section V-B).
    configs_.clear();
    configs_.reserve(options_.total_banks);
    policies_.clear();
    policies_.reserve(options_.total_banks);
    for (unsigned k = 1; k <= options_.total_banks; ++k) {
        configs_.push_back(bank_->capacitorFor(k));
        AppSpec scaled = app;
        scaled.power = bank_->powerSystemFor(k, app.power);
        auto policy = std::make_unique<CulpeoPolicy>(
            false, options_.dispatch_margin);
        policy->initialize(scaled);
        policies_.push_back(std::move(policy));
    }

    // Feasibility floor: never shrink below the smallest configuration
    // whose most demanding chain threshold is still reachable below
    // Vhigh (a threshold clamped to Vhigh means the chain may not be
    // sustainable at all on that few banks).
    floor_banks_ = options_.total_banks;
    for (unsigned k = 1; k <= options_.total_banks; ++k) {
        Volts worst{0.0};
        for (const auto &event : app.events)
            worst = std::max(worst, policies_[k - 1]->admitChain(event).need);
        if (worst <= vhigh_ - options_.feasibility_slack) {
            floor_banks_ = k;
            break;
        }
    }

    // Start on the full array: it is the closest match to the app's
    // deployed buffer, and shrinking is an observed-harvest decision.
    target_banks_ = options_.total_banks;
    active_banks_ = options_.total_banks;
}

void
EnergyAdaptiveBufferPolicy::requireInitialized() const
{
    log::fatalIf(!bank_.has_value(),
                 "EnergyAdaptiveBufferPolicy not initialized");
}

const Policy &
EnergyAdaptiveBufferPolicy::policyFor(unsigned banks) const
{
    requireInitialized();
    log::fatalIf(banks == 0 || banks > policies_.size(),
                 "bank count must be in 1..", policies_.size());
    return *policies_[banks - 1];
}

unsigned
EnergyAdaptiveBufferPolicy::activeBanks() const
{
    requireInitialized();
    return active_banks_;
}

unsigned
EnergyAdaptiveBufferPolicy::feasibilityFloor() const
{
    requireInitialized();
    return floor_banks_;
}

const sim::CapacitorConfig &
EnergyAdaptiveBufferPolicy::bankConfig(unsigned banks) const
{
    requireInitialized();
    log::fatalIf(banks == 0 || banks > configs_.size(),
                 "bank count must be in 1..", configs_.size());
    return configs_[banks - 1];
}

Admission
EnergyAdaptiveBufferPolicy::configured(Volts need) const
{
    Admission admission;
    admission.admit = true;
    admission.need = need;
    if (target_banks_ != active_banks_) {
        // The engine applies an attached request before honoring
        // `need` (the Admission::buffer contract), so the switch can
        // be recorded as effective here despite const-ness.
        admission.buffer = &configs_[target_banks_ - 1];
        admission.banks = target_banks_;
        admission.rationale = pending_rationale_;
        active_banks_ = target_banks_;
        pending_rationale_ = "";
    }
    return admission;
}

Admission
EnergyAdaptiveBufferPolicy::admitTask(const SchedTask &task) const
{
    // Mid-chain dispatches never switch banks: the chain was admitted
    // against one configuration and must finish on it.
    return policyFor(activeBanks()).admitTask(task);
}

Admission
EnergyAdaptiveBufferPolicy::admitChain(const EventSpec &event) const
{
    requireInitialized();
    return configured(policyFor(target_banks_).admitChain(event).need);
}

Admission
EnergyAdaptiveBufferPolicy::admitBackground(const AppSpec &app) const
{
    requireInitialized();
    return configured(policyFor(target_banks_).admitBackground(app).need);
}

void
EnergyAdaptiveBufferPolicy::observe(const TaskOutcome &outcome)
{
    requireInitialized();
    if (ewma_valid_) {
        harvest_ewma_w_ = options_.ewma_alpha * outcome.harvest.value() +
                          (1.0 - options_.ewma_alpha) * harvest_ewma_w_;
    } else {
        harvest_ewma_w_ = outcome.harvest.value();
        ewma_valid_ = true;
    }

    unsigned target = target_banks_;
    const char *why = pending_rationale_;
    if (!outcome.completed) {
        // A brown-out means the active configuration could not sustain
        // the load: add capacitance regardless of the harvest trend.
        target = std::min(target_banks_ + 1, options_.total_banks);
        why = "eab:grow(brownout)";
    } else {
        const double profiled = profiled_harvest_.value();
        if (profiled > 0.0 &&
            harvest_ewma_w_ >= options_.grow_ratio * profiled) {
            // Rich harvest: persistence — more banks sustain demanding
            // chains and buffer the surplus.
            target = std::min(target_banks_ + 1, options_.total_banks);
            why = "eab:grow(harvest)";
        } else if (profiled > 0.0 &&
                   harvest_ewma_w_ <= options_.shrink_ratio * profiled) {
            // Scarce harvest: responsiveness — fewer banks recharge to
            // the dispatch threshold sooner.
            target = std::max(target_banks_ - 1, floor_banks_);
            why = "eab:shrink(harvest)";
        }
    }
    if (target != target_banks_) {
        target_banks_ = target;
        pending_rationale_ = why;
    }
}

PolicyDescription
EnergyAdaptiveBufferPolicy::describe() const
{
    requireInitialized();
    PolicyDescription description = policyFor(activeBanks()).describe();
    description.policy = name();
    std::ostringstream notes;
    notes << "banks=" << active_banks_ << "/" << options_.total_banks
          << " target=" << target_banks_ << " floor=" << floor_banks_;
    description.notes = notes.str();
    return description;
}

// --- AdaptiveWorkloadPolicy ---------------------------------------------

AdaptiveWorkloadPolicy::AdaptiveWorkloadPolicy(AdaptiveWorkloadOptions options)
    : options_(options), monitor_(options.harvest_threshold)
{
    log::fatalIf(options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0,
                 "adaptive ewma_alpha must be in (0, 1]");
    log::fatalIf(options_.safety_margin.value() < 0.0,
                 "adaptive safety_margin cannot be negative");
}

void
AdaptiveWorkloadPolicy::initialize(const AppSpec &app)
{
    initialized_ = true;
    voff_ = app.power.monitor.voff;
    vhigh_ = app.power.monitor.vhigh;
    estimates_.clear();
    task_names_.clear();
    for (const SchedTask *task : allTasks(app))
        task_names_[task->id] = task->name;
    harvest_resets_ = 0;
    monitor_ = ChargeRateMonitor(options_.harvest_threshold);
    monitor_.baseline(app.harvest);
}

void
AdaptiveWorkloadPolicy::requireInitialized() const
{
    log::fatalIf(!initialized_, "AdaptiveWorkloadPolicy not initialized");
}

Volts
AdaptiveWorkloadPolicy::costOf(core::TaskId id) const
{
    // No a-priori profiles: a task we have never run dispatches from
    // the most conservative level the hardware offers (a full buffer).
    const auto it = estimates_.find(id);
    if (it == estimates_.end() || it->second.samples == 0)
        return vhigh_ - voff_;
    // Admit on the worst drop seen since the last reset, not the EWMA
    // mean: per-dispatch load jitter puts tail instances above the
    // mean, and a committed dispatch must survive the tail.
    //
    // The observed drop also scales roughly with 1/V: the boost
    // converter draws more input current at a lower buffer voltage
    // (bigger ESR drop) and each joule removes more volts from a
    // less-charged capacitor. A sample taken at ref_v therefore
    // under-predicts the drop at a lower admission voltage. Model
    // drop(V) = drop*ref/V and solve V - drop*ref/V >= voff + margin
    // for the admission voltage; when samples were taken right at the
    // admission level the solution collapses to the uncompensated
    // voff+drop+margin, which also serves as the floor.
    const double drop = std::max(it->second.drop_v, it->second.peak_v);
    const double floor_v = (voff_ + options_.safety_margin).value();
    const double k = drop * it->second.ref_v;
    const double compensated =
        0.5 * (floor_v + std::sqrt(floor_v * floor_v + 4.0 * k));
    const double cost = std::max(drop + options_.safety_margin.value(),
                                 compensated - voff_.value());
    return std::min(Volts(cost), vhigh_ - voff_);
}

Admission
AdaptiveWorkloadPolicy::admitTask(const SchedTask &task) const
{
    requireInitialized();
    return {true, std::min(voff_ + costOf(task.id), vhigh_)};
}

Admission
AdaptiveWorkloadPolicy::admitChain(const EventSpec &event) const
{
    requireInitialized();
    Volts total = voff_;
    for (const auto &task : event.chain)
        total += costOf(task.id);
    return {true, std::min(total, vhigh_)};
}

Admission
AdaptiveWorkloadPolicy::admitBackground(const AppSpec &app) const
{
    requireInitialized();
    // Reserve the most demanding chain's budget on top of the
    // background task's own cost, as the CatNap-style reserve does.
    Volts reserve = voff_;
    for (const auto &event : app.events)
        reserve = std::max(reserve, admitChain(event).need);
    if (app.background.has_value())
        reserve += costOf(app.background->id);
    return {true, std::min(reserve, vhigh_)};
}

void
AdaptiveWorkloadPolicy::observe(const TaskOutcome &outcome)
{
    requireInitialized();
    // Harvest drift invalidates every estimate: the start-to-Vmin drop
    // depends on the incoming power the samples were taken at
    // (Section V-B), exactly like Culpeo's profiled Vsafe values.
    if (monitor_.observe(outcome.harvest)) {
        estimates_.clear();
        monitor_.baseline(outcome.harvest);
        ++harvest_resets_;
    }
    if (outcome.task == nullptr)
        return;
    task_names_[outcome.task->id] = outcome.task->name;

    // A completion's requirement sample is the observed start-to-Vmin
    // drop (ESR-aware, directly comparable to Vsafe - Voff). A
    // brown-out only lower-bounds the true drop — the run consumed the
    // whole start-to-Voff budget and still failed — so bump past it.
    double sample;
    if (outcome.completed)
        sample = (outcome.started_at - outcome.vmin).value();
    else
        sample = (outcome.started_at - outcome.voff).value() +
                 options_.brownout_bump.value();
    sample = std::max(sample, 0.0);

    Estimate &estimate = estimates_[outcome.task->id];
    if (estimate.samples == 0) {
        estimate.drop_v = sample;
        estimate.ref_v = outcome.started_at.value();
    } else {
        estimate.drop_v = options_.ewma_alpha * sample +
                          (1.0 - options_.ewma_alpha) * estimate.drop_v;
        estimate.ref_v =
            options_.ewma_alpha * outcome.started_at.value() +
            (1.0 - options_.ewma_alpha) * estimate.ref_v;
    }
    if (!outcome.completed) {
        // Never let a failure *lower* the estimate through the EWMA.
        estimate.drop_v = std::max(estimate.drop_v, sample);
    }
    estimate.peak_v = std::max(estimate.peak_v, sample);
    ++estimate.samples;
}

std::optional<Volts>
AdaptiveWorkloadPolicy::estimatedDrop(core::TaskId id) const
{
    const auto it = estimates_.find(id);
    if (it == estimates_.end() || it->second.samples == 0)
        return std::nullopt;
    return Volts(it->second.drop_v);
}

unsigned
AdaptiveWorkloadPolicy::sampleCount(core::TaskId id) const
{
    const auto it = estimates_.find(id);
    return it == estimates_.end() ? 0 : it->second.samples;
}

PolicyDescription
AdaptiveWorkloadPolicy::describe() const
{
    requireInitialized();
    PolicyDescription description;
    description.policy = name();
    unsigned total_samples = 0;
    for (const auto &entry : task_names_) {
        TaskCost cost;
        cost.id = entry.first;
        cost.task = entry.second;
        cost.cost = costOf(entry.first);
        cost.threshold = std::min(voff_ + cost.cost, vhigh_);
        description.tasks.push_back(std::move(cost));
        const auto it = estimates_.find(entry.first);
        if (it != estimates_.end())
            total_samples += it->second.samples;
    }
    std::ostringstream notes;
    notes << "samples=" << total_samples << " resets=" << harvest_resets_
          << " baseline_w=" << monitor_.currentBaseline().value();
    description.notes = notes.str();
    return description;
}

} // namespace culpeo::sched
