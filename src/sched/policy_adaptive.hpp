/**
 * @file
 * Online-adapting charge-management policies — the two strategies the
 * pluggable Policy interface exists to express:
 *
 * EnergyAdaptiveBufferPolicy (Williams & Hicks, "Energy-adaptive
 * Buffering for Efficient, Responsive, and Persistent Batteryless
 * Systems"): treats the app's capacitor as a switchable bank array
 * (sim/bank_array.hpp) and resizes the effective capacitance at run
 * time — few banks recharge fast (responsive under scarce harvest),
 * many banks sustain demanding chains (persistent under rich harvest).
 * Thresholds for each bank count come from a per-configuration
 * CulpeoPolicy, so every configuration stays ESR-safe; observe() runs
 * a harvest EWMA that drives grow/shrink requests attached to chain
 * and background admissions.
 *
 * AdaptiveWorkloadPolicy (Nasser et al., "Managing Task Execution for
 * Unknown Workloads in Batteryless IoT"): no a-priori task profiles at
 * all. Unknown tasks dispatch from Vhigh (maximally conservative); each
 * completion yields the observed start-to-Vmin drop, and a per-task
 * estimate (EWMA mean, admission on the worst drop seen since the
 * last reset — committed dispatches must survive the jitter tail)
 * converges onto the true requirement from above.
 * Because the drop scales roughly with 1/V (boost input current and
 * volts-per-joule both grow as the buffer empties), admissions solve
 * for the start voltage at which the voltage-scaled estimate still
 * clears Voff + margin, so estimates learned at a high start voltage
 * stay safe when dispatching lower.
 * Brown-outs bump the estimate; a sched::ChargeRateMonitor resets the
 * estimator when the harvest level drifts past the re-profiling
 * threshold (Section V-B).
 */

#ifndef CULPEO_SCHED_POLICY_ADAPTIVE_HPP
#define CULPEO_SCHED_POLICY_ADAPTIVE_HPP

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sched/adaptive.hpp"
#include "sched/policy.hpp"
#include "sim/bank_array.hpp"

namespace culpeo::sched {

/** Tuning for EnergyAdaptiveBufferPolicy. */
struct EnergyAdaptiveBufferOptions
{
    /** Sub-banks the app capacitor is split into. */
    unsigned total_banks = 3;
    /** Per-bank switch interconnect resistance (Section V-B). */
    units::Ohms switch_resistance{0.15};
    /** EWMA smoothing of the observed harvest power. */
    double ewma_alpha = 0.4;
    /** Grow one bank when harvest EWMA >= this × the profiled level. */
    double grow_ratio = 1.25;
    /** Shrink one bank when harvest EWMA <= this × the profiled level. */
    double shrink_ratio = 0.8;
    /** Guard band of the per-configuration Culpeo thresholds. */
    Volts dispatch_margin{20e-3};
    /** Chain thresholds must clear vhigh - this to count feasible. */
    Volts feasibility_slack{10e-3};
};

/**
 * Energy-adaptive buffering over the repo's reconfigurable bank-array
 * model. Non-stationary: admissions depend on the bank count observe()
 * steers. Buffer switches are requested only at chain/background
 * admissions (between commitments, as the hardware would).
 */
class EnergyAdaptiveBufferPolicy : public Policy
{
  public:
    explicit EnergyAdaptiveBufferPolicy(
        EnergyAdaptiveBufferOptions options = {});

    const char *name() const override { return "eab"; }
    void initialize(const AppSpec &app) override;
    Admission admitTask(const SchedTask &task) const override;
    Admission admitChain(const EventSpec &event) const override;
    Admission admitBackground(const AppSpec &app) const override;
    void observe(const TaskOutcome &outcome) override;
    bool stationary() const override { return false; }
    PolicyDescription describe() const override;

    const EnergyAdaptiveBufferOptions &options() const { return options_; }
    /** Banks currently on the rail (per the engine-applied requests). */
    unsigned activeBanks() const;
    /** Bank count the next chain/background admission will request. */
    unsigned targetBanks() const { return target_banks_; }
    /**
     * Smallest bank count whose most demanding chain threshold stays
     * reachable (<= vhigh - feasibility_slack); shrink floor.
     */
    unsigned feasibilityFloor() const;
    /** Aggregate capacitor model for @p banks active (1-based). */
    const sim::CapacitorConfig &bankConfig(unsigned banks) const;

  private:
    /** Buffer request + threshold source for the decided bank count. */
    Admission configured(Volts need) const;
    const Policy &policyFor(unsigned banks) const;
    void requireInitialized() const;

    EnergyAdaptiveBufferOptions options_;
    std::optional<sim::BankArray> bank_;
    std::vector<sim::CapacitorConfig> configs_;  ///< Index k-1: k banks.
    std::vector<std::unique_ptr<CulpeoPolicy>> policies_; ///< Same index.
    unsigned floor_banks_ = 1;
    unsigned target_banks_ = 1;
    /**
     * Banks the engine has on the rail. Updated from const admissions
     * under the Admission::buffer contract (an attached request is
     * applied by the engine before the dispatch proceeds).
     */
    mutable unsigned active_banks_ = 1;
    mutable const char *pending_rationale_ = "";
    Watts profiled_harvest_{0.0};
    double harvest_ewma_w_ = 0.0;
    bool ewma_valid_ = false;
    Volts vhigh_{0.0};
};

/** Tuning for AdaptiveWorkloadPolicy. */
struct AdaptiveWorkloadOptions
{
    /** EWMA smoothing of the per-task drop estimate. */
    double ewma_alpha = 0.5;
    /** Guard band above the estimated drop, as CulpeoPolicy's margin. */
    Volts safety_margin{30e-3};
    /** Extra requirement added after a brown-out of the task. */
    Volts brownout_bump{40e-3};
    /** Relative harvest change that resets all estimates (Section V-B). */
    double harvest_threshold = 0.25;
};

/**
 * Profile-free online cost estimation: converges onto the profiled
 * Vsafe from above using only observed outcomes. Non-stationary.
 */
class AdaptiveWorkloadPolicy : public Policy
{
  public:
    explicit AdaptiveWorkloadPolicy(AdaptiveWorkloadOptions options = {});

    const char *name() const override { return "adaptive"; }
    void initialize(const AppSpec &app) override;
    Admission admitTask(const SchedTask &task) const override;
    Admission admitChain(const EventSpec &event) const override;
    Admission admitBackground(const AppSpec &app) const override;
    void observe(const TaskOutcome &outcome) override;
    bool stationary() const override { return false; }
    PolicyDescription describe() const override;

    const AdaptiveWorkloadOptions &options() const { return options_; }
    /** Current drop estimate for @p id (nullopt before any sample). */
    std::optional<Volts> estimatedDrop(core::TaskId id) const;
    /** Samples folded into @p id's estimate so far. */
    unsigned sampleCount(core::TaskId id) const;
    /** Estimator resets triggered by harvest drift. */
    unsigned harvestResets() const { return harvest_resets_; }

  private:
    struct Estimate
    {
        double drop_v = 0.0; ///< EWMA of the start-to-Vmin drop.
        double peak_v = 0.0; ///< Worst drop observed since the reset.
        double ref_v = 0.0;  ///< EWMA of the sample start voltages.
        unsigned samples = 0;
    };

    /** Per-task cost above Voff: estimate + margin, or worst case. */
    Volts costOf(core::TaskId id) const;
    void requireInitialized() const;

    AdaptiveWorkloadOptions options_;
    ChargeRateMonitor monitor_;
    std::map<core::TaskId, Estimate> estimates_;
    std::map<core::TaskId, std::string> task_names_;
    unsigned harvest_resets_ = 0;
    bool initialized_ = false;
    Volts voff_{0.0};
    Volts vhigh_{0.0};
};

} // namespace culpeo::sched

#endif // CULPEO_SCHED_POLICY_ADAPTIVE_HPP
