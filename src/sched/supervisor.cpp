#include "supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace culpeo::sched {

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {}

Supervisor::TaskState &
Supervisor::state(const std::string &name)
{
    return tasks_[name];
}

bool
Supervisor::probeDue(const TaskState &task, Seconds now) const
{
    return now >= task.probe_at;
}

std::uint32_t
Supervisor::label(TaskState &task, const std::string &name)
{
    if constexpr (telemetry::kEnabled) {
        if (task.label == 0 && telemetry_ != nullptr)
            task.label = telemetry_->trace().intern(name);
    } else {
        (void)name;
    }
    return task.label;
}

void
Supervisor::emit(telemetry::EventKind kind, Seconds now, double voltage_v,
                 std::uint32_t name_id, double value, bool flag)
{
    if constexpr (telemetry::kEnabled) {
        if (telemetry_ != nullptr) {
            telemetry_->emit(kind, now.value(), voltage_v, name_id,
                             value, flag);
        }
    } else {
        (void)kind;
        (void)now;
        (void)voltage_v;
        (void)name_id;
        (void)value;
        (void)flag;
    }
}

void
Supervisor::demote(TaskState &task, const std::string &name, Seconds now)
{
    task.health = TaskHealth::Demoted;
    task.consecutive_brownouts = 0;
    task.probe_pending = false;
    ++task.demotions;
    const double backoff =
        std::pow(options_.probe_backoff, double(task.demotions - 1));
    const double interval =
        std::min(options_.max_probe_interval.value(),
                 options_.probe_interval.value() * backoff);
    task.probe_at = now + Seconds(interval);
    ++stats_.sheds;
    if constexpr (telemetry::kEnabled) {
        if (ctr_sheds_ != nullptr)
            ctr_sheds_->add();
    }
    emit(telemetry::EventKind::TaskShed, now, 0.0, label(task, name),
         task.probe_at.value());
}

void
Supervisor::setMargin(TaskState &task, const std::string &name,
                      double margin_v, Seconds now)
{
    margin_v = std::clamp(margin_v, 0.0, options_.max_margin.value());
    const double delta = margin_v - task.margin_v;
    if (delta == 0.0)
        return;
    const bool inflation = delta > 0.0;
    const bool notable =
        std::abs(delta) >= options_.margin_quantum.value();
    task.margin_v = margin_v;
    if (inflation) {
        ++stats_.margin_inflations;
        if constexpr (telemetry::kEnabled) {
            if (ctr_margin_inflations_ != nullptr)
                ctr_margin_inflations_->add();
        }
    }
    if (notable) {
        emit(telemetry::EventKind::MarginUpdate, now, 0.0,
             label(task, name), margin_v, inflation);
    }
}

void
Supervisor::updateDrift(TaskState &task, const std::string &name,
                        double deficit_v, Seconds now)
{
    if (!task.ewma_valid) {
        task.deficit_ewma_v = deficit_v;
        task.ewma_valid = true;
    } else {
        task.deficit_ewma_v += options_.ewma_alpha *
                               (deficit_v - task.deficit_ewma_v);
    }

    // Alarm latch with hysteresis: raise when the smoothed deficit
    // climbs within drift_threshold of unsafe (deficit 0 = the base
    // requirement browns out exactly), re-arm a full threshold lower.
    const double alarm_level = -options_.drift_threshold.value();
    if (!task.alarm && task.deficit_ewma_v > alarm_level) {
        task.alarm = true;
        ++stats_.drift_alarms;
        if constexpr (telemetry::kEnabled) {
            if (ctr_drift_alarms_ != nullptr)
                ctr_drift_alarms_->add();
        }
        emit(telemetry::EventKind::DriftAlarm, now, 0.0,
             label(task, name), task.deficit_ewma_v);
    } else if (task.alarm && task.deficit_ewma_v <
                                 alarm_level -
                                     options_.drift_threshold.value()) {
        task.alarm = false;
    }

    // Track the estimate from below, decay toward it from above. The
    // floor leads the drift (slack above the smoothed deficit); the
    // decay forgets brown-out inflation once completions resume and the
    // alarm has cleared.
    const double floor = task.deficit_ewma_v + options_.drift_slack.value();
    double target = task.margin_v;
    if (floor > target)
        target = floor;
    else if (!task.alarm)
        target = std::max(floor, target * options_.margin_decay);
    setMargin(task, name, target, now);
}

Admission
Supervisor::admitTask(const std::string &name, Volts base_need,
                      Volts ceiling, Seconds now)
{
    TaskState &task = state(name);
    const double cap = (ceiling - options_.ceiling_slack).value();

    if (task.health == TaskHealth::Demoted) {
        if (!probeDue(task, now)) {
            ++stats_.shed_skips;
            if constexpr (telemetry::kEnabled) {
                if (ctr_shed_skips_ != nullptr)
                    ctr_shed_skips_->add();
            }
            return {false, base_need + Volts(task.margin_v)};
        }
        // Probe: one genuine attempt. Enter Recovering with the budget
        // spent, so a single failure demotes again (with a longer probe
        // interval) instead of re-opening the whole retry budget.
        task.health = TaskHealth::Recovering;
        task.consecutive_brownouts = options_.retry_budget;
        task.probe_pending = true;
        ++stats_.readmissions;
        if constexpr (telemetry::kEnabled) {
            if (ctr_readmissions_ != nullptr)
                ctr_readmissions_->add();
        }
        emit(telemetry::EventKind::TaskReadmit, now, 0.0,
             label(task, name), double(task.demotions));
    }

    double need = base_need.value() + task.margin_v;
    if (need > cap) {
        if (task.probe_pending || base_need.value() > cap) {
            // A probe runs from the best reachable voltage — and so
            // does a task whose *base* requirement already exceeds the
            // ceiling, where no margin policy can help and refusing
            // outright would just starve it without evidence.
            need = std::max(base_need.value(), cap);
        } else {
            demote(task, name, now);
            return {false, Volts(need)};
        }
    }
    return {true, Volts(need)};
}

bool
Supervisor::admitChain(const EventSpec &spec, Seconds now) const
{
    for (const auto &task : spec.chain) {
        const auto it = tasks_.find(task.name);
        if (it == tasks_.end())
            continue;
        const TaskState &state = it->second;
        if (state.health == TaskHealth::Demoted && !probeDue(state, now))
            return false;
    }
    return true;
}

void
Supervisor::noteOutcome(const std::string &name, bool completed,
                        Volts admitted_at, Volts base_need, Volts vmin,
                        Volts voff, Seconds now)
{
    TaskState &task = state(name);
    const bool was_probe = task.probe_pending;
    task.probe_pending = false;

    // The start voltage at which this run's Vmin would have grazed Voff
    // is the task's *true* requirement; the deficit is how far it sits
    // above the policy's model. Both admitted_at and vmin move together
    // with the margin, so the deficit measures pure model error.
    const double deficit = (admitted_at - vmin + voff).value() -
                           base_need.value();

    if (completed) {
        task.consecutive_brownouts = 0;
        task.health = TaskHealth::Healthy;
        updateDrift(task, name, deficit, now);
        return;
    }

    // Brown-out. The clipped Vmin makes the deficit a lower bound on
    // the true error — still sound evidence for the estimator.
    updateDrift(task, name, deficit, now);
    ++task.consecutive_brownouts;
    ++stats_.retries;
    if constexpr (telemetry::kEnabled) {
        if (ctr_retries_ != nullptr)
            ctr_retries_->add();
    }
    emit(telemetry::EventKind::TaskRetry, now, admitted_at.value(),
         label(task, name), double(task.consecutive_brownouts),
         was_probe);
    if (task.consecutive_brownouts > options_.retry_budget) {
        demote(task, name, now);
        return;
    }
    task.health = TaskHealth::Recovering;
    const double bump =
        options_.margin_step.value() *
        std::pow(options_.backoff_factor,
                 double(task.consecutive_brownouts - 1));
    setMargin(task, name, task.margin_v + bump, now);
}

void
Supervisor::noteUnreachable(const std::string &name, Seconds now)
{
    TaskState &task = state(name);
    task.probe_pending = false;
    if (task.health != TaskHealth::Demoted)
        demote(task, name, now);
}

void
Supervisor::onTelemetry(telemetry::Telemetry *telemetry)
{
    if constexpr (!telemetry::kEnabled) {
        (void)telemetry;
        return;
    }
    telemetry_ = telemetry;
    ctr_drift_alarms_ = nullptr;
    ctr_margin_inflations_ = nullptr;
    ctr_retries_ = nullptr;
    ctr_sheds_ = nullptr;
    ctr_shed_skips_ = nullptr;
    ctr_readmissions_ = nullptr;
    for (auto &entry : tasks_)
        entry.second.label = 0; // Labels belong to the detached sink.
    if (telemetry_ == nullptr)
        return;
    namespace names = telemetry::names;
    telemetry::Registry &reg = telemetry_->registry();
    ctr_drift_alarms_ = &reg.counter(names::kSupervisorDriftAlarms);
    ctr_margin_inflations_ =
        &reg.counter(names::kSupervisorMarginInflations);
    ctr_retries_ = &reg.counter(names::kSupervisorRetries);
    ctr_sheds_ = &reg.counter(names::kSupervisorSheds);
    ctr_shed_skips_ = &reg.counter(names::kSupervisorShedSkips);
    ctr_readmissions_ = &reg.counter(names::kSupervisorReadmissions);
}

TaskHealth
Supervisor::stateOf(const std::string &name) const
{
    const auto it = tasks_.find(name);
    return it == tasks_.end() ? TaskHealth::Healthy : it->second.health;
}

Volts
Supervisor::marginOf(const std::string &name) const
{
    const auto it = tasks_.find(name);
    return Volts(it == tasks_.end() ? 0.0 : it->second.margin_v);
}

Volts
Supervisor::driftOf(const std::string &name) const
{
    const auto it = tasks_.find(name);
    return Volts(it == tasks_.end() || !it->second.ewma_valid
                     ? 0.0
                     : it->second.deficit_ewma_v);
}

void
Supervisor::reset()
{
    tasks_.clear();
    stats_ = SupervisorStats{};
}

} // namespace culpeo::sched
