/**
 * @file
 * Drift-aware safety supervisor: the closed loop that keeps Vsafe-gated
 * dispatch safe when the power system drifts away from the profile it
 * was measured on (capacitance fade, ESR growth, leakage creep — see
 * fault/degradation.hpp).
 *
 * The supervisor wraps any sched::Policy without replacing it. Callers
 * (sched/engine, runtime/intermittent) ask it to *admit* each dispatch:
 * the policy supplies the base requirement, the supervisor layers an
 * adaptive per-task margin on top and can refuse the dispatch outright.
 * After every attempt the caller reports the outcome, which drives
 * three mechanisms per task:
 *
 *  1. Drift detection (generalizes adaptive.hpp's ChargeRateMonitor
 *     from harvest rate to task energy): every completed run yields the
 *     *margin deficit* — how far the true start-voltage requirement
 *     (reconstructed from the observed Vmin) sits above the policy's
 *     base requirement. Positive deficit means dispatching at the base
 *     requirement would brown out. An EWMA of the deficit crossing
 *     -drift_threshold raises a drift alarm and floors the margin at
 *     ewma + drift_slack, so the margin tracks drift *before* the first
 *     brown-out. The deficit is invariant to the margin itself (both
 *     the admit voltage and the observed Vmin shift together), so the
 *     estimator measures pure model error.
 *
 *  2. Brown-out recovery with bounded retry: each consecutive brown-out
 *     of a task inflates its margin by margin_step * backoff_factor^n
 *     and consumes one retry from retry_budget.
 *
 *  3. Graceful degradation: when the budget is exhausted, the wait is
 *     proven unreachable, or the inflated requirement exceeds the
 *     reachable ceiling (Vhigh minus slack), the task is *demoted* —
 *     skipped instead of livelocking the schedule. A recovery probe
 *     re-admits it after an exponentially backed-off interval; the
 *     probe attempt runs from the best reachable voltage, and a single
 *     failure re-demotes.
 *
 * Per-task state machine:
 *
 *     Healthy --brown-out--> Recovering --budget exhausted--> Demoted
 *        ^                      |   ^                            |
 *        +----task completed----+   +------probe re-admission----+
 *
 * Every decision emits a trace event (DriftAlarm, MarginUpdate,
 * TaskRetry, TaskShed, TaskReadmit) and bumps a supervisor.* counter
 * when a telemetry sink is attached; SupervisorStats mirrors the
 * counters unconditionally for telemetry-off builds.
 *
 * The supervisor is deterministic (no RNG) and keyed by task name.
 * State persists across calls — reset() between unrelated runs.
 */

#ifndef CULPEO_SCHED_SUPERVISOR_HPP
#define CULPEO_SCHED_SUPERVISOR_HPP

#include <cstdint>
#include <map>
#include <string>

#include "sched/app.hpp"
#include "sched/policy.hpp"
#include "util/units.hpp"

namespace culpeo::telemetry {
class Counter;
class Telemetry;
enum class EventKind : std::uint8_t;
} // namespace culpeo::telemetry

namespace culpeo::sched {

using units::Seconds;
using units::Volts;

/** Where a task sits in the supervisor's state machine. */
enum class TaskHealth {
    Healthy,    ///< No open incident; margin tracks the drift estimate.
    Recovering, ///< Browned out recently; inflated margin, retries left.
    Demoted,    ///< Shed from the schedule until the next recovery probe.
};

/** Tuning for the supervisor's three mechanisms. */
struct SupervisorOptions
{
    /** EWMA smoothing for the per-task margin-deficit estimate. */
    double ewma_alpha = 0.3;
    /** Alarm when the deficit EWMA rises above -drift_threshold. */
    Volts drift_threshold{10e-3};
    /** While adapting, keep the margin at deficit EWMA + this slack. */
    Volts drift_slack{15e-3};
    /** First post-brown-out margin bump (then times backoff_factor^n). */
    Volts margin_step{20e-3};
    double backoff_factor = 2.0;
    /** Margins never inflate beyond this. */
    Volts max_margin{0.5};
    /** Consecutive brown-outs tolerated before demotion. */
    unsigned retry_budget = 3;
    /** First demotion's probe delay (then times probe_backoff^n). */
    Seconds probe_interval{20.0};
    double probe_backoff = 2.0;
    Seconds max_probe_interval{300.0};
    /** Healthy, alarm-free completions relax the margin by this factor. */
    double margin_decay = 0.98;
    /** MarginUpdate trace events fire only for moves >= this quantum. */
    Volts margin_quantum{2e-3};
    /** Requirements must stay below ceiling - this to count reachable. */
    Volts ceiling_slack{10e-3};
};

/** Decision counters, mirrored into telemetry when a sink is attached. */
struct SupervisorStats
{
    std::uint64_t drift_alarms = 0;
    std::uint64_t margin_inflations = 0;
    std::uint64_t retries = 0;
    std::uint64_t sheds = 0;
    std::uint64_t shed_skips = 0; ///< Dispatches refused while demoted.
    std::uint64_t readmissions = 0;
};

// The supervisor's admission verdicts share sched::Admission
// (sched/policy.hpp) with the policy interface.

/** The drift-aware safety supervisor. See the file comment. */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions options = {});

    const SupervisorOptions &options() const { return options_; }

    /**
     * Ask to dispatch @p name whose policy requirement is @p base_need
     * on a device whose recharge ceiling is @p ceiling (Vhigh). A
     * demoted task is refused until its probe is due; a requirement the
     * margin pushed beyond the ceiling demotes the task on the spot
     * (probes instead clamp to the ceiling for one genuine attempt).
     */
    Admission admitTask(const std::string &name, Volts base_need,
                        Volts ceiling, Seconds now);

    /**
     * True when no task of @p spec's chain is demoted with its probe
     * still pending (read-only: no state changes, no probe
     * consumption). Refusing the whole event up front beats spending
     * its deadline waiting for a chain that ends in a shed link.
     */
    bool admitChain(const EventSpec &spec, Seconds now) const;

    /**
     * Report the outcome of an admitted dispatch. @p admitted_at is the
     * resting voltage the task actually started from, @p base_need the
     * policy requirement passed to admitTask, @p vmin the minimum
     * terminal voltage of the run, @p voff the brown-out threshold.
     */
    void noteOutcome(const std::string &name, bool completed,
                     Volts admitted_at, Volts base_need, Volts vmin,
                     Volts voff, Seconds now);

    /** The device proved @p name's wait unsatisfiable: demote it now. */
    void noteUnreachable(const std::string &name, Seconds now);

    /**
     * Attach the (per-trial) telemetry sink, resolving counters and
     * trace labels once; pass nullptr to detach. Mirrors the
     * FaultInjector contract.
     */
    void onTelemetry(telemetry::Telemetry *telemetry);

    TaskHealth stateOf(const std::string &name) const;
    /** Current adaptive margin for @p name (0 for unknown tasks). */
    Volts marginOf(const std::string &name) const;
    /** Margin-deficit EWMA for @p name (0 until the first completion). */
    Volts driftOf(const std::string &name) const;

    const SupervisorStats &stats() const { return stats_; }

    /** Forget all per-task state and zero the stats. */
    void reset();

  private:
    struct TaskState
    {
        TaskHealth health = TaskHealth::Healthy;
        double margin_v = 0.0;
        double deficit_ewma_v = 0.0;
        bool ewma_valid = false;
        bool alarm = false;
        unsigned consecutive_brownouts = 0;
        unsigned demotions = 0;
        Seconds probe_at{0.0};
        /** One clamped-to-ceiling attempt granted by a probe. */
        bool probe_pending = false;
        std::uint32_t label = 0; ///< Interned trace label (0 = unset).
    };

    TaskState &state(const std::string &name);
    bool probeDue(const TaskState &task, Seconds now) const;
    void demote(TaskState &task, const std::string &name, Seconds now);
    void setMargin(TaskState &task, const std::string &name,
                   double margin_v, Seconds now);
    void updateDrift(TaskState &task, const std::string &name,
                     double deficit_v, Seconds now);
    std::uint32_t label(TaskState &task, const std::string &name);
    void emit(telemetry::EventKind kind, Seconds now, double voltage_v,
              std::uint32_t name_id, double value, bool flag = false);

    SupervisorOptions options_;
    SupervisorStats stats_;
    std::map<std::string, TaskState> tasks_;

    telemetry::Telemetry *telemetry_ = nullptr;
    telemetry::Counter *ctr_drift_alarms_ = nullptr;
    telemetry::Counter *ctr_margin_inflations_ = nullptr;
    telemetry::Counter *ctr_retries_ = nullptr;
    telemetry::Counter *ctr_sheds_ = nullptr;
    telemetry::Counter *ctr_shed_skips_ = nullptr;
    telemetry::Counter *ctr_readmissions_ = nullptr;
};

} // namespace culpeo::sched

#endif // CULPEO_SCHED_SUPERVISOR_HPP
