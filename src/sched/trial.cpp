#include "trial.hpp"

#include "batch/trial_runner.hpp"
#include "util/logging.hpp"

namespace culpeo {

sched::TrialResult
TrialBuilder::run() const
{
    log::fatalIf(app_ == nullptr, "TrialBuilder: app() was not set");
    log::fatalIf(policy_ == nullptr,
                 "TrialBuilder: policy() was not set");
    return sched::runTrialWith(*app_, *policy_, config_);
}

sched::AggregateResult
TrialBuilder::runAll() const
{
    log::fatalIf(app_ == nullptr, "TrialBuilder: app() was not set");
    log::fatalIf(policy_ == nullptr,
                 "TrialBuilder: policy() was not set");
    if (batch::batchTrialsEligible(config_)) {
        // Clean sweeps run on the SoA batch engine in exact-replay
        // mode: bit-identical results, lockstep execution.
        batch::TrialRunnerOptions options;
        options.batch.exact_replay = true;
        return batch::runTrialsBatch(*app_, *policy_, config_, options);
    }
    return sched::runTrialsWith(*app_, *policy_, config_);
}

} // namespace culpeo
