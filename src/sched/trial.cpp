#include "trial.hpp"

#include "batch/trial_runner.hpp"
#include "util/logging.hpp"

namespace culpeo {

sched::Policy &
TrialBuilder::resolvedPolicy() const
{
    if (named_ != nullptr) {
        if (named_->initialized_for != app_) {
            named_->policy->initialize(*app_);
            named_->initialized_for = app_;
        }
        return *named_->policy;
    }
    return *policy_;
}

sched::TrialResult
TrialBuilder::run() const
{
    log::fatalIf(app_ == nullptr, "TrialBuilder: app() was not set");
    log::fatalIf(policy_ == nullptr && named_ == nullptr,
                 "TrialBuilder: policy() was not set");
    return sched::runTrialWith(*app_, resolvedPolicy(), config_);
}

sched::AggregateResult
TrialBuilder::runAll() const
{
    log::fatalIf(app_ == nullptr, "TrialBuilder: app() was not set");
    log::fatalIf(policy_ == nullptr && named_ == nullptr,
                 "TrialBuilder: policy() was not set");
    sched::Policy &policy = resolvedPolicy();
    if (batch::batchTrialsEligible(config_, policy)) {
        // Clean stationary sweeps run on the SoA batch engine in
        // exact-replay mode: bit-identical results, lockstep execution.
        batch::TrialRunnerOptions options;
        options.batch.exact_replay = true;
        return batch::runTrialsBatch(*app_, policy, config_, options);
    }
    return sched::runTrialsWith(*app_, policy, config_);
}

} // namespace culpeo
