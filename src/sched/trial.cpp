#include "trial.hpp"

#include "util/logging.hpp"

namespace culpeo {

sched::TrialResult
TrialBuilder::run() const
{
    log::fatalIf(app_ == nullptr, "TrialBuilder: app() was not set");
    log::fatalIf(policy_ == nullptr,
                 "TrialBuilder: policy() was not set");
    return sched::runTrialWith(*app_, *policy_, config_);
}

sched::AggregateResult
TrialBuilder::runAll() const
{
    log::fatalIf(app_ == nullptr, "TrialBuilder: app() was not set");
    log::fatalIf(policy_ == nullptr,
                 "TrialBuilder: policy() was not set");
    return sched::runTrialsWith(*app_, *policy_, config_);
}

} // namespace culpeo
