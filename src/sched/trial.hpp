/**
 * @file
 * culpeo::TrialBuilder — the fluent front end to the scheduler engine.
 * One builder names everything a trial can vary, in any order, and runs
 * it:
 *
 *     auto result = culpeo::TrialBuilder()
 *                       .app(app)
 *                       .policy(policy)
 *                       .duration(units::Seconds(600.0))
 *                       .seed(42)
 *                       .telemetry(&sink)
 *                       .run();
 *
 * run() executes a single trial; runAll() executes the configured
 * number of independently seeded trials and aggregates (parallel on
 * the shared pool when no stateful instruments are attached). The
 * builder is a thin, copyable wrapper over sched::TrialConfig — use
 * config() to seed it from an existing one.
 *
 * The app and the policy are referenced, not copied: both must outlive
 * run()/runAll(), as must any attached harvester, instrument, or
 * telemetry sink.
 */

#ifndef CULPEO_SCHED_TRIAL_HPP
#define CULPEO_SCHED_TRIAL_HPP

#include <memory>

#include "env/field.hpp"
#include "sched/engine.hpp"

namespace culpeo {

class TrialBuilder
{
  public:
    TrialBuilder() = default;

    /** The application to run (required). */
    TrialBuilder &app(const sched::AppSpec &app)
    {
        app_ = &app;
        return *this;
    }

    /**
     * The charge-management policy (required, already initialized).
     * Non-const: the engine feeds dispatch outcomes back through
     * Policy::observe().
     */
    TrialBuilder &policy(sched::Policy &policy)
    {
        policy_ = &policy;
        named_.reset();
        return *this;
    }

    /**
     * Select a policy by registry name — `.policy("eab")` — instead of
     * supplying an instance. The builder owns the instance (copies
     * share it) and initializes it lazily against the configured app
     * at run()/runAll(); re-running after app() changed re-initializes.
     * Fatal on an unknown name (see sched::makePolicy).
     */
    TrialBuilder &policy(const std::string &name)
    {
        named_ = std::make_shared<Named>();
        named_->policy = sched::makePolicy(name);
        policy_ = nullptr;
        return *this;
    }

    /** Replace the whole config (builder calls can still override). */
    TrialBuilder &config(const sched::TrialConfig &config)
    {
        config_ = config;
        return *this;
    }

    TrialBuilder &duration(units::Seconds duration)
    {
        config_.duration = duration;
        return *this;
    }

    TrialBuilder &seed(std::uint64_t seed)
    {
        config_.seed = seed;
        return *this;
    }

    /** Trial count for runAll(). */
    TrialBuilder &trials(unsigned trials)
    {
        config_.trials = trials;
        return *this;
    }

    TrialBuilder &seedStride(std::uint64_t stride)
    {
        config_.seed_stride = stride;
        return *this;
    }

    /** Force the per-tick Euler wait backend (reference baseline). */
    TrialBuilder &forceEuler(bool force = true)
    {
        config_.force_euler = force;
        return *this;
    }

    /** Harvester override; null keeps the app's constant harvest. */
    TrialBuilder &harvester(const sim::Harvester *harvester)
    {
        config_.harvester = harvester;
        return *this;
    }

    /**
     * Run under a spatio-temporal harvest field, sampled at the
     * device's deployment position: installs an owned
     * env::FieldHarvester view as the harvester override (builder
     * copies share it). The field itself is borrowed and must outlive
     * run()/runAll(). Fields are piecewise constant, so the analytic
     * fast path stays eligible.
     */
    TrialBuilder &environment(const env::HarvestField &field,
                              env::Position pos = {})
    {
        env_harvester_ = std::make_shared<env::FieldHarvester>(field, pos);
        config_.harvester = env_harvester_.get();
        return *this;
    }

    /** Fault model; forces the Euler backend and a serial sweep. */
    TrialBuilder &faults(sim::FaultHooks *faults)
    {
        config_.faults = faults;
        return *this;
    }

    /** Step/commitment observer; same consequences as faults(). */
    TrialBuilder &observer(sim::StepObserver *observer)
    {
        config_.observer = observer;
        return *this;
    }

    /** Telemetry sink; keeps the fast path (boundary-rate emission). */
    TrialBuilder &telemetry(telemetry::Telemetry *telemetry)
    {
        config_.telemetry = telemetry;
        return *this;
    }

    /**
     * Drift-aware safety supervisor (sched/supervisor.hpp); stateful,
     * so runAll() sweeps run serially. Keeps the fast path.
     */
    TrialBuilder &supervisor(sched::Supervisor *supervisor)
    {
        config_.supervisor = supervisor;
        return *this;
    }

    /** The assembled config (for inspection or reuse). */
    const sched::TrialConfig &builtConfig() const { return config_; }

    /** Run one trial. Fatal unless app() and policy() were set. */
    sched::TrialResult run() const;

    /** Run the configured number of trials and aggregate. */
    sched::AggregateResult runAll() const;

  private:
    /** A registry-made policy the builder owns, initialized lazily. */
    struct Named
    {
        std::unique_ptr<sched::Policy> policy;
        const sched::AppSpec *initialized_for = nullptr;
    };

    /** The policy to run: the referenced one, or the owned named one. */
    sched::Policy &resolvedPolicy() const;

    const sched::AppSpec *app_ = nullptr;
    sched::Policy *policy_ = nullptr;
    std::shared_ptr<Named> named_;
    std::shared_ptr<const env::FieldHarvester> env_harvester_;
    sched::TrialConfig config_;
};

} // namespace culpeo

#endif // CULPEO_SCHED_TRIAL_HPP
