#include "bank_array.hpp"

#include "util/logging.hpp"

namespace culpeo::sim {

BankArrayConfig
capybaraBankArray()
{
    BankArrayConfig cfg;
    // One third of the 45 mF bank per sub-bank: 15 mF with 3x the
    // branch resistances of the full array.
    cfg.sub_bank.capacitance = Farads(15e-3);
    cfg.sub_bank.series_esr = Ohms(4.5);
    cfg.sub_bank.surface_fraction = 0.15;
    cfg.sub_bank.bulk_resistance = Ohms(27.0);
    cfg.sub_bank.surface_resistance = Ohms(3.6);
    cfg.sub_bank.leakage = Amps(40e-9);
    cfg.total_banks = 3;
    cfg.switch_resistance = Ohms(0.15);
    return cfg;
}

BankArray::BankArray(BankArrayConfig config) : config_(config)
{
    log::fatalIf(config_.total_banks == 0,
                 "a bank array needs at least one sub-bank");
    log::fatalIf(config_.switch_resistance.value() < 0.0,
                 "switch resistance cannot be negative");
}

CapacitorConfig
BankArray::capacitorFor(unsigned active) const
{
    log::fatalIf(active == 0 || active > config_.total_banks,
                 "active bank count must be in 1..", config_.total_banks);
    const double k = double(active);
    CapacitorConfig cap = config_.sub_bank;
    cap.capacitance = cap.capacitance * k;
    cap.leakage = cap.leakage * k;
    // Parallel banks divide every internal resistance; each bank's
    // switch is in series with that bank, so the k switches parallel
    // into r_switch / k added to the series path.
    cap.series_esr = Ohms(cap.series_esr.value() / k +
                          config_.switch_resistance.value() / k);
    cap.bulk_resistance = Ohms(cap.bulk_resistance.value() / k);
    cap.surface_resistance = Ohms(cap.surface_resistance.value() / k);
    return cap;
}

PowerSystemConfig
BankArray::powerSystemFor(unsigned active,
                          const PowerSystemConfig &base) const
{
    PowerSystemConfig cfg = base;
    cfg.capacitor = capacitorFor(active);
    return cfg;
}

Seconds
BankArray::rechargeEstimate(unsigned active, units::Watts harvested,
                            const PowerSystemConfig &base) const
{
    log::fatalIf(harvested.value() <= 0.0,
                 "recharge estimate needs positive harvested power");
    const CapacitorConfig cap = capacitorFor(active);
    const units::Joules deficit =
        units::capacitorEnergy(cap.capacitance, base.monitor.vhigh) -
        units::capacitorEnergy(cap.capacitance, base.monitor.voff);
    const double effective = harvested.value() * base.input.efficiency;
    return Seconds(deficit.value() / effective);
}

} // namespace culpeo::sim
