/**
 * @file
 * Reconfigurable energy-storage array (Capybara [30] / Morphy [118]):
 * a set of identical supercapacitor sub-banks that software can switch
 * onto the shared capacitor rail. More active banks mean more
 * capacitance and lower ESR but longer recharge-to-Vhigh; fewer banks
 * recharge quickly but cannot sustain high-current tasks.
 *
 * Culpeo models such a buffer as a capacitor in series with a variable
 * resistance that captures the bank-switch interconnect (Section V-B),
 * and tags all profile data with a buffer-configuration identifier.
 */

#ifndef CULPEO_SIM_BANK_ARRAY_HPP
#define CULPEO_SIM_BANK_ARRAY_HPP

#include "sim/power_system.hpp"

namespace culpeo::sim {

/** Static description of the reconfigurable array. */
struct BankArrayConfig
{
    /** One sub-bank (the two-branch supercap model). */
    CapacitorConfig sub_bank{};
    /** Number of installed sub-banks. */
    unsigned total_banks = 3;
    /** Per-switch interconnect resistance between a bank and the rail. */
    Ohms switch_resistance{0.15};
};

/** A three-sub-bank split of the Capybara 45 mF array (15 mF each). */
BankArrayConfig capybaraBankArray();

/**
 * Reconfigurable buffer: derives the aggregate capacitor model for any
 * number of active banks. Sub-banks are identical and switched in
 * parallel, so k active banks give k*C, branch resistances / k, and the
 * switch resistance (one per bank, in parallel) added in series.
 */
class BankArray
{
  public:
    explicit BankArray(BankArrayConfig config);

    const BankArrayConfig &config() const { return config_; }
    unsigned totalBanks() const { return config_.total_banks; }

    /** Aggregate capacitor model with @p active banks on the rail. */
    CapacitorConfig capacitorFor(unsigned active) const;

    /**
     * Power-system configuration with @p active banks, on the supplied
     * rail/booster/monitor settings.
     */
    PowerSystemConfig powerSystemFor(unsigned active,
                                     const PowerSystemConfig &base) const;

    /**
     * Time to recharge the active configuration from Voff to Vhigh at
     * @p harvested power (ideal-capacitor estimate; used by schedulers
     * to weigh small-vs-large configurations).
     */
    Seconds rechargeEstimate(unsigned active, units::Watts harvested,
                             const PowerSystemConfig &base) const;

  private:
    BankArrayConfig config_;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_BANK_ARRAY_HPP
