#include "booster.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::sim {

double
Efficiency::at(units::Volts v) const
{
    return at(v, Amps(0.0));
}

double
Efficiency::at(units::Volts v, Amps i_load) const
{
    double eta = slope * v.value() + intercept;
    const double dv = v_ref - v.value();
    eta -= curvature * dv * dv;
    eta -= current_coeff * i_load.value();
    return std::clamp(eta, min_eta, max_eta);
}

Efficiency
Efficiency::linearApprox() const
{
    Efficiency linear = *this;
    linear.curvature = 0.0;
    linear.current_coeff = 0.0;
    return linear;
}

OutputBooster::OutputBooster(OutputBoosterConfig config) : config_(config)
{
    log::fatalIf(config_.vout.value() <= 0.0, "vout must be positive");
    log::fatalIf(config_.dropout.value() < 0.0, "dropout must be >= 0");
}

BoosterDraw
OutputBooster::computeDraw(const Capacitor &cap, Amps i_load) const
{
    BoosterDraw draw;
    // Thevenin equivalent of the buffer at this instant: the terminal
    // voltage under draw I is vth - I * rth.
    const Volts voc = cap.theveninVoltage();
    const Ohms esr = cap.theveninResistance();
    const Watts pout = config_.vout * i_load;

    if (voc.value() <= 0.0) {
        draw.collapsed = true;
        return draw;
    }

    // Fixed-point iteration: efficiency depends on the terminal voltage,
    // which depends on the input current, which depends on efficiency.
    Volts vterm = voc;
    Amps i_in{0.0};
    double eta = 1.0;
    for (int iter = 0; iter < 8; ++iter) {
        eta = config_.efficiency.at(vterm, i_load);
        const double pin = pout.value() / eta;
        const double r = esr.value();
        const double disc =
            voc.value() * voc.value() - 4.0 * r * pin;
        if (disc < 0.0) {
            // The buffer cannot push this power through its ESR at any
            // operating current: voltage collapse.
            draw.collapsed = true;
            draw.efficiency = eta;
            draw.terminal_voltage = Volts(voc.value() * 0.5);
            draw.input_current = Volts(voc.value() * 0.5) / esr;
            return draw;
        }
        const double i_new = r > 0.0
            ? (voc.value() - std::sqrt(disc)) / (2.0 * r)
            : pin / voc.value();
        i_in = Amps(i_new);
        vterm = voc - i_in * esr;
    }

    draw.input_current = i_in + config_.quiescent;
    draw.terminal_voltage = voc - draw.input_current * esr;
    draw.efficiency = eta;
    draw.collapsed = draw.terminal_voltage < config_.dropout;
    return draw;
}

InputBooster::InputBooster(InputBoosterConfig config) : config_(config)
{
    log::fatalIf(config_.efficiency <= 0.0 || config_.efficiency > 1.0,
                 "input booster efficiency must be in (0, 1]");
    log::fatalIf(config_.vhigh.value() <= 0.0, "vhigh must be positive");
}

Amps
InputBooster::chargeCurrent(Watts harvested, Volts voc) const
{
    if (harvested.value() <= 0.0 || voc >= config_.vhigh)
        return Amps(0.0);
    // Charging into a nearly empty buffer is current-limited by the IC.
    const double denom = std::max(voc.value(), 0.1);
    const double current =
        std::min(config_.efficiency * harvested.value() / denom,
                 config_.max_charge_current.value());
    return Amps(current);
}

} // namespace culpeo::sim
