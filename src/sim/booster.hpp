/**
 * @file
 * Voltage regulator models: the output booster that feeds the load a
 * stable Vout while discharging the energy buffer, and the input booster
 * that charges the buffer from the harvester (Figure 2 of the paper).
 *
 * The output booster's conversion efficiency is the quantity Culpeo
 * approximates as a line in input voltage (Section IV-B). The simulator's
 * "true" model optionally adds curvature and a load-current droop so that
 * the linear approximation carries realistic compounding error — the
 * mechanism behind Culpeo-PG's drift on high-energy workloads (Fig. 10).
 */

#ifndef CULPEO_SIM_BOOSTER_HPP
#define CULPEO_SIM_BOOSTER_HPP

#include "sim/capacitor.hpp"
#include "util/units.hpp"

namespace culpeo::sim {

using units::Watts;

/**
 * Boost-converter efficiency versus input voltage (and optionally load
 * current). The base model is the paper's line eta = slope * V + intercept;
 * curvature and current_coeff add the nonlinear truth.
 */
struct Efficiency
{
    double slope = 0.055;      ///< Efficiency gain per input volt.
    double intercept = 0.70;   ///< Efficiency at 0 V input (extrapolated).
    double curvature = 0.0;    ///< Droop factor: -curvature * (v_ref - V)^2.
    double current_coeff = 0.0; ///< Droop per ampere of load current.
    double v_ref = 2.56;       ///< Voltage at which droop terms vanish.
    double min_eta = 0.30;     ///< Clamp floor.
    double max_eta = 0.97;     ///< Clamp ceiling.

    /** Efficiency at input voltage @p v, ignoring current droop. */
    double at(units::Volts v) const;

    /** Efficiency at input voltage @p v while delivering @p i_load. */
    double at(units::Volts v, Amps i_load) const;

    /** The linear model Culpeo assumes (curvature and droop stripped). */
    Efficiency linearApprox() const;
};

/** Result of asking the output booster to serve a load for one step. */
struct BoosterDraw
{
    Amps input_current{0.0};   ///< Current pulled from the capacitor.
    Volts terminal_voltage{0.0}; ///< Capacitor terminal voltage under draw.
    double efficiency = 1.0;   ///< Conversion efficiency used.
    bool collapsed = false;    ///< True if the buffer cannot source the power.
};

/** Output booster configuration (TPS61200-class part). */
struct OutputBoosterConfig
{
    Volts vout{2.55};
    Efficiency efficiency{};
    /** Input terminal voltage below which conversion is unreliable. */
    Volts dropout{0.5};
    /** Quiescent current drawn from the buffer while enabled. */
    Amps quiescent{55e-6};
};

/**
 * The output booster. Stateless; computes, for a demanded load current at
 * Vout, the self-consistent current drawn from the capacitor given the
 * capacitor's ESR (input current raises ESR drop, which lowers input
 * voltage, which lowers efficiency, which raises input current...).
 */
class OutputBooster
{
  public:
    explicit OutputBooster(OutputBoosterConfig config);

    const OutputBoosterConfig &config() const { return config_; }
    Volts vout() const { return config_.vout; }

    /**
     * Solve the input-side operating point for load current @p i_load.
     * The quadratic R*Iin^2 - Voc*Iin + Pin = 0 (from Iin * Vterm = Pin,
     * Vterm = Voc - Iin * R) is iterated with the efficiency model until
     * the operating point is self-consistent. A negative discriminant
     * means the buffer cannot deliver Pin through its ESR at any current
     * (max-power-transfer exceeded) and is reported as collapse.
     */
    BoosterDraw computeDraw(const Capacitor &cap, Amps i_load) const;

  private:
    OutputBoosterConfig config_;
};

/** Input booster configuration (BQ25504-class part). */
struct InputBoosterConfig
{
    /** Harvest-side conversion efficiency (flat). */
    double efficiency = 0.80;
    /** Charging stops once the buffer terminal voltage reaches this. */
    Volts vhigh{2.56};
    /** Charge-current clamp of the charger IC. */
    Amps max_charge_current{0.2};
};

/**
 * The input booster: converts harvested power into charge current for the
 * energy buffer, decoupling charging from the harvester's voltage limits.
 */
class InputBooster
{
  public:
    explicit InputBooster(InputBoosterConfig config);

    const InputBoosterConfig &config() const { return config_; }

    /**
     * Charge current delivered into the buffer when the harvester
     * supplies @p harvested and the buffer sits at open-circuit voltage
     * @p voc. Zero once the buffer is full.
     */
    Amps chargeCurrent(Watts harvested, Volts voc) const;

  private:
    InputBoosterConfig config_;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_BOOSTER_HPP
