#include "capacitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace culpeo::sim {

EsrCurve
EsrCurve::flat(Ohms esr)
{
    return EsrCurve({{Hertz(1.0), esr}});
}

EsrCurve::EsrCurve(std::vector<Point> points) : points_(std::move(points))
{
    log::fatalIf(points_.empty(), "EsrCurve requires at least one point");
    for (const auto &p : points_) {
        log::fatalIf(p.frequency.value() <= 0.0,
                     "EsrCurve frequencies must be positive");
        log::fatalIf(p.esr.value() <= 0.0, "EsrCurve ESR must be positive");
    }
    std::sort(points_.begin(), points_.end(),
              [](const Point &a, const Point &b) {
                  return a.frequency < b.frequency;
              });
    for (std::size_t i = 1; i < points_.size(); ++i) {
        log::fatalIf(points_[i].frequency == points_[i - 1].frequency,
                     "EsrCurve frequencies must be distinct");
    }
}

Ohms
EsrCurve::at(Hertz f) const
{
    log::fatalIf(f.value() <= 0.0, "EsrCurve::at requires positive frequency");
    if (f <= points_.front().frequency)
        return points_.front().esr;
    if (f >= points_.back().frequency)
        return points_.back().esr;
    // Log-log interpolation between bracketing points.
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (f <= points_[i].frequency) {
            const auto &lo = points_[i - 1];
            const auto &hi = points_[i];
            const double t =
                (std::log(f.value()) - std::log(lo.frequency.value())) /
                (std::log(hi.frequency.value()) -
                 std::log(lo.frequency.value()));
            const double log_r = std::log(lo.esr.value()) * (1.0 - t) +
                                 std::log(hi.esr.value()) * t;
            return Ohms(std::exp(log_r));
        }
    }
    return points_.back().esr; // Unreachable; keeps the compiler happy.
}

Ohms
EsrCurve::forPulseWidth(Seconds width) const
{
    log::fatalIf(width.value() <= 0.0,
                 "EsrCurve::forPulseWidth requires positive width");
    return at(Hertz(1.0 / (2.0 * width.value())));
}

Ohms
EsrCurve::dcEsr() const
{
    return points_.front().esr;
}

Farads
CapacitorConfig::bulkCapacitance() const
{
    return capacitance * capacitance_fraction * (1.0 - surface_fraction);
}

Farads
CapacitorConfig::surfaceCapacitance() const
{
    return capacitance * capacitance_fraction * surface_fraction;
}

Ohms
CapacitorConfig::agedSeriesEsr() const
{
    return series_esr * esr_multiplier;
}

Ohms
CapacitorConfig::agedBulkResistance() const
{
    return bulk_resistance * esr_multiplier;
}

Ohms
CapacitorConfig::agedSurfaceResistance() const
{
    return surface_resistance * esr_multiplier;
}

Ohms
CapacitorConfig::instantaneousEsr() const
{
    const double rb = agedBulkResistance().value();
    const double rs = agedSurfaceResistance().value();
    return Ohms(agedSeriesEsr().value() + rb * rs / (rb + rs));
}

Ohms
CapacitorConfig::sustainedEsr() const
{
    const double cb = bulkCapacitance().value();
    const double cs = surfaceCapacitance().value();
    const double c = cb + cs;
    const double rb = agedBulkResistance().value();
    const double rs = agedSurfaceResistance().value();
    return Ohms(agedSeriesEsr().value() +
                (rb * cb * cb + rs * cs * cs) / (c * c));
}

Seconds
CapacitorConfig::redistributionTau() const
{
    const double cb = bulkCapacitance().value();
    const double cs = surfaceCapacitance().value();
    const double c = cb + cs;
    return Seconds((agedBulkResistance().value() +
                    agedSurfaceResistance().value()) *
                   cb * cs / c);
}

Ohms
CapacitorConfig::apparentEsrForWidth(Seconds width) const
{
    log::fatalIf(width.value() <= 0.0, "pulse width must be positive");
    const double r0 = instantaneousEsr().value();
    const double rdc = sustainedEsr().value();
    const double tau = redistributionTau().value();
    // The drop is worst at the *end* of the pulse, where the surface
    // branch has depleted most: the apparent resistance approaches the
    // sustained value exponentially with the redistribution constant.
    const double blend = 1.0 - std::exp(-width.value() / tau);
    return Ohms(r0 + (rdc - r0) * blend);
}

EsrCurve
CapacitorConfig::profiledEsrCurve() const
{
    std::vector<EsrCurve::Point> points;
    for (double f = 0.05; f <= 2e5; f *= std::sqrt(10.0)) {
        const double width = 1.0 / (2.0 * f);
        points.push_back({Hertz(f), apparentEsrForWidth(Seconds(width))});
    }
    return EsrCurve(std::move(points));
}

Capacitor::Capacitor(CapacitorConfig config) : config_(config)
{
    log::fatalIf(config_.capacitance.value() <= 0.0,
                 "capacitance must be positive");
    log::fatalIf(config_.surface_fraction <= 0.0 ||
                     config_.surface_fraction >= 1.0,
                 "surface_fraction must be in (0, 1)");
    log::fatalIf(config_.series_esr.value() < 0.0 ||
                     config_.bulk_resistance.value() <= 0.0 ||
                     config_.surface_resistance.value() <= 0.0,
                 "branch resistances must be positive");
    log::fatalIf(config_.capacitance_fraction <= 0.0 ||
                     config_.capacitance_fraction > 1.0,
                 "capacitance_fraction must be in (0, 1]");
    log::fatalIf(config_.esr_multiplier < 1.0,
                 "esr_multiplier models aging and must be >= 1");
}

Farads
Capacitor::capacitance() const
{
    return config_.capacitance * config_.capacitance_fraction;
}

Volts
Capacitor::openCircuitVoltage() const
{
    const double cb = config_.bulkCapacitance().value();
    const double cs = config_.surfaceCapacitance().value();
    return Volts((cb * v_bulk_.value() + cs * v_surf_.value()) / (cb + cs));
}

void
Capacitor::setOpenCircuitVoltage(Volts voc)
{
    log::fatalIf(voc.value() < 0.0, "buffer voltage cannot be negative");
    v_bulk_ = voc;
    v_surf_ = voc;
}

void
Capacitor::setBranchVoltages(Volts v_bulk, Volts v_surf)
{
    log::fatalIf(v_bulk.value() < 0.0 || v_surf.value() < 0.0,
                 "branch voltages cannot be negative");
    v_bulk_ = v_bulk;
    v_surf_ = v_surf;
}

Joules
Capacitor::storedEnergy() const
{
    return units::capacitorEnergy(config_.bulkCapacitance(), v_bulk_) +
           units::capacitorEnergy(config_.surfaceCapacitance(), v_surf_);
}

Volts
Capacitor::theveninVoltage() const
{
    const double gb = 1.0 / config_.agedBulkResistance().value();
    const double gs = 1.0 / config_.agedSurfaceResistance().value();
    return Volts((v_bulk_.value() * gb + v_surf_.value() * gs) / (gb + gs));
}

Ohms
Capacitor::theveninResistance() const
{
    const double gb = 1.0 / config_.agedBulkResistance().value();
    const double gs = 1.0 / config_.agedSurfaceResistance().value();
    return Ohms(config_.agedSeriesEsr().value() + 1.0 / (gb + gs));
}

Volts
Capacitor::terminalVoltage(Amps i_out) const
{
    return theveninVoltage() - i_out * theveninResistance();
}

void
Capacitor::applyAging(double capacitance_fraction, double esr_multiplier)
{
    log::fatalIf(capacitance_fraction <= 0.0 || capacitance_fraction > 1.0,
                 "capacitance_fraction must be in (0, 1]");
    log::fatalIf(esr_multiplier < 1.0,
                 "esr_multiplier models aging and must be >= 1");
    config_.capacitance_fraction = capacitance_fraction;
    config_.esr_multiplier = esr_multiplier;
}

void
Capacitor::step(Seconds dt, Amps i_out)
{
    log::fatalIf(dt.value() <= 0.0, "Capacitor::step requires dt > 0");

    Amps net = i_out;
    if (openCircuitVoltage().value() > 0.0)
        net += config_.leakage;

    // Explicit Euler is only stable for steps well below the branch
    // redistribution time constant; sub-step internally so callers may
    // use coarse steps while idling or recharging.
    const double tau = config_.redistributionTau().value();
    const auto substeps = std::max<std::size_t>(
        1, std::size_t(std::ceil(dt.value() / (0.25 * tau))));
    const double h = dt.value() / double(substeps);

    const double gb = 1.0 / config_.agedBulkResistance().value();
    const double gs = 1.0 / config_.agedSurfaceResistance().value();
    const double cb = config_.bulkCapacitance().value();
    const double cs = config_.surfaceCapacitance().value();

    for (std::size_t s = 0; s < substeps; ++s) {
        // Internal node voltage from the current balance, then branch
        // currents and integration.
        const double vm = (v_bulk_.value() * gb + v_surf_.value() * gs -
                           net.value()) /
                          (gb + gs);
        const double ib = (v_bulk_.value() - vm) * gb;
        const double is = (v_surf_.value() - vm) * gs;
        v_bulk_ = Volts(std::max(0.0, v_bulk_.value() - ib * h / cb));
        v_surf_ = Volts(std::max(0.0, v_surf_.value() - is * h / cs));
    }
}

TwoBranchCoefficients
Capacitor::analyticCoefficients() const
{
    const double cb = config_.bulkCapacitance().value();
    const double cs = config_.surfaceCapacitance().value();
    const double c = cb + cs;
    const double gb = 1.0 / config_.agedBulkResistance().value();
    const double gs = 1.0 / config_.agedSurfaceResistance().value();
    const double g = gb + gs;

    TwoBranchCoefficients k;
    k.tau = config_.redistributionTau().value();
    k.beta = (gb / g) / cb - (gs / g) / cs;
    k.gamma = gb / g - cb / c;
    k.c_total = c;
    k.cb = cb;
    k.cs = cs;
    k.rth = theveninResistance().value();
    return k;
}

void
Capacitor::advanceAnalytic(Seconds dt, Amps i_out)
{
    log::fatalIf(dt.value() <= 0.0,
                 "Capacitor::advanceAnalytic requires dt > 0");

    double net = i_out.value();
    if (openCircuitVoltage().value() > 0.0)
        net += config_.leakage.value();

    const TwoBranchCoefficients k = analyticCoefficients();
    const double q0 =
        (k.cb * v_bulk_.value() + k.cs * v_surf_.value()) / k.c_total;
    const double d0 = v_bulk_.value() - v_surf_.value();
    const double d_inf = -net * k.beta * k.tau;
    const double q = q0 - net * dt.value() / k.c_total;
    const double d = (d0 - d_inf) * std::exp(-dt.value() / k.tau) + d_inf;
    const double vb = q + (k.cs / k.c_total) * d;
    const double vs = q - (k.cb / k.c_total) * d;
    if (vb < 0.0 || vs < 0.0) {
        // The Euler path clamps branch voltages at zero every sub-step;
        // the closed form has no clamp, so deep-discharge segments are
        // delegated to the reference integrator.
        step(dt, i_out);
        return;
    }
    v_bulk_ = Volts(vb);
    v_surf_ = Volts(vs);
}

} // namespace culpeo::sim
