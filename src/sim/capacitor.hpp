/**
 * @file
 * Energy-buffer capacitor model.
 *
 * This is the component whose ESR voltage drop the paper identifies as
 * the failure mode of energy-only charge management (Section II-C). We
 * model a supercapacitor with the standard two-branch equivalent circuit:
 *
 *            Rs (series ESR)
 *   term ----/\/\----+----- Rbulk ---[ Cbulk ]
 *                    |
 *                    +----- Rsurf ---[ Csurf ]
 *
 * The fast surface branch supplies transients; sustained loads force
 * current through the slow bulk branch, so the *apparent* ESR grows with
 * pulse width — the frequency-dependent ESR curve Culpeo-PG profiles
 * (Section IV-B). After a load is removed the terminal voltage rebounds
 * instantly by I*Rs and then recovers slowly as charge redistributes
 * between the branches, reproducing the drop-and-rebound traces of
 * Figures 1(b) and 8.
 *
 * EsrCurve is the *profiled artifact* form of this behaviour: apparent
 * ESR versus load frequency, as a measurement rig would report it.
 */

#ifndef CULPEO_SIM_CAPACITOR_HPP
#define CULPEO_SIM_CAPACITOR_HPP

#include <vector>

#include "util/units.hpp"

namespace culpeo::sim {

using units::Amps;
using units::Farads;
using units::Hertz;
using units::Joules;
using units::Ohms;
using units::Seconds;
using units::Volts;

/**
 * Apparent ESR as a function of applied-load frequency. Points are
 * interpolated log-log; queries outside the covered range clamp to the
 * end points.
 */
class EsrCurve
{
  public:
    struct Point
    {
        Hertz frequency;
        Ohms esr;
    };

    /** Frequency-independent (flat) ESR. */
    static EsrCurve flat(Ohms esr);

    /**
     * Curve from (frequency, esr) points. Points are sorted internally;
     * at least one point is required and frequencies must be positive
     * and distinct.
     */
    explicit EsrCurve(std::vector<Point> points);

    /** ESR seen by a load applied at frequency @p f. */
    Ohms at(Hertz f) const;

    /**
     * ESR seen by a single sustained pulse of width @p width. A pulse of
     * width w has most spectral content near f = 1 / (2 w).
     */
    Ohms forPulseWidth(Seconds width) const;

    /** Lowest-frequency (i.e. highest, DC-like) ESR on the curve. */
    Ohms dcEsr() const;

    const std::vector<Point> &points() const { return points_; }

  private:
    std::vector<Point> points_;
};

/** Static description of a capacitor bank (two-branch model). */
struct CapacitorConfig
{
    Farads capacitance{45e-3};   ///< Total nominal capacitance.
    Ohms series_esr{1.5};        ///< Rs: fast series resistance.
    double surface_fraction = 0.15; ///< Share of C in the surface branch.
    Ohms bulk_resistance{9.0};   ///< Rbulk: slow-branch resistance.
    Ohms surface_resistance{1.2}; ///< Rsurf: fast-branch resistance.
    /** DC leakage drawn from the buffer whenever it holds charge. */
    Amps leakage{120e-9};
    /**
     * Aging knobs (Section IV-C): capacitance can fall to 80% of nominal
     * and ESR double before the part is considered dead.
     */
    double capacitance_fraction = 1.0;
    double esr_multiplier = 1.0;

    /** Aged branch values. */
    Farads bulkCapacitance() const;
    Farads surfaceCapacitance() const;
    Ohms agedSeriesEsr() const;
    Ohms agedBulkResistance() const;
    Ohms agedSurfaceResistance() const;

    /** Instantaneous Thevenin resistance Rs + Rbulk || Rsurf. */
    Ohms instantaneousEsr() const;

    /**
     * Apparent ESR of a sustained (quasi-steady) discharge:
     * Rs + (Rb*Cb^2 + Rsf*Csf^2) / C^2.
     */
    Ohms sustainedEsr() const;

    /** Branch redistribution time constant (Rb + Rsf) * (Cb*Csf/C). */
    Seconds redistributionTau() const;

    /**
     * Analytic apparent ESR for a single pulse of width @p width:
     * interpolates from the instantaneous to the sustained value with
     * the redistribution time constant.
     */
    Ohms apparentEsrForWidth(Seconds width) const;

    /** The apparent-ESR curve a profiling rig would measure. */
    EsrCurve profiledEsrCurve() const;
};

/**
 * Coefficients of the closed-form solution of the two-branch model
 * under a constant net output current I (DESIGN.md §10). In the
 * coordinates q (charge-weighted open-circuit voltage) and
 * d = v_bulk - v_surf the dynamics decouple:
 *
 *   q(t) = q0 - I t / c_total
 *   d(t) = (d0 - d_inf) exp(-t / tau) + d_inf,   d_inf = -I beta tau
 *
 * and the branch/Thevenin voltages recover as
 *
 *   v_bulk = q + (cs / c_total) d,  v_surf = q - (cb / c_total) d,
 *   Vth    = q + gamma d,           vterm  = Vth - I_term rth.
 */
struct TwoBranchCoefficients
{
    double tau = 0.0;     ///< Redistribution time constant (s).
    double beta = 0.0;    ///< Forcing coefficient of d' = -d/tau - beta I.
    double gamma = 0.0;   ///< Thevenin weight: Vth = q + gamma d.
    double c_total = 0.0; ///< Aged total capacitance (F).
    double cb = 0.0;      ///< Aged bulk-branch capacitance (F).
    double cs = 0.0;      ///< Aged surface-branch capacitance (F).
    double rth = 0.0;     ///< Thevenin resistance incl. series ESR (ohm).
};

/**
 * The energy buffer. Stateful: tracks the open-circuit voltage of each
 * internal branch.
 */
class Capacitor
{
  public:
    explicit Capacitor(CapacitorConfig config);

    /** Aged total effective capacitance. */
    Farads capacitance() const;

    /**
     * Charge-weighted open-circuit voltage (the energy-state voltage an
     * ideal-capacitor model would report).
     */
    Volts openCircuitVoltage() const;

    /** Set both branch voltages (a settled, equalized buffer). */
    void setOpenCircuitVoltage(Volts voc);

    /**
     * Set the two branch voltages independently (an un-equalized
     * buffer). This is the state-handoff hook the batch engine uses to
     * move a lane between its SoA mirror and the scalar simulator
     * without losing the surface/bulk split mid-redistribution.
     */
    void setBranchVoltages(Volts v_bulk, Volts v_surf);

    /** Stored energy across both branches. */
    Joules storedEnergy() const;

    /**
     * Thevenin equivalent at this instant: terminal voltage is
     * theveninVoltage() - i_out * theveninResistance().
     */
    Volts theveninVoltage() const;
    Ohms theveninResistance() const;

    /**
     * Terminal voltage while sourcing @p i_out (positive = discharge;
     * negative values model net charging).
     */
    Volts terminalVoltage(Amps i_out) const;

    /**
     * Advance the state by @p dt with net output current @p i_out
     * (leakage is added internally). Branch currents are solved from the
     * internal node and integrated, producing both the growing sag under
     * sustained load and the slow post-load redistribution rebound.
     */
    void step(Seconds dt, Amps i_out);

    /**
     * Advance the state by @p dt with a *constant* net output current
     * @p i_out (leakage is added internally, as in step()) using the
     * exact closed-form solution of the two-branch linear ODE instead
     * of Euler sub-stepping. Exact for any dt while both branch
     * voltages stay positive; a segment that would drive a branch
     * negative is delegated to step(), whose per-sub-step clamping
     * defines the deep-discharge semantics.
     */
    void advanceAnalytic(Seconds dt, Amps i_out);

    /** Closed-form update coefficients at the current aging state. */
    TwoBranchCoefficients analyticCoefficients() const;

    /**
     * Apply an abrupt aging step (fault injection): replace the aging
     * knobs while preserving the branch voltages, modelling sudden
     * degradation mid-run. Same validity ranges as construction.
     */
    void applyAging(double capacitance_fraction, double esr_multiplier);

    Volts bulkVoltage() const { return v_bulk_; }
    Volts surfaceVoltage() const { return v_surf_; }

    const CapacitorConfig &config() const { return config_; }

  private:
    CapacitorConfig config_;
    Volts v_bulk_{0.0};
    Volts v_surf_{0.0};
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_CAPACITOR_HPP
