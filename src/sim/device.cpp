#include "device.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace culpeo::sim {

namespace {

/**
 * Longest single analytic chunk of an unbounded wait. Bounds the work
 * per reachability re-check; far above any dispatch wait in the repo.
 */
constexpr double kMaxIdleChunk = 600.0;

/**
 * Reachability is probed just below the target: the input booster cuts
 * charge current to zero exactly at Vhigh, but reaching Vhigh itself
 * still happens in finite time, so testing at the target would flag a
 * full recharge as unreachable.
 */
Volts
justBelow(Volts level)
{
    return Volts(level.value() - 1e-9);
}

} // namespace

std::string
unreachableDiagnostic(const char *what, Volts need, Amps net)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s %.4f V is unreachable: idle net buffer current "
                  "%+.3e A at the target (harvest cannot outpace draw)",
                  what, need.value(), net.value());
    return buf;
}

Device::Device(PowerSystemConfig config, DeviceOptions options)
    : system_(std::move(config)), options_(options)
{
    log::fatalIf(options_.idle_dt.value() <= 0.0,
                 "Device idle_dt must be positive");
}

void
Device::setTelemetry(telemetry::Telemetry *telemetry)
{
    if constexpr (!telemetry::kEnabled) {
        (void)telemetry;
        return;
    }
    telemetry_ = telemetry;
    buffer_switches_ = nullptr; // Re-resolved lazily against the new sink.
    if (telemetry_ == nullptr) {
        tcache_ = TelemetryCache{};
        return;
    }
    namespace names = telemetry::names;
    telemetry::Registry &reg = telemetry_->registry();
    tcache_.loads = &reg.counter(names::kDeviceLoads);
    tcache_.brownouts = &reg.counter(names::kDeviceBrownouts);
    tcache_.recharges = &reg.counter(names::kDeviceRecharges);
    tcache_.waits = &reg.counter(names::kDeviceWaits);
    tcache_.waits_unreachable =
        &reg.counter(names::kDeviceWaitsUnreachable);
    tcache_.recharge_seconds = &reg.gauge(names::kDeviceRechargeSeconds,
                                          telemetry::GaugeMode::Sum);
    tcache_.min_margin = &reg.gauge(names::kDeviceMinMarginV,
                                    telemetry::GaugeMode::Min);
}

void
Device::reconfigureBuffer(const CapacitorConfig &next)
{
    system_.reconfigureCapacitor(next);
    if constexpr (telemetry::kEnabled) {
        if (telemetry_ == nullptr)
            return;
        if (buffer_switches_ == nullptr) {
            buffer_switches_ = &telemetry_->registry().counter(
                telemetry::names::kDeviceBufferSwitches);
        }
        buffer_switches_->add();
    }
}

void
Device::noteWait(const WaitResult &result)
{
    if constexpr (telemetry::kEnabled) {
        if (telemetry_ == nullptr)
            return;
        tcache_.waits->add();
        if (result.status == WaitStatus::Unreachable)
            tcache_.waits_unreachable->add();
    } else {
        (void)result;
    }
}

void
Device::noteRecharge(Volts enter_voltage, Volts target,
                     const WaitResult &result)
{
    if constexpr (telemetry::kEnabled) {
        if (telemetry_ == nullptr)
            return;
        noteWait(result);
        tcache_.recharges->add();
        tcache_.recharge_seconds->record(result.elapsed.value());
        const double t_exit = system_.now().value();
        telemetry_->emit(telemetry::EventKind::RechargeEnter,
                         t_exit - result.elapsed.value(),
                         enter_voltage.value(), 0, target.value());
        telemetry_->emit(telemetry::EventKind::RechargeExit, t_exit,
                         result.voltage.value(), 0, target.value(),
                         result.reached());
    } else {
        (void)enter_voltage;
        (void)target;
        (void)result;
    }
}

void
Device::noteLoad(const LoadResult &result)
{
    if constexpr (telemetry::kEnabled) {
        if (telemetry_ == nullptr)
            return;
        tcache_.loads->add();
        tcache_.min_margin->record(result.vmin.value() -
                                   system_.voff().value());
        const double t = system_.now().value();
        if (telemetry_->sampleTick()) {
            telemetry_->emit(telemetry::EventKind::VminRecord, t,
                             result.vend.value(), 0, result.vmin.value(),
                             result.completed);
        }
        if (result.power_failed) {
            tcache_.brownouts->add();
            telemetry_->emit(telemetry::EventKind::BrownOut, t,
                             result.vmin.value(), 0, result.vmin.value());
        }
    } else {
        (void)result;
    }
}

WaitResult
Device::idleUntilVoltage(Volts need, Seconds deadline)
{
    const WaitResult result =
        waitForVoltage(need, deadline, /*stop_when_off=*/true);
    noteWait(result);
    return result;
}

WaitResult
Device::rechargeTo(Volts need)
{
    const Volts enter_voltage = system_.restingVoltage();
    const WaitResult result = waitForVoltage(
        need, Seconds(std::numeric_limits<double>::infinity()),
        /*stop_when_off=*/false);
    noteRecharge(enter_voltage, need, result);
    return result;
}

WaitResult
Device::waitForVoltage(Volts need, Seconds deadline, bool stop_when_off)
{
    WaitResult result;
    const Seconds start = system_.now();
    const bool fast = fastEligible();
    const bool harvest_const = harvestConstant();

    // Euler-backend stall detection state: re-anchored on any resting-
    // voltage movement beyond stall_epsilon (progress in either
    // direction — a discharge toward brown-out still evolves toward a
    // regime change).
    Volts anchor_v = system_.restingVoltage();
    Seconds anchor_t = start;

    while (true) {
        result.voltage = system_.observedRestingVoltage();
        if (result.voltage >= need) {
            result.status = WaitStatus::Reached;
            break;
        }
        if (system_.now() > deadline) {
            result.status = WaitStatus::DeadlineExpired;
            break;
        }
        if (stop_when_off && !on()) {
            result.status = WaitStatus::BrownedOut;
            break;
        }
        if (fast) {
            // Constant harvest, fixed monitor regime: the equilibrium
            // test is exact. While a brown-out would end the wait the
            // output draw counts; otherwise probe the charge-only
            // regime the buffer ends up in after the monitor trips.
            // Under a piecewise-constant field the present piece says
            // nothing about later ones, so the wait just keeps
            // advancing toward its deadline.
            if (harvest_const) {
                const Amps net = system_.idleNetCurrentAt(
                    justBelow(need), /*with_output_draw=*/stop_when_off);
                if (net.value() >= 0.0) {
                    result.status = WaitStatus::Unreachable;
                    result.diagnostic = unreachableDiagnostic(
                        "voltage threshold", need, net);
                    break;
                }
            }
            advanceIdleChunk(need, /*stop_when_enabled=*/false,
                             /*stop_on_failure=*/stop_when_off, deadline,
                             start);
        } else {
            const Volts resting = system_.restingVoltage();
            if (std::abs(resting.value() - anchor_v.value()) >
                options_.stall_epsilon.value()) {
                anchor_v = resting;
                anchor_t = system_.now();
            } else if (system_.now() - anchor_t >= options_.stall_window) {
                result.status = WaitStatus::Unreachable;
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "voltage threshold %.4f V is unreachable: "
                              "resting voltage stalled at %.4f V for "
                              "%.1f s",
                              need.value(), resting.value(),
                              options_.stall_window.value());
                result.diagnostic = buf;
                break;
            }
            system_.step(options_.idle_dt, Amps(0.0));
        }
    }
    result.elapsed = system_.now() - start;
    return result;
}

WaitResult
Device::rechargeUntilOn(Seconds deadline)
{
    WaitResult result;
    const Seconds start = system_.now();
    const Volts enter_voltage = system_.restingVoltage();
    const bool fast = fastEligible();
    const bool harvest_const = harvestConstant();
    Volts anchor_v = enter_voltage;
    Seconds anchor_t = start;

    while (true) {
        result.voltage = system_.observedRestingVoltage();
        if (on()) {
            result.status = WaitStatus::Reached;
            break;
        }
        if (system_.now() > deadline) {
            result.status = WaitStatus::DeadlineExpired;
            break;
        }
        if (fast) {
            // Browned out: no output draw; the monitor re-arms at
            // Vhigh, so that is the level that must be reachable. The
            // equilibrium test only holds for strictly constant
            // harvest; a piecewise field may improve in a later piece.
            if (harvest_const) {
                const Amps net = system_.idleNetCurrentAt(
                    justBelow(system_.vhigh()),
                    /*with_output_draw=*/false);
                if (net.value() >= 0.0) {
                    result.status = WaitStatus::Unreachable;
                    result.diagnostic = unreachableDiagnostic(
                        "monitor re-arm level", system_.vhigh(), net);
                    break;
                }
            }
            advanceIdleChunk(std::nullopt, /*stop_when_enabled=*/true,
                             /*stop_on_failure=*/false, deadline, start);
        } else {
            const Volts resting = system_.restingVoltage();
            if (std::abs(resting.value() - anchor_v.value()) >
                options_.stall_epsilon.value()) {
                anchor_v = resting;
                anchor_t = system_.now();
            } else if (system_.now() - anchor_t >= options_.stall_window) {
                result.status = WaitStatus::Unreachable;
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "monitor re-arm level %.4f V is "
                              "unreachable: resting voltage stalled at "
                              "%.4f V for %.1f s",
                              system_.vhigh().value(), resting.value(),
                              options_.stall_window.value());
                result.diagnostic = buf;
                break;
            }
            system_.step(options_.idle_dt, Amps(0.0));
        }
    }
    result.elapsed = system_.now() - start;
    noteRecharge(enter_voltage, system_.vhigh(), result);
    return result;
}

void
Device::advanceIdleChunk(std::optional<Volts> stop_level,
                         bool stop_when_enabled, bool stop_on_failure,
                         Seconds deadline, Seconds anchor)
{
    const double dt = options_.idle_dt.value();
    const double now = system_.now().value();

    // The chunk ends on the first tick boundary strictly past the
    // deadline — exactly where the per-tick loop would first notice the
    // expiry — or after kMaxIdleChunk for unbounded waits (the loop
    // re-checks reachability between chunks).
    double horizon;
    if (std::isfinite(deadline.value())) {
        const double ticks =
            std::floor((deadline.value() - anchor.value()) / dt + 1e-9) +
            1.0;
        horizon = anchor.value() + ticks * dt;
    } else {
        horizon = now + kMaxIdleChunk;
    }
    double chunk = horizon - now;
    if (chunk <= 0.0)
        chunk = dt;
    chunk = std::min(chunk, kMaxIdleChunk);

    SegmentOptions seg;
    seg.fallback_dt = options_.idle_dt;
    seg.stop_on_failure = stop_on_failure;
    seg.stop_above_resting = stop_level;
    seg.stop_when_enabled = stop_when_enabled;
    system_.runSegment(Seconds(chunk), Amps(0.0), seg);
    snapToGrid(anchor);
}

void
Device::snapToGrid(Seconds anchor)
{
    const double dt = options_.idle_dt.value();
    const double done = (system_.now().value() - anchor.value()) / dt;
    const double pad = (std::ceil(done - 1e-9) - done) * dt;
    // A root-found stop lands mid-tick; pad with one sub-tick zero-load
    // step so decisions stay on the same grid the Euler backend uses.
    if (pad > 1e-9)
        system_.step(Seconds(pad), Amps(0.0));
}

void
Device::idleFor(Seconds duration)
{
    if (duration.value() <= 0.0)
        return;
    const double dt = options_.idle_dt.value();
    const Seconds start = system_.now();
    // At least one tick: the per-tick loops this mirrors always took a
    // full step for any positive remaining duration, and a zero-tick
    // round-down would let a caller idling toward a time barely ahead
    // of now() spin forever.
    const long ticks = std::lround(
        std::max(1.0, std::ceil(duration.value() / dt - 1e-9)));
    const Seconds end = start + Seconds(double(ticks) * dt);

    if (fastEligible()) {
        while (system_.now() < end) {
            const double chunk = std::min(
                end.value() - system_.now().value(), kMaxIdleChunk);
            SegmentOptions seg;
            seg.fallback_dt = options_.idle_dt;
            seg.stop_on_failure = false;
            system_.runSegment(Seconds(chunk), Amps(0.0), seg);
        }
        snapToGrid(start);
    } else {
        // A counted loop, not a remaining-time countdown: repeated
        // subtraction can leave a rounding sliver above zero and take
        // one tick more than the grid count the fast path uses.
        for (long i = 0; i < ticks; ++i)
            system_.step(options_.idle_dt, Amps(0.0));
    }
}

void
Device::idleUntil(Seconds t)
{
    if (t > system_.now())
        idleFor(t - system_.now());
}

LoadResult
Device::runLoad(const load::CurrentProfile &profile,
                const LoadOptions &options)
{
    log::fatalIf(options.dt.value() <= 0.0, "run dt must be positive");

    LoadResult result;
    result.vstart = system_.restingVoltage();
    result.vmin = result.vstart;
    result.vend = result.vstart;

    // With no per-step driver (nothing to tick) and an instrumentation-
    // free system, each piecewise-constant profile segment advances
    // with the analytic fast path. DeviceOptions::allow_fast_path is
    // deliberately not consulted: it selects the wait backend only.
    if (options.driver == nullptr && options.allow_fast_path &&
        system_.analyticEligible()) {
        SegmentOptions seg_options;
        seg_options.fallback_dt = options.dt;
        seg_options.stop_on_failure = options.stop_on_failure;
        bool failed = false;
        for (const auto &seg : profile.segments()) {
            const SegmentResult seg_result =
                system_.runSegment(seg.duration, seg.current, seg_options);
            result.vmin = std::min(result.vmin, seg_result.vmin);
            result.vend = seg_result.vend;
            if (seg_result.power_failed || seg_result.collapsed) {
                result.power_failed =
                    result.power_failed || seg_result.power_failed;
                result.collapsed =
                    result.collapsed || seg_result.collapsed;
                failed = true;
                if (options.stop_on_failure)
                    break;
            }
        }
        result.completed = !failed;
        noteLoad(result);
        return result;
    }

    bool failed = false;
    const Seconds duration = profile.duration();
    Seconds offset{0.0};
    while (offset < duration) {
        Amps demand = profile.currentAt(offset);
        if (options.driver != nullptr)
            demand += options.driver->overheadCurrent();

        const StepResult step = system_.step(options.dt, demand);
        result.vmin = std::min(result.vmin, step.terminal);
        result.vend = step.terminal;
        if (options.driver != nullptr)
            options.driver->onStep(options.dt, step.terminal);

        if (step.power_failed || step.collapsed) {
            result.power_failed = result.power_failed || step.power_failed;
            result.collapsed = result.collapsed || step.collapsed;
            failed = true;
            if (options.stop_on_failure)
                break;
        }
        offset += options.dt;
    }
    result.completed = !failed;
    noteLoad(result);
    return result;
}

Volts
Device::settle(const SettleOptions &options)
{
    const Seconds deadline = system_.now() + options.timeout;
    Volts window_start = system_.restingVoltage();
    Seconds window_elapsed{0.0};
    while (system_.now() < deadline) {
        Amps demand{0.0};
        if (options.driver != nullptr)
            demand += options.driver->overheadCurrent();
        const StepResult step = system_.step(options.dt, demand);
        if (options.driver != nullptr)
            options.driver->onStep(options.dt, step.terminal);

        window_elapsed += options.dt;
        if (window_elapsed >= options.window) {
            if (step.terminal - window_start < options.epsilon)
                break;
            window_start = step.terminal;
            window_elapsed = Seconds(0.0);
        }
    }
    return system_.restingVoltage();
}

} // namespace culpeo::sim
