/**
 * @file
 * The device-execution layer: one simulated energy-harvesting node that
 * owns its PowerSystem and exposes the three primitives every driver in
 * the repo reduces to — "idle/recharge until a voltage threshold or
 * deadline", "run a load profile", "recharge after brown-out" — plus the
 * settle wait the profiling harness needs.
 *
 * Idle waits advance with PowerSystem::runSegment's analytic
 * macro-stepping (threshold crossings root-found on the closed-form
 * curve) whenever the system is instrumentation-free, and fall back to
 * the per-tick Euler oracle automatically when fault hooks, observers,
 * or trace capture require per-step fidelity (DESIGN.md §10/§11). Both
 * backends keep decisions on the same idle_dt tick grid so scheduler
 * and runtime verdicts agree between them.
 */

#ifndef CULPEO_SIM_DEVICE_HPP
#define CULPEO_SIM_DEVICE_HPP

#include <optional>
#include <string>

#include "load/profile.hpp"
#include "sim/power_system.hpp"
#include "util/units.hpp"

namespace culpeo::telemetry {
class Counter;
class Gauge;
class Telemetry;
} // namespace culpeo::telemetry

namespace culpeo::sim {

/** Configuration of the device-execution layer (not the electrical). */
struct DeviceOptions
{
    /**
     * Decision-tick quantum of idle waits: voltage reads, deadline
     * checks, and brown-out checks happen on this grid regardless of
     * backend, and it is the Euler fallback step.
     */
    Seconds idle_dt{1e-3};
    /**
     * Permit analytic macro-stepping of idle/recharge waits; false
     * forces the per-tick Euler oracle for every wait. Load runs are
     * governed per-call by LoadOptions::allow_fast_path instead, so a
     * wait-level Euler reference reproduces the pre-device drivers
     * exactly: those polled idle time tick by tick but already ran
     * loads through the analytic segment stepping when eligible.
     */
    bool allow_fast_path = true;
    /**
     * On the Euler backend (where no closed-form reachability test
     * exists), an idle wait whose resting voltage moves less than
     * stall_epsilon for stall_window declares the threshold
     * unreachable. Wide enough to ride out injected sub-second harvest
     * dropouts.
     */
    Seconds stall_window{5.0};
    Volts stall_epsilon{0.1e-3};
};

/** Why an idle/recharge wait returned. */
enum class WaitStatus
{
    Reached,         ///< The wait condition was satisfied.
    DeadlineExpired, ///< The deadline passed first.
    BrownedOut,      ///< The monitor disabled the output mid-wait.
    Unreachable,     ///< The harvester can never satisfy the condition.
};

/** Outcome of one idle/recharge wait. */
struct WaitResult
{
    WaitStatus status = WaitStatus::Reached;
    Seconds elapsed{0.0}; ///< Simulated time spent waiting.
    /** Last observed (ADC-model) resting voltage read by the wait. */
    Volts voltage{0.0};
    /** Human-readable cause, populated for Unreachable. */
    std::string diagnostic;

    bool reached() const { return status == WaitStatus::Reached; }
};

/**
 * The canonical unreachable-threshold diagnostic string ("<what> X V is
 * unreachable: idle net buffer current ..."). Shared so the batch
 * engine's lanes surface byte-identical diagnostics to Device waits;
 * @p what is "voltage threshold" or "monitor re-arm level".
 */
std::string unreachableDiagnostic(const char *what, Volts need, Amps net);

/**
 * Per-step load companion (the harness adapts core::Culpeo to this so
 * sim/ stays independent of core/): overheadCurrent() is added to the
 * demand before each step and onStep() sees the resulting terminal
 * voltage. Attaching a driver forces the Euler path — per-step ticks
 * are exactly the fidelity the fast path cannot provide.
 */
class LoadStepDriver
{
  public:
    virtual ~LoadStepDriver() = default;
    virtual Amps overheadCurrent() = 0;
    virtual void onStep(Seconds dt, Volts terminal) = 0;
};

/** Controls for one Device::runLoad call. */
struct LoadOptions
{
    Seconds dt{50e-6}; ///< Euler step / crossing-resolution quantum.
    /** Abort the run at the first brown-out (a real device would). */
    bool stop_on_failure = true;
    /** Permit analytic segment stepping when eligible. */
    bool allow_fast_path = true;
    /** Optional per-step companion; non-null forces the Euler path. */
    LoadStepDriver *driver = nullptr;
};

/** Outcome of one Device::runLoad call. */
struct LoadResult
{
    bool completed = false;    ///< All load served without brown-out.
    bool power_failed = false; ///< Monitor crossed Voff during the run.
    bool collapsed = false;    ///< Booster could not source the power.
    Volts vstart{0.0};         ///< Resting terminal voltage at start.
    Volts vmin{0.0};           ///< Minimum terminal voltage during run.
    Volts vend{0.0};           ///< Terminal voltage at the last step.
};

/** Controls for one Device::settle wait. */
struct SettleOptions
{
    Seconds dt{1e-3};      ///< Sampling step of the convergence check.
    Seconds timeout{0.4};  ///< Give up waiting after this long.
    Volts epsilon{0.2e-3}; ///< Settled once gain per window is below this.
    Seconds window{20e-3}; ///< Window over which epsilon is evaluated.
    LoadStepDriver *driver = nullptr; ///< Optional per-step companion.
};

/**
 * One simulated energy-harvesting node. Owns the PowerSystem; the
 * harvester, fault hooks, and observers attach here (one attachment
 * point instead of one per driving layer).
 */
class Device
{
  public:
    explicit Device(PowerSystemConfig config, DeviceOptions options = {});

    PowerSystem &system() { return system_; }
    const PowerSystem &system() const { return system_; }
    const DeviceOptions &options() const { return options_; }

    // --- Wiring passthroughs (the single attachment point) ---

    void setHarvester(const Harvester *harvester)
    {
        system_.setHarvester(harvester);
    }
    void setFaultHooks(FaultHooks *hooks) { system_.setFaultHooks(hooks); }
    void setObserver(StepObserver *observer)
    {
        system_.setObserver(observer);
    }
    void setBufferVoltage(Volts voc) { system_.setBufferVoltage(voc); }
    /**
     * Swap the storage buffer for a bank-array reconfiguration
     * (charge-conserving; see PowerSystem::reconfigureCapacitor) and
     * count the switch in telemetry.
     */
    void reconfigureBuffer(const CapacitorConfig &next);
    void forceOutputEnabled(bool enabled)
    {
        system_.forceOutputEnabled(enabled);
    }
    void captureTrace(bool capture) { system_.captureTrace(capture); }
    void notifyCommit(const std::string &name, Volts admitted_at,
                      Volts vsafe)
    {
        system_.notifyCommit(name, admitted_at, vsafe);
    }
    void notifyCommitEnd(bool completed)
    {
        system_.notifyCommitEnd(completed);
    }

    /**
     * Attach a telemetry sink. Unlike fault hooks and observers this
     * does NOT force the Euler backend: the device emits only at
     * primitive boundaries (a load ran, a recharge wait ended), so the
     * analytic fast path stays eligible. Pass nullptr to detach. No-op
     * when the build has CULPEO_TELEMETRY off.
     */
    void setTelemetry(telemetry::Telemetry *telemetry);
    telemetry::Telemetry *telemetry() const { return telemetry_; }

    // --- State queries ---

    Seconds now() const { return system_.now(); }
    /** Brown-out state: is the output booster currently enabled? */
    bool on() const { return system_.monitor().enabled(); }
    bool deviceOn() const { return on(); }
    Volts restingVoltage() const { return system_.restingVoltage(); }
    /** Resting voltage through the attached ADC error model, if any. */
    Volts observedVoltage() { return system_.observedRestingVoltage(); }
    Volts vhigh() const { return system_.vhigh(); }
    Volts voff() const { return system_.voff(); }
    Volts vout() const { return system_.vout(); }

    // --- Primitives ---

    /**
     * Idle (zero load) until the observed resting voltage reaches
     * @p need, the device browns out, or @p deadline passes (deadline
     * semantics match the historical dispatch loops: the wait fails
     * only once now() exceeds the deadline strictly). Returns
     * Unreachable with a diagnostic instead of spinning when the
     * harvester can never lift the buffer to @p need.
     */
    WaitResult idleUntilVoltage(Volts need, Seconds deadline);

    /**
     * Recharge until the resting voltage reaches @p need, riding
     * through brown-outs (unlike idleUntilVoltage, the monitor
     * disabling the output is expected, not a failure). Unbounded in
     * time except by reachability.
     */
    WaitResult rechargeTo(Volts need);

    /**
     * Idle until the monitor (re-)enables the output — the post-brown-
     * out "wait for the capacitor to refill to Vhigh" loop every layer
     * used to hand-roll.
     */
    WaitResult rechargeUntilOn(Seconds deadline);

    /** Idle (zero load) for @p duration, rounded up to the tick grid. */
    void idleFor(Seconds duration);
    /** Idle until simulated time @p t (no-op when already past). */
    void idleUntil(Seconds t);

    /**
     * Run a piecewise-constant load profile from the current state.
     * Eligible segment runs use the analytic fast path; an attached
     * driver or system instrumentation forces the per-step Euler loop.
     */
    LoadResult runLoad(const load::CurrentProfile &profile,
                       const LoadOptions &options = {});

    /**
     * Idle until the post-load ESR rebound settles (gain below
     * options.epsilon per window) or the timeout elapses; returns the
     * settled resting voltage. Always Euler-stepped: the windowed
     * convergence check is defined on per-tick samples.
     */
    Volts settle(const SettleOptions &options = {});

  private:
    bool fastEligible() const
    {
        return options_.allow_fast_path && system_.analyticEligible();
    }
    /**
     * True when the harvest is strictly constant for all time — the
     * condition under which the fast-path equilibrium reachability
     * test is sound. A merely piecewise-constant source (an
     * environment field) may improve later, so waits under one keep
     * advancing until their deadline instead of declaring Unreachable.
     */
    bool harvestConstant() const
    {
        const Harvester *h = system_.harvester();
        return h == nullptr || h->constantPower().has_value();
    }
    WaitResult waitForVoltage(Volts need, Seconds deadline,
                              bool stop_when_off);
    /**
     * One fast-path wait quantum: an analytic chunk bounded by the
     * first tick boundary past the deadline, then a pad back onto the
     * tick grid if a stop condition cut the chunk short.
     */
    void advanceIdleChunk(std::optional<Volts> stop_level,
                          bool stop_when_enabled, bool stop_on_failure,
                          Seconds deadline, Seconds anchor);
    void snapToGrid(Seconds anchor);

    /** Metric handles resolved once in setTelemetry (lock-free updates). */
    struct TelemetryCache
    {
        telemetry::Counter *loads = nullptr;
        telemetry::Counter *brownouts = nullptr;
        telemetry::Counter *recharges = nullptr;
        telemetry::Counter *waits = nullptr;
        telemetry::Counter *waits_unreachable = nullptr;
        telemetry::Gauge *recharge_seconds = nullptr;
        telemetry::Gauge *min_margin = nullptr;
    };

    void noteWait(const WaitResult &result);
    void noteRecharge(Volts enter_voltage, Volts target,
                      const WaitResult &result);
    void noteLoad(const LoadResult &result);

    PowerSystem system_;
    DeviceOptions options_;
    telemetry::Telemetry *telemetry_ = nullptr;
    TelemetryCache tcache_;
    /**
     * Resolved lazily on the first reconfigureBuffer() call — never in
     * setTelemetry — so runs that never switch banks keep the registry
     * insertion order of older telemetry snapshots.
     */
    telemetry::Counter *buffer_switches_ = nullptr;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_DEVICE_HPP
