#include "harvester.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace culpeo::sim {

ConstantHarvester::ConstantHarvester(Watts power) : power_(power)
{
    log::fatalIf(power.value() < 0.0, "harvested power cannot be negative");
}

Watts
ConstantHarvester::powerAt(Seconds) const
{
    return power_;
}

TraceHarvester::TraceHarvester(std::vector<Point> points)
    : points_(std::move(points))
{
    log::fatalIf(points_.empty(), "TraceHarvester requires at least a point");
    log::fatalIf(!std::is_sorted(points_.begin(), points_.end(),
                                 [](const Point &a, const Point &b) {
                                     return a.time < b.time;
                                 }),
                 "TraceHarvester points must be time-sorted");
}

Watts
TraceHarvester::powerAt(Seconds t) const
{
    if (t <= points_.front().time)
        return points_.front().power;
    if (t >= points_.back().time)
        return points_.back().power;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].time) {
            const auto &lo = points_[i - 1];
            const auto &hi = points_[i];
            const double span = (hi.time - lo.time).value();
            const double frac =
                span > 0.0 ? (t - lo.time).value() / span : 0.0;
            return Watts(lo.power.value() * (1.0 - frac) +
                         hi.power.value() * frac);
        }
    }
    return points_.back().power;
}

} // namespace culpeo::sim
