/**
 * @file
 * Harvested-power sources. The paper's evaluation simulates solar energy
 * with a constant, weak supply (Section VI-B); we additionally provide a
 * piecewise-linear trace source for experiments with varying power.
 */

#ifndef CULPEO_SIM_HARVESTER_HPP
#define CULPEO_SIM_HARVESTER_HPP

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "util/units.hpp"

namespace culpeo::sim {

using units::Seconds;
using units::Watts;

/** Interface: harvestable power available at absolute time t. */
class Harvester
{
  public:
    virtual ~Harvester() = default;

    /** Power available from the environment at time @p t. */
    virtual Watts powerAt(Seconds t) const = 0;

    /**
     * The constant power this source delivers at *every* instant, or
     * nullopt for time-varying sources. The analytic segment fast path
     * (PowerSystem::runSegment) only engages when the harvest is
     * declared constant; sources that cannot guarantee it keep the
     * default and force the step-by-step Euler path.
     */
    virtual std::optional<Watts> constantPower() const
    {
        return std::nullopt;
    }

    /**
     * True when the harvest is *piecewise* constant: powerAt is
     * constant on [t, constantUntil(t)) with constantUntil(t) > t at
     * every t. The analytic segment stepper treats each piece as a
     * constant-harvest regime, capping macro steps at the piece
     * boundary, so such sources keep the closed-form fast path even
     * though their power varies over time. Sources that cannot
     * guarantee positive-length constancy pieces keep the default and
     * force the step-by-step Euler path.
     */
    virtual bool piecewiseConstant() const
    {
        return constantPower().has_value();
    }

    /**
     * End of the constancy piece containing @p t: powerAt is constant
     * on [t, constantUntil(t)). Strictly constant sources report
     * infinity; sources that are not piecewise constant report t
     * itself (a zero-length piece). Overridden together with
     * piecewiseConstant() by stepped sources.
     */
    virtual Seconds constantUntil(Seconds t) const
    {
        return constantPower().has_value()
            ? Seconds(std::numeric_limits<double>::infinity())
            : t;
    }
};

/** Constant harvestable power (the paper's evaluation condition). */
class ConstantHarvester : public Harvester
{
  public:
    explicit ConstantHarvester(Watts power);

    Watts powerAt(Seconds t) const override;

    std::optional<Watts> constantPower() const override { return power_; }

  private:
    Watts power_;
};

/** No incoming power: the worst case Culpeo-PG assumes (Section IV-B). */
class NoHarvester : public Harvester
{
  public:
    Watts powerAt(Seconds) const override { return Watts(0.0); }

    std::optional<Watts> constantPower() const override
    {
        return Watts(0.0);
    }
};

/**
 * Piecewise-linear power trace; clamps to the first/last point outside
 * the covered time span.
 */
class TraceHarvester : public Harvester
{
  public:
    struct Point
    {
        Seconds time;
        Watts power;
    };

    explicit TraceHarvester(std::vector<Point> points);

    Watts powerAt(Seconds t) const override;

  private:
    std::vector<Point> points_;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_HARVESTER_HPP
