/**
 * @file
 * Instrumentation seams of the power-system simulator: a fault-injection
 * hook consulted before every step and a passive observer notified after
 * every step and around scheduler dispatch commitments.
 *
 * Both interfaces live in sim so that higher layers (sched, runtime,
 * fault) can plug in without creating a dependency cycle: the simulator
 * only sees the abstract interfaces; the concrete injectors and
 * invariant monitors live in src/fault.
 */

#ifndef CULPEO_SIM_INSTRUMENTATION_HPP
#define CULPEO_SIM_INSTRUMENTATION_HPP

#include <string>

#include "util/units.hpp"

namespace culpeo::telemetry {
class Telemetry;
} // namespace culpeo::telemetry

namespace culpeo::sim {

struct StepResult;

/** Disturbances a fault model may apply to one simulation step. */
struct FaultActions
{
    /** Multiplier on the harvested power (0 = dropout). */
    double harvest_scale = 1.0;
    /** Extra drain on the buffer during this step (leakage spike). */
    units::Amps extra_leakage{0.0};
    /** Cut the output booster as an injected power failure (reboot). */
    bool force_brownout = false;
    /** Apply the aging values below to the capacitor before stepping. */
    bool apply_aging = false;
    double capacitance_fraction = 1.0; ///< New aged-capacitance fraction.
    double esr_multiplier = 1.0;       ///< New aged-ESR multiplier.
};

/**
 * Fault model consulted by PowerSystem::step and by the software-visible
 * voltage read path. Implementations must be deterministic for a given
 * construction (seed) so failing runs replay exactly.
 */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /** Disturbances for the step covering [now, now + dt). */
    virtual FaultActions onStep(units::Seconds now, units::Seconds dt) = 0;

    /**
     * What software observes when it samples the voltage @p v (ADC
     * offset/noise model). The electrical simulation always uses the
     * true voltage; only dispatch decisions see the perturbed one.
     */
    virtual units::Volts perturbReading(units::Volts v) { return v; }

    /**
     * A telemetry sink was attached to (non-null) or detached from
     * (nullptr) the trial driving this fault model. Implementations
     * that emit FaultInjected events override this to capture the sink;
     * the default ignores it.
     */
    virtual void onTelemetry(telemetry::Telemetry * /*telemetry*/) {}
};

/**
 * Passive observer of the simulation: sees every step result, plus the
 * dispatch commitments a scheduler or runtime makes. Used by the
 * invariant monitor to check that no committed task ever crosses Voff.
 */
class StepObserver
{
  public:
    virtual ~StepObserver() = default;

    /** Called after every PowerSystem::step with the step's outcome. */
    virtual void onStep(const StepResult &step) = 0;

    /**
     * A dispatcher committed to running task @p name: the true resting
     * voltage at dispatch was @p admitted_at and the admission
     * requirement (Vsafe or a baseline estimate) was @p vsafe.
     */
    virtual void onCommit(const std::string & /*name*/,
                          units::Volts /*admitted_at*/,
                          units::Volts /*vsafe*/)
    {}

    /** The committed task ended; @p completed is false on brown-out. */
    virtual void onCommitEnd(bool /*completed*/) {}
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_INSTRUMENTATION_HPP
