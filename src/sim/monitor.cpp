#include "monitor.hpp"

#include "util/logging.hpp"

namespace culpeo::sim {

VoltageMonitor::VoltageMonitor(MonitorConfig config) : config_(config)
{
    log::fatalIf(config_.voff.value() <= 0.0, "voff must be positive");
    log::fatalIf(config_.vhigh <= config_.voff,
                 "vhigh must exceed voff for hysteresis to function");
}

bool
VoltageMonitor::update(Volts vterm)
{
    if (enabled_) {
        if (vterm < config_.voff) {
            enabled_ = false;
            ++power_failures_;
        }
    } else {
        if (vterm >= config_.vhigh)
            enabled_ = true;
    }
    return enabled_;
}

} // namespace culpeo::sim
