/**
 * @file
 * Hysteretic voltage monitor (BU4924-class part): enables the output
 * booster only after the buffer has fully recharged to Vhigh and disables
 * it the moment the terminal voltage crosses Voff (Section II-A).
 */

#ifndef CULPEO_SIM_MONITOR_HPP
#define CULPEO_SIM_MONITOR_HPP

#include "util/units.hpp"

namespace culpeo::sim {

using units::Volts;

/** Thresholds for the output-enable state machine. */
struct MonitorConfig
{
    Volts vhigh{2.56}; ///< Re-enable (after an off) at or above this.
    Volts voff{1.60};  ///< Disable strictly below this.
};

/**
 * Output-enable state machine with hysteresis. Software may execute only
 * while the monitor reports enabled; crossing below Voff is the paper's
 * "power failure".
 */
class VoltageMonitor
{
  public:
    explicit VoltageMonitor(MonitorConfig config);

    const MonitorConfig &config() const { return config_; }

    /**
     * Update with the current terminal voltage; returns whether the
     * output booster is enabled after the update.
     */
    bool update(Volts vterm);

    bool enabled() const { return enabled_; }

    /**
     * Force the enabled state (test harnesses isolate the supply side and
     * trigger delivery explicitly, as in Section VI-A).
     */
    void forceEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Disable the output as an injected power failure (fault injection:
     * a forced brown-out/reboot). Counts as a power failure when the
     * output was enabled; a no-op while already off.
     */
    void forceFailure()
    {
        if (enabled_) {
            enabled_ = false;
            ++power_failures_;
        }
    }

    /** Number of disable (power failure) events observed so far. */
    unsigned powerFailures() const { return power_failures_; }

  private:
    MonitorConfig config_;
    bool enabled_ = false;
    unsigned power_failures_ = 0;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_MONITOR_HPP
