#include "power_system.hpp"

#include "sim/segment_curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace culpeo::sim {

PowerSystemConfig
capybaraConfig()
{
    PowerSystemConfig cfg;

    // 45 mF bank of six dense supercapacitors (Seiko CPX-class). The
    // two-branch parameters give an apparent ESR of ~2.6 ohm for
    // kHz-class transients rising to ~8 ohm for sustained (DC-like)
    // loads, per supercapacitor porous electrode behaviour.
    cfg.capacitor.capacitance = Farads(45e-3);
    cfg.capacitor.series_esr = Ohms(1.5);
    cfg.capacitor.surface_fraction = 0.15;
    cfg.capacitor.bulk_resistance = Ohms(9.0);
    cfg.capacitor.surface_resistance = Ohms(1.2);
    cfg.capacitor.leakage = Amps(120e-9); // Six parts at 20 nA DCL each.

    cfg.output.vout = Volts(2.55);
    // True efficiency: a line with mild curvature away from Vhigh and a
    // small current droop; Culpeo's models use only the linear part.
    cfg.output.efficiency.slope = 0.055;
    cfg.output.efficiency.intercept = 0.70;
    cfg.output.efficiency.curvature = 0.012;
    cfg.output.efficiency.current_coeff = 0.10;
    cfg.output.efficiency.v_ref = 2.56;
    cfg.output.dropout = Volts(0.5);
    cfg.output.quiescent = Amps(55e-6);

    cfg.input.efficiency = 0.80;
    cfg.input.vhigh = Volts(2.56);
    cfg.input.max_charge_current = Amps(0.2);

    cfg.monitor.vhigh = Volts(2.56);
    cfg.monitor.voff = Volts(1.60);

    return cfg;
}

PowerSystem::PowerSystem(PowerSystemConfig config)
    : config_(config),
      cap_(config.capacitor),
      output_(config.output),
      input_(config.input),
      monitor_(config.monitor)
{}

StepResult
PowerSystem::step(Seconds dt, Amps i_load)
{
    log::fatalIf(dt.value() <= 0.0, "PowerSystem::step requires dt > 0");
    log::fatalIf(i_load.value() < 0.0, "load current cannot be negative");

    FaultActions faults;
    if (hooks_ != nullptr)
        faults = hooks_->onStep(now_, dt);
    if (faults.apply_aging) {
        cap_.applyAging(faults.capacitance_fraction,
                        faults.esr_multiplier);
    }

    StepResult result;
    const bool was_enabled = monitor_.enabled();

    if (faults.force_brownout && was_enabled) {
        monitor_.forceFailure();
        result.forced_brownout = true;
    }

    Amps i_out{0.0};
    if (was_enabled && !result.forced_brownout) {
        const BoosterDraw draw = output_.computeDraw(cap_, i_load);
        i_out = draw.input_current;
        result.collapsed = draw.collapsed;
        result.delivering = !draw.collapsed && i_load.value() > 0.0;
    }

    const Watts harvested = harvester_ != nullptr
        ? harvester_->powerAt(now_) * faults.harvest_scale
        : Watts(0.0);
    const Amps i_charge =
        input_.chargeCurrent(harvested, cap_.openCircuitVoltage());

    const Amps net = i_out - i_charge + faults.extra_leakage;
    const Volts vterm = cap_.terminalVoltage(net);
    const bool enabled_after = monitor_.update(vterm);
    result.power_failed =
        was_enabled && (!enabled_after || result.forced_brownout);
    if (result.power_failed)
        result.delivering = false;

    cap_.step(dt, net);
    now_ += dt;

    result.time = now_;
    result.terminal = vterm;
    result.open_circuit = cap_.openCircuitVoltage();
    result.input_current = i_out;

    if (capture_) {
        trace_.add({now_, vterm, result.open_circuit, i_load,
                    result.delivering});
    }
    if (observer_ != nullptr)
        observer_->onStep(result);
    return result;
}

bool
PowerSystem::analyticEligible() const
{
    return hooks_ == nullptr && observer_ == nullptr && !capture_ &&
           (harvester_ == nullptr || harvester_->piecewiseConstant());
}

SegmentResult
PowerSystem::runSegment(Seconds duration, Amps i_load,
                        const SegmentOptions &options)
{
    log::fatalIf(i_load.value() < 0.0, "load current cannot be negative");
    log::fatalIf(options.fallback_dt.value() <= 0.0,
                 "fallback_dt must be positive");
    if (duration.value() <= 0.0) {
        SegmentResult result;
        result.vmin = restingVoltage();
        result.vend = result.vmin;
        return result;
    }
    if (options.allow_analytic && analyticEligible())
        return runSegmentAnalytic(duration, i_load, options);
    return runSegmentEuler(duration, i_load, options);
}

/**
 * Shared loop-top early-exit checks of both segment paths: level and
 * monitor-enable stops are evaluated on the pre-step state, so a
 * satisfied condition costs no simulated time.
 */
bool
PowerSystem::segmentStopConditionMet(SegmentResult &result,
                                     const SegmentOptions &options) const
{
    if (options.stop_above_resting.has_value() &&
        restingVoltage() >= *options.stop_above_resting) {
        result.stopped_at_level = true;
        return true;
    }
    if (options.stop_when_enabled && monitor_.enabled()) {
        result.stopped_enabled = true;
        return true;
    }
    return false;
}

SegmentResult
PowerSystem::runSegmentEuler(Seconds duration, Amps i_load,
                             const SegmentOptions &options)
{
    SegmentResult result;
    result.vmin = restingVoltage();
    result.vend = result.vmin;

    // Same overrun semantics as the step loops in the harness: the last
    // step may carry past the requested duration by up to one dt.
    double remaining = duration.value();
    while (remaining > 0.0) {
        if (segmentStopConditionMet(result, options))
            break;
        const StepResult s = step(options.fallback_dt, i_load);
        remaining -= options.fallback_dt.value();
        ++result.reference_steps;
        result.vmin = std::min(result.vmin, s.terminal);
        result.vend = s.terminal;
        if (s.power_failed || s.collapsed) {
            result.power_failed = result.power_failed || s.power_failed;
            result.collapsed = result.collapsed || s.collapsed;
            if (options.stop_on_failure)
                break;
        }
    }
    result.elapsed = Seconds(duration.value() - remaining);
    return result;
}

void
PowerSystem::analyticEventStep(SegmentResult &result, Amps i_load,
                               Seconds fallback_dt, double &remaining)
{
    const StepResult s = step(fallback_dt, i_load);
    remaining -= fallback_dt.value();
    ++result.reference_steps;
    result.vmin = std::min(result.vmin, s.terminal);
    result.vend = s.terminal;
    result.power_failed = result.power_failed || s.power_failed;
    result.collapsed = result.collapsed || s.collapsed;
}

SegmentResult
PowerSystem::runSegmentAnalytic(Seconds duration, Amps i_load,
                                const SegmentOptions &options)
{
    SegmentResult result;
    result.used_analytic = true;
    result.vmin = restingVoltage();
    result.vend = result.vmin;

    const double fallback = options.fallback_dt.value();
    const double voff = config_.monitor.voff.value();
    const double vhigh = config_.monitor.vhigh.value();

    double remaining = duration.value();
    // Macro-step size hint carried across steps: start each search at
    // twice the last accepted step so steady regimes converge to a few
    // macro steps instead of re-probing from the full horizon.
    double hint = remaining;
    bool stopped = false;
    while (remaining > 0.0 && !stopped) {
        if (segmentStopConditionMet(result, options))
            break;
        const bool enabled = monitor_.enabled();

        // Harvest of the constancy piece containing now_ (piecewise-
        // constant sources re-read it every iteration; for a strictly
        // constant source this is the same value each time). Macro
        // steps below are capped at the piece boundary so the constant-
        // harvest regime assumption holds over every committed step.
        const Watts harvest = harvester_ != nullptr
            ? harvester_->powerAt(now_)
            : Watts(0.0);
        const double piece_left = harvester_ != nullptr
            ? harvester_->constantUntil(now_).value() - now_.value()
            : std::numeric_limits<double>::infinity();

        // Net buffer current of the current regime (as step() would
        // compute it at this state).
        Amps i_out{0.0};
        bool collapsed_now = false;
        if (enabled) {
            const BoosterDraw draw = output_.computeDraw(cap_, i_load);
            collapsed_now = draw.collapsed;
            i_out = draw.input_current;
        }
        const Amps i_charge =
            input_.chargeCurrent(harvest, cap_.openCircuitVoltage());
        const double net0 = i_out.value() - i_charge.value();
        const double vterm0 = cap_.terminalVoltage(Amps(net0)).value();

        // Collapse and monitor transitions carry per-step side effects
        // (hysteresis state, power-failure accounting), so they are
        // executed as reference Euler steps, never synthesized.
        if (collapsed_now || (enabled && vterm0 < voff) ||
            (!enabled && vterm0 >= vhigh)) {
            analyticEventStep(result, i_load, options.fallback_dt,
                              remaining);
            if ((result.power_failed || result.collapsed) &&
                options.stop_on_failure)
                stopped = true;
            hint = std::max(hint, 4.0 * fallback);
            continue;
        }

        // Adaptive macro step: the largest dt over which the net current
        // stays constant to within options.current_tolerance, probed on
        // a copy of the buffer state. The controller is proportional:
        // the drift is ~linear in dt within a regime, so a rejected
        // probe predicts the acceptable step directly instead of
        // halving blindly.
        double dt_try = std::min(remaining, hint);
        // A macro step may not span a harvest-piece boundary: cap at
        // the piece end. A piece shorter than one fallback step floors
        // the probe below, degrading to a reference Euler step that
        // carries across the boundary (step() reads powerAt natively).
        if (piece_left < dt_try)
            dt_try = piece_left;
        double net1 = net0;
        bool at_floor = false;
        const double bound =
            std::max(1e-6, options.current_tolerance * std::abs(net0));
        while (true) {
            if (dt_try <= fallback * (1.0 + 1e-9)) {
                at_floor = true;
                break;
            }
            ++result.probes;
            Capacitor probe = cap_;
            probe.advanceAnalytic(Seconds(dt_try), Amps(net0));
            Amps i_out1{0.0};
            bool collapsed1 = false;
            if (enabled) {
                const BoosterDraw draw1 = output_.computeDraw(probe, i_load);
                collapsed1 = draw1.collapsed;
                i_out1 = draw1.input_current;
            }
            const Amps i_charge1 =
                input_.chargeCurrent(harvest, probe.openCircuitVoltage());
            net1 = i_out1.value() - i_charge1.value();
            const double drift = std::abs(net1 - net0);
            if (!collapsed1 && drift <= bound)
                break;
            const double shrink = (!collapsed1 && drift > 0.0)
                ? std::clamp(0.9 * bound / drift, 0.05, 0.5)
                : 0.5;
            dt_try *= shrink;
        }
        if (at_floor) {
            // The regime changes faster than one fallback step can
            // resolve analytically; degenerate to the reference path.
            analyticEventStep(result, i_load, options.fallback_dt,
                              remaining);
            if ((result.power_failed || result.collapsed) &&
                options.stop_on_failure)
                stopped = true;
            hint = 4.0 * fallback;
            continue;
        }

        // Commit with the trapezoidal current correction and scan the
        // explicit terminal-voltage curve for monitor crossings.
        const double net_avg = 0.5 * (net0 + net1);
        const TwoBranchCoefficients k = cap_.analyticCoefficients();
        double i_state = net_avg;
        if (cap_.openCircuitVoltage().value() > 0.0)
            i_state += cap_.config().leakage.value();
        const double vb = cap_.bulkVoltage().value();
        const double vs = cap_.surfaceVoltage().value();
        const double q0 = (k.cb * vb + k.cs * vs) / k.c_total;
        const double d0 = vb - vs;
        const double d_inf = -i_state * k.beta * k.tau;

        SegmentCurve curve;
        curve.tau = k.tau;
        curve.b = -i_state / k.c_total;
        curve.c = k.gamma * (d0 - d_inf);
        // The -I R drop uses the external net current, matching
        // terminalVoltage(net) on the Euler path (leakage acts on the
        // stored charge, not through the series resistance).
        curve.a = q0 + k.gamma * d_inf - net_avg * k.rth;

        const double crossing = enabled
            ? curve.firstCrossing(voff, dt_try, /*falling=*/true)
            : curve.firstCrossing(vhigh, dt_try, /*falling=*/false);
        // Caller-requested resting-level stop: the resting voltage is
        // the curve shifted back up by the I·R drop, so its crossing is
        // the curve's crossing of (level - net_avg·rth), rising.
        double level_cross = -1.0;
        if (options.stop_above_resting.has_value()) {
            level_cross = curve.firstCrossing(
                options.stop_above_resting->value() - net_avg * k.rth,
                dt_try, /*falling=*/false);
        }
        const bool level_first = level_cross > 0.0 &&
                                 (crossing <= 0.0 || level_cross < crossing);
        const bool event = !level_first && crossing > 0.0;
        const double commit =
            level_first ? level_cross : (event ? crossing : dt_try);
        if (commit > 0.0) {
            ++result.macro_steps;
            cap_.advanceAnalytic(Seconds(commit), Amps(net_avg));
            now_ += Seconds(commit);
            remaining -= commit;
            result.vmin =
                std::min(result.vmin, Volts(curve.minOver(commit)));
            result.vend = Volts(curve.at(commit));
        }
        if (level_first) {
            result.stopped_at_level = true;
            stopped = true;
        } else if (event) {
            analyticEventStep(result, i_load, options.fallback_dt,
                              remaining);
            if ((result.power_failed || result.collapsed) &&
                options.stop_on_failure)
                stopped = true;
            hint = std::max(2.0 * fallback, commit);
        } else {
            // Grow the hint in proportion to the headroom the accepted
            // probe left under the drift bound.
            const double drift = std::abs(net1 - net0);
            const double grow = drift > 0.0
                ? std::clamp(0.9 * bound / drift, 1.0, 8.0)
                : 8.0;
            hint = dt_try * grow;
        }
    }
    result.elapsed = Seconds(duration.value() - remaining);
    return result;
}

void
PowerSystem::recharge(Seconds dt, Seconds deadline)
{
    if (!analyticEligible()) {
        while (now_ < deadline &&
               cap_.openCircuitVoltage() < config_.monitor.vhigh) {
            step(dt, Amps(0.0));
        }
        return;
    }

    // Fast path: charge in analytic chunks, each bounded by the time to
    // reach vhigh at the *current* charge rate. The rate only falls as
    // the buffer fills (chargeCurrent ∝ 1/voc), so a chunk never
    // overshoots; the final approach within one dt of full is walked
    // with reference steps to keep the Euler loop's overshoot-by-one-dt
    // exit semantics.
    SegmentOptions seg_opts;
    seg_opts.fallback_dt = dt;
    seg_opts.stop_on_failure = false;
    const double vhigh = config_.monitor.vhigh.value();
    while (now_ < deadline && cap_.openCircuitVoltage().value() < vhigh) {
        // Harvest and piece of the current constancy interval: the
        // chunk estimate below assumes a constant charge rate, so a
        // chunk may not outlive the piece it was computed in.
        const Watts harvest = harvester_ != nullptr
            ? harvester_->powerAt(now_)
            : Watts(0.0);
        const double piece_left = harvester_ != nullptr
            ? harvester_->constantUntil(now_).value() - now_.value()
            : std::numeric_limits<double>::infinity();
        Amps i_out{0.0};
        if (monitor_.enabled()) {
            const BoosterDraw draw = output_.computeDraw(cap_, Amps(0.0));
            if (draw.collapsed) {
                step(dt, Amps(0.0));
                continue;
            }
            i_out = draw.input_current;
        }
        const Amps i_charge =
            input_.chargeCurrent(harvest, cap_.openCircuitVoltage());
        double net = i_out.value() - i_charge.value();
        if (cap_.openCircuitVoltage().value() > 0.0)
            net += cap_.config().leakage.value();
        if (net >= 0.0) {
            if (!std::isfinite(piece_left)) {
                // Constant harvest and not charging: vhigh is
                // unreachable, so just run out the clock in one segment.
                runSegment(deadline - now_, Amps(0.0), seg_opts);
                return;
            }
            // This piece cannot charge, but a later one may (night
            // before morning): sit out the rest of the piece only.
            const double sit = std::min(deadline.value() - now_.value(),
                                        std::max(piece_left, dt.value()));
            runSegment(Seconds(sit), Amps(0.0), seg_opts);
            continue;
        }
        const double t_full =
            (vhigh - cap_.openCircuitVoltage().value()) *
            cap_.capacitance().value() / (-net);
        if (t_full <= dt.value()) {
            step(dt, Amps(0.0));
            continue;
        }
        double chunk = std::min(deadline.value() - now_.value(), t_full);
        if (piece_left < chunk)
            chunk = std::max(piece_left, dt.value());
        runSegment(Seconds(chunk), Amps(0.0), seg_opts);
    }
}

Amps
PowerSystem::idleNetCurrentAt(Volts voc, bool with_output_draw) const
{
    Amps i_out{0.0};
    if (with_output_draw && monitor_.enabled()) {
        Capacitor probe = cap_;
        probe.setOpenCircuitVoltage(voc);
        const BoosterDraw draw = output_.computeDraw(probe, Amps(0.0));
        if (!draw.collapsed)
            i_out = draw.input_current;
    }
    const Watts harvested = harvester_ != nullptr
        ? harvester_->powerAt(now_)
        : Watts(0.0);
    const Amps i_charge = input_.chargeCurrent(harvested, voc);
    double net = i_out.value() - i_charge.value();
    if (voc.value() > 0.0)
        net += cap_.config().leakage.value();
    return Amps(net);
}

Volts
PowerSystem::restingVoltage() const
{
    return cap_.terminalVoltage(Amps(0.0));
}

Volts
PowerSystem::observedRestingVoltage()
{
    const Volts v = restingVoltage();
    return hooks_ != nullptr ? hooks_->perturbReading(v) : v;
}

void
PowerSystem::notifyCommit(const std::string &name, Volts admitted_at,
                          Volts vsafe)
{
    if (observer_ != nullptr)
        observer_->onCommit(name, admitted_at, vsafe);
}

void
PowerSystem::notifyCommitEnd(bool completed)
{
    if (observer_ != nullptr)
        observer_->onCommitEnd(completed);
}

void
PowerSystem::setBufferVoltage(Volts voc)
{
    log::fatalIf(voc.value() < 0.0, "buffer voltage cannot be negative");
    cap_.setOpenCircuitVoltage(voc);
}

void
PowerSystem::reconfigureCapacitor(const CapacitorConfig &next)
{
    log::fatalIf(next.capacitance.value() <= 0.0,
                 "reconfigured capacitance must be positive");
    const double c_old = config_.capacitor.capacitance.value();
    const double c_new = next.capacitance.value();
    const double voc = cap_.openCircuitVoltage().value();
    // Growing attaches empty banks: the stored charge q = C_old * voc
    // redistributes over C_new. Shrinking detaches banks that keep
    // their own charge, leaving the rail voltage where it was.
    const double v = c_new > c_old ? voc * (c_old / c_new) : voc;
    config_.capacitor = next;
    cap_ = Capacitor(next);
    cap_.setOpenCircuitVoltage(Volts(v));
}

void
PowerSystem::adoptState(Volts v_bulk, Volts v_surf, Seconds now)
{
    cap_.setBranchVoltages(v_bulk, v_surf);
    now_ = now;
}

void
PowerSystem::forceOutputEnabled(bool enabled)
{
    monitor_.forceEnabled(enabled);
}

} // namespace culpeo::sim
