#include "power_system.hpp"

#include "util/logging.hpp"

namespace culpeo::sim {

PowerSystemConfig
capybaraConfig()
{
    PowerSystemConfig cfg;

    // 45 mF bank of six dense supercapacitors (Seiko CPX-class). The
    // two-branch parameters give an apparent ESR of ~2.6 ohm for
    // kHz-class transients rising to ~8 ohm for sustained (DC-like)
    // loads, per supercapacitor porous electrode behaviour.
    cfg.capacitor.capacitance = Farads(45e-3);
    cfg.capacitor.series_esr = Ohms(1.5);
    cfg.capacitor.surface_fraction = 0.15;
    cfg.capacitor.bulk_resistance = Ohms(9.0);
    cfg.capacitor.surface_resistance = Ohms(1.2);
    cfg.capacitor.leakage = Amps(120e-9); // Six parts at 20 nA DCL each.

    cfg.output.vout = Volts(2.55);
    // True efficiency: a line with mild curvature away from Vhigh and a
    // small current droop; Culpeo's models use only the linear part.
    cfg.output.efficiency.slope = 0.055;
    cfg.output.efficiency.intercept = 0.70;
    cfg.output.efficiency.curvature = 0.012;
    cfg.output.efficiency.current_coeff = 0.10;
    cfg.output.efficiency.v_ref = 2.56;
    cfg.output.dropout = Volts(0.5);
    cfg.output.quiescent = Amps(55e-6);

    cfg.input.efficiency = 0.80;
    cfg.input.vhigh = Volts(2.56);
    cfg.input.max_charge_current = Amps(0.2);

    cfg.monitor.vhigh = Volts(2.56);
    cfg.monitor.voff = Volts(1.60);

    return cfg;
}

PowerSystem::PowerSystem(PowerSystemConfig config)
    : config_(config),
      cap_(config.capacitor),
      output_(config.output),
      input_(config.input),
      monitor_(config.monitor)
{}

StepResult
PowerSystem::step(Seconds dt, Amps i_load)
{
    log::fatalIf(dt.value() <= 0.0, "PowerSystem::step requires dt > 0");
    log::fatalIf(i_load.value() < 0.0, "load current cannot be negative");

    FaultActions faults;
    if (hooks_ != nullptr)
        faults = hooks_->onStep(now_, dt);
    if (faults.apply_aging) {
        cap_.applyAging(faults.capacitance_fraction,
                        faults.esr_multiplier);
    }

    StepResult result;
    const bool was_enabled = monitor_.enabled();

    if (faults.force_brownout && was_enabled) {
        monitor_.forceFailure();
        result.forced_brownout = true;
    }

    Amps i_out{0.0};
    if (was_enabled && !result.forced_brownout) {
        const BoosterDraw draw = output_.computeDraw(cap_, i_load);
        i_out = draw.input_current;
        result.collapsed = draw.collapsed;
        result.delivering = !draw.collapsed && i_load.value() > 0.0;
    }

    const Watts harvested = harvester_ != nullptr
        ? harvester_->powerAt(now_) * faults.harvest_scale
        : Watts(0.0);
    const Amps i_charge =
        input_.chargeCurrent(harvested, cap_.openCircuitVoltage());

    const Amps net = i_out - i_charge + faults.extra_leakage;
    const Volts vterm = cap_.terminalVoltage(net);
    const bool enabled_after = monitor_.update(vterm);
    result.power_failed =
        was_enabled && (!enabled_after || result.forced_brownout);
    if (result.power_failed)
        result.delivering = false;

    cap_.step(dt, net);
    now_ += dt;

    result.time = now_;
    result.terminal = vterm;
    result.open_circuit = cap_.openCircuitVoltage();
    result.input_current = i_out;

    if (capture_) {
        trace_.add({now_, vterm, result.open_circuit, i_load,
                    result.delivering});
    }
    if (observer_ != nullptr)
        observer_->onStep(result);
    return result;
}

void
PowerSystem::recharge(Seconds dt, Seconds deadline)
{
    while (now_ < deadline &&
           cap_.openCircuitVoltage() < config_.monitor.vhigh) {
        step(dt, Amps(0.0));
    }
}

Volts
PowerSystem::restingVoltage() const
{
    return cap_.terminalVoltage(Amps(0.0));
}

Volts
PowerSystem::observedRestingVoltage()
{
    const Volts v = restingVoltage();
    return hooks_ != nullptr ? hooks_->perturbReading(v) : v;
}

void
PowerSystem::notifyCommit(const std::string &name, Volts admitted_at,
                          Volts vsafe)
{
    if (observer_ != nullptr)
        observer_->onCommit(name, admitted_at, vsafe);
}

void
PowerSystem::notifyCommitEnd(bool completed)
{
    if (observer_ != nullptr)
        observer_->onCommitEnd(completed);
}

void
PowerSystem::setBufferVoltage(Volts voc)
{
    log::fatalIf(voc.value() < 0.0, "buffer voltage cannot be negative");
    cap_.setOpenCircuitVoltage(voc);
}

void
PowerSystem::forceOutputEnabled(bool enabled)
{
    monitor_.forceEnabled(enabled);
}

} // namespace culpeo::sim
