/**
 * @file
 * The complete energy-harvesting power system of Figure 2: harvester →
 * input booster → energy buffer (supercap bank with ESR) → output booster
 * → load, supervised by a hysteretic voltage monitor.
 *
 * The simulator advances with caller-chosen time steps; each step serves a
 * demanded load current (if the monitor allows), charges from the
 * harvester, and reports the resulting terminal voltage and any brown-out.
 */

#ifndef CULPEO_SIM_POWER_SYSTEM_HPP
#define CULPEO_SIM_POWER_SYSTEM_HPP

#include <optional>

#include "sim/booster.hpp"
#include "sim/capacitor.hpp"
#include "sim/harvester.hpp"
#include "sim/instrumentation.hpp"
#include "sim/monitor.hpp"
#include "sim/trace.hpp"
#include "util/units.hpp"

namespace culpeo::sim {

/** Aggregate configuration of the whole supply side. */
struct PowerSystemConfig
{
    CapacitorConfig capacitor{};
    OutputBoosterConfig output{};
    InputBoosterConfig input{};
    MonitorConfig monitor{};
};

/**
 * Capybara-like configuration used throughout the evaluation: Voff 1.6 V,
 * Vhigh 2.56 V, Vout 2.55 V, 45 mF supercapacitor bank of six dense parts
 * with ohm-class, frequency-dependent ESR (Section VI-A).
 */
PowerSystemConfig capybaraConfig();

/** Outcome of one simulation step. */
struct StepResult
{
    Seconds time{0.0};   ///< Simulation time after the step.
    Volts terminal{0.0}; ///< Terminal voltage during the step.
    Volts open_circuit{0.0};
    Amps input_current{0.0}; ///< Current drawn from the buffer.
    bool delivering = false; ///< Load current actually served this step.
    bool collapsed = false;  ///< Booster could not source the power.
    bool power_failed = false; ///< Monitor disabled output this step.
    /** The power failure was injected by a fault hook, not electrical. */
    bool forced_brownout = false;
};

/** Controls for one runSegment() call. */
struct SegmentOptions
{
    /**
     * Step used on the Euler fallback path and for the single
     * reference steps the analytic path takes around monitor/collapse
     * events.
     */
    Seconds fallback_dt{50e-6};
    /** Stop at the first brown-out or collapse (a real device would). */
    bool stop_on_failure = true;
    /** Permit the closed-form fast path (false forces Euler stepping). */
    bool allow_analytic = true;
    /**
     * Macro-step acceptance bound of the fast path: the relative drift
     * of the net buffer current across an analytic macro step. The
     * committed step uses the trapezoidal (endpoint-mean) current, so
     * the residual terminal-voltage error is second order in this
     * tolerance — a few mV at the default, even under heavy aging.
     */
    double current_tolerance = 0.025;
    /**
     * Stop (from below) once the resting voltage reaches this level.
     * The analytic path root-finds the crossing inside a macro step;
     * the Euler path checks at step granularity. Used by the Device
     * layer's recharge-until-voltage waits.
     */
    std::optional<Volts> stop_above_resting{};
    /**
     * Stop as soon as the monitor (re-)enables the output. Used by the
     * Device layer's recharge-until-on waits so a Vhigh crossing deep
     * inside a long idle chunk returns promptly.
     */
    bool stop_when_enabled = false;
};

/** Outcome of one constant-load segment run. */
struct SegmentResult
{
    Seconds elapsed{0.0}; ///< Simulated time (== duration unless stopped).
    /** Minimum terminal voltage observed during the segment. */
    Volts vmin{0.0};
    Volts vend{0.0}; ///< Terminal voltage at the end of the run.
    bool power_failed = false; ///< Monitor crossed Voff in the segment.
    bool collapsed = false;    ///< Booster could not source the power.
    bool used_analytic = false; ///< The closed-form fast path was taken.
    /** Accepted analytic macro steps (0 on the Euler path). */
    unsigned macro_steps = 0;
    /** Trial macro steps probed (accepted + rejected halvings). */
    unsigned probes = 0;
    /** Reference Euler steps taken (all steps on the Euler path). */
    unsigned reference_steps = 0;
    /** Stopped because resting voltage reached stop_above_resting. */
    bool stopped_at_level = false;
    /** Stopped because the monitor enabled under stop_when_enabled. */
    bool stopped_enabled = false;
};

/**
 * The power-system transient simulator. Owns all supply-side component
 * models; the harvester is borrowed (callers keep it alive).
 */
class PowerSystem
{
  public:
    explicit PowerSystem(PowerSystemConfig config);

    /** Select the energy source; nullptr means no incoming power. */
    void setHarvester(const Harvester *harvester) { harvester_ = harvester; }

    /** The attached energy source (nullptr = no incoming power). */
    const Harvester *harvester() const { return harvester_; }

    /**
     * Advance by @p dt while the load demands @p i_load at Vout.
     * The demand is served only while the monitor enables the output
     * booster; otherwise only charging and leakage progress.
     */
    StepResult step(Seconds dt, Amps i_load);

    /**
     * Advance by @p duration while the load demands a *constant*
     * @p i_load at Vout — one piecewise-constant profile segment.
     *
     * When the run is instrumentation-free (analyticEligible()) and
     * @p options permits, the segment advances with the closed-form
     * two-branch solution: adaptive macro steps that hold the net
     * buffer current constant, with Voff/Vhigh monitor crossings
     * located by root-finding on the explicit terminal-voltage curve
     * and handled by single reference Euler steps so monitor semantics
     * match the step() path exactly. Otherwise it falls back to
     * stepping options.fallback_dt through step().
     *
     * vmin covers only this segment's observations (the Euler path
     * samples per-step terminal voltages; the analytic path takes the
     * continuous minimum, which is equal or slightly lower).
     */
    SegmentResult runSegment(Seconds duration, Amps i_load,
                             const SegmentOptions &options = {});

    /**
     * True when no fault hooks, observer, or trace capture are
     * attached and the harvest (if any) is declared piecewise
     * constant (Harvester::piecewiseConstant) — the conditions under
     * which runSegment()/recharge() may use the closed-form fast path
     * without skipping instrumentation. Macro steps never span a
     * harvest-piece boundary (Harvester::constantUntil), so each
     * analytic step still sees a strictly constant harvest.
     */
    bool analyticEligible() const;

    /** Run with zero load until @p deadline or the buffer reaches vhigh. */
    void recharge(Seconds dt, Seconds deadline);

    /**
     * Net buffer current (positive = discharging) the system would see
     * idling at open-circuit voltage @p voc under the present harvester
     * and monitor state. @p with_output_draw includes the output
     * booster's quiescent draw when the monitor is enabled; pass false
     * to probe the charge-only regime (e.g. recharging while browned
     * out). A non-negative value at (just below) a target voltage means
     * the harvester can never lift the buffer there — the Device layer
     * uses this to detect unreachable recharge thresholds.
     */
    Amps idleNetCurrentAt(Volts voc, bool with_output_draw) const;

    Seconds now() const { return now_; }
    const Capacitor &capacitor() const { return cap_; }
    const VoltageMonitor &monitor() const { return monitor_; }
    const OutputBooster &outputBooster() const { return output_; }
    const PowerSystemConfig &config() const { return config_; }

    /** Terminal voltage with no load applied (what an idle ADC reads). */
    Volts restingVoltage() const;

    /**
     * The resting voltage as dispatch software observes it: the true
     * value passed through the attached fault hooks' ADC error model
     * (identity when no hooks are attached).
     */
    Volts observedRestingVoltage();

    Volts vhigh() const { return config_.monitor.vhigh; }
    Volts voff() const { return config_.monitor.voff; }
    Volts vout() const { return config_.output.vout; }

    /** Operating range Vhigh - Voff used for error normalization. */
    Volts operatingRange() const { return vhigh() - voff(); }

    // --- Test-harness controls (Section VI-A isolation mode) ---

    /** Instantly set the buffer's open-circuit voltage. */
    void setBufferVoltage(Volts voc);

    /**
     * Swap the storage buffer for @p next, conserving stored charge
     * (bank-array reconfiguration, Section V-B). Growing the effective
     * capacitance attaches empty banks, so the open-circuit voltage
     * scales by C_old/C_new; shrinking detaches banks that keep their
     * own charge, so the rail voltage is unchanged. The new buffer
     * starts settled at that voltage; monitor hysteresis state is
     * untouched.
     */
    void reconfigureCapacitor(const CapacitorConfig &next);

    /**
     * Batch-engine handoff: adopt branch voltages and the simulation
     * clock from a lane's SoA mirror, so reference event steps and
     * peeled scalar tails continue exactly where the lockstep kernel
     * left the lane. Monitor state is NOT touched (the scalar system
     * remains its owner throughout a batch run).
     */
    void adoptState(Volts v_bulk, Volts v_surf, Seconds now);

    /** Force the monitor state regardless of thresholds. */
    void forceOutputEnabled(bool enabled);

    /** Enable/disable trace capture; captured on every step. */
    void captureTrace(bool capture) { capture_ = capture; }
    const VoltageTrace &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    // --- Instrumentation (src/fault plugs in here) ---

    /** Attach a fault model consulted before every step; nullptr clears. */
    void setFaultHooks(FaultHooks *hooks) { hooks_ = hooks; }
    FaultHooks *faultHooks() const { return hooks_; }

    /** Attach a passive step/commitment observer; nullptr clears. */
    void setObserver(StepObserver *observer) { observer_ = observer; }
    StepObserver *observer() const { return observer_; }

    /** Forward a dispatch commitment to the attached observer, if any. */
    void notifyCommit(const std::string &name, Volts admitted_at,
                      Volts vsafe);
    void notifyCommitEnd(bool completed);

  private:
    bool segmentStopConditionMet(SegmentResult &result,
                                 const SegmentOptions &options) const;
    SegmentResult runSegmentEuler(Seconds duration, Amps i_load,
                                  const SegmentOptions &options);
    SegmentResult runSegmentAnalytic(Seconds duration, Amps i_load,
                                     const SegmentOptions &options);
    /**
     * One reference Euler step inside the analytic path, used exactly
     * at monitor/collapse events so their side effects (hysteresis
     * transitions, failure accounting) match the step() path.
     */
    void analyticEventStep(SegmentResult &result, Amps i_load,
                           Seconds fallback_dt, double &remaining);

    PowerSystemConfig config_;
    Capacitor cap_;
    OutputBooster output_;
    InputBooster input_;
    VoltageMonitor monitor_;
    const Harvester *harvester_ = nullptr;
    FaultHooks *hooks_ = nullptr;
    StepObserver *observer_ = nullptr;
    Seconds now_{0.0};
    bool capture_ = false;
    VoltageTrace trace_;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_POWER_SYSTEM_HPP
