/**
 * @file
 * Explicit terminal-voltage curve of one analytic macro step under a
 * constant net buffer current (DESIGN.md §10):
 *
 *   v(t) = a + b t + c exp(-t / tau)
 *
 * v' is monotone, so the curve has at most one interior stationary
 * point and splits into at most two monotone pieces — level crossings
 * are found by bracketed bisection per piece.
 *
 * This header is the kernel-dispatch seam between the scalar segment
 * stepper (power_system.cpp) and the SoA batch engine (src/batch/):
 * both paths evaluate the *same* curve code, so committed macro steps
 * and located crossings are bit-identical by construction rather than
 * by keeping two verbatim twins in sync. The batch engine's warm mode
 * layers Newton-accelerated crossings and a polynomial exp on top
 * (src/batch/commit_kernel.hpp); everything in this file is the exact
 * arithmetic both fidelity modes share.
 */

#ifndef CULPEO_SIM_SEGMENT_CURVE_HPP
#define CULPEO_SIM_SEGMENT_CURVE_HPP

#include <algorithm>
#include <cmath>

namespace culpeo::sim {

struct SegmentCurve
{
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
    double tau = 1.0;

    double at(double t) const { return a + b * t + c * std::exp(-t / tau); }

    /** Interior stationary point in (0, horizon), or a negative value. */
    double stationaryPoint(double horizon) const
    {
        if (c == 0.0 || b == 0.0)
            return -1.0;
        const double ratio = b * tau / c;
        if (ratio <= 0.0 || ratio > 1.0)
            return -1.0;
        const double t = -tau * std::log(ratio);
        return (t > 0.0 && t < horizon) ? t : -1.0;
    }

    /** Continuous minimum over [0, horizon]. */
    double minOver(double horizon) const
    {
        double m = std::min(at(0.0), at(horizon));
        const double t = stationaryPoint(horizon);
        if (t > 0.0)
            m = std::min(m, at(t));
        return m;
    }

    /**
     * Earliest t in (0, horizon] where the curve reaches @p level while
     * falling (or rising when @p falling is false). Returns a negative
     * value when the curve never crosses in that direction.
     */
    double firstCrossing(double level, double horizon, bool falling) const
    {
        const double t_star = stationaryPoint(horizon);
        const double knots[3] = {0.0, t_star > 0.0 ? t_star : horizon,
                                 horizon};
        for (int piece = 0; piece < 2; ++piece) {
            double lo = knots[piece];
            double hi = knots[piece + 1];
            if (hi <= lo)
                continue;
            const double v_lo = at(lo);
            const double v_hi = at(hi);
            const bool brackets = falling
                ? (v_lo >= level && v_hi < level)
                : (v_lo < level && v_hi >= level);
            if (!brackets)
                continue;
            for (int iter = 0; iter < 64; ++iter) {
                const double mid = 0.5 * (lo + hi);
                const bool crossed =
                    falling ? at(mid) < level : at(mid) >= level;
                (crossed ? hi : lo) = mid;
            }
            return hi;
        }
        return -1.0;
    }
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_SEGMENT_CURVE_HPP
