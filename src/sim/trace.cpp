#include "trace.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace culpeo::sim {

void
VoltageTrace::add(TraceSample sample)
{
    log::panicIf(!samples_.empty() && sample.time < samples_.back().time,
                 "trace samples must be appended in time order");
    samples_.push_back(sample);
}

void
VoltageTrace::clear()
{
    samples_.clear();
}

const TraceSample &
VoltageTrace::front() const
{
    log::fatalIf(samples_.empty(), "front() on empty trace");
    return samples_.front();
}

const TraceSample &
VoltageTrace::back() const
{
    log::fatalIf(samples_.empty(), "back() on empty trace");
    return samples_.back();
}

Volts
VoltageTrace::minTerminal() const
{
    log::fatalIf(samples_.empty(), "minTerminal() on empty trace");
    auto it = std::min_element(samples_.begin(), samples_.end(),
                               [](const TraceSample &a, const TraceSample &b) {
                                   return a.terminal < b.terminal;
                               });
    return it->terminal;
}

Volts
VoltageTrace::minTerminalBetween(Seconds t0, Seconds t1) const
{
    log::fatalIf(samples_.empty(), "minTerminalBetween() on empty trace");
    Volts best{1e9};
    bool found = false;
    for (const auto &s : samples_) {
        if (s.time >= t0 && s.time <= t1 && s.terminal < best) {
            best = s.terminal;
            found = true;
        }
    }
    log::fatalIf(!found, "no samples in requested window");
    return best;
}

Volts
VoltageTrace::maxTerminalBetween(Seconds t0, Seconds t1) const
{
    log::fatalIf(samples_.empty(), "maxTerminalBetween() on empty trace");
    Volts best{-1e9};
    bool found = false;
    for (const auto &s : samples_) {
        if (s.time >= t0 && s.time <= t1 && s.terminal > best) {
            best = s.terminal;
            found = true;
        }
    }
    log::fatalIf(!found, "no samples in requested window");
    return best;
}

Volts
VoltageTrace::terminalAt(Seconds t) const
{
    log::fatalIf(samples_.empty(), "terminalAt() on empty trace");
    if (t <= samples_.front().time)
        return samples_.front().terminal;
    if (t >= samples_.back().time)
        return samples_.back().terminal;
    const auto it = std::lower_bound(
        samples_.begin(), samples_.end(), t,
        [](const TraceSample &s, Seconds when) { return s.time < when; });
    const auto &hi = *it;
    const auto &lo = *(it - 1);
    const double span = (hi.time - lo.time).value();
    const double frac = span > 0.0 ? (t - lo.time).value() / span : 0.0;
    return Volts(lo.terminal.value() * (1.0 - frac) +
                 hi.terminal.value() * frac);
}

Seconds
VoltageTrace::duration() const
{
    if (samples_.size() < 2)
        return Seconds(0.0);
    return samples_.back().time - samples_.front().time;
}

} // namespace culpeo::sim
