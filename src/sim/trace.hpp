/**
 * @file
 * Time-series capture of power-system state, mirroring the measurement
 * harness (Saleae + current-sense rig) the paper uses to record energy
 * buffer voltage and load current (Section VI-A).
 */

#ifndef CULPEO_SIM_TRACE_HPP
#define CULPEO_SIM_TRACE_HPP

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace culpeo::sim {

using units::Amps;
using units::Seconds;
using units::Volts;

/** One recorded instant of power-system state. */
struct TraceSample
{
    Seconds time{0.0};
    Volts terminal{0.0}; ///< Capacitor terminal voltage (what an ADC sees).
    Volts open_circuit{0.0}; ///< Ideal-capacitor voltage (energy proxy).
    Amps load{0.0};          ///< Load-side current demand.
    bool delivering = false; ///< Output booster enabled and not collapsed.
};

/** Append-only voltage/current trace with range queries. */
class VoltageTrace
{
  public:
    void add(TraceSample sample);
    void clear();

    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    const TraceSample &operator[](std::size_t i) const { return samples_[i]; }
    const TraceSample &front() const;
    const TraceSample &back() const;
    const std::vector<TraceSample> &samples() const { return samples_; }

    /** Minimum terminal voltage over the whole trace. */
    Volts minTerminal() const;

    /** Minimum terminal voltage for samples with time in [t0, t1]. */
    Volts minTerminalBetween(Seconds t0, Seconds t1) const;

    /** Maximum terminal voltage for samples with time in [t0, t1]. */
    Volts maxTerminalBetween(Seconds t0, Seconds t1) const;

    /** Linear interpolation of terminal voltage at time @p t. */
    Volts terminalAt(Seconds t) const;

    /** Total spanned time (0 for traces with < 2 samples). */
    Seconds duration() const;

  private:
    std::vector<TraceSample> samples_;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_TRACE_HPP
