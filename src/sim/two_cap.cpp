#include "two_cap.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace culpeo::sim {

TwoCapNetwork::TwoCapNetwork(CapBranch main, CapBranch decoupling)
    : main_(main), decoupling_(decoupling)
{
    log::fatalIf(main_.capacitance.value() <= 0.0 ||
                     decoupling_.capacitance.value() <= 0.0,
                 "both branch capacitances must be positive");
    log::fatalIf(main_.esr.value() <= 0.0 || decoupling_.esr.value() <= 0.0,
                 "both branch ESRs must be positive");
}

Volts
TwoCapNetwork::nodeVoltage(Amps i_load) const
{
    const double g1 = 1.0 / main_.esr.value();
    const double g2 = 1.0 / decoupling_.esr.value();
    const double vn = (main_.open_circuit.value() * g1 +
                       decoupling_.open_circuit.value() * g2 -
                       i_load.value()) /
                      (g1 + g2);
    return Volts(vn);
}

void
TwoCapNetwork::step(Seconds dt, Amps i_load)
{
    log::fatalIf(dt.value() <= 0.0, "TwoCapNetwork::step requires dt > 0");
    const Volts vn = nodeVoltage(i_load);
    const Amps i1 = (main_.open_circuit - vn) / main_.esr;
    const Amps i2 = (decoupling_.open_circuit - vn) / decoupling_.esr;

    main_.open_circuit = Volts(std::max(
        0.0, main_.open_circuit.value() -
                 i1.value() * dt.value() / main_.capacitance.value()));
    decoupling_.open_circuit = Volts(std::max(
        0.0,
        decoupling_.open_circuit.value() -
            i2.value() * dt.value() / decoupling_.capacitance.value()));
}

void
TwoCapNetwork::setVoltage(Volts v)
{
    main_.open_circuit = v;
    decoupling_.open_circuit = v;
}

} // namespace culpeo::sim
