/**
 * @file
 * Two-capacitor network: a high-ESR supercapacitor in parallel with a
 * low-ESR decoupling bank, both feeding the output booster's input node.
 *
 * Used to reproduce the Section II-D experiment showing that even
 * abnormally large decoupling capacitance (up to 6.4 mF) cannot absorb a
 * *sustained* high-current load: the decoupling bank sags within
 * milliseconds and the supercapacitor's ESR drop reappears at the node.
 */

#ifndef CULPEO_SIM_TWO_CAP_HPP
#define CULPEO_SIM_TWO_CAP_HPP

#include "util/units.hpp"

namespace culpeo::sim {

using units::Amps;
using units::Farads;
using units::Ohms;
using units::Seconds;
using units::Volts;
using units::Watts;

/** One capacitor branch: ideal C in series with an ESR. */
struct CapBranch
{
    Farads capacitance{0.0};
    Ohms esr{0.0};
    Volts open_circuit{0.0};
};

/**
 * Transient solver for two capacitor branches sharing a supply node.
 * Each step solves the node voltage from the current balance
 *
 *   (V1 - Vn)/R1 + (V2 - Vn)/R2 = Iload
 *
 * then integrates each branch's open-circuit voltage with its branch
 * current. The load is a demanded current at the node (the booster's
 * input current).
 */
class TwoCapNetwork
{
  public:
    TwoCapNetwork(CapBranch main, CapBranch decoupling);

    /** Node (booster input) voltage if @p i_load were drawn right now. */
    Volts nodeVoltage(Amps i_load) const;

    /** Advance by dt while the node sources @p i_load. */
    void step(Seconds dt, Amps i_load);

    const CapBranch &main() const { return main_; }
    const CapBranch &decoupling() const { return decoupling_; }

    /** Set both branch voltages (fully charged, settled start). */
    void setVoltage(Volts v);

  private:
    CapBranch main_;
    CapBranch decoupling_;
};

} // namespace culpeo::sim

#endif // CULPEO_SIM_TWO_CAP_HPP
