#include "metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace culpeo::telemetry {

namespace {

/** CAS-fold @p v into @p slot with @p better (min/max orderings). */
template <typename Better>
void
atomicFold(std::atomic<double> &slot, double v, Better better)
{
    double current = slot.load(std::memory_order_relaxed);
    while (better(v, current) &&
           !slot.compare_exchange_weak(current, v,
                                       std::memory_order_relaxed)) {
    }
}

/** The record() identity per mode (what an untouched gauge reads). */
double
identityFor(GaugeMode mode)
{
    switch (mode) {
    case GaugeMode::Min:
        return std::numeric_limits<double>::infinity();
    case GaugeMode::Max:
        return -std::numeric_limits<double>::infinity();
    case GaugeMode::Last:
    case GaugeMode::Sum:
        break;
    }
    return 0.0;
}

} // namespace

Gauge::Gauge(GaugeMode mode) : mode_(mode), value_(identityFor(mode))
{
}

void
Gauge::record(double v)
{
    switch (mode_) {
    case GaugeMode::Last:
        value_.store(v, std::memory_order_relaxed);
        break;
    case GaugeMode::Sum:
        value_.fetch_add(v, std::memory_order_relaxed);
        break;
    case GaugeMode::Min:
        atomicFold(value_, v, std::less<double>());
        break;
    case GaugeMode::Max:
        atomicFold(value_, v, std::greater<double>());
        break;
    }
    touched_.store(true, std::memory_order_relaxed);
}

void
Gauge::combine(const Gauge &other)
{
    if (other.touched())
        record(other.value());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / double(buckets == 0 ? 1 : buckets)),
      buckets_(buckets),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    log::fatalIf(buckets == 0, "histogram needs at least one bucket");
    log::fatalIf(!(hi > lo), "histogram range must be non-empty");
    counts_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(buckets_ + 2);
    for (std::size_t i = 0; i < buckets_ + 2; ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::record(double v)
{
    std::size_t slot;
    if (v < lo_) {
        slot = 0;
    } else {
        const std::size_t bucket = std::size_t((v - lo_) / width_);
        slot = bucket >= buckets_ ? buckets_ + 1 : bucket + 1;
    }
    counts_[slot].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomicFold(min_, v, std::less<double>());
    atomicFold(max_, v, std::greater<double>());
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / double(n);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(buckets_ + 2);
    for (std::size_t i = 0; i < buckets_ + 2; ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::combine(const Histogram &other)
{
    log::fatalIf(other.buckets_ != buckets_ || other.lo_ != lo_ ||
                     other.width_ != width_,
                 "cannot combine histograms of different shape");
    for (std::size_t i = 0; i < buckets_ + 2; ++i) {
        counts_[i].fetch_add(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    atomicFold(min_, other.min(), std::less<double>());
    atomicFold(max_, other.max(), std::greater<double>());
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    log::fatalIf(gauges_.count(name) != 0 ||
                     histograms_.count(name) != 0,
                 "metric ", name, " already exists as another type");
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name, GaugeMode mode)
{
    std::lock_guard<std::mutex> lock(mutex_);
    log::fatalIf(counters_.count(name) != 0 ||
                     histograms_.count(name) != 0,
                 "metric ", name, " already exists as another type");
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>(mode);
    log::fatalIf(slot->mode() != mode, "gauge ", name,
                 " re-requested with a different mode");
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, double lo, double hi,
                    std::size_t buckets)
{
    std::lock_guard<std::mutex> lock(mutex_);
    log::fatalIf(counters_.count(name) != 0 || gauges_.count(name) != 0,
                 "metric ", name, " already exists as another type");
    auto &slot = histograms_[name];
    if (slot == nullptr)
        slot = std::make_unique<Histogram>(lo, hi, buckets);
    log::fatalIf(slot->bucketCount() != buckets || slot->lo() != lo,
                 "histogram ", name,
                 " re-requested with a different shape");
    return *slot;
}

const Counter *
Registry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
Registry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
Registry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, std::uint64_t>>
Registry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter->value());
    return out;
}

std::vector<std::pair<std::string, double>>
Registry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        out.emplace_back(name, gauge->value());
    return out;
}

std::vector<std::string>
Registry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(histograms_.size());
    for (const auto &[name, hist] : histograms_)
        out.push_back(name);
    return out;
}

void
Registry::merge(const Registry &other)
{
    // std::map iteration is name-ordered, so the combine order (and
    // any fatal shape mismatch) is deterministic.
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto &[name, src] : other.counters_)
        counter(name).add(src->value());
    for (const auto &[name, src] : other.gauges_)
        gauge(name, src->mode()).combine(*src);
    for (const auto &[name, src] : other.histograms_) {
        histogram(name, src->lo(), src->hi(), src->bucketCount())
            .combine(*src);
    }
}

void
Registry::writeCsv(std::ostream &out) const
{
    out << "metric,type,value\n";
    for (const auto &[name, value] : counters())
        out << name << ",counter," << value << '\n';
    for (const auto &[name, value] : gauges())
        out << name << ",gauge," << value << '\n';
}

} // namespace culpeo::telemetry
