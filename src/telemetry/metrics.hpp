/**
 * @file
 * Metric primitives of the telemetry subsystem: lock-free counters,
 * gauges with explicit combine modes, and fixed-bucket histograms, all
 * safe for concurrent update from the sweep executor's worker threads
 * (util::ThreadPool), plus the Registry that names and owns them.
 *
 * Update paths are relaxed atomics — a counter increment is one
 * fetch_add — so instrumented hot layers pay nanoseconds, not locks.
 * Creation and enumeration take a mutex; instrument sites are expected
 * to resolve their metrics once (Registry::counter returns a stable
 * reference) and update through the cached pointer afterwards.
 *
 * Merging is deterministic: Registry::merge walks the source's metrics
 * in name order and combines by type (counters and histogram buckets
 * sum; gauges combine per their mode), so merging N per-trial
 * registries in trial order yields one well-defined aggregate
 * regardless of how many threads produced them.
 */

#ifndef CULPEO_TELEMETRY_METRICS_HPP
#define CULPEO_TELEMETRY_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace culpeo::telemetry {

/** Monotonic event count. Merge: sum. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** How a gauge folds successive observations (and merges). */
enum class GaugeMode {
    Last, ///< Keep the most recent observation.
    Sum,  ///< Accumulate (e.g. seconds spent recharging).
    Min,  ///< Track the minimum (e.g. worst margin to Voff).
    Max,  ///< Track the maximum.
};

/** A single scalar observation stream folded per GaugeMode. */
class Gauge
{
  public:
    explicit Gauge(GaugeMode mode);

    /** Fold @p v into the gauge per its mode. Thread-safe. */
    void record(double v);

    double value() const { return value_.load(std::memory_order_relaxed); }

    /** False until the first record(); value() is the identity then. */
    bool touched() const
    {
        return touched_.load(std::memory_order_relaxed);
    }

    GaugeMode mode() const { return mode_; }

    /** Combine @p other into this gauge per the shared mode. */
    void combine(const Gauge &other);

  private:
    GaugeMode mode_;
    std::atomic<double> value_;
    std::atomic<bool> touched_{false};
};

/**
 * Fixed-bucket linear histogram over [lo, hi) with explicit underflow
 * and overflow buckets. Updates are relaxed atomics; count/sum/min/max
 * ride along so summaries need no second pass over samples.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void record(double v);

    double lo() const { return lo_; }
    double hi() const { return lo_ + width_ * double(buckets_); }
    std::size_t bucketCount() const { return buckets_; }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const;
    /** +inf / -inf until the first record(). */
    double min() const { return min_.load(std::memory_order_relaxed); }
    double max() const { return max_.load(std::memory_order_relaxed); }

    /** Bucket tallies: [underflow, b0 .. bN-1, overflow]. */
    std::vector<std::uint64_t> bucketCounts() const;

    /** Bucket-wise sum of @p other (same shape required). */
    void combine(const Histogram &other);

  private:
    double lo_;
    double width_;
    std::size_t buckets_;
    /** buckets_ + 2 slots: [0] underflow, [buckets_+1] overflow. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/**
 * Named metric store. Metrics are created on first request and live as
 * long as the registry; returned references stay valid, so instrument
 * sites cache them and update lock-free.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find-or-create. Fatal if @p name exists as another metric type. */
    Counter &counter(const std::string &name);
    /** Find-or-create. Fatal on mode mismatch with an existing gauge. */
    Gauge &gauge(const std::string &name, GaugeMode mode = GaugeMode::Last);
    /** Find-or-create. Fatal on shape mismatch with an existing one. */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t buckets);

    /** Lookups without creation; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Name-sorted snapshots (stable export / assertion order). */
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    std::vector<std::pair<std::string, double>> gauges() const;
    std::vector<std::string> histogramNames() const;

    /**
     * Deterministically combine @p other into this registry: iterate
     * its metrics in name order, creating missing ones with matching
     * shape, and combine per type.
     */
    void merge(const Registry &other);

    /** One `metric,type,value` CSV row per counter/gauge, name-sorted. */
    void writeCsv(std::ostream &out) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace culpeo::telemetry

#endif // CULPEO_TELEMETRY_METRICS_HPP
