#include "telemetry.hpp"

#include <fstream>

namespace culpeo::telemetry {

namespace names {

std::string
taskVmin(const std::string &task)
{
    return "task.vmin/" + task;
}

} // namespace names

Telemetry::Telemetry(TelemetryConfig config)
    : config_(config), trace_(config.trace_capacity)
{
}

bool
Telemetry::sampleTick()
{
    if (config_.sample_every <= 1)
        return true;
    const bool keep = sample_phase_ == 0;
    sample_phase_ = (sample_phase_ + 1) % config_.sample_every;
    return keep;
}

void
Telemetry::emit(EventKind kind, double time_s, double voltage_v,
                std::uint32_t name_id, double value, bool flag)
{
    TraceEvent event;
    event.time_s = time_s;
    event.voltage_v = float(voltage_v);
    event.value = float(value);
    event.name_id = name_id;
    event.trial = trial_;
    event.kind = kind;
    event.flag = flag;
    trace_.record(event);
}

void
Telemetry::stage(EventKind kind, double time_s, double voltage_v,
                 std::uint32_t name_id, double value, bool flag)
{
    TraceEvent event;
    event.time_s = time_s;
    event.voltage_v = float(voltage_v);
    event.value = float(value);
    event.name_id = name_id;
    event.trial = trial_;
    event.kind = kind;
    event.flag = flag;
    staged_.push_back(event);
}

void
Telemetry::flushStaged()
{
    if (staged_.empty())
        return;
    trace_.recordBatch(staged_);
    staged_.clear();
}

void
Telemetry::merge(const Telemetry &other)
{
    registry_.merge(other.registry_);
    trace_.append(other.trace_);
}

namespace {

std::uint64_t
counterOr0(const Registry &registry, const char *name)
{
    const Counter *counter = registry.findCounter(name);
    return counter == nullptr ? 0 : counter->value();
}

} // namespace

TelemetrySummary
Telemetry::summary() const
{
    TelemetrySummary out;
    if (const Gauge *g = registry_.findGauge(names::kDeviceMinMarginV))
        out.min_margin_v = g->value();
    if (const Gauge *g =
            registry_.findGauge(names::kDeviceRechargeSeconds))
        out.recharge_seconds = g->value();
    if (const Gauge *g = registry_.findGauge(names::kTrialSimSeconds))
        out.sim_seconds = g->value();
    out.loads = counterOr0(registry_, names::kDeviceLoads);
    out.brownouts = counterOr0(registry_, names::kDeviceBrownouts);
    out.recharges = counterOr0(registry_, names::kDeviceRecharges);
    out.tasks_started = counterOr0(registry_, names::kSchedTasksStarted);
    out.tasks_completed =
        counterOr0(registry_, names::kSchedTasksCompleted);
    out.reboots = counterOr0(registry_, names::kRuntimeReboots);
    out.faults_injected = counterOr0(registry_, names::kFaultInjected);
    out.drift_alarms =
        counterOr0(registry_, names::kSupervisorDriftAlarms);
    out.margin_inflations =
        counterOr0(registry_, names::kSupervisorMarginInflations);
    out.sheds = counterOr0(registry_, names::kSupervisorSheds);
    out.readmissions =
        counterOr0(registry_, names::kSupervisorReadmissions);
    return out;
}

bool
Telemetry::writeJsonlFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJsonl(out);
    return bool(out);
}

} // namespace culpeo::telemetry
