/**
 * @file
 * The telemetry facade: one object bundling a metric Registry and a
 * TraceLog, handed to instrumented layers (sim::Device, sched::engine,
 * runtime/intermittent, fault::Injector) through TrialConfig.
 *
 * Design rules the instrument sites follow:
 *  - Emission happens at *primitive boundaries* (a load ran, a recharge
 *    wait ended), never per Euler tick, so attaching telemetry does NOT
 *    disqualify the analytic fast path the way fault hooks and step
 *    observers do (DESIGN.md §11/§12).
 *  - All instrumentation compiles out when the CULPEO_TELEMETRY macro
 *    is off: `kEnabled` is a constexpr bool and call sites guard with
 *    `if constexpr`.
 *  - `config().sample_every` thins high-rate events (per-task
 *    VminRecord trace points) without touching the counters, so
 *    sampled traces stay cheap while summaries stay exact.
 *
 * Per-trial use: the engine gives each trial a scratch Telemetry
 * (tagged with the trial index), computes the trial's TelemetrySummary
 * from it, then merge()s it into the user's sink in trial order —
 * deterministic even when trials ran on the sweep executor.
 */

#ifndef CULPEO_TELEMETRY_TELEMETRY_HPP
#define CULPEO_TELEMETRY_TELEMETRY_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace_log.hpp"

namespace culpeo::telemetry {

/** True when the build carries telemetry instrumentation. */
#ifdef CULPEO_TELEMETRY
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/**
 * Canonical metric names. Instrument sites and summaries agree through
 * these; tests assert on them.
 */
namespace names {
inline constexpr const char *kDeviceLoads = "device.loads";
inline constexpr const char *kDeviceBrownouts = "device.brownouts";
inline constexpr const char *kDeviceRecharges = "device.recharges";
inline constexpr const char *kDeviceWaits = "device.waits";
inline constexpr const char *kDeviceWaitsUnreachable =
    "device.waits_unreachable";
inline constexpr const char *kDeviceRechargeSeconds =
    "device.recharge_seconds";
/**
 * Registered lazily on the first buffer reconfiguration (never in
 * Device::setTelemetry), so runs without bank switching keep their
 * exact registry insertion order.
 */
inline constexpr const char *kDeviceBufferSwitches =
    "device.buffer_switches";
inline constexpr const char *kDeviceMinMarginV = "device.min_margin_v";
inline constexpr const char *kTrialSimSeconds = "trial.sim_seconds";
inline constexpr const char *kSchedTasksStarted = "sched.tasks_started";
inline constexpr const char *kSchedTasksCompleted =
    "sched.tasks_completed";
inline constexpr const char *kSchedEventsArrived =
    "sched.events_arrived";
inline constexpr const char *kSchedEventsCaptured =
    "sched.events_captured";
inline constexpr const char *kSchedEventsLost = "sched.events_lost";
inline constexpr const char *kSchedBackgroundRuns =
    "sched.background_runs";
inline constexpr const char *kRuntimeReboots = "runtime.reboots";
inline constexpr const char *kRuntimeTaskRetries =
    "runtime.task_retries";
inline constexpr const char *kFaultInjected = "fault.injected";
inline constexpr const char *kSupervisorDriftAlarms =
    "supervisor.drift_alarms";
inline constexpr const char *kSupervisorMarginInflations =
    "supervisor.margin_inflations";
inline constexpr const char *kSupervisorRetries = "supervisor.retries";
inline constexpr const char *kSupervisorSheds = "supervisor.sheds";
inline constexpr const char *kSupervisorShedSkips =
    "supervisor.shed_skips";
inline constexpr const char *kSupervisorReadmissions =
    "supervisor.readmissions";
inline constexpr const char *kVsafeCacheHits = "harness.vsafe_cache.hits";
inline constexpr const char *kVsafeCacheMisses =
    "harness.vsafe_cache.misses";
inline constexpr const char *kVsafeCacheEvictions =
    "harness.vsafe_cache.evictions";
/** Malformed-input classes met while decoding a harvest trace. */
inline constexpr const char *kTraceCorruption = "trace.corruption";

/** Histogram of per-execution Vmin for @p task ("task.vmin/<task>"). */
std::string taskVmin(const std::string &task);
} // namespace names

/** Shape knobs for a Telemetry instance. */
struct TelemetryConfig {
    /** TraceLog ring size; oldest events are evicted beyond this. */
    std::size_t trace_capacity = 4096;
    /** Keep every Nth high-rate trace event (VminRecord); 1 = all. */
    std::uint32_t sample_every = 1;
};

/** Per-trial roll-up computed from a Telemetry's registry. */
struct TelemetrySummary {
    /** Worst (Vterminal - Voff) seen under load; +inf if no load ran. */
    double min_margin_v = std::numeric_limits<double>::infinity();
    double recharge_seconds = 0.0;
    double sim_seconds = 0.0;
    std::uint64_t loads = 0;
    std::uint64_t brownouts = 0;
    std::uint64_t recharges = 0;
    std::uint64_t tasks_started = 0;
    std::uint64_t tasks_completed = 0;
    std::uint64_t reboots = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t drift_alarms = 0;
    std::uint64_t margin_inflations = 0;
    std::uint64_t sheds = 0;
    std::uint64_t readmissions = 0;

    /** Fraction of simulated time spent waiting for charge. */
    double rechargeFraction() const
    {
        return sim_seconds > 0.0 ? recharge_seconds / sim_seconds : 0.0;
    }
};

/** Registry + TraceLog bundle; see file comment for the contract. */
class Telemetry
{
  public:
    explicit Telemetry(TelemetryConfig config = {});

    const TelemetryConfig &config() const { return config_; }

    Registry &registry() { return registry_; }
    const Registry &registry() const { return registry_; }

    TraceLog &trace() { return trace_; }
    const TraceLog &trace() const { return trace_; }

    /** Trial index stamped on emitted events (sweep merges keep it). */
    std::uint32_t trial() const { return trial_; }
    void setTrial(std::uint32_t trial) { trial_ = trial; }

    /** True every config().sample_every-th call (thins trace points). */
    bool sampleTick();

    /** Record an event stamped with trial() at @p time_s / @p voltage_v. */
    void emit(EventKind kind, double time_s, double voltage_v,
              std::uint32_t name_id = 0, double value = 0.0,
              bool flag = false);

    /**
     * emit() deferred: buffer the event locally (no trace-log lock)
     * until flushStaged() pushes the whole batch in order. Hot emitters
     * with a natural batch boundary — the batch engine's per-round
     * drivers — stage at the instrument site and flush once per round,
     * so the trace sequence is identical to eager emit() while the ring
     * bookkeeping is amortized. Callers must flush before the trace is
     * read or merge()d; staged events are invisible until then.
     */
    void stage(EventKind kind, double time_s, double voltage_v,
               std::uint32_t name_id = 0, double value = 0.0,
               bool flag = false);

    /** Record every staged event, in staging order, then clear. */
    void flushStaged();

    /** Fold @p other in: registry merge + trace append (trial ids kept). */
    void merge(const Telemetry &other);

    /** Roll up the registry into a TelemetrySummary. */
    TelemetrySummary summary() const;

    /** Trace as JSONL (the CULPEO_TRACE_OUT format). */
    void writeJsonl(std::ostream &out) const { trace_.writeJsonl(out); }

    /** Write the JSONL trace to @p path; false on I/O failure. */
    bool writeJsonlFile(const std::string &path) const;

    /** Counters and gauges as CSV rows. */
    void writeMetricsCsv(std::ostream &out) const
    {
        registry_.writeCsv(out);
    }

  private:
    TelemetryConfig config_;
    Registry registry_;
    TraceLog trace_;
    std::vector<TraceEvent> staged_;
    std::uint32_t trial_ = 0;
    std::uint32_t sample_phase_ = 0;
};

} // namespace culpeo::telemetry

#endif // CULPEO_TELEMETRY_TELEMETRY_HPP
