#include "trace_log.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace culpeo::telemetry {

namespace {

/** Shortest round-trippable formatting, stable for goldens. */
std::string
formatNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/** Minimal JSON string escaping (labels are identifiers in practice). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::TaskStart:
        return "task_start";
    case EventKind::TaskEnd:
        return "task_end";
    case EventKind::VminRecord:
        return "vmin_record";
    case EventKind::BrownOut:
        return "brown_out";
    case EventKind::RechargeEnter:
        return "recharge_enter";
    case EventKind::RechargeExit:
        return "recharge_exit";
    case EventKind::VsafeUpdate:
        return "vsafe_update";
    case EventKind::FaultInjected:
        return "fault_injected";
    case EventKind::DriftAlarm:
        return "drift_alarm";
    case EventKind::MarginUpdate:
        return "margin_update";
    case EventKind::TaskRetry:
        return "task_retry";
    case EventKind::TaskShed:
        return "task_shed";
    case EventKind::TaskReadmit:
        return "task_readmit";
    case EventKind::TraceCorruption:
        return "trace_corruption";
    }
    return "unknown";
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity)
{
    log::fatalIf(capacity == 0, "trace log needs capacity >= 1");
    labels_.push_back("");
    label_ids_.emplace("", 0);
}

std::uint32_t
TraceLog::intern(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = label_ids_.find(label);
    if (it != label_ids_.end())
        return it->second;
    const auto id = std::uint32_t(labels_.size());
    labels_.push_back(label);
    label_ids_.emplace(label, id);
    return id;
}

std::string
TraceLog::label(std::uint32_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return id < labels_.size() ? labels_[id] : std::string();
}

void
TraceLog::recordLocked(const TraceEvent &event)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
        ++size_;
    } else {
        ring_[head_] = event;
        head_ = (head_ + 1) % capacity_;
    }
    ++recorded_;
}

void
TraceLog::record(const TraceEvent &event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    recordLocked(event);
}

void
TraceLog::recordBatch(const std::vector<TraceEvent> &events)
{
    if (events.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TraceEvent &event : events)
        recordLocked(event);
}

std::uint64_t
TraceLog::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::uint64_t
TraceLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_ - size_;
}

std::vector<TraceEvent>
TraceLog::eventsLocked() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(head_ + i) % capacity_]);
    return out;
}

std::vector<TraceEvent>
TraceLog::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return eventsLocked();
}

void
TraceLog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
}

void
TraceLog::append(const TraceLog &other)
{
    // Snapshot the source first so the two locks are never held
    // together (appends can run concurrently from sweep workers).
    std::vector<TraceEvent> events;
    std::vector<std::string> labels;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        events = other.eventsLocked();
        labels = other.labels_;
    }
    // Re-intern once per label rather than once per event, then fold
    // the batch in under a single lock — merge cost scales with the
    // label table, not the event count.
    std::vector<std::uint32_t> remap(labels.size(), 0);
    for (std::size_t i = 0; i < labels.size(); ++i)
        remap[i] = intern(labels[i]);
    std::lock_guard<std::mutex> lock(mutex_);
    for (TraceEvent event : events) {
        event.name_id =
            event.name_id < remap.size() ? remap[event.name_id] : 0;
        recordLocked(event);
    }
}

void
TraceLog::writeJsonl(std::ostream &out) const
{
    for (const TraceEvent &event : events()) {
        out << "{\"t\":" << formatNumber(event.time_s)
            << ",\"trial\":" << event.trial << ",\"kind\":\""
            << eventKindName(event.kind) << "\"";
        if (event.name_id != 0)
            out << ",\"name\":\"" << escapeJson(label(event.name_id))
                << "\"";
        out << ",\"v\":" << formatNumber(double(event.voltage_v))
            << ",\"value\":" << formatNumber(double(event.value))
            << ",\"flag\":" << (event.flag ? "true" : "false") << "}\n";
    }
}

void
TraceLog::writeCsv(std::ostream &out) const
{
    out << "t,trial,kind,name,v,value,flag\n";
    for (const TraceEvent &event : events()) {
        out << formatNumber(event.time_s) << ',' << event.trial << ','
            << eventKindName(event.kind) << ',' << label(event.name_id)
            << ',' << formatNumber(double(event.voltage_v)) << ','
            << formatNumber(double(event.value)) << ','
            << (event.flag ? 1 : 0) << '\n';
    }
}

} // namespace culpeo::telemetry
