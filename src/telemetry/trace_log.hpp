/**
 * @file
 * Ring-buffered log of typed simulation events. Each event carries the
 * sim-time and terminal voltage at which it fired, an optional interned
 * label (task or event-type name), a free scalar, and the trial index,
 * so a single log can hold a merged multi-trial timeline.
 *
 * The buffer has fixed capacity: once full, the oldest events are
 * overwritten and counted as dropped. That keeps tracing O(1) per event
 * and memory-bounded for million-trial sweeps while still retaining the
 * tail that matters when a trial is dumped on failure.
 *
 * Exporters write JSONL (one event object per line — the
 * CULPEO_TRACE_OUT format consumed by the fig12 bench and the fuzz
 * harness) and CSV. Output is oldest-to-newest and formatted with fixed
 * precision, so identical event sequences serialize identically (golden
 * snapshot tests rely on this).
 */

#ifndef CULPEO_TELEMETRY_TRACE_LOG_HPP
#define CULPEO_TELEMETRY_TRACE_LOG_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace culpeo::telemetry {

/** What happened at a trace point. */
enum class EventKind : std::uint8_t {
    TaskStart,     ///< A task (or task-chain link) began executing.
    TaskEnd,       ///< A task finished; `flag` is true iff it completed.
    VminRecord,    ///< Minimum terminal voltage observed during a load.
    BrownOut,      ///< Terminal voltage crossed Voff under load.
    RechargeEnter, ///< Device began waiting for charge.
    RechargeExit,  ///< Recharge wait ended; `flag` true iff threshold hit.
    VsafeUpdate,   ///< A Vsafe estimate was (re)computed; `value` holds it.
    FaultInjected, ///< The fault injector perturbed the simulation.
    DriftAlarm,    ///< Supervisor: prediction error crossed the threshold.
    MarginUpdate,  ///< Supervisor: adaptive margin changed; `value` holds it.
    TaskRetry,     ///< Supervisor: brown-out consumed a bounded retry.
    TaskShed,      ///< Supervisor: task demoted; `value` is the probe time.
    TaskReadmit,   ///< Supervisor: demoted task re-admitted for a probe.
    /**
     * Trace decoder met a malformed-input class; `name_id` interns the
     * TraceErrorCode name, `value` is the block index, `flag` is true
     * when the decoder recovered (Clamp/Skip) rather than failed.
     * Appended last so existing golden trace snapshots keep their kind
     * encodings.
     */
    TraceCorruption,
};

/** Stable lowercase-snake name for @p kind (serialization). */
const char *eventKindName(EventKind kind);

/** One trace point. Plain data; 32 bytes. */
struct TraceEvent {
    double time_s = 0.0;       ///< Simulation time.
    float voltage_v = 0.0F;    ///< Terminal voltage at the event.
    float value = 0.0F;        ///< Kind-specific scalar (Vsafe, Vmin, …).
    std::uint32_t name_id = 0; ///< Interned label; 0 means unnamed.
    std::uint32_t trial = 0;   ///< Trial index within a sweep.
    EventKind kind = EventKind::TaskStart;
    bool flag = false;         ///< Kind-specific bit (completed, reached…).
};

/**
 * Fixed-capacity ring of TraceEvents with label interning. Thread-safe;
 * the expected pattern is single-writer per trial with merged logs
 * built through append().
 */
class TraceLog
{
  public:
    explicit TraceLog(std::size_t capacity = 4096);

    std::size_t capacity() const { return capacity_; }

    /** Map @p label to a stable id (idempotent). Id 0 is "". */
    std::uint32_t intern(const std::string &label);

    /** The label behind @p id ("" for 0 or unknown ids). */
    std::string label(std::uint32_t id) const;

    /** Push @p event, evicting the oldest when full. */
    void record(const TraceEvent &event);

    /**
     * Push @p events in order under one lock acquisition — the flush
     * half of Telemetry's stage/flushStaged batching. Equivalent to
     * record() per element, just amortized.
     */
    void recordBatch(const std::vector<TraceEvent> &events);

    /** Total events ever recorded (including evicted ones). */
    std::uint64_t recorded() const;

    /** Events evicted because the ring was full. */
    std::uint64_t dropped() const;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Drop all events (labels are kept). */
    void clear();

    /**
     * Append @p other's retained events in order, re-interning labels
     * into this log's table. Used to fold per-trial scratch logs into a
     * shared sink; each event keeps the trial id it was recorded with.
     */
    void append(const TraceLog &other);

    /** One JSON object per line, oldest first. */
    void writeJsonl(std::ostream &out) const;

    /** CSV with a header row, oldest first. */
    void writeCsv(std::ostream &out) const;

  private:
    std::vector<TraceEvent> eventsLocked() const;
    void recordLocked(const TraceEvent &event);

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< Index of the oldest retained event.
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::vector<std::string> labels_;
    std::map<std::string, std::uint32_t> label_ids_;
};

} // namespace culpeo::telemetry

#endif // CULPEO_TELEMETRY_TRACE_LOG_HPP
