#include "csv.hpp"

#include <cstdlib>

#include "logging.hpp"

namespace culpeo::util {

CsvWriter::CsvWriter(const std::string &path, std::vector<std::string> header)
{
    out_.open(path);
    log::fatalIf(!out_.is_open(), "cannot open CSV output file: ", path);
    bool first = true;
    std::ostringstream line;
    for (const auto &cell : header) {
        if (!first)
            line << ',';
        first = false;
        line << csvEscape(cell);
    }
    out_ << line.str() << '\n';
}

CsvWriter
CsvWriter::forBench(const std::string &bench_name,
                    std::vector<std::string> header)
{
    const char *dir = std::getenv("CULPEO_BENCH_CSV");
    if (dir == nullptr)
        return CsvWriter();
    return CsvWriter(std::string(dir) + "/" + bench_name + ".csv",
                     std::move(header));
}

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string escaped = "\"";
    for (char c : cell) {
        if (c == '"')
            escaped += '"';
        escaped += c;
    }
    escaped += '"';
    return escaped;
}

} // namespace culpeo::util
