#include "csv.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "logging.hpp"

namespace culpeo::util {

CsvWriter::CsvWriter(const std::string &path, std::vector<std::string> header)
{
    out_.open(path);
    log::fatalIf(!out_.is_open(), "cannot open CSV output file: ", path);
    bool first = true;
    std::ostringstream line;
    for (const auto &cell : header) {
        if (!first)
            line << ',';
        first = false;
        line << csvEscape(cell);
    }
    out_ << line.str() << '\n';
}

CsvWriter
CsvWriter::forBench(const std::string &bench_name,
                    std::vector<std::string> header)
{
    const char *dir = std::getenv("CULPEO_BENCH_CSV");
    if (dir == nullptr)
        return CsvWriter();
    return CsvWriter(std::string(dir) + "/" + bench_name + ".csv",
                     std::move(header));
}

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string escaped = "\"";
    for (char c : cell) {
        if (c == '"')
            escaped += '"';
        escaped += c;
    }
    escaped += '"';
    return escaped;
}

const char *
csvErrorName(CsvErrorCode code)
{
    switch (code) {
    case CsvErrorCode::Io:
        return "io";
    case CsvErrorCode::Empty:
        return "empty";
    case CsvErrorCode::MalformedRow:
        return "malformed_row";
    case CsvErrorCode::ShortRow:
        return "short_row";
    case CsvErrorCode::BadHeader:
        return "bad_header";
    case CsvErrorCode::BadNumber:
        return "bad_number";
    case CsvErrorCode::BadValue:
        return "bad_value";
    }
    return "unknown";
}

std::string
CsvError::message() const
{
    std::ostringstream out;
    out << csvErrorName(code);
    if (line != 0)
        out << " at line " << line;
    if (!detail.empty())
        out << ": " << detail;
    return out.str();
}

Expected<std::vector<std::string>, CsvError>
csvSplitLine(const std::string &line, std::size_t line_number)
{
    std::vector<std::string> cells;
    std::string cell;
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (true) {
        cell.clear();
        if (i < n && line[i] == '"') {
            ++i;
            bool closed = false;
            while (i < n) {
                if (line[i] == '"') {
                    if (i + 1 < n && line[i + 1] == '"') {
                        cell += '"';
                        i += 2;
                        continue;
                    }
                    ++i;
                    closed = true;
                    break;
                }
                cell += line[i];
                ++i;
            }
            if (!closed)
                return fail(CsvError{CsvErrorCode::MalformedRow,
                                     line_number,
                                     "unterminated quoted cell"});
            if (i < n && line[i] != ',')
                return fail(CsvError{CsvErrorCode::MalformedRow,
                                     line_number,
                                     "characters after closing quote"});
        } else {
            while (i < n && line[i] != ',') {
                cell += line[i];
                ++i;
            }
        }
        cells.push_back(cell);
        if (i >= n)
            break;
        ++i; // Past the separator; a trailing one means an empty cell.
        if (i == n) {
            cells.emplace_back();
            break;
        }
    }
    return cells;
}

Expected<double, CsvError>
csvNumber(const std::string &cell, std::size_t line_number)
{
    if (cell.empty())
        return fail(CsvError{CsvErrorCode::BadNumber, line_number,
                             "empty cell where a number is required"});
    // strtod would silently skip leading whitespace; a strict cell
    // parse must not.
    if (std::isspace(static_cast<unsigned char>(cell.front())) != 0)
        return fail(CsvError{CsvErrorCode::BadNumber, line_number,
                             "unparsable number '" + cell + "'"});
    const char *begin = cell.c_str();
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(begin, &end);
    if (end != begin + cell.size())
        return fail(CsvError{CsvErrorCode::BadNumber, line_number,
                             "unparsable number '" + cell + "'"});
    if (errno == ERANGE || !std::isfinite(value))
        return fail(CsvError{CsvErrorCode::BadNumber, line_number,
                             "number out of range '" + cell + "'"});
    return value;
}

Expected<std::vector<CsvRow>, CsvError>
readCsvRows(const std::string &path, std::size_t min_fields)
{
    std::ifstream in(path);
    if (!in.is_open())
        return fail(
            CsvError{CsvErrorCode::Io, 0, "cannot open " + path});
    std::vector<CsvRow> rows;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        Expected<std::vector<std::string>, CsvError> cells =
            csvSplitLine(line, line_number);
        if (!cells)
            return fail(cells.error());
        if (cells->size() < min_fields)
            return fail(CsvError{
                CsvErrorCode::ShortRow, line_number,
                "row has " + std::to_string(cells->size()) +
                    " fields, needs " + std::to_string(min_fields)});
        rows.push_back(CsvRow{line_number, std::move(*cells)});
    }
    if (in.bad())
        return fail(CsvError{CsvErrorCode::Io, line_number,
                             "read failed for " + path});
    if (rows.empty())
        return fail(
            CsvError{CsvErrorCode::Empty, 0, path + " has no rows"});
    return rows;
}

} // namespace culpeo::util
