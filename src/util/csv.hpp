/**
 * @file
 * Small CSV writer used by benchmarks to emit figure data series.
 *
 * Benchmarks print human-readable tables to stdout and, when the
 * CULPEO_BENCH_CSV environment variable is set, also write the raw rows
 * to a CSV file so figures can be re-plotted.
 */

#ifndef CULPEO_UTIL_CSV_HPP
#define CULPEO_UTIL_CSV_HPP

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace culpeo::util {

/** Writes rows to a CSV file; silently inactive when not opened. */
class CsvWriter
{
  public:
    CsvWriter() = default;

    /**
     * Open @p path for writing and emit @p header as the first row.
     * Throws log::FatalError if the file cannot be created.
     */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /** True when rows will actually be written somewhere. */
    bool active() const { return out_.is_open(); }

    /** Append one row; each cell is formatted with operator<<. */
    template <typename... Cells>
    void
    row(const Cells &...cells)
    {
        if (!active())
            return;
        std::ostringstream line;
        bool first = true;
        (appendCell(line, first, cells), ...);
        out_ << line.str() << '\n';
    }

    /**
     * Construct a writer for benchmark output: active only when the
     * CULPEO_BENCH_CSV environment variable is set, writing to
     * "<benchName>.csv" inside that directory.
     */
    static CsvWriter forBench(const std::string &bench_name,
                              std::vector<std::string> header);

  private:
    std::ofstream out_;

    template <typename Cell>
    static void
    appendCell(std::ostringstream &line, bool &first, const Cell &cell)
    {
        if (!first)
            line << ',';
        first = false;
        line << cell;
    }
};

/** Escape a string cell for CSV if it contains separators or quotes. */
std::string csvEscape(const std::string &cell);

} // namespace culpeo::util

#endif // CULPEO_UTIL_CSV_HPP
