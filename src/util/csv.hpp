/**
 * @file
 * Small CSV writer used by benchmarks to emit figure data series, and
 * the defensive reader half used by ingestion call sites.
 *
 * Benchmarks print human-readable tables to stdout and, when the
 * CULPEO_BENCH_CSV environment variable is set, also write the raw rows
 * to a CSV file so figures can be re-plotted.
 *
 * The reader follows the same error discipline as the trace decoder
 * (util/expected.hpp): operator-supplied CSV is *input data*, so every
 * malformed-file class — unreadable path, empty file, unterminated
 * quote, short row, unparsable or non-finite number — surfaces as a
 * typed CsvError through util::Expected instead of a fatal unwind.
 */

#ifndef CULPEO_UTIL_CSV_HPP
#define CULPEO_UTIL_CSV_HPP

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "util/expected.hpp"

namespace culpeo::util {

/** Writes rows to a CSV file; silently inactive when not opened. */
class CsvWriter
{
  public:
    CsvWriter() = default;

    /**
     * Open @p path for writing and emit @p header as the first row.
     * Throws log::FatalError if the file cannot be created.
     */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /** True when rows will actually be written somewhere. */
    bool active() const { return out_.is_open(); }

    /** Append one row; each cell is formatted with operator<<. */
    template <typename... Cells>
    void
    row(const Cells &...cells)
    {
        if (!active())
            return;
        std::ostringstream line;
        bool first = true;
        (appendCell(line, first, cells), ...);
        out_ << line.str() << '\n';
    }

    /**
     * Construct a writer for benchmark output: active only when the
     * CULPEO_BENCH_CSV environment variable is set, writing to
     * "<benchName>.csv" inside that directory.
     */
    static CsvWriter forBench(const std::string &bench_name,
                              std::vector<std::string> header);

  private:
    std::ofstream out_;

    template <typename Cell>
    static void
    appendCell(std::ostringstream &line, bool &first, const Cell &cell)
    {
        if (!first)
            line << ',';
        first = false;
        line << cell;
    }
};

/** Escape a string cell for CSV if it contains separators or quotes. */
std::string csvEscape(const std::string &cell);

/** Every malformed-CSV class the reader can meet. */
enum class CsvErrorCode : std::uint8_t {
    Io,           ///< The file could not be opened or read.
    Empty,        ///< No data rows at all.
    MalformedRow, ///< Unterminated quote or junk after a quoted cell.
    ShortRow,     ///< Fewer fields than the consumer's schema needs.
    BadHeader,    ///< The header row is not what the format declares.
    BadNumber,    ///< A cell that must be numeric failed to parse.
    BadValue,     ///< Parsed fine but violates a range constraint.
};

/** Stable lowercase-snake name for @p code (diagnostics). */
const char *csvErrorName(CsvErrorCode code);

/** One CSV ingest failure, locatable to the offending line. */
struct CsvError
{
    CsvErrorCode code = CsvErrorCode::Io;
    std::size_t line = 0; ///< 1-based line number; 0 = whole file.
    std::string detail;   ///< Human-readable specifics.

    /** "<code> at line N: detail" */
    std::string message() const;
};

/**
 * Split one CSV line into cells, honoring csvEscape()'s quoting
 * (double-quote delimiters, "" as an embedded quote). Returns
 * MalformedRow for an unterminated quote or junk between a closing
 * quote and the next separator.
 */
Expected<std::vector<std::string>, CsvError>
csvSplitLine(const std::string &line, std::size_t line_number = 0);

/**
 * Parse a numeric cell strictly: the whole cell must be one finite
 * number (no trailing characters, no empty cells). @p line_number is
 * carried into the error for diagnostics.
 */
Expected<double, CsvError> csvNumber(const std::string &cell,
                                     std::size_t line_number = 0);

/** One parsed row, tagged with where it came from. */
struct CsvRow
{
    std::size_t line = 0; ///< 1-based source line (blank lines counted).
    std::vector<std::string> cells;
};

/**
 * Read @p path into rows of cells. Blank lines are skipped (but still
 * counted, so CsvRow::line matches the editor); every surviving row
 * must carry at least @p min_fields cells (ShortRow otherwise — a
 * truncated file that lost the tail of a row fails here instead of
 * silently feeding half a record downstream). Returns Empty when no
 * rows survive.
 */
Expected<std::vector<CsvRow>, CsvError>
readCsvRows(const std::string &path, std::size_t min_fields = 0);

} // namespace culpeo::util

#endif // CULPEO_UTIL_CSV_HPP
