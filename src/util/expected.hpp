/**
 * @file
 * util::Expected<T, E> — a lightweight value-or-error return channel
 * for recoverable failures at ingestion boundaries (trace decoding,
 * CSV parsing, report export).
 *
 * The library's error discipline so far has two levels: log::fatal for
 * bad *configuration* (the caller constructed something invalid — a
 * programming error at the call site) and log::panic for violated
 * internal invariants. Neither fits *input data*: a sensor-recorded
 * trace file or an operator-supplied path can be malformed through no
 * fault of the calling code, and a fleet service must degrade, report,
 * and continue rather than unwind the whole process. Functions on that
 * boundary return Expected instead of throwing: the error is a typed,
 * inspectable value the caller routes (fail the trial, clamp the
 * sample, drop the block) instead of a control-flow bomb.
 *
 * Deliberately minimal — no monadic chaining, no exception interop —
 * because call sites here are "check, then branch once". Accessing the
 * wrong side is a programming error and panics.
 */

#ifndef CULPEO_UTIL_EXPECTED_HPP
#define CULPEO_UTIL_EXPECTED_HPP

#include <optional>
#include <utility>
#include <variant>

#include "util/logging.hpp"

namespace culpeo::util {

/** Wrapper marking a constructor argument as the error alternative. */
template <typename E>
class Unexpected
{
  public:
    explicit Unexpected(E error) : error_(std::move(error)) {}

    E &error() & { return error_; }
    const E &error() const & { return error_; }
    E &&error() && { return std::move(error_); }

  private:
    E error_;
};

/** Deduce E: `return util::fail(TraceError{...});` */
template <typename E>
Unexpected<std::decay_t<E>>
fail(E &&error)
{
    return Unexpected<std::decay_t<E>>(std::forward<E>(error));
}

/**
 * Either a T (success) or an E (failure). Implicitly constructible
 * from either side, so `return value;` and `return util::fail(err);`
 * both work; T and E must be distinct types.
 */
template <typename T, typename E>
class Expected
{
    static_assert(!std::is_same_v<T, E>,
                  "Expected<T, E> needs distinct value and error types");

  public:
    Expected(T value) : storage_(std::in_place_index<0>, std::move(value))
    {}
    Expected(Unexpected<E> error)
        : storage_(std::in_place_index<1>, std::move(error).error())
    {}

    bool ok() const { return storage_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &value() &
    {
        log::panicIf(!ok(), "Expected::value() called on an error");
        return std::get<0>(storage_);
    }
    const T &value() const &
    {
        log::panicIf(!ok(), "Expected::value() called on an error");
        return std::get<0>(storage_);
    }
    T &&value() &&
    {
        log::panicIf(!ok(), "Expected::value() called on an error");
        return std::get<0>(std::move(storage_));
    }

    E &error() &
    {
        log::panicIf(ok(), "Expected::error() called on a value");
        return std::get<1>(storage_);
    }
    const E &error() const &
    {
        log::panicIf(ok(), "Expected::error() called on a value");
        return std::get<1>(storage_);
    }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    T valueOr(T fallback) const &
    {
        return ok() ? std::get<0>(storage_) : std::move(fallback);
    }

  private:
    std::variant<T, E> storage_;
};

/** The void specialization: success carries nothing. */
template <typename E>
class Expected<void, E>
{
  public:
    Expected() = default;
    Expected(Unexpected<E> error) : error_(std::move(error).error()) {}

    bool ok() const { return !error_.has_value(); }
    explicit operator bool() const { return ok(); }

    E &error()
    {
        log::panicIf(ok(), "Expected::error() called on a value");
        return *error_;
    }
    const E &error() const
    {
        log::panicIf(ok(), "Expected::error() called on a value");
        return *error_;
    }

  private:
    std::optional<E> error_;
};

} // namespace culpeo::util

#endif // CULPEO_UTIL_EXPECTED_HPP
