#include "logging.hpp"

#include <iostream>

namespace culpeo::log {

namespace {
bool verbose_flag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verbose_flag = verbose;
}

bool
verbose()
{
    return verbose_flag;
}

void
emitWarn(const std::string &message)
{
    if (verbose_flag)
        std::cerr << "warn: " << message << '\n';
}

void
emitInform(const std::string &message)
{
    if (verbose_flag)
        std::cout << "info: " << message << '\n';
}

} // namespace culpeo::log
