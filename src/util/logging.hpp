/**
 * @file
 * Minimal status/error reporting in the spirit of gem5's logging.hh.
 *
 * fatal()  — the run cannot continue because of a configuration or input
 *            error that is the caller's fault; throws FatalError.
 * panic()  — an internal invariant was violated (a bug in this library);
 *            throws PanicError.
 * warn()   — something is suspicious but the run can continue.
 * inform() — normal status output.
 */

#ifndef CULPEO_UTIL_LOGGING_HPP
#define CULPEO_UTIL_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace culpeo::log {

/** Error caused by invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error("fatal: " + what)
    {}
};

/** Error caused by a violated internal invariant (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error("panic: " + what)
    {}
};

namespace detail {

inline void
append(std::ostringstream &)
{}

template <typename First, typename... Rest>
void
append(std::ostringstream &os, const First &first, const Rest &...rest)
{
    os << first;
    append(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    append(os, args...);
    return os.str();
}

} // namespace detail

/** Toggle for warn()/inform() console output (on by default). */
void setVerbose(bool verbose);
bool verbose();

void emitWarn(const std::string &message);
void emitInform(const std::string &message);

template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(detail::format(args...));
}

template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(detail::format(args...));
}

template <typename... Args>
void
warn(const Args &...args)
{
    emitWarn(detail::format(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    emitInform(detail::format(args...));
}

/** fatal() unless a user-facing precondition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

/** panic() unless an internal invariant holds. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

} // namespace culpeo::log

#endif // CULPEO_UTIL_LOGGING_HPP
