#include "parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string>

namespace culpeo::util {

namespace {

/** Set while the current thread executes inside a parallel region. */
thread_local bool t_in_parallel_region = false;

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("CULPEO_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return unsigned(std::min<long>(parsed, 256));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

/**
 * One parallelFor invocation. Lanes hold contiguous index ranges;
 * owners pop from the front, thieves from the back, so contention on a
 * lane mutex only occurs during steals.
 */
struct ThreadPool::Job
{
    struct Lane
    {
        std::mutex mutex;
        std::size_t next = 0; ///< First unclaimed index.
        std::size_t last = 0; ///< One past the last unclaimed index.
    };

    const std::function<void(std::size_t)> *body = nullptr;
    std::vector<std::unique_ptr<Lane>> lanes;
    std::size_t count = 0;
    std::atomic<std::size_t> completed{0};

    std::mutex error_mutex;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    std::mutex done_mutex;
    std::condition_variable done;

    void recordError(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (index < error_index) {
            error_index = index;
            error = std::current_exception();
        }
    }

    void finishItem()
    {
        if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            count) {
            std::lock_guard<std::mutex> lock(done_mutex);
            done.notify_all();
        }
    }
};

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned total = resolveThreadCount(threads);
    for (unsigned i = 1; i < total; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::runSerial(std::size_t count,
                      const std::function<void(std::size_t)> &body)
{
    // Same semantics as the parallel path: run every item, surface the
    // lowest-indexed failure (which, serially, is simply the first).
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < count; ++i) {
        try {
            body(i);
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (t_in_parallel_region || workers_.empty() || count == 1) {
        // Nested regions run inline to avoid deadlocking the pool on
        // itself; tiny jobs are not worth a wakeup.
        const bool was_inside = t_in_parallel_region;
        t_in_parallel_region = true;
        try {
            runSerial(count, body);
        } catch (...) {
            t_in_parallel_region = was_inside;
            throw;
        }
        t_in_parallel_region = was_inside;
        return;
    }

    auto job = std::make_shared<Job>();
    job->body = &body;
    job->count = count;
    const std::size_t lanes = std::min<std::size_t>(threadCount(), count);
    job->lanes.reserve(lanes);
    // Contiguous block partition: lane L owns [L*count/lanes, ...).
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        auto slot = std::make_unique<Job::Lane>();
        slot->next = lane * count / lanes;
        slot->last = (lane + 1) * count / lanes;
        job->lanes.push_back(std::move(slot));
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++generation_;
    }
    wake_.notify_all();

    runJob(*job, 0);

    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done.wait(lock, [&] {
        return job->completed.load(std::memory_order_acquire) ==
               job->count;
    });
    lock.unlock();

    if (job->error)
        std::rethrow_exception(job->error);
}

void
ThreadPool::runJob(Job &job, std::size_t home_lane)
{
    const bool was_inside = t_in_parallel_region;
    t_in_parallel_region = true;

    const std::size_t lanes = job.lanes.size();
    while (true) {
        std::size_t index = 0;
        bool claimed = false;

        // Own lane first (front pop)...
        if (home_lane < lanes) {
            Job::Lane &mine = *job.lanes[home_lane];
            std::lock_guard<std::mutex> lock(mine.mutex);
            if (mine.next < mine.last) {
                index = mine.next++;
                claimed = true;
            }
        }
        // ...then steal from the back of the fullest victim.
        if (!claimed) {
            std::size_t victim = lanes;
            std::size_t victim_size = 0;
            for (std::size_t lane = 0; lane < lanes; ++lane) {
                if (lane == home_lane)
                    continue;
                Job::Lane &other = *job.lanes[lane];
                std::lock_guard<std::mutex> lock(other.mutex);
                const std::size_t size = other.last - other.next;
                if (size > victim_size) {
                    victim_size = size;
                    victim = lane;
                }
            }
            if (victim < lanes) {
                Job::Lane &other = *job.lanes[victim];
                std::lock_guard<std::mutex> lock(other.mutex);
                if (other.next < other.last) {
                    index = --other.last;
                    claimed = true;
                }
            }
        }
        if (!claimed)
            break;

        try {
            (*job.body)(index);
        } catch (...) {
            job.recordError(index);
        }
        job.finishItem();
    }

    t_in_parallel_region = was_inside;
}

void
ThreadPool::workerLoop(std::size_t worker_index)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        auto job = job_;
        lock.unlock();
        // Home lane = worker index (the caller is lane 0); workers
        // beyond the lane count have no home and go straight to steals.
        if (job)
            runJob(*job, worker_index);
        lock.lock();
    }
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    ThreadPool::shared().parallelFor(count, body);
}

} // namespace culpeo::util
