/**
 * @file
 * A small work-stealing thread pool for the evaluation stack's
 * embarrassingly parallel sweeps (ground-truth searches over scenario
 * sets, figure sweeps, fuzz campaigns).
 *
 * Design goals, in order:
 *  1. Determinism: parallelMap() writes each result into its item's
 *     slot, so result order is independent of scheduling. Callers that
 *     need randomness derive a per-item seed from the item index; runs
 *     are then bit-identical to a serial execution.
 *  2. Faithful failure: exceptions thrown by item bodies are caught,
 *     every remaining item still runs, and the exception of the
 *     *lowest-indexed* failing item is rethrown to the caller — the
 *     same error a serial loop that runs all items would surface.
 *  3. No oversubscription: nested parallel regions execute inline on
 *     the calling worker.
 *
 * The pool divides [0, count) into one contiguous lane per
 * participant; each participant drains its own lane from the front and
 * then steals from the back of the fullest remaining lane. The caller
 * participates as lane 0, so a pool with no worker threads (or
 * CULPEO_THREADS=1) degrades to a plain serial loop.
 */

#ifndef CULPEO_UTIL_PARALLEL_HPP
#define CULPEO_UTIL_PARALLEL_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include <condition_variable>
#include <mutex>

namespace culpeo::util {

class ThreadPool
{
  public:
    /**
     * @p threads is the total participant count including the caller;
     * 0 resolves from the CULPEO_THREADS environment variable, falling
     * back to std::thread::hardware_concurrency().
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Process-wide pool sized from the environment/hardware. */
    static ThreadPool &shared();

    /** Total participants (worker threads + the calling thread). */
    unsigned threadCount() const { return unsigned(workers_.size()) + 1; }

    /**
     * Run body(i) for every i in [0, count). Blocks until all items
     * complete; rethrows the lowest-indexed item's exception, if any.
     * Safe to call from inside an item body (runs inline, serially).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Map @p fn over @p items, preserving order: result[i] == fn(items[i])
     * regardless of which thread computed it. The result type must be
     * default-constructible. Exception semantics as parallelFor().
     */
    template <typename T, typename Fn>
    auto parallelMap(const std::vector<T> &items, Fn fn)
        -> std::vector<std::invoke_result_t<Fn, const T &>>
    {
        using R = std::invoke_result_t<Fn, const T &>;
        std::vector<R> results(items.size());
        parallelFor(items.size(), [&](std::size_t i) {
            results[i] = fn(items[i]);
        });
        return results;
    }

  private:
    struct Job;

    void workerLoop(std::size_t worker_index);
    void runJob(Job &job, std::size_t home_lane);
    void runSerial(std::size_t count,
                   const std::function<void(std::size_t)> &body);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::shared_ptr<Job> job_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

/** Convenience: shared().parallelMap(items, fn). */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const T &>>
{
    return ThreadPool::shared().parallelMap(items, std::move(fn));
}

/** Convenience: shared().parallelFor(count, body). */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &body);

} // namespace culpeo::util

#endif // CULPEO_UTIL_PARALLEL_HPP
