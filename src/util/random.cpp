#include "random.hpp"

#include <cmath>

#include "logging.hpp"

namespace culpeo::util {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed so that a zero seed still yields a nonzero state.
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    log::fatalIf(n == 0, "uniformInt: n must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % n);
    std::uint64_t value = next();
    while (value >= limit)
        value = next();
    return value % n;
}

double
Rng::exponential(double mean)
{
    log::fatalIf(mean <= 0.0, "exponential: mean must be positive");
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::gaussian(double mean, double stddev)
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return mean + stddev * cached_gaussian_;
    }
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return mean + stddev * radius * std::cos(angle);
}

} // namespace culpeo::util
