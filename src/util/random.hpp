/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * Wraps a 64-bit SplitMix64-seeded xoshiro256** generator with the
 * distributions the benchmarks need (uniform, exponential for Poisson
 * event inter-arrival times, and Gaussian for measurement noise).
 */

#ifndef CULPEO_UTIL_RANDOM_HPP
#define CULPEO_UTIL_RANDOM_HPP

#include <array>
#include <cstdint>

namespace culpeo::util {

/** Deterministic xoshiro256** PRNG; identical streams across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Exponentially distributed value with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Box-Muller, scaled to (mean, stddev). */
    double gaussian(double mean, double stddev);

  private:
    std::array<std::uint64_t, 4> state_;
    bool has_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

} // namespace culpeo::util

#endif // CULPEO_UTIL_RANDOM_HPP
